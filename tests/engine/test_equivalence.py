"""Equivalence: linear_scan == SeriesDatabase.knn == QueryEngine.knn_batch.

The engine's contract is byte-identity — for every reducer, index and
distance mode, a batched call returns exactly the ids *and* distances of
per-query :meth:`SeriesDatabase.knn` calls and of the classic sequential
loop (``ExecutionMode.SEQUENTIAL``).  Where the query bound is a true lower
bound (Dist_LB, the aligned methods, CHEBY, SAX mindist) the answers must
additionally equal the brute-force ground truth, including the stable
tie-break on duplicate series.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ExecutionMode, QueryEngine, QueryOptions
from repro.index import SeriesDatabase, linear_scan
from repro.kinds import DistanceMode, IndexKind
from repro.reduction import PAA, PLA, REDUCERS

INDEXES = (None, IndexKind.DBCH, IndexKind.RTREE)

#: (reducer name, mode) pairs whose query bound is a guaranteed lower bound,
#: so filter-and-refine must reproduce the brute-force answer exactly
EXACT_CONFIGS = [
    ("SAPLA", DistanceMode.LB),
    ("APLA", DistanceMode.LB),
    ("APCA", DistanceMode.LB),
    ("PLA", DistanceMode.PAR),
    ("PAA", DistanceMode.PAR),
    ("PAALM", DistanceMode.PAR),
    ("CHEBY", DistanceMode.PAR),
    ("SAX", DistanceMode.PAR),
]


def dataset(count=24, n=48, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(count, n)).cumsum(axis=1)


def build(name, index, mode, data):
    db = SeriesDatabase(REDUCERS[name](8), index=index, distance_mode=mode)
    db.ingest(data)
    return db


def assert_same(a, b):
    assert a.ids == b.ids
    assert a.distances == b.distances


def assert_same_accounting(a, b):
    """Ids, distances *and* every search counter agree — the cascade's
    contract is that it changes when work happens, never what happens."""
    assert_same(a, b)
    assert a.n_verified == b.n_verified
    assert a.n_total == b.n_total
    assert a.n_candidates == b.n_candidates
    assert a.nodes_visited == b.nodes_visited
    assert a.node_pushes == b.node_pushes
    assert a.heap_pushes == b.heap_pushes


@pytest.mark.parametrize("index", INDEXES, ids=["scan", "dbch", "rtree"])
@pytest.mark.parametrize("mode", list(DistanceMode))
@pytest.mark.parametrize("name", sorted(REDUCERS))
def test_batch_matches_per_query_and_sequential(name, mode, index):
    """Full grid: knn == knn_batch == SEQUENTIAL mode, bit for bit."""
    data = dataset()
    db = build(name, index, mode, data)
    queries = np.stack([data[3] + 0.1, data[10] - 0.2, data[0]])
    singles = [db.knn(q, 5) for q in queries]
    batched = db.knn_batch(queries, QueryOptions(k=5))
    sequential = db.knn_batch(queries, QueryOptions(k=5, mode=ExecutionMode.SEQUENTIAL))
    assert not batched.timed_out
    for single, bat, seq in zip(singles, batched.results, sequential.results):
        assert_same(single, bat)
        assert_same(single, seq)


@pytest.mark.parametrize("index", INDEXES, ids=["scan", "dbch", "rtree"])
@pytest.mark.parametrize("name,mode", EXACT_CONFIGS)
def test_lower_bounding_configs_match_linear_scan(name, mode, index):
    """Where the bound is a true lower bound the engine is exact."""
    data = dataset(seed=2)
    db = build(name, index, mode, data)
    queries = np.stack([data[1] + 0.05, data[7], dataset(1, 48, seed=9)[0]])
    batched = db.knn_batch(queries, QueryOptions(k=4))
    for query, result in zip(queries, batched.results):
        assert_same(result, linear_scan(data, query, 4))


@pytest.mark.parametrize("name", ["SAPLA", "APLA", "APCA"])
def test_adaptive_rtree_node_mindist_never_dismisses(name):
    """Regression: the R-tree's feature MINDIST is not a lower bound for
    adaptive layouts, so it must only order the walk — pruning on it falsely
    dismissed a true neighbour on exactly this dataset (found by the sharded
    equivalence property; APLA/LB, k=3)."""
    rng = np.random.default_rng(0)
    data = rng.normal(size=(22, 48)).cumsum(axis=1)
    qrng = np.random.default_rng(1)
    queries = data[qrng.integers(0, len(data), size=3)]
    queries = queries + qrng.normal(scale=0.05, size=queries.shape)
    db = build(name, IndexKind.RTREE, DistanceMode.LB, data)
    assert not db.node_bounds_exact
    batched = db.knn_batch(queries, QueryOptions(k=3))
    for query, result in zip(queries, batched.results):
        assert_same(result, linear_scan(data, query, 3))
    flat = build(name, None, DistanceMode.LB, data)
    for query in queries:
        assert_same(db.range_query(query, 12.0), flat.range_query(query, 12.0))


@pytest.mark.parametrize("index", INDEXES, ids=["scan", "dbch", "rtree"])
def test_k_larger_than_count_returns_everything(index):
    data = dataset(count=6)
    db = build("PAA", index, DistanceMode.PAR, data)
    batch = db.knn_batch(data[:2], QueryOptions(k=50))
    for query, result in zip(data[:2], batch.results):
        assert len(result.ids) == len(data)
        assert_same(result, linear_scan(data, query, 50))


@pytest.mark.parametrize("index", INDEXES, ids=["scan", "dbch", "rtree"])
def test_duplicate_series_tie_break_is_stable_by_id(index):
    """Duplicates: every path keeps the smallest ids, like the stable scan."""
    base = dataset(count=4)
    data = np.concatenate([base, base, base])  # ids 0..11, triples of each row
    db = build("PAA", index, DistanceMode.PAR, data)
    batch = db.knn_batch(base, QueryOptions(k=5))
    for query, result in zip(base, batch.results):
        assert_same(result, linear_scan(data, query, 5))


def test_lookahead_changes_rounds_not_answers():
    data = dataset(count=30)
    db = build("SAPLA", None, DistanceMode.LB, data)
    queries = data[:4] + 0.05
    one = db.knn_batch(queries, QueryOptions(k=3, lookahead=1))
    eager = db.knn_batch(queries, QueryOptions(k=3, lookahead=8))
    for a, b in zip(one.results, eager.results):
        assert_same(a, b)


@pytest.mark.parametrize("index", INDEXES, ids=["scan", "dbch", "rtree"])
@pytest.mark.parametrize("mode", list(DistanceMode))
@pytest.mark.parametrize("name", sorted(REDUCERS))
def test_cascade_toggle_is_invisible(name, mode, index):
    """Full grid: cascade on vs off — same ids, distances and accounting.

    The bound cascade evaluates a cheap dominated tier before each exact
    bound; because the cheap tier never overshoots, every emission, prune
    and verification decision must be byte-identical with ``cascade=False``
    (the pre-cascade eager paths) in both vectorised and sequential modes.
    """
    data = dataset(seed=3)
    db = build(name, index, mode, data)
    queries = np.stack([data[5] + 0.1, data[14] - 0.2, dataset(1, 48, seed=8)[0]])
    off = QueryOptions(k=5, cascade=False, early_abandon=False)
    on = db.knn_batch(queries, QueryOptions(k=5))
    base = db.knn_batch(queries, off)
    seq_on = db.knn_batch(queries, QueryOptions(k=5, mode=ExecutionMode.SEQUENTIAL))
    seq_base = db.knn_batch(
        queries,
        QueryOptions(
            k=5, mode=ExecutionMode.SEQUENTIAL, cascade=False, early_abandon=False
        ),
    )
    for a, b, c, d in zip(on.results, base.results, seq_on.results, seq_base.results):
        assert_same_accounting(a, b)
        assert_same_accounting(c, d)
        assert_same(a, c)


def test_early_abandon_forced_on_is_exact():
    """With the engage gate lowered to one element, abandoning rounds still
    return the ids and distances of the plain matrix norm, and the abandon
    counters prove the filter actually ran."""
    import repro.engine.engine as engine_mod
    from repro import obs

    data = dataset(count=64, n=48, seed=5)
    db = build("PAA", None, DistanceMode.PAR, data)
    queries = np.concatenate([data[:4] + 0.05, dataset(4, 48, seed=11)])
    plain = db.knn_batch(queries, QueryOptions(k=3, early_abandon=False))
    saved = engine_mod.EARLY_ABANDON_MIN_ELEMENTS
    engine_mod.EARLY_ABANDON_MIN_ELEMENTS = 1
    try:
        with obs.capture() as session:
            filtered = db.knn_batch(queries, QueryOptions(k=3, lookahead=8))
    finally:
        engine_mod.EARLY_ABANDON_MIN_ELEMENTS = saved
    counters = session.report().counters
    assert counters["verify.filter_rounds"] > 0
    assert counters["verify.abandoned"] > 0
    for a, b in zip(filtered.results, plain.results):
        assert_same(a, b)
    for query, result in zip(queries, filtered.results):
        assert_same(result, linear_scan(data, query, 3))


class TestPropertyEquivalence:
    """Randomised data/batch shapes keep the three paths identical."""

    @given(
        seed=st.integers(0, 2**16),
        count=st.integers(3, 20),
        n_queries=st.integers(1, 5),
        k=st.integers(1, 8),
        reducer=st.sampled_from([PAA, PLA]),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_batches(self, seed, count, n_queries, k, reducer):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(count, 32)).cumsum(axis=1)
        queries = rng.normal(size=(n_queries, 32)).cumsum(axis=1)
        db = SeriesDatabase(reducer(6), index=None)
        db.ingest(data)
        batch = db.knn_batch(queries, QueryOptions(k=k))
        sequential = db.knn_batch(
            queries, QueryOptions(k=k, mode=ExecutionMode.SEQUENTIAL)
        )
        for i, query in enumerate(queries):
            truth = linear_scan(data, query, k)
            assert_same(batch.results[i], truth)
            assert_same(sequential.results[i], truth)
            assert_same(db.knn(query, k), truth)

    @given(
        seed=st.integers(0, 2**16),
        count=st.integers(4, 24),
        k=st.integers(1, 6),
        index=st.sampled_from(INDEXES),
        mode=st.sampled_from(list(DistanceMode)),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_cascade_toggle(self, seed, count, k, index, mode):
        """Random shapes: the cascade never changes answers or accounting."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(count, 32)).cumsum(axis=1)
        queries = rng.normal(size=(2, 32)).cumsum(axis=1)
        db = SeriesDatabase(REDUCERS["SAPLA"](6), index=index, distance_mode=mode)
        db.ingest(data)
        off = QueryOptions(k=k, cascade=False, early_abandon=False)
        on = db.knn_batch(queries, QueryOptions(k=k))
        base = db.knn_batch(queries, off)
        seq_on = db.knn_batch(queries, QueryOptions(k=k, mode=ExecutionMode.SEQUENTIAL))
        seq_base = db.knn_batch(
            queries,
            QueryOptions(
                k=k,
                mode=ExecutionMode.SEQUENTIAL,
                cascade=False,
                early_abandon=False,
            ),
        )
        for a, b, c, d in zip(
            on.results, base.results, seq_on.results, seq_base.results
        ):
            assert_same_accounting(a, b)
            assert_same_accounting(c, d)
            assert_same(a, c)

    @given(seed=st.integers(0, 2**16), k=st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_random_early_abandon_never_drops_a_true_neighbour(self, seed, k):
        """Forced-on abandoning still reproduces the brute-force answer."""
        import repro.engine.engine as engine_mod

        rng = np.random.default_rng(seed)
        data = rng.normal(size=(20, 32)).cumsum(axis=1)
        queries = rng.normal(size=(3, 32)).cumsum(axis=1)
        db = SeriesDatabase(PAA(6), index=None)
        db.ingest(data)
        saved = engine_mod.EARLY_ABANDON_MIN_ELEMENTS
        engine_mod.EARLY_ABANDON_MIN_ELEMENTS = 1
        try:
            batch = db.knn_batch(queries, QueryOptions(k=k, lookahead=4))
        finally:
            engine_mod.EARLY_ABANDON_MIN_ELEMENTS = saved
        for i, query in enumerate(queries):
            assert_same(batch.results[i], linear_scan(data, query, k))

    @given(seed=st.integers(0, 2**16), k=st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_random_trees_agree_with_per_query(self, seed, k):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(18, 32)).cumsum(axis=1)
        queries = rng.normal(size=(3, 32)).cumsum(axis=1)
        db = SeriesDatabase(REDUCERS["SAPLA"](6), index=IndexKind.DBCH)
        db.ingest(data)
        batch = db.knn_batch(queries, QueryOptions(k=k))
        for i, query in enumerate(queries):
            assert_same(batch.results[i], db.knn(query, k))


def test_engine_is_reusable_across_batches():
    data = dataset()
    db = build("PAA", None, DistanceMode.PAR, data)
    engine = db.engine()
    first = engine.knn_batch(data[:2], QueryOptions(k=3))
    second = engine.knn_batch(data[2:4], QueryOptions(k=3))
    for query, result in zip(data[:2], first.results):
        assert_same(result, linear_scan(data, query, 3))
    for query, result in zip(data[2:4], second.results):
        assert_same(result, linear_scan(data, query, 3))
