"""The typed query surface: QueryOptions validation and BatchResult shape."""

import pytest

from repro.engine import BatchResult, ExecutionMode, QueryOptions
from repro.index import KNNResult


class TestQueryOptions:
    def test_defaults(self):
        options = QueryOptions()
        assert options.k == 1
        assert options.mode is ExecutionMode.AUTO
        assert options.deadline_s is None
        assert options.parallelism == 1
        assert options.lookahead == 1

    def test_mode_accepts_enum_and_value_strings(self):
        assert QueryOptions(mode=ExecutionMode.SEQUENTIAL).mode is ExecutionMode.SEQUENTIAL
        assert QueryOptions(mode="vectorized").mode is ExecutionMode.VECTORIZED

    def test_unknown_mode_rejected_eagerly(self):
        with pytest.raises(ValueError):
            QueryOptions(mode="turbo")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"k": -3},
            {"parallelism": 0},
            {"lookahead": 0},
            {"deadline_s": 0.0},
            {"deadline_s": -1.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            QueryOptions(**kwargs)

    def test_frozen(self):
        options = QueryOptions(k=3)
        with pytest.raises(Exception):
            options.k = 5


class TestBatchResult:
    def test_aggregates(self):
        results = [
            KNNResult(ids=[0], distances=[0.0], n_verified=2, n_total=10),
            KNNResult(ids=[1], distances=[1.0], n_verified=4, n_total=10),
        ]
        batch = BatchResult(results=results)
        assert batch.n_queries == 2
        assert batch.total_verified == 6
        assert batch.pruning_power == pytest.approx(6 / 20)

    def test_empty_pruning_power_is_zero(self):
        assert BatchResult(results=[]).pruning_power == 0.0


class TestExecutionMode:
    def test_values_are_strings(self):
        assert ExecutionMode.AUTO == "auto"
        assert str(ExecutionMode.SEQUENTIAL) == "sequential"
