"""Engine behaviour: errors, deadlines, parallelism, metrics, disk route."""

import numpy as np
import pytest

from repro import obs
from repro.engine import ExecutionMode, QueryEngine, QueryOptions
from repro.index import SeriesDatabase
from repro.kinds import DistanceMode, IndexKind
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.reduction import PAA, SAPLAReducer
from repro.storage import DiskBackedDatabase


@pytest.fixture(autouse=True)
def clean_obs_state():
    prev_reg = obs.set_registry(MetricsRegistry(enabled=False))
    prev_rec = obs.set_recorder(SpanRecorder(enabled=False))
    yield
    obs.set_registry(prev_reg)
    obs.set_recorder(prev_rec)


def dataset(count=30, n=48, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(count, n)).cumsum(axis=1)


def build(count=30, index=None):
    data = dataset(count)
    db = SeriesDatabase(PAA(8), index=index)
    db.ingest(data)
    return db, data


class TestValidation:
    def test_empty_database_raises(self):
        db = SeriesDatabase(PAA(8), index=None)
        with pytest.raises(RuntimeError):
            db.knn_batch(np.zeros((2, 16)), QueryOptions(k=1))

    def test_non_2d_queries_rejected(self):
        db, data = build()
        with pytest.raises(ValueError):
            db.engine().knn_batch(data[0], QueryOptions(k=1))

    def test_default_options_are_k1(self):
        db, data = build()
        batch = db.knn_batch(data[:3])
        assert all(len(r.ids) == 1 for r in batch.results)


class TestDeadline:
    def test_expired_deadline_reports_timeouts_with_partial_results(self):
        db, data = build(count=60)
        batch = db.knn_batch(data[:8], QueryOptions(k=4, deadline_s=1e-9))
        assert batch.timed_out == list(range(8))
        assert len(batch.results) == 8

    def test_generous_deadline_times_nothing_out(self):
        db, data = build()
        batch = db.knn_batch(data[:4], QueryOptions(k=4, deadline_s=60.0))
        assert batch.timed_out == []


class TestParallelism:
    def test_parallel_results_match_in_process(self):
        db, data = build(count=40)
        queries = data[:9] + 0.05
        local = db.knn_batch(queries, QueryOptions(k=4))
        fanned = db.knn_batch(queries, QueryOptions(k=4, parallelism=3))
        for a, b in zip(local.results, fanned.results):
            assert a.ids == b.ids
            assert a.distances == b.distances

    def test_sequential_mode_never_fans_out(self):
        db, data = build()
        batch = db.knn_batch(
            data[:4], QueryOptions(k=3, mode=ExecutionMode.SEQUENTIAL, parallelism=4)
        )
        assert batch.parallelism == 1


class TestMetrics:
    def test_engine_counters_and_span_recorded(self):
        db, data = build()
        with obs.capture() as session:
            db.knn_batch(data[:5], QueryOptions(k=3))
        report = session.report()
        assert report.counters["engine.batches"] == 1
        assert report.counters["engine.rounds"] > 0
        assert report.counters["engine.pairs_verified"] > 0
        assert report.counters["knn.queries"] == 5
        assert report.counters["knn.entries_refined"] == report.counters[
            "engine.pairs_verified"
        ]
        names = []
        pending = list(report.spans)
        while pending:
            node = pending.pop()
            names.append(node["name"])
            pending.extend(node.get("children", ()))
        assert "engine.knn_batch" in names

    def test_per_query_accounting_matches_single_knn(self):
        """Batch members carry the same counters a lone knn() would record."""
        data = dataset()
        db = SeriesDatabase(SAPLAReducer(8), index=IndexKind.DBCH)
        db.ingest(data)
        query = data[4] + 0.05
        with obs.capture() as single_session:
            single = db.knn(query, 4)
        with obs.capture() as batch_session:
            db.knn_batch(query[None, :], QueryOptions(k=4))
        single_counters = single_session.report().counters
        batch_counters = batch_session.report().counters
        for name in (
            "knn.entries_refined",
            "knn.nodes_visited",
            "knn.heap_pushes",
            "knn.pruned.dist_par",
        ):
            assert batch_counters[name] == single_counters[name]
        assert single.n_verified == batch_counters["knn.entries_refined"]


class TestDiskRoute:
    def test_disk_backed_database_batches(self, tmp_path):
        data = dataset(count=20)
        db = DiskBackedDatabase(
            PAA(8), tmp_path / "store.bin", index=None, distance_mode=DistanceMode.PAR
        )
        db.ingest(data)
        batch = db.knn_batch(data[:3], QueryOptions(k=4))
        memory = SeriesDatabase(PAA(8), index=None)
        memory.ingest(data)
        expected = memory.knn_batch(data[:3], QueryOptions(k=4))
        for a, b in zip(batch.results, expected.results):
            assert a.ids == b.ids
            assert a.distances == b.distances
