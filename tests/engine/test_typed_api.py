"""The typed surface: IndexKind / DistanceMode enums and string deprecation.

Pins the compatibility contract: legacy string arguments keep working but
emit ``DeprecationWarning``, unknown values fail eagerly, and the enums
serialise as their plain string values.
"""

import json
import warnings

import numpy as np
import pytest

from repro.distance.suite import make_suite
from repro.index import SeriesDatabase
from repro.kinds import (
    DistanceMode,
    IndexKind,
    coerce_distance_mode,
    coerce_index_kind,
)
from repro.reduction import PAA, SAPLAReducer


class TestEnums:
    def test_members_compare_equal_to_their_strings(self):
        assert IndexKind.DBCH == "dbch"
        assert IndexKind.RTREE == "rtree"
        assert DistanceMode.LB == "lb"
        assert str(DistanceMode.PAR) == "par"

    def test_json_round_trip_as_plain_strings(self):
        payload = json.dumps({"index": IndexKind.DBCH, "mode": DistanceMode.AE})
        assert json.loads(payload) == {"index": "dbch", "mode": "ae"}


class TestCoercion:
    def test_enum_values_pass_through_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert coerce_index_kind(IndexKind.RTREE) is IndexKind.RTREE
            assert coerce_index_kind(None) is None
            assert coerce_index_kind(IndexKind.NONE) is None
            assert coerce_distance_mode(DistanceMode.AE) is DistanceMode.AE

    def test_strings_coerce_with_deprecation_warning(self):
        with pytest.warns(DeprecationWarning):
            assert coerce_index_kind("dbch") is IndexKind.DBCH
        with pytest.warns(DeprecationWarning):
            assert coerce_distance_mode("lb") is DistanceMode.LB

    @pytest.mark.parametrize("value", ["kdtree", "", "DBCH "])
    def test_unknown_index_kind_raises(self, value):
        with pytest.raises(ValueError):
            coerce_index_kind(value)

    @pytest.mark.parametrize("value", ["euclid", "", "PAR "])
    def test_unknown_distance_mode_raises(self, value):
        with pytest.raises(ValueError):
            coerce_distance_mode(value)


class TestDatabaseSurface:
    def test_string_arguments_warn_but_behave(self):
        data = np.random.default_rng(0).normal(size=(10, 32)).cumsum(axis=1)
        with pytest.warns(DeprecationWarning):
            legacy = SeriesDatabase(SAPLAReducer(6), index="dbch", distance_mode="lb")
        typed = SeriesDatabase(
            SAPLAReducer(6), index=IndexKind.DBCH, distance_mode=DistanceMode.LB
        )
        legacy.ingest(data)
        typed.ingest(data)
        assert legacy.index_kind is IndexKind.DBCH
        assert legacy.knn(data[2] + 0.1, 3).ids == typed.knn(data[2] + 0.1, 3).ids

    def test_make_suite_validates_mode_eagerly(self):
        with pytest.raises(ValueError):
            make_suite(SAPLAReducer(6), "not-a-mode")

    def test_aligned_suites_expose_the_batch_bound(self):
        suite = make_suite(PAA(6))
        assert suite.stack is not None
        assert suite.query_bound_batch is not None

    def test_adaptive_suites_have_no_batch_bound(self):
        suite = make_suite(SAPLAReducer(6), DistanceMode.LB)
        assert suite.query_bound_batch is None
