"""Focused tests for endpoint movement's internals and edge cases."""

import numpy as np
import pytest

from repro.core.endpoint_movement import _try_move, move_endpoints
from repro.core.linefit import SeriesStats
from repro.core.segment import Segment


def two_segments(series, boundary):
    stats = SeriesStats(series)
    return stats, [
        Segment.fit(stats, 0, boundary),
        Segment.fit(stats, boundary + 1, len(series) - 1),
    ]


class TestTryMove:
    def test_no_right_neighbour(self):
        series = np.arange(10.0)
        stats, segments = two_segments(series, 4)
        assert _try_move(stats, segments, 1, "right", +1, "paper") is None

    def test_no_left_neighbour(self):
        series = np.arange(10.0)
        stats, segments = two_segments(series, 4)
        assert _try_move(stats, segments, 0, "left", -1, "paper") is None

    def test_move_that_would_empty_a_segment_rejected(self):
        series = np.arange(6.0)
        stats = SeriesStats(series)
        segments = [Segment.fit(stats, 0, 0), Segment.fit(stats, 1, 5)]
        # shrinking the single-point left segment is impossible
        assert _try_move(stats, segments, 0, "right", -1, "paper") is None

    def test_beneficial_move_detected(self):
        """A boundary one point past the regime change: moving back helps.

        (A boundary many points off can sit in a local minimum of the
        deviation sum — greedy +-1 movement is local by design.)"""
        series = np.concatenate([np.zeros(20), np.full(20, 10.0)])
        stats, segments = two_segments(series, 20)  # boundary 1 point late
        move = _try_move(stats, segments, 0, "right", -1, "exact")
        assert move is not None
        _, _, _, delta = move
        assert delta < 0

    def test_delta_zero_for_perfect_fit(self):
        series = np.arange(20.0)
        stats, segments = two_segments(series, 9)
        move = _try_move(stats, segments, 0, "right", +1, "exact")
        assert move is not None
        assert move[3] == pytest.approx(0.0, abs=1e-9)


class TestMoveEndpoints:
    def test_recovers_slightly_misplaced_boundary(self):
        series = np.concatenate([np.zeros(25), np.full(15, 10.0)])
        stats, segments = two_segments(series, 23)  # true boundary at 24
        moved = move_endpoints(stats, segments, bound_mode="exact")
        assert moved[0].end == 24

    def test_budget_limits_moves(self):
        series = np.concatenate([np.zeros(30), np.full(10, 10.0)])
        stats, segments = two_segments(series, 9)  # 20 moves needed
        moved = move_endpoints(stats, segments, bound_mode="exact", max_moves=3)
        assert moved[0].end == 12  # exactly three accepted moves

    def test_cover_preserved_under_many_moves(self):
        rng = np.random.default_rng(1)
        series = rng.normal(size=60).cumsum()
        stats = SeriesStats(series)
        segments = [
            Segment.fit(stats, 0, 14),
            Segment.fit(stats, 15, 29),
            Segment.fit(stats, 30, 44),
            Segment.fit(stats, 45, 59),
        ]
        moved = move_endpoints(stats, segments, bound_mode="exact")
        assert moved[0].start == 0
        assert moved[-1].end == 59
        for prev, cur in zip(moved, moved[1:]):
            assert cur.start == prev.end + 1

    def test_no_move_on_perfectly_fitted_regimes(self):
        series = np.concatenate([np.zeros(20), np.full(20, 5.0)])
        stats, segments = two_segments(series, 19)
        moved = move_endpoints(stats, segments, bound_mode="exact")
        assert moved[0].end == 19
