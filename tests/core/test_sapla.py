"""Tests for the SAPLA pipeline: stages, invariants, and the worked example."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SAPLA,
    LinearSegmentation,
    SeriesStats,
    initialize,
    move_endpoints,
    sapla_transform,
    split_merge,
)
from repro.core.bounds import exact_max_deviation

# the worked series of Figs. 1, 5, 6, 8
PAPER_SERIES = np.array(
    [7, 8, 20, 15, 18, 8, 8, 15, 10, 1, 4, 3, 3, 5, 4, 9, 2, 9, 10, 10], dtype=float
)


def max_deviation(series, rep):
    return max(exact_max_deviation(series, seg) for seg in rep)


def assert_valid_cover(segments, n):
    assert segments[0].start == 0
    assert segments[-1].end == n - 1
    for prev, cur in zip(segments, segments[1:]):
        assert cur.start == prev.end + 1


class TestInitialization:
    def test_covers_series(self):
        stats = SeriesStats(PAPER_SERIES)
        segments = initialize(stats, 4)
        assert_valid_cover(segments, len(PAPER_SERIES))

    def test_segment_count_within_paper_range(self):
        stats = SeriesStats(PAPER_SERIES)
        segments = initialize(stats, 4)
        assert 1 <= len(segments) <= len(PAPER_SERIES) // 2 + 1

    def test_short_series(self):
        for n in (1, 2, 3):
            stats = SeriesStats(np.arange(float(n)))
            segments = initialize(stats, 4)
            assert_valid_cover(segments, n)

    def test_bad_segment_count_rejected(self):
        with pytest.raises(ValueError):
            initialize(SeriesStats(PAPER_SERIES), 0)

    def test_straight_line_yields_few_segments(self):
        stats = SeriesStats(np.arange(100.0))
        segments = initialize(stats, 4)
        # a perfect line produces zero increment areas after the forced
        # N-1 threshold fills, so nearly everything stays in one segment
        assert len(segments) <= 5

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=4, max_value=60))
    @settings(max_examples=40)
    def test_always_a_valid_cover(self, n_segments, n):
        rng = np.random.default_rng(n * 131 + n_segments)
        series = rng.normal(size=n).cumsum()
        segments = initialize(SeriesStats(series), n_segments)
        assert_valid_cover(segments, n)


class TestSplitMerge:
    def test_reaches_target_count(self):
        stats = SeriesStats(PAPER_SERIES)
        segments = split_merge(stats, initialize(stats, 4), 4)
        assert len(segments) == 4
        assert_valid_cover(segments, len(PAPER_SERIES))

    def test_merge_down_from_many(self):
        rng = np.random.default_rng(5)
        series = rng.normal(size=200).cumsum()
        stats = SeriesStats(series)
        segments = initialize(stats, 40)  # deliberately fragmented
        reduced = split_merge(stats, segments, 5)
        assert len(reduced) == 5
        assert_valid_cover(reduced, 200)

    def test_split_up_from_one(self):
        series = np.sin(np.linspace(0, 6 * np.pi, 120))
        stats = SeriesStats(series)
        one = [__import__("repro.core.segment", fromlist=["Segment"]).Segment.fit(stats, 0, 119)]
        segments = split_merge(stats, one, 6)
        assert len(segments) == 6
        assert_valid_cover(segments, 120)

    def test_target_larger_than_series_is_capped(self):
        series = np.arange(4.0)
        stats = SeriesStats(series)
        segments = split_merge(stats, initialize(stats, 10), 10)
        assert len(segments) <= 4
        assert_valid_cover(segments, 4)

    def test_paper_worked_example_count(self):
        # Fig. 6: split & merge brings the 6 initialized segments to N = 4
        stats = SeriesStats(PAPER_SERIES)
        segments = split_merge(stats, initialize(stats, 4), 4)
        assert len(segments) == 4


class TestEndpointMovement:
    def test_never_increases_target_bound(self):
        stats = SeriesStats(PAPER_SERIES)
        segments = split_merge(stats, initialize(stats, 4), 4)
        before = sum(exact_max_deviation(PAPER_SERIES, s) for s in segments)
        moved = move_endpoints(stats, segments, bound_mode="exact")
        after = sum(exact_max_deviation(PAPER_SERIES, s) for s in moved)
        assert after <= before + 1e-9

    def test_preserves_cover(self):
        rng = np.random.default_rng(13)
        series = rng.normal(size=80).cumsum()
        stats = SeriesStats(series)
        segments = split_merge(stats, initialize(stats, 6), 6)
        moved = move_endpoints(stats, segments)
        assert_valid_cover(moved, 80)
        assert len(moved) == len(segments)

    def test_single_segment_is_a_no_op(self):
        stats = SeriesStats(np.arange(10.0))
        seg = [__import__("repro.core.segment", fromlist=["Segment"]).Segment.fit(stats, 0, 9)]
        assert move_endpoints(stats, seg) == seg


class TestSAPLA:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SAPLA()
        with pytest.raises(ValueError):
            SAPLA(n_segments=4, n_coefficients=12)
        with pytest.raises(ValueError):
            SAPLA(n_segments=0)
        with pytest.raises(ValueError):
            SAPLA(n_segments=4, bound_mode="bogus")

    def test_coefficients_to_segments(self):
        assert SAPLA(n_coefficients=12).n_segments == 4
        assert SAPLA(n_coefficients=18).n_segments == 6

    def test_rejects_bad_input(self):
        sapla = SAPLA(n_segments=4)
        with pytest.raises(ValueError):
            sapla.transform(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            sapla.transform(np.array([]))

    def test_paper_worked_example_quality(self):
        """Fig. 8: the paper reaches max deviation 9.27273 with N = 4.

        Split & merge alone reaches 10.6061 (Fig. 6).  Our pipeline must do
        at least as well as the paper's intermediate stage."""
        rep = SAPLA(n_coefficients=12).transform(PAPER_SERIES)
        assert rep.n_segments == 4
        assert max_deviation(PAPER_SERIES, rep) <= 10.6061 + 1e-6

    def test_exact_mode_at_least_as_good_on_example(self):
        rep = SAPLA(n_coefficients=12, bound_mode="exact").transform(PAPER_SERIES)
        assert max_deviation(PAPER_SERIES, rep) <= 10.6061 + 1e-6

    def test_returns_segmentation(self):
        rep = sapla_transform(PAPER_SERIES, 4)
        assert isinstance(rep, LinearSegmentation)
        assert rep.length == len(PAPER_SERIES)

    def test_endpoint_refinement_helps_or_is_neutral(self):
        rng = np.random.default_rng(99)
        series = rng.normal(size=128).cumsum()
        base = SAPLA(n_segments=5, refine_endpoints=False).transform(series)
        refined = SAPLA(n_segments=5, refine_endpoints=True).transform(series)
        assert max_deviation(series, refined) <= max_deviation(series, base) * 1.5

    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=2, max_value=80))
    @settings(max_examples=30, deadline=None)
    def test_invariants_on_random_walks(self, n_segments, n):
        rng = np.random.default_rng(n * 7 + n_segments)
        series = rng.normal(size=n).cumsum()
        rep = SAPLA(n_segments=n_segments).transform(series)
        assert rep.length == n
        assert rep.n_segments <= max(n_segments, 1)
        assert rep.n_segments >= 1
        # reconstruction has the right shape and is finite
        recon = rep.reconstruct()
        assert recon.shape == (n,)
        assert np.isfinite(recon).all()

    def test_constant_series_is_perfectly_represented(self):
        series = np.full(50, 3.25)
        rep = SAPLA(n_segments=4).transform(series)
        assert max_deviation(series, rep) == pytest.approx(0.0, abs=1e-9)

    def test_piecewise_linear_series_recovered_when_budget_suffices(self):
        # two perfect linear pieces; with N = 2 SAPLA should be near-lossless
        series = np.concatenate([np.linspace(0, 10, 30), np.linspace(10, -5, 30)])
        rep = SAPLA(n_segments=2).transform(series)
        assert max_deviation(series, rep) < 0.75

    def test_repr(self):
        text = repr(SAPLA(n_segments=4))
        assert "SAPLA" in text and "4" in text
