"""Cross-checks of the paper's printed closed forms against independent refits."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import paper_equations as pe
from repro.core.linefit import LineFit

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)


def arrays(min_size, max_size=24):
    return st.lists(finite, min_size=min_size, max_size=max_size).map(np.asarray)


def refit(values):
    return LineFit.from_values(np.asarray(values, dtype=float)).coefficients


class TestEq1:
    @given(arrays(2))
    def test_matches_least_squares(self, values):
        assert pe.eq1_fit(values) == pytest.approx(refit(values), abs=1e-6)

    def test_single_point(self):
        assert pe.eq1_fit(np.array([3.0])) == (0.0, 3.0)


class TestEq2ExtendRight:
    @given(arrays(2), finite)
    def test_matches_refit(self, values, new):
        a, b = refit(values)
        got = pe.eq2_extend_right(a, b, len(values), new)
        assert got == pytest.approx(refit(np.append(values, new)), abs=1e-5)

    def test_paper_two_point_case(self):
        # extending <a=1, b=7> (points 7, 8) with 20 — the worked series
        a, b = pe.eq2_extend_right(1.0, 7.0, 2, 20.0)
        assert (a, b) == pytest.approx(refit([7.0, 8.0, 20.0]), abs=1e-9)


class TestEq3Eq4Merge:
    @given(arrays(2), arrays(2))
    def test_matches_refit(self, left, right):
        a_i, b_i = refit(left)
        a_j, b_j = refit(right)
        got = pe.eq3_eq4_merge(a_i, b_i, len(left), a_j, b_j, len(right))
        assert got == pytest.approx(refit(np.concatenate([left, right])), abs=1e-4)


class TestSplitEquations:
    @given(arrays(2, 16), arrays(2, 16))
    def test_eq7_eq8_right_part(self, left, right):
        whole = np.concatenate([left, right])
        a_m, b_m = refit(whole)
        a_i, b_i = refit(left)
        got = pe.eq7_eq8_split_right(a_m, b_m, len(whole), a_i, b_i, len(left))
        assert got == pytest.approx(refit(right), abs=1e-4)

    @given(arrays(2, 16), arrays(2, 16))
    def test_eq5_eq6_left_part(self, left, right):
        whole = np.concatenate([left, right])
        a_m, b_m = refit(whole)
        a_j, b_j = refit(right)
        got = pe.eq5_eq6_split_left(a_m, b_m, len(whole), a_j, b_j, len(right))
        assert got == pytest.approx(refit(left), abs=1e-4)


class TestEndpointEquations:
    @given(arrays(3))
    def test_eq9_shrink_right(self, values):
        a, b = refit(values)
        got = pe.eq9_shrink_right(a, b, len(values), values[-1])
        assert got == pytest.approx(refit(values[:-1]), abs=1e-5)

    @given(arrays(2), finite)
    def test_eq10_extend_left(self, values, new):
        a, b = refit(values)
        got = pe.eq10_extend_left(a, b, len(values), new)
        assert got == pytest.approx(refit(np.insert(values, 0, new)), abs=1e-5)

    @given(arrays(3))
    def test_eq11_shrink_left(self, values):
        a, b = refit(values)
        got = pe.eq11_shrink_left(a, b, len(values), values[0])
        assert got == pytest.approx(refit(values[1:]), abs=1e-5)

    def test_eq9_eq11_require_three_points(self):
        with pytest.raises(ValueError):
            pe.eq9_shrink_right(1.0, 0.0, 2, 1.0)
        with pytest.raises(ValueError):
            pe.eq11_shrink_left(1.0, 0.0, 2, 0.0)


class TestGapEquations:
    """Eqs. (16), (17): the endpoint gaps used by Lemma 4.1 / Theorem 4.1."""

    @given(arrays(2, 16), finite)
    def test_gaps_match_direct_evaluation(self, values, new):
        fit = LineFit.from_values(values)
        inc = fit.extend_right(new)
        l = fit.length
        c_ext = fit.value_at(float(l))  # extended segment's last point
        d4 = pe.eq16_d4(l, new, c_ext)
        d1 = pe.eq17_d1(l, new, c_ext)
        assert d4 == pytest.approx(inc.value_at(float(l)) - c_ext, abs=1e-5)
        assert d1 == pytest.approx(inc.value_at(0.0) - fit.value_at(0.0), abs=1e-5)

    @given(arrays(2, 16), finite)
    def test_lemma_4_1_opposite_signs(self, values, new):
        """The increment and extended lines cross: d1 * d4 <= 0."""
        fit = LineFit.from_values(values)
        l = fit.length
        c_ext = fit.value_at(float(l))
        assert pe.eq16_d4(l, new, c_ext) * pe.eq17_d1(l, new, c_ext) <= 1e-12

    @given(arrays(2, 16), finite)
    def test_theorem_4_1_dominance(self, values, new):
        """|d4| >= |d1| and d5 = |d3| + |d4| (Theorem 4.1)."""
        fit = LineFit.from_values(values)
        inc = fit.extend_right(new)
        l = fit.length
        c_ext = fit.value_at(float(l))
        d4 = pe.eq16_d4(l, new, c_ext)
        d1 = pe.eq17_d1(l, new, c_ext)
        d3 = new - inc.value_at(float(l))
        d5 = new - c_ext
        assert abs(d4) >= abs(d1) - 1e-9
        assert abs(d3) + abs(d4) == pytest.approx(abs(d5), abs=1e-6)
