"""Focused tests for the split & merge machinery's internals."""

import numpy as np
import pytest

from repro.core.linefit import SeriesStats
from repro.core.segment import Segment
from repro.core.split_merge import (
    find_split_point,
    merge_pair_area,
    split_merge,
)


@pytest.fixture
def vshape():
    """A V-shaped series: one obvious split point at the valley."""
    series = np.concatenate([np.linspace(10, 0, 20), np.linspace(0.5, 10, 20)])
    return series, SeriesStats(series)


class TestMergePairArea:
    def test_zero_for_collinear_neighbours(self):
        series = np.arange(40.0)
        stats = SeriesStats(series)
        left = Segment.fit(stats, 0, 19)
        right = Segment.fit(stats, 20, 39)
        assert merge_pair_area(stats, left, right) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_v_shape(self, vshape):
        _, stats = vshape
        left = Segment.fit(stats, 0, 19)
        right = Segment.fit(stats, 20, 39)
        assert merge_pair_area(stats, left, right) > 1.0

    def test_monotone_in_dissimilarity(self):
        stats_flat = SeriesStats(np.concatenate([np.zeros(20), np.full(20, 1.0)]))
        stats_steep = SeriesStats(np.concatenate([np.zeros(20), np.full(20, 10.0)]))
        area_flat = merge_pair_area(
            stats_flat, Segment.fit(stats_flat, 0, 19), Segment.fit(stats_flat, 20, 39)
        )
        area_steep = merge_pair_area(
            stats_steep, Segment.fit(stats_steep, 0, 19), Segment.fit(stats_steep, 20, 39)
        )
        assert area_steep > area_flat


class TestFindSplitPoint:
    def test_single_point_segment_unsplittable(self):
        stats = SeriesStats(np.arange(5.0))
        assert find_split_point(stats, Segment.fit(stats, 2, 2)) is None

    def test_v_shape_split_near_valley(self, vshape):
        _, stats = vshape
        whole = Segment.fit(stats, 0, 39)
        t = find_split_point(stats, whole)
        assert 15 <= t <= 24

    def test_two_point_segment(self):
        stats = SeriesStats(np.array([0.0, 5.0, 0.0]))
        t = find_split_point(stats, Segment.fit(stats, 0, 1))
        assert t == 0

    def test_split_point_within_bounds(self):
        rng = np.random.default_rng(0)
        series = rng.normal(size=50)
        stats = SeriesStats(series)
        seg = Segment.fit(stats, 10, 39)
        t = find_split_point(stats, seg)
        assert 10 <= t < 39


class TestPeakSplitMode:
    def test_unknown_mode_rejected(self):
        stats = SeriesStats(np.arange(10.0))
        with pytest.raises(ValueError):
            find_split_point(stats, Segment.fit(stats, 0, 9), mode="bogus")

    def test_peak_finds_the_valley_on_v_shape(self, vshape):
        _, stats = vshape
        whole = Segment.fit(stats, 0, 39)
        t = find_split_point(stats, whole, mode="peak")
        assert 14 <= t <= 25

    def test_peak_matches_scan_on_unimodal_landscape(self, vshape):
        _, stats = vshape
        whole = Segment.fit(stats, 0, 39)
        assert find_split_point(stats, whole, mode="peak") == find_split_point(
            stats, whole, mode="scan"
        )

    def test_peak_single_point_segment(self):
        stats = SeriesStats(np.arange(5.0))
        assert find_split_point(stats, Segment.fit(stats, 2, 2), mode="peak") is None

    def test_sapla_with_peak_mode(self):
        from repro.core import SAPLA

        series = np.random.default_rng(7).normal(size=120).cumsum()
        rep = SAPLA(n_segments=5, split_mode="peak").transform(series)
        assert rep.n_segments <= 5
        assert rep.length == 120

    def test_sapla_rejects_unknown_split_mode(self):
        from repro.core import SAPLA

        with pytest.raises(ValueError):
            SAPLA(n_segments=4, split_mode="bogus")


class TestSplitMergeDriver:
    def test_idempotent_at_target(self, vshape):
        series, stats = vshape
        segments = split_merge(stats, [Segment.fit(stats, 0, 19), Segment.fit(stats, 20, 39)], 2)
        assert len(segments) == 2
        again = split_merge(stats, segments, 2)
        assert [(s.start, s.end) for s in again] == [(s.start, s.end) for s in segments]

    def test_merge_down_prefers_collinear_pairs(self):
        """Three segments where the first two are collinear: those merge."""
        series = np.concatenate([np.linspace(0, 10, 30), np.full(15, -5.0)])
        stats = SeriesStats(series)
        seeds = [
            Segment.fit(stats, 0, 14),
            Segment.fit(stats, 15, 29),
            Segment.fit(stats, 30, 44),
        ]
        merged = split_merge(stats, seeds, 2)
        assert len(merged) == 2
        assert merged[0].end == 29  # the linear ramp stayed one segment

    def test_split_up_targets_worst_segment(self):
        """One flat + one V segment: the V segment splits first."""
        series = np.concatenate(
            [np.zeros(20), np.linspace(0, 8, 10), np.linspace(8, 0, 10)]
        )
        stats = SeriesStats(series)
        seeds = [Segment.fit(stats, 0, 19), Segment.fit(stats, 20, 39)]
        result = split_merge(stats, seeds, 3)
        assert len(result) == 3
        boundaries = [s.end for s in result]
        assert any(25 <= b <= 33 for b in boundaries)  # split inside the V

    def test_all_unit_segments_handled(self):
        series = np.array([0.0, 1.0, 0.0, 1.0])
        stats = SeriesStats(series)
        seeds = [Segment.fit(stats, i, i) for i in range(4)]
        result = split_merge(stats, seeds, 2)
        assert len(result) == 2
        assert result[0].start == 0 and result[-1].end == 3
