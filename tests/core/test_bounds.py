"""Tests for the segment upper bounds beta_i and get_max (Algorithm 4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    beta_initialization,
    beta_merge,
    beta_segment,
    beta_split,
    exact_max_deviation,
    get_max,
    segment_bound,
)
from repro.core.linefit import LineFit, SeriesStats
from repro.core.segment import Segment

finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)


class TestGetMax:
    def test_pairwise_maximum(self):
        c = [1.0, 2.0, 3.0]
        q = [1.5, 0.0, 3.0]
        t = [1.0, 2.0, 10.0]
        assert get_max([1, 2, 3], c, q, t) == pytest.approx(7.0)

    def test_empty_ids(self):
        assert get_max([], [1.0], [2.0]) == 0.0

    def test_single_track(self):
        assert get_max([1], [5.0]) == 0.0


class TestBetaInitialization:
    def test_perfect_line_gives_zero(self):
        fit = LineFit.from_values(np.array([0.0, 1.0, 2.0]))
        inc = fit.extend_right(3.0)
        beta = beta_initialization(0.0, 2.0, 3.0, fit, inc)
        assert beta == pytest.approx(0.0, abs=1e-9)

    def test_outlier_increases_bound(self):
        fit = LineFit.from_values(np.array([0.0, 1.0, 2.0]))
        beta_small = beta_initialization(0.0, 2.0, 3.5, fit, fit.extend_right(3.5))
        beta_large = beta_initialization(0.0, 2.0, 30.0, fit, fit.extend_right(30.0))
        assert beta_large > beta_small

    def test_running_max_is_respected(self):
        fit = LineFit.from_values(np.array([0.0, 1.0, 2.0]))
        inc = fit.extend_right(3.0)
        assert beta_initialization(0.0, 2.0, 3.0, fit, inc, running_max=4.0) == pytest.approx(
            4.0 * fit.length
        )


class TestBetaMergeSplit:
    def setup_method(self):
        rng = np.random.default_rng(11)
        self.values = rng.normal(size=30)
        self.stats = SeriesStats(self.values)
        self.left = Segment.fit(self.stats, 0, 14)
        self.right = Segment.fit(self.stats, 15, 29)
        self.merged_fit = self.stats.window_fit(0, 29)
        self.whole = Segment.fit(self.stats, 0, 29)

    def test_beta_merge_nonnegative(self):
        assert beta_merge(self.values, self.left, self.right, self.merged_fit) >= 0.0

    def test_beta_merge_bounds_exact_deviation_here(self):
        beta = beta_merge(self.values, self.left, self.right, self.merged_fit)
        eps = exact_max_deviation(self.values, self.whole)
        # Theorem 4.3's general-case claim on this (non-pathological) data
        assert beta >= eps or beta == pytest.approx(eps, rel=0.5)

    def test_beta_split_nonnegative(self):
        assert beta_split(self.values, self.left, self.whole) >= 0.0
        assert beta_split(self.values, self.right, self.whole) >= 0.0


class TestBetaSegmentAndDispatch:
    def test_perfect_fit_gives_zero(self):
        values = np.arange(10.0)
        seg = Segment(0, 9, 1.0, 0.0)
        assert beta_segment(values, seg) == 0.0
        assert exact_max_deviation(values, seg) == 0.0

    def test_exact_max_deviation(self):
        values = np.array([0.0, 1.0, 5.0, 3.0])
        seg = Segment(0, 3, 1.0, 0.0)  # reconstruction 0,1,2,3
        assert exact_max_deviation(values, seg) == pytest.approx(3.0)

    def test_segment_bound_dispatch(self):
        values = np.array([0.0, 1.0, 5.0, 3.0])
        seg = Segment(0, 3, 1.0, 0.0)
        assert segment_bound(values, seg, "exact") == pytest.approx(3.0)
        assert segment_bound(values, seg, "paper") >= 0.0
        with pytest.raises(ValueError):
            segment_bound(values, seg, "bogus")

    @given(st.lists(finite, min_size=2, max_size=40))
    @settings(max_examples=60)
    def test_paper_bound_usually_dominates_on_fitted_segments(self, values):
        """For *least-squares fitted* segments the paper bound scales with the
        endpoint gap times length; it must at least be non-negative and zero
        only when the endpoints sit on the line."""
        values = np.asarray(values)
        stats = SeriesStats(values)
        seg = Segment.fit(stats, 0, len(values) - 1)
        assert beta_segment(values, seg) >= 0.0
