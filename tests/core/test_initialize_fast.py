"""The vectorised initialization must be bit-equal to the reference loop."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SeriesStats, initialize, initialize_fast

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


def endpoints(segments):
    return [(s.start, s.end) for s in segments]


class TestEquivalence:
    @given(
        st.lists(finite, min_size=1, max_size=150),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=120, deadline=None)
    def test_identical_to_reference(self, values, n_segments):
        stats = SeriesStats(np.asarray(values))
        assert endpoints(initialize_fast(stats, n_segments)) == endpoints(
            initialize(stats, n_segments)
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_identical_on_long_series(self, seed):
        rng = np.random.default_rng(seed)
        series = rng.normal(size=2000).cumsum()
        stats = SeriesStats(series)
        assert endpoints(initialize_fast(stats, 8)) == endpoints(initialize(stats, 8))

    def test_identical_on_smooth_series(self):
        series = np.sin(np.linspace(0, 40, 3000))
        stats = SeriesStats(series)
        assert endpoints(initialize_fast(stats, 6)) == endpoints(initialize(stats, 6))

    def test_coefficients_match_too(self):
        rng = np.random.default_rng(3)
        series = rng.normal(size=500).cumsum()
        stats = SeriesStats(series)
        for fast, slow in zip(initialize_fast(stats, 5), initialize(stats, 5)):
            assert fast.a == pytest.approx(slow.a, abs=1e-9)
            assert fast.b == pytest.approx(slow.b, abs=1e-9)


class TestEdgeCases:
    def test_validation(self):
        with pytest.raises(ValueError):
            initialize_fast(SeriesStats(np.arange(5.0)), 0)

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_tiny_series(self, n):
        stats = SeriesStats(np.arange(float(n)))
        segments = initialize_fast(stats, 4)
        assert segments[0].start == 0
        assert segments[-1].end == n - 1

    def test_single_segment_budget(self):
        stats = SeriesStats(np.random.default_rng(0).normal(size=50))
        segments = initialize_fast(stats, 1)
        assert len(segments) == 1
