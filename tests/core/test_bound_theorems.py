"""Statistical checks of the paper's conditional bound theorems.

Theorems 4.2 and 4.3 claim ``beta_i >= epsilon_i`` "in general cases" —
explicitly conditional, with pathological counterexamples acknowledged in
the appendix.  These tests measure how often the bounds hold across many
random segments: they must hold in the overwhelming majority of cases for
the split/merge priorities to be meaningful.
"""

import numpy as np

from repro.core.bounds import beta_merge, beta_segment, exact_max_deviation
from repro.core.linefit import SeriesStats
from repro.core.segment import Segment


def random_segments(trials, seed):
    rng = np.random.default_rng(seed)
    for _ in range(trials):
        n = int(rng.integers(8, 120))
        kind = rng.integers(3)
        if kind == 0:
            series = rng.normal(size=n).cumsum()
        elif kind == 1:
            series = rng.normal(size=n)
        else:
            series = np.sin(np.linspace(0, rng.uniform(2, 20), n)) + rng.normal(
                scale=0.2, size=n
            )
        yield series


class TestTheorem43MergeBound:
    def test_merge_bound_holds_in_general(self):
        """beta after a merge dominates the merged segment's true deviation
        in the overwhelming majority of random cases (Theorem 4.3)."""
        held = total = 0
        for series in random_segments(300, seed=1):
            n = len(series)
            stats = SeriesStats(series)
            mid = n // 2
            left = Segment.fit(stats, 0, mid)
            right = Segment.fit(stats, mid + 1, n - 1)
            merged_fit = stats.window_fit(0, n - 1)
            beta = beta_merge(series, left, right, merged_fit)
            eps = exact_max_deviation(series, Segment.fit(stats, 0, n - 1))
            total += 1
            held += beta >= eps - 1e-9
        assert held / total >= 0.9

    def test_bound_scales_with_length(self):
        """beta includes the (l - 1) factor, so longer segments with the
        same endpoint gaps get proportionally larger bounds."""
        series = np.concatenate([np.zeros(10), [5.0], np.zeros(10)])
        stats = SeriesStats(series)
        short = Segment.fit(stats, 8, 13)
        longer = Segment.fit(stats, 0, 20)
        assert beta_segment(series, longer) >= beta_segment(series, short)


class TestSegmentBoundCoverage:
    def test_segment_bound_vs_exact_statistics(self):
        """The free-standing endpoint bound dominates the exact deviation on
        a clear majority of least-squares-fitted random segments."""
        held = total = 0
        for series in random_segments(300, seed=2):
            stats = SeriesStats(series)
            seg = Segment.fit(stats, 0, len(series) - 1)
            total += 1
            held += beta_segment(series, seg) >= exact_max_deviation(series, seg) - 1e-9
        assert held / total >= 0.6  # conditional, as the paper concedes

    def test_zero_bound_only_when_exact(self):
        """A zero bound must imply (near-)zero true deviation at the probes."""
        for series in random_segments(100, seed=3):
            stats = SeriesStats(series)
            seg = Segment.fit(stats, 0, len(series) - 1)
            if beta_segment(series, seg) == 0.0:
                mid = (seg.start + seg.end) // 2
                for t in (seg.start, mid, seg.end):
                    assert abs(series[t] - seg.value_at(t)) < 1e-9
