"""Unit and property tests for the sufficient-statistics line algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linefit import LineFit, SeriesStats, fit_line

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


def values_arrays(min_size=2, max_size=64):
    return st.lists(finite_floats, min_size=min_size, max_size=max_size).map(np.asarray)


def polyfit_reference(values):
    """Independent reference: numpy.polyfit over local abscissae."""
    t = np.arange(len(values), dtype=float)
    a, b = np.polyfit(t, values, 1)
    return a, b


class TestFromValues:
    def test_two_points(self):
        fit = LineFit.from_values(np.array([7.0, 8.0]))
        assert fit.coefficients == pytest.approx((1.0, 7.0))

    def test_single_point_has_zero_slope(self):
        fit = LineFit.from_values(np.array([5.0]))
        assert fit.coefficients == (0.0, 5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LineFit.from_values(np.array([]))

    def test_paper_example_last_segment(self):
        # last segment of Fig. 5: points 10..19 of the worked series
        values = np.array([4, 3, 3, 5, 4, 9, 2, 9, 10, 10], dtype=float)
        fit = LineFit.from_values(values)
        assert fit.a == pytest.approx(0.781818, abs=1e-6)
        assert fit.b == pytest.approx(2.38182, abs=1e-5)

    @given(values_arrays())
    @settings(max_examples=100)
    def test_matches_polyfit(self, values):
        a, b = LineFit.from_values(values).coefficients
        a_ref, b_ref = polyfit_reference(values)
        assert a == pytest.approx(a_ref, abs=1e-6 * (1 + abs(a_ref)))
        assert b == pytest.approx(b_ref, abs=1e-6 * (1 + abs(b_ref)))


class TestRoundTrip:
    @given(values_arrays())
    def test_coefficient_round_trip(self, values):
        fit = LineFit.from_values(values)
        again = LineFit.from_coefficients(fit.a, fit.b, fit.length)
        assert again.sum_y == pytest.approx(fit.sum_y, abs=1e-6 * (1 + abs(fit.sum_y)))
        assert again.sum_ty == pytest.approx(fit.sum_ty, abs=1e-6 * (1 + abs(fit.sum_ty)))

    def test_from_coefficients_rejects_bad_length(self):
        with pytest.raises(ValueError):
            LineFit.from_coefficients(1.0, 0.0, 0)


class TestIncrementalOps:
    @given(values_arrays(min_size=2, max_size=32), finite_floats)
    def test_extend_right_equals_refit(self, values, new):
        fit = LineFit.from_values(values).extend_right(new)
        ref = LineFit.from_values(np.append(values, new))
        assert fit.coefficients == pytest.approx(ref.coefficients, abs=1e-6)

    @given(values_arrays(min_size=2, max_size=32), finite_floats)
    def test_extend_left_equals_refit(self, values, new):
        fit = LineFit.from_values(values).extend_left(new)
        ref = LineFit.from_values(np.insert(values, 0, new))
        assert fit.coefficients == pytest.approx(ref.coefficients, abs=1e-6)

    @given(values_arrays(min_size=3, max_size=32))
    def test_shrink_right_equals_refit(self, values):
        fit = LineFit.from_values(values).shrink_right(values[-1])
        ref = LineFit.from_values(values[:-1])
        assert fit.coefficients == pytest.approx(ref.coefficients, abs=1e-6)

    @given(values_arrays(min_size=3, max_size=32))
    def test_shrink_left_equals_refit(self, values):
        fit = LineFit.from_values(values).shrink_left(values[0])
        ref = LineFit.from_values(values[1:])
        assert fit.coefficients == pytest.approx(ref.coefficients, abs=1e-6)

    def test_shrink_single_point_rejected(self):
        with pytest.raises(ValueError):
            LineFit.from_values(np.array([1.0])).shrink_right(1.0)
        with pytest.raises(ValueError):
            LineFit.from_values(np.array([1.0])).shrink_left(1.0)

    @given(values_arrays(min_size=2, max_size=24), values_arrays(min_size=2, max_size=24))
    def test_merge_equals_refit(self, left, right):
        merged = LineFit.from_values(left).merge(LineFit.from_values(right))
        ref = LineFit.from_values(np.concatenate([left, right]))
        assert merged.coefficients == pytest.approx(ref.coefficients, abs=1e-5)

    @given(values_arrays(min_size=2, max_size=24), values_arrays(min_size=2, max_size=24))
    def test_split_recovers_both_parts(self, left, right):
        whole = LineFit.from_values(np.concatenate([left, right]))
        left_fit = LineFit.from_values(left)
        right_fit = LineFit.from_values(right)
        rec_right = whole.split_off_right(left_fit)
        rec_left = whole.split_off_left(right_fit)
        assert rec_right.coefficients == pytest.approx(right_fit.coefficients, abs=1e-5)
        assert rec_left.coefficients == pytest.approx(left_fit.coefficients, abs=1e-5)

    def test_split_requires_strictly_shorter_part(self):
        whole = LineFit.from_values(np.arange(4.0))
        with pytest.raises(ValueError):
            whole.split_off_right(whole)
        with pytest.raises(ValueError):
            whole.split_off_left(whole)


class TestReconstruction:
    def test_reconstruct_matches_line(self):
        fit = LineFit.from_coefficients(2.0, 1.0, 4)
        np.testing.assert_allclose(fit.reconstruct(), [1.0, 3.0, 5.0, 7.0])

    def test_value_at(self):
        fit = LineFit.from_coefficients(0.5, 1.0, 3)
        assert fit.value_at(4.0) == pytest.approx(3.0)


class TestSeriesStats:
    def test_window_fit_matches_direct_fit(self):
        rng = np.random.default_rng(7)
        series = rng.normal(size=50)
        stats = SeriesStats(series)
        for start, end in [(0, 4), (3, 20), (10, 10), (0, 49), (40, 49)]:
            got = stats.window_fit(start, end).coefficients
            ref = LineFit.from_values(series[start : end + 1]).coefficients
            assert got == pytest.approx(ref, abs=1e-9)

    def test_out_of_range_window_rejected(self):
        stats = SeriesStats(np.arange(5.0))
        with pytest.raises(IndexError):
            stats.window_fit(3, 5)
        with pytest.raises(IndexError):
            stats.window_fit(-1, 2)

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(ValueError):
            SeriesStats(np.zeros((3, 3)))

    def test_len_and_values(self):
        stats = SeriesStats(np.arange(5.0))
        assert len(stats) == 5
        np.testing.assert_array_equal(stats.values, np.arange(5.0))


def test_fit_line_convenience():
    a, b = fit_line(np.array([0.0, 1.0, 2.0]))
    assert (a, b) == pytest.approx((1.0, 0.0))
