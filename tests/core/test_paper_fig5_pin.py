"""Pin: initialization reproduces the paper's Fig. 5 example *exactly*.

The paper prints the initialized SAPLA representation of the worked series
as {<1,7,1>, <-5,20,3>, <-10,18,5>, <7,8,7>, <-9,10,9>, <0.781818,2.38182,19>}.
Algorithm 4.2 implemented here produces the identical six segments — the
strongest fidelity check available for the initialization stage.
"""

import numpy as np
import pytest

from repro.core import SeriesStats, initialize

PAPER_SERIES = np.array(
    [7, 8, 20, 15, 18, 8, 8, 15, 10, 1, 4, 3, 3, 5, 4, 9, 2, 9, 10, 10], dtype=float
)

PAPER_FIG5 = [
    (1.0, 7.0, 1),
    (-5.0, 20.0, 3),
    (-10.0, 18.0, 5),
    (7.0, 8.0, 7),
    (-9.0, 10.0, 9),
    (0.781818, 2.38182, 19),
]


def test_initialization_matches_paper_fig5():
    segments = initialize(SeriesStats(PAPER_SERIES), 4)
    assert len(segments) == len(PAPER_FIG5)
    for segment, (a, b, r) in zip(segments, PAPER_FIG5):
        assert segment.a == pytest.approx(a, abs=1e-4)
        assert segment.b == pytest.approx(b, abs=1e-4)
        assert segment.end == r
