"""Tests for Segment and LinearSegmentation containers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.linefit import SeriesStats
from repro.core.segment import LinearSegmentation, Segment


def simple_segmentation():
    return LinearSegmentation(
        [
            Segment(0, 3, 1.0, 0.0),
            Segment(4, 6, 0.0, 5.0),
            Segment(7, 9, -1.0, 2.0),
        ]
    )


class TestSegment:
    def test_length_and_right_endpoint(self):
        seg = Segment(2, 5, 1.0, 0.0)
        assert seg.length == 4
        assert seg.right_endpoint == 5

    def test_reversed_bounds_rejected(self):
        with pytest.raises(ValueError):
            Segment(5, 2, 0.0, 0.0)

    def test_value_at_uses_local_coordinates(self):
        seg = Segment(10, 14, 2.0, 1.0)
        assert seg.value_at(10) == pytest.approx(1.0)
        assert seg.value_at(12) == pytest.approx(5.0)

    def test_reconstruct(self):
        seg = Segment(0, 2, 1.0, 3.0)
        np.testing.assert_allclose(seg.reconstruct(), [3.0, 4.0, 5.0])

    def test_restrict_preserves_the_line(self):
        seg = Segment(0, 9, 0.5, 1.0)
        sub = seg.restrict(4, 7)
        for t in range(4, 8):
            assert sub.value_at(t) == pytest.approx(seg.value_at(t))

    def test_restrict_outside_rejected(self):
        seg = Segment(2, 5, 0.0, 0.0)
        with pytest.raises(ValueError):
            seg.restrict(0, 3)
        with pytest.raises(ValueError):
            seg.restrict(3, 9)

    def test_fit_from_stats(self):
        series = np.array([1.0, 2.0, 3.0, 10.0, 10.0])
        seg = Segment.fit(SeriesStats(series), 0, 2)
        assert (seg.a, seg.b) == pytest.approx((1.0, 1.0))

    def test_to_fit_round_trip(self):
        seg = Segment(0, 4, 0.3, -1.0)
        fit = seg.to_fit()
        assert fit.coefficients == pytest.approx((0.3, -1.0))
        assert fit.length == 5


class TestLinearSegmentation:
    def test_basic_properties(self):
        rep = simple_segmentation()
        assert rep.n_segments == 3
        assert rep.length == 10
        assert rep.right_endpoints == [3, 6, 9]
        assert rep.n_coefficients == 9
        assert len(rep) == 3
        assert rep[1].b == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LinearSegmentation([])

    def test_gap_rejected(self):
        with pytest.raises(ValueError):
            LinearSegmentation([Segment(0, 3, 0, 0), Segment(5, 9, 0, 0)])

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            LinearSegmentation([Segment(0, 3, 0, 0), Segment(3, 9, 0, 0)])

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            LinearSegmentation([Segment(1, 9, 0, 0)])

    def test_reconstruct_concatenates_segments(self):
        rep = simple_segmentation()
        recon = rep.reconstruct()
        assert recon.shape == (10,)
        np.testing.assert_allclose(recon[:4], [0.0, 1.0, 2.0, 3.0])
        np.testing.assert_allclose(recon[4:7], [5.0, 5.0, 5.0])

    def test_segment_index_at(self):
        rep = simple_segmentation()
        assert rep.segment_index_at(0) == 0
        assert rep.segment_index_at(3) == 0
        assert rep.segment_index_at(4) == 1
        assert rep.segment_index_at(9) == 2
        with pytest.raises(IndexError):
            rep.segment_index_at(10)

    def test_value_at(self):
        rep = simple_segmentation()
        assert rep.value_at(5) == pytest.approx(5.0)
        assert rep.value_at(8) == pytest.approx(1.0)

    def test_partition_refines_without_changing_reconstruction(self):
        rep = simple_segmentation()
        refined = rep.partition([1, 5, 9])
        assert set(rep.right_endpoints) <= set(refined.right_endpoints)
        np.testing.assert_allclose(refined.reconstruct(), rep.reconstruct())

    def test_partition_rejects_out_of_range_endpoints(self):
        rep = simple_segmentation()
        with pytest.raises(ValueError):
            rep.partition([20])  # beyond the series end
        with pytest.raises(ValueError):
            rep.partition([-1, 9])

    @given(st.lists(st.integers(min_value=0, max_value=8), min_size=0, max_size=8))
    def test_partition_always_covers_union(self, extra):
        rep = simple_segmentation()
        refined = rep.partition(sorted(set(extra) | {9}))
        assert set(refined.right_endpoints) == set(extra) | {9} | set(rep.right_endpoints)
        np.testing.assert_allclose(refined.reconstruct(), rep.reconstruct())
