"""Tests for Increment Area and Reconstruction Area (Definitions 4.1, 4.2)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.areas import area_between_lines, increment_area, reconstruction_area
from repro.core.linefit import LineFit

finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)


def numeric_area(a1, b1, a2, b2, t0, t1, steps=20000):
    t = np.linspace(t0, t1, steps)
    return float(np.trapezoid(np.abs((a1 - a2) * t + (b1 - b2)), t))


class TestAreaBetweenLines:
    def test_parallel_lines(self):
        assert area_between_lines(1.0, 0.0, 1.0, 2.0, 0.0, 3.0) == pytest.approx(6.0)

    def test_identical_lines(self):
        assert area_between_lines(1.0, 1.0, 1.0, 1.0, 0.0, 5.0) == 0.0

    def test_crossing_lines_two_triangles(self):
        # lines y = t and y = 2 - t cross at t = 1 over [0, 2]
        assert area_between_lines(1.0, 0.0, -1.0, 2.0, 0.0, 2.0) == pytest.approx(2.0)

    def test_zero_width_interval(self):
        assert area_between_lines(1.0, 0.0, 0.0, 5.0, 2.0, 2.0) == 0.0

    def test_reversed_interval_rejected(self):
        with pytest.raises(ValueError):
            area_between_lines(0.0, 0.0, 0.0, 0.0, 3.0, 1.0)

    @given(finite, finite, finite, finite, finite, st.floats(min_value=0.01, max_value=100))
    def test_matches_numeric_integration(self, a1, b1, a2, b2, t0, width):
        t1 = t0 + width
        got = area_between_lines(a1, b1, a2, b2, t0, t1)
        ref = numeric_area(a1, b1, a2, b2, t0, t1)
        assert got == pytest.approx(ref, rel=1e-3, abs=1e-3)


class TestIncrementArea:
    def test_collinear_point_gives_zero_area(self):
        fit = LineFit.from_values(np.array([0.0, 1.0, 2.0]))
        inc = fit.extend_right(3.0)  # exactly on the line
        assert increment_area(fit, inc) == pytest.approx(0.0, abs=1e-9)

    def test_off_line_point_gives_positive_area(self):
        fit = LineFit.from_values(np.array([0.0, 1.0, 2.0]))
        inc = fit.extend_right(10.0)
        assert increment_area(fit, inc) > 0.0

    def test_length_mismatch_rejected(self):
        fit = LineFit.from_values(np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            increment_area(fit, fit)

    def test_larger_outlier_gives_larger_area(self):
        fit = LineFit.from_values(np.array([0.0, 1.0, 2.0, 3.0]))
        small = increment_area(fit, fit.extend_right(5.0))
        large = increment_area(fit, fit.extend_right(50.0))
        assert large > small


class TestReconstructionArea:
    def test_collinear_halves_give_zero(self):
        left = LineFit.from_values(np.array([0.0, 1.0]))
        right = LineFit.from_values(np.array([2.0, 3.0]))
        merged = left.merge(right)
        assert reconstruction_area(left, right, merged) == pytest.approx(0.0, abs=1e-9)

    def test_v_shape_gives_positive_area(self):
        left = LineFit.from_values(np.array([2.0, 1.0, 0.0]))
        right = LineFit.from_values(np.array([1.0, 2.0, 3.0]))
        merged = left.merge(right)
        assert reconstruction_area(left, right, merged) > 0.0

    def test_length_mismatch_rejected(self):
        left = LineFit.from_values(np.array([0.0, 1.0]))
        right = LineFit.from_values(np.array([2.0, 3.0]))
        with pytest.raises(ValueError):
            reconstruction_area(left, right, left)

    def test_matches_numeric_integration(self):
        rng = np.random.default_rng(3)
        left_vals = rng.normal(size=6)
        right_vals = rng.normal(size=9)
        left = LineFit.from_values(left_vals)
        right = LineFit.from_values(right_vals)
        merged = left.merge(right)
        am, bm = merged.coefficients
        al, bl = left.coefficients
        ar, br = right.coefficients
        ref = numeric_area(am, bm, al, bl, 0.0, left.length - 1.0)
        ref += numeric_area(am, am * left.length + bm, ar, br, 0.0, right.length - 1.0)
        assert reconstruction_area(left, right, merged) == pytest.approx(ref, rel=1e-3)
