"""Tests for the streaming (online) SAPLA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SeriesStats, StreamingSAPLA
from repro.core.bounds import exact_max_deviation
from repro.core.linefit import LineFit


class TestBasics:
    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            StreamingSAPLA(max_segments=0)

    def test_nan_rejected(self):
        stream = StreamingSAPLA(4)
        with pytest.raises(ValueError):
            stream.append(float("nan"))

    def test_empty_snapshot_rejected(self):
        with pytest.raises(ValueError):
            StreamingSAPLA(4).representation

    def test_single_point(self):
        stream = StreamingSAPLA(4)
        stream.append(3.0)
        rep = stream.representation
        assert rep.length == 1
        assert rep.reconstruct()[0] == pytest.approx(3.0)

    def test_counts(self):
        stream = StreamingSAPLA(4)
        stream.extend([1.0, 2.0, 3.0])
        assert stream.n_points == 3
        assert 1 <= stream.n_segments <= 4

    def test_repr(self):
        stream = StreamingSAPLA(3)
        stream.extend([0.0, 1.0])
        assert "StreamingSAPLA" in repr(stream)


class TestInvariants:
    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=200
        ),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_snapshot_is_always_a_valid_cover(self, values, budget):
        stream = StreamingSAPLA(budget)
        stream.extend(values)
        rep = stream.representation
        assert rep.length == len(values)
        assert rep.n_segments <= budget
        assert np.isfinite(rep.reconstruct()).all()

    def test_memory_stays_bounded(self):
        stream = StreamingSAPLA(max_segments=6)
        rng = np.random.default_rng(0)
        stream.extend(rng.normal(size=5000).cumsum())
        assert stream.n_segments <= 6
        assert len(stream._closed) <= 6

    def test_segments_are_exact_fits(self):
        """Every closed segment's coefficients equal the least-squares fit of
        the points it covers — the exactness the statistics guarantee."""
        rng = np.random.default_rng(1)
        values = rng.normal(size=300).cumsum()
        stream = StreamingSAPLA(5)
        stream.extend(values)
        stats = SeriesStats(values)
        for seg in stream.representation:
            ref = stats.window_fit(seg.start, seg.end).coefficients
            assert (seg.a, seg.b) == pytest.approx(ref, abs=1e-6)


class TestQuality:
    def test_piecewise_linear_stream_recovered(self):
        series = np.concatenate(
            [np.linspace(0, 10, 50), np.linspace(10, -10, 50), np.linspace(-10, 0, 50)]
        )
        stream = StreamingSAPLA(max_segments=4)
        stream.extend(series)
        rep = stream.representation
        dev = max(exact_max_deviation(series, seg) for seg in rep)
        assert dev < 1.0

    def test_comparable_to_offline_on_random_walk(self):
        from repro.core import SAPLA

        rng = np.random.default_rng(2)
        series = rng.normal(size=400).cumsum()
        online = StreamingSAPLA(6)
        online.extend(series)
        offline = SAPLA(n_segments=6).transform(series)
        dev_online = max(exact_max_deviation(series, s) for s in online.representation)
        dev_offline = max(exact_max_deviation(series, s) for s in offline)
        assert dev_online <= dev_offline * 4 + 1.0  # online pays a bounded premium

    def test_budget_one_is_single_fit(self):
        values = np.arange(50.0)
        stream = StreamingSAPLA(1)
        stream.extend(values)
        rep = stream.representation
        assert rep.n_segments == 1
        ref = LineFit.from_values(values).coefficients
        assert (rep[0].a, rep[0].b) == pytest.approx(ref)
