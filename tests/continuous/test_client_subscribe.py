"""``Client.subscribe`` through both backends: same deltas, same handle.

The facade promise: a standing query registered through a
:class:`LocalClient` or a :class:`TcpClient` yields the same typed
:class:`Notification` stream from the same :class:`Subscription` handle —
blocking ``next`` with timeouts, plain iteration, idempotent ``close``.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.client import KnnRequest, connect
from repro.continuous import KnnWatch, Notification, RangeWatch
from repro.engine import QueryOptions
from repro.index import SeriesDatabase
from repro.reduction import PAA
from repro.serving import ReproServer, ServerConfig

LENGTH = 32


def make_db(count=20, seed=0):
    rng = np.random.default_rng(seed)
    db = SeriesDatabase(PAA(8), index=None)
    db.ingest(rng.normal(size=(count, LENGTH)).cumsum(axis=1))
    return db


class _ServerThread:
    """Host a ReproServer on a background event loop for the sync client."""

    def __init__(self, engine, config=None):
        self.server = ReproServer(engine, config or ServerConfig())
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        started.wait(timeout=10)

    @property
    def port(self):
        return self.server.port

    def stop(self):
        async def shutdown():
            await self.server.stop()
            self.loop.stop()

        asyncio.run_coroutine_threadsafe(shutdown(), self.loop)
        self.thread.join(timeout=10)
        self.loop.close()


class TestLocalSubscribe:
    def test_subscription_streams_typed_deltas(self):
        db = make_db()
        client = connect(db)
        query = np.asarray(db.data)[0] + 0.01
        subscription = client.subscribe(KnnWatch(query=query, k=3))
        initial = subscription.next(timeout=2.0)
        assert isinstance(initial, Notification)
        assert initial.full and initial.seq == 1

        gid = client.insert(query + 0.001)
        delta = subscription.next(timeout=2.0)
        assert gid in delta.added
        reference = db.knn_batch(query[None, :], QueryOptions(k=3)).results[0]
        assert list(delta.ids) == list(reference.ids)
        assert list(delta.distances) == list(reference.distances)

        with pytest.raises(TimeoutError):
            subscription.next(timeout=0.05)  # nothing pending

        subscription.close()
        subscription.close()  # idempotent
        with pytest.raises(StopIteration):
            subscription.next()
        assert client.stats()["server"]["subscriptions"] == 0

    def test_iteration_and_context_manager(self):
        db = make_db()
        client = connect(db)
        query = np.asarray(db.data)[1] + 0.01
        with client.subscribe(RangeWatch(query=query, radius=1.0)) as subscription:
            client.insert(query + 0.002)
            notes = [note for _, note in zip(range(2), subscription)]
        assert notes[0].full and not notes[1].full
        assert client.stats()["server"]["subscriptions"] == 0


class TestTcpSubscribe:
    def test_subscription_over_the_wire_matches_local(self):
        db = make_db()
        reference_db = make_db()
        host = _ServerThread(db)
        try:
            client = connect(f"tcp://127.0.0.1:{host.port}")
            try:
                query = np.asarray(reference_db.data)[2] + 0.01
                subscription = client.subscribe(KnnWatch(query=query, k=4))
                assert subscription.id.startswith("sub-")
                initial = subscription.next(timeout=5.0)
                assert initial.full and initial.seq == 1

                # a one-shot query mid-subscription: pushes keep routing
                results = client.knn(KnnRequest(queries=query[None, :], k=4))
                gid = client.insert(query + 0.001)
                delta = subscription.next(timeout=5.0)
                assert gid in delta.added

                reference_db.insert(query + 0.001)
                reference = reference_db.knn_batch(
                    query[None, :], QueryOptions(k=4)
                ).results[0]
                assert list(delta.ids) == list(reference.ids)
                assert list(delta.distances) == list(reference.distances)
                assert list(results[0].ids) == list(initial.ids)

                with pytest.raises(TimeoutError):
                    subscription.next(timeout=0.1)

                assert client.stats()["server"]["subscriptions"] == 1
                subscription.close()
                assert client.stats()["server"]["subscriptions"] == 0
                with pytest.raises(StopIteration):
                    subscription.next()
            finally:
                client.close()
        finally:
            host.stop()

    def test_deleting_a_frontier_member_pushes_a_full_rerun(self):
        db = make_db()
        host = _ServerThread(db)
        try:
            client = connect(f"tcp://127.0.0.1:{host.port}")
            try:
                query = np.asarray(db.data)[5] + 0.01
                subscription = client.subscribe(KnnWatch(query=query, k=3))
                initial = subscription.next(timeout=5.0)
                victim = initial.ids[0]
                assert client.delete(victim) is True
                note = subscription.next(timeout=5.0)
                assert note.full and victim in note.removed
                subscription.close()
            finally:
                client.close()
        finally:
            host.stop()
