"""Standing-query vocabulary: validation + exact payload round-trips.

The same ``to_payload`` dicts travel the TCP wire and the durable
subscription log, so the round-trip has to be lossless — including the
float values, which must come back bit-identical.
"""

import numpy as np
import pytest

from repro.continuous import (
    AnomalyWatch,
    KnnWatch,
    Notification,
    RangeWatch,
    SubsequenceWatch,
    query_from_payload,
)


class TestValidation:
    def test_knn_rejects_bad_shapes_and_k(self):
        with pytest.raises(ValueError):
            KnnWatch(query=np.zeros((2, 4)), k=1)
        with pytest.raises(ValueError):
            KnnWatch(query=np.zeros(4), k=0)

    def test_range_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            RangeWatch(query=np.zeros(4), radius=-1.0)

    def test_subsequence_rejects_short_pattern_and_bad_stride(self):
        with pytest.raises(ValueError):
            SubsequenceWatch(pattern=np.zeros(1), radius=1.0)
        with pytest.raises(ValueError):
            SubsequenceWatch(pattern=np.zeros(4), radius=1.0, stride=0)

    def test_anomaly_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            AnomalyWatch(window=1, threshold=1.0)
        with pytest.raises(ValueError):
            AnomalyWatch(window=8, threshold=-0.1)
        with pytest.raises(ValueError):
            AnomalyWatch(window=8, threshold=1.0, history=0)


class TestPayloadRoundTrip:
    def test_each_kind_round_trips_exactly(self):
        rng = np.random.default_rng(3)
        watches = [
            KnnWatch(query=rng.normal(size=16), k=5),
            RangeWatch(query=rng.normal(size=16), radius=2.25),
            SubsequenceWatch(pattern=rng.normal(size=8), radius=0.75, stride=2),
            AnomalyWatch(window=8, threshold=1.5, stride=2, max_segments=4, history=32),
        ]
        for watch in watches:
            rebuilt = query_from_payload(watch.to_payload())
            assert type(rebuilt) is type(watch)
            assert rebuilt.to_payload() == watch.to_payload()

    def test_array_fields_come_back_bit_identical(self):
        query = np.random.default_rng(5).normal(size=12)
        rebuilt = query_from_payload(KnnWatch(query=query, k=2).to_payload())
        assert np.array_equal(rebuilt.query, query)

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown standing-query kind"):
            query_from_payload({"kind": "percentile"})


class TestNotification:
    def test_payload_round_trip(self):
        note = Notification(
            subscription_id="sub-000003",
            seq=7,
            kind="knn",
            generation=12,
            ids=(4, 9),
            distances=(0.125, 1.5),
            added=(9,),
            removed=(2,),
            full=False,
        )
        assert Notification.from_payload(note.to_payload()) == note

    def test_sharded_generation_survives_as_tuple(self):
        note = Notification(
            subscription_id="sub-000001", seq=1, kind="range", generation=(3, 4)
        )
        payload = note.to_payload()
        assert payload["generation"] == [3, 4]  # JSON-safe on the wire
        assert Notification.from_payload(payload).generation == (3, 4)

    def test_matches_and_alert_round_trip(self):
        note = Notification(
            subscription_id="sub-000002",
            seq=2,
            kind="subsequence",
            matches=((11, 4, 0.5), (12, 0, 0.25)),
        )
        assert Notification.from_payload(note.to_payload()).matches == note.matches
        alert = Notification(
            subscription_id="sub-000004",
            seq=3,
            kind="anomaly",
            alert={"start": 40, "score": 2.5},
        )
        assert Notification.from_payload(alert.to_payload()).alert == alert.alert
