"""Property: incremental frontiers are bit-identical to scratch re-runs.

Mirrors ``tests/property/test_mutate_query_equivalence.py`` for the
continuous layer: after any interleaving of inserts and deletes routed
through a :class:`ContinuousEvaluator`, the last notification a k-NN or
range subscription delivered must carry exactly — ids *and* float
distances — what re-running the query one-shot on the mutated target
returns.  The grid covers both reducer families (PAA aligned, SAPLA under
:class:`DistanceMode.LB` — adaptive grids need the lower-bound mode for
exactness), the linear-scan and DBCH index paths, and sharded layouts.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continuous import ContinuousEvaluator, KnnWatch, RangeWatch
from repro.engine import QueryOptions
from repro.index import SeriesDatabase
from repro.kinds import DistanceMode, IndexKind
from repro.reduction import PAA, SAPLAReducer
from repro.serving import ShardedEngine

LENGTH = 32
SEED_ROWS = 12
K = 4


def _paa_db(index):
    return SeriesDatabase(PAA(n_coefficients=8), index=index)


def _sapla_db(index):
    return SeriesDatabase(
        SAPLAReducer(8), index=index, distance_mode=DistanceMode.LB
    )


CONFIGS = [
    ("paa-scan", lambda: _paa_db(None)),
    ("paa-dbch", lambda: _paa_db(IndexKind.DBCH)),
    ("sapla-lb-dbch", lambda: _sapla_db(IndexKind.DBCH)),
    ("paa-sharded2", lambda: ShardedEngine.from_database(_seeded(_paa_db(None)), 2)),
    (
        "sapla-lb-sharded3",
        lambda: ShardedEngine.from_database(_seeded(_sapla_db(None)), 3),
    ),
]


def _seeded(db):
    rng = np.random.default_rng(0)
    db.ingest(rng.normal(size=(SEED_ROWS, LENGTH)).cumsum(axis=1))
    return db


def build_target(factory):
    target = factory()
    if not isinstance(target, ShardedEngine):
        target = _seeded(target)
    return target


op_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(min_value=0, max_value=10_000)),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=10_000)),
    ),
    min_size=0,
    max_size=10,
)


def apply_ops(evaluator, ops, query):
    """Route the op sequence through the evaluator; returns live gids."""
    live = set(range(SEED_ROWS))
    for kind, argument in ops:
        if kind == "insert":
            rng = np.random.default_rng(argument)
            if argument % 2 == 0:  # half the inserts churn the frontier
                row = query + rng.normal(scale=0.05, size=LENGTH)
            else:
                row = rng.normal(size=LENGTH).cumsum()
            live.add(evaluator.insert(row))
        elif live:
            victim = sorted(live)[argument % len(live)]
            if evaluator.delete(victim):
                live.discard(victim)
    return live


@settings(max_examples=10, deadline=None)
@given(ops=op_strategy, data=st.data())
def test_incremental_equals_scratch_for_knn_and_range(ops, data):
    name, factory = data.draw(st.sampled_from(CONFIGS), label="config")
    target = build_target(factory)
    rng = np.random.default_rng(1)
    query = rng.normal(size=LENGTH).cumsum()
    radius = float(
        target.knn_batch(query[None, :], QueryOptions(k=3)).results[0].distances[-1]
    ) + 0.3

    evaluator = ContinuousEvaluator(target)
    knn_notes, range_notes = [], []
    evaluator.subscribe(KnnWatch(query=query, k=K), sink=knn_notes.append)
    evaluator.subscribe(
        RangeWatch(query=query, radius=radius), sink=range_notes.append
    )
    live = apply_ops(evaluator, ops, query)
    assert live, f"[{name}] op sequence emptied the collection"

    # a consumer's state is simply the last notification: every snapshot
    # carries the complete current frontier
    knn_last, range_last = knn_notes[-1], range_notes[-1]
    scratch_knn = target.knn_batch(query[None, :], QueryOptions(k=K)).results[0]
    assert list(knn_last.ids) == list(scratch_knn.ids), name
    assert list(knn_last.distances) == list(scratch_knn.distances), name

    scratch_range = target.range_query(query, radius)
    assert list(range_last.ids) == list(scratch_range.ids), name
    assert list(range_last.distances) == list(scratch_range.distances), name

    # seqs are gapless and strictly increasing per subscription
    for notes in (knn_notes, range_notes):
        assert [n.seq for n in notes] == list(range(1, len(notes) + 1)), name
