"""SIGKILL mid-notify: recovery re-emits exactly the unconfirmed deltas.

The child opens a durable database home plus a subscription registry with
``FsyncPolicy.ALWAYS``, registers a k-NN watch and an anomaly watch, and
streams inserts, printing every delivered notification as a JSON line
*before* the registry acks it (the sink-then-ack order under test).  The
parent SIGKILLs it mid-stream — the kill can land between a delivery and
its ack, between the WAL fsync and the delivery, or mid-append — then
reopens everything, resyncs, and plays consumer: notifications are
de-duplicated by ``seq``.  After the merge

* no alert or frontier is lost — the consumer's final state equals a
  scratch run on the recovered database, and
* no duplicate differs — any re-delivered seq carries the same content
  as the original, so seq-deduplication is safe.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.continuous import (
    ContinuousEvaluator,
    OnlineDiscordScorer,
    SubscriptionRegistry,
)
from repro.engine import QueryOptions
from repro.index import SeriesDatabase
from repro.io import open_database
from repro.reduction import PAA

LENGTH = 32
SEED_ROWS = 8
K = 3
WINDOW = 8
THRESHOLD = 1.0
CHILD_SEED = 1234
TOTAL_INSERTS = 60

CHILD_SCRIPT = textwrap.dedent(
    """
    import json
    import sys

    import numpy as np

    from repro.continuous import (
        AnomalyWatch,
        ContinuousEvaluator,
        KnnWatch,
        SubscriptionRegistry,
    )
    from repro.io import open_database
    from repro.lifecycle import DurabilityOptions, FsyncPolicy

    home, total = sys.argv[1], int(sys.argv[2])
    always = DurabilityOptions(fsync=FsyncPolicy.ALWAYS)
    db = open_database(home, durability=always)
    registry = SubscriptionRegistry(home + "/subscriptions.log", durability=always)
    evaluator = ContinuousEvaluator(db, registry)

    def sink(note):
        print(json.dumps(note.to_payload()), flush=True)

    rng = np.random.default_rng({seed})
    query = np.asarray(db.data)[0] + 0.01
    evaluator.subscribe(KnnWatch(query=query, k={k}), sink=sink)
    evaluator.subscribe(
        AnomalyWatch(window={window}, threshold={threshold}, stride=2, history=48),
        sink=sink,
    )
    for i in range(total):
        if i % 3 == 0:
            row = query + rng.normal(scale=0.05, size={length})
        elif i % 7 == 5:
            row = np.sin(np.linspace(0, 6, {length})) + 6.0  # discord material
        else:
            row = rng.normal(size={length}).cumsum()
        evaluator.insert(row)
    """
).format(
    seed=CHILD_SEED, k=K, window=WINDOW, threshold=THRESHOLD, length=LENGTH
)


def seed_home(tmp_path):
    rng = np.random.default_rng(0)
    db = SeriesDatabase(PAA(8), index=None)
    db.ingest(rng.normal(size=(SEED_ROWS, LENGTH)).cumsum(axis=1))
    home = tmp_path / "home"
    db.save(home)
    return home


def run_child_and_kill_after(home, notes_before_kill):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT, str(home), str(TOTAL_INSERTS)],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    delivered = []
    try:
        # acks are written only after the sink (the print) returns, so the
        # pipe holds everything the log can have acked: kill mid-stream,
        # then drain to EOF — a torn final line is a delivery the crash
        # interrupted before its ack, exactly what resync must re-emit
        for line in child.stdout:
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                break  # torn mid-write by the kill
            delivered.append(payload)
            if len(delivered) == notes_before_kill and child.poll() is None:
                os.kill(child.pid, signal.SIGKILL)
    finally:
        child.stdout.close()
        child.wait()
    return delivered


@pytest.mark.parametrize("kill_after", [2, 7, 19])
def test_sigkill_mid_notify_loses_and_duplicates_nothing(tmp_path, kill_after):
    home = seed_home(tmp_path)
    delivered = run_child_and_kill_after(home, kill_after)
    assert len(delivered) >= kill_after

    # consumer state before the crash: latest payload per (sid, seq)
    seen = {}
    for payload in delivered:
        key = (payload["subscription_id"], payload["seq"])
        assert key not in seen, "the live stream already duplicated a seq"
        seen[key] = payload

    # recover: WAL replay for the data, log replay for the subscriptions
    db = open_database(home)
    registry = SubscriptionRegistry(home / "subscriptions.log")
    assert len(registry) == 2
    evaluator = ContinuousEvaluator(db, registry)
    resynced = []
    for sid in registry.subscriptions():
        evaluator.attach_sink(sid, lambda note: resynced.append(note))
    emitted = evaluator.resync()
    assert [n.to_payload() for n in emitted] == [n.to_payload() for n in resynced]

    # merge with seq-dedupe: a re-delivered seq must repeat the original
    for note in emitted:
        payload = note.to_payload()
        key = (payload["subscription_id"], payload["seq"])
        if key in seen:
            original = seen[key]
            assert payload["ids"] == original["ids"]
            assert payload["distances"] == original["distances"]
            assert payload["alert"] == original["alert"]
        else:
            seen[key] = payload

    by_sid = {}
    for (sid, seq), payload in seen.items():
        by_sid.setdefault(sid, {})[seq] = payload

    states = registry.subscriptions()
    knn_sid = next(s for s, st in states.items() if st.query.kind == "knn")
    anomaly_sid = next(s for s, st in states.items() if st.query.kind == "anomaly")

    # nothing lost: the consumer's newest frontier is the scratch answer
    knn_notes = by_sid[knn_sid]
    final = knn_notes[max(knn_notes)]
    query = states[knn_sid].query.query
    scratch = db.knn_batch(query[None, :], QueryOptions(k=K)).results[0]
    assert final["ids"] == [int(g) for g in scratch.ids]
    assert final["distances"] == [float(d) for d in scratch.distances]

    # and the k-NN seqs the consumer holds are gapless from 1
    assert sorted(knn_notes) == list(range(1, max(knn_notes) + 1))

    # anomaly watch: the merged alert stream is exactly what scoring the
    # recovered rows from the subscription cursor reproduces
    watch = states[anomaly_sid].query
    scorer = OnlineDiscordScorer(
        window=watch.window,
        threshold=watch.threshold,
        stride=watch.stride,
        max_segments=watch.max_segments,
        history=watch.history,
    )
    expected = []
    data = np.asarray(db.data)
    for gid in range(states[anomaly_sid].from_row, data.shape[0]):
        expected.extend(scorer.extend(data[gid]))
    merged_alerts = [
        by_sid[anomaly_sid][seq]["alert"]
        for seq in sorted(by_sid[anomaly_sid])
        if by_sid[anomaly_sid][seq]["alert"] is not None
    ]
    assert merged_alerts == [a.to_payload() for a in expected]
    evaluator.close()
