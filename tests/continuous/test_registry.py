"""Durable subscription registry: replay, torn tails, ack semantics.

Mirrors the WAL tests in ``tests/lifecycle``: the log must reopen to
exactly the state it acknowledged, tolerate a record cut mid-write, and
refuse files that are not subscription logs.
"""

import numpy as np
import pytest

from repro.continuous import (
    KnnWatch,
    RangeWatch,
    SubscriptionRegistry,
)
from repro.continuous.registry import MAGIC, _PREFIX
from repro.lifecycle import DurabilityOptions, FsyncPolicy


def watch(seed=0, k=3):
    return KnnWatch(query=np.random.default_rng(seed).normal(size=8), k=k)


class TestInMemory:
    def test_subscribe_ack_unsubscribe_round_trip(self):
        registry = SubscriptionRegistry()
        sid = registry.subscribe(watch(), from_row=5)
        assert sid == "sub-000001"
        assert len(registry) == 1
        sub = registry.get(sid)
        assert sub.from_row == 5 and sub.seq == 0

        registry.ack(sid, 3, 17, {"ids": [1, 2], "distances": [0.5, 1.5]})
        sub = registry.get(sid)
        assert sub.seq == 3 and sub.generation == 17
        assert sub.state == {"ids": [1, 2], "distances": [0.5, 1.5]}

        assert registry.unsubscribe(sid) is True
        assert registry.unsubscribe(sid) is False
        assert registry.get(sid) is None and len(registry) == 0

    def test_duplicate_sid_is_rejected(self):
        registry = SubscriptionRegistry()
        registry.subscribe(watch(), sid="mine")
        with pytest.raises(ValueError, match="already registered"):
            registry.subscribe(watch(1), sid="mine")

    def test_ack_for_unknown_sid_is_a_no_op(self):
        registry = SubscriptionRegistry()
        registry.ack("sub-999999", 1, None, {})  # racing unsubscribe
        assert len(registry) == 0

    def test_path_is_none(self):
        assert SubscriptionRegistry().path is None


class TestDurableReplay:
    def test_reopen_restores_subscriptions_and_acked_state(self, tmp_path):
        log = tmp_path / "subscriptions.log"
        registry = SubscriptionRegistry(log)
        knn_sid = registry.subscribe(watch(seed=1, k=4), from_row=3)
        range_sid = registry.subscribe(
            RangeWatch(query=np.arange(6, dtype=float), radius=2.5)
        )
        gone_sid = registry.subscribe(watch(seed=2))
        registry.ack(knn_sid, 5, (7, 8), {"ids": [10], "distances": [0.25]})
        registry.unsubscribe(gone_sid)
        registry.close()

        reopened = SubscriptionRegistry(log)
        assert sorted(reopened.subscriptions()) == sorted([knn_sid, range_sid])
        sub = reopened.get(knn_sid)
        assert sub.seq == 5
        assert sub.generation == (7, 8)  # tuple restored from the JSON list
        assert sub.state == {"ids": [10], "distances": [0.25]}
        assert sub.from_row == 3
        assert sub.query.to_payload() == watch(seed=1, k=4).to_payload()
        assert reopened.get(range_sid).query.radius == 2.5
        # the counter resumed: a new subscription never reuses a burned id
        fresh = reopened.subscribe(watch(seed=3))
        assert fresh not in {knn_sid, range_sid, gone_sid}
        reopened.close()

    def test_torn_tail_is_dropped_and_truncated(self, tmp_path):
        log = tmp_path / "subscriptions.log"
        registry = SubscriptionRegistry(
            log, durability=DurabilityOptions(fsync=FsyncPolicy.ALWAYS)
        )
        sid = registry.subscribe(watch(), from_row=2)
        registry.ack(sid, 1, 9, {"ids": [], "distances": []})
        registry.close()
        intact = log.read_bytes()

        # a crash mid-append: a length/crc prefix with only half its payload
        log.write_bytes(intact + _PREFIX.pack(64, 123456789) + b"torn")
        reopened = SubscriptionRegistry(log)
        sub = reopened.get(sid)
        assert sub is not None and sub.seq == 1 and sub.generation == 9
        # reopening truncated the garbage, so new appends replay cleanly
        assert log.read_bytes() == intact
        reopened.ack(sid, 2, 10, {"ids": [4], "distances": [1.0]})
        reopened.close()
        final = SubscriptionRegistry(log)
        assert final.get(sid).seq == 2
        final.close()

    def test_corrupt_length_prefix_stops_replay(self, tmp_path):
        log = tmp_path / "subscriptions.log"
        registry = SubscriptionRegistry(log)
        sid = registry.subscribe(watch())
        registry.close()
        intact = log.read_bytes()
        log.write_bytes(intact + _PREFIX.pack(1 << 30, 0))  # claims a gigabyte
        reopened = SubscriptionRegistry(log)
        assert reopened.get(sid) is not None
        reopened.close()

    def test_bad_magic_is_rejected(self, tmp_path):
        bogus = tmp_path / "subscriptions.log"
        bogus.write_bytes(b"not-a-subscription-log")
        with pytest.raises(ValueError, match="bad magic"):
            SubscriptionRegistry(bogus)

    def test_magic_prefix_is_written(self, tmp_path):
        log = tmp_path / "subscriptions.log"
        SubscriptionRegistry(log).close()
        assert log.read_bytes() == MAGIC
