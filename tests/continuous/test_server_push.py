"""Loopback push frames: subscribe acks, notify routing, teardown.

Runs one :class:`ReproServer` per test on an ephemeral loopback port and
speaks raw length-prefixed frames, because the interleaving matters:
``notify`` push frames carry no ``id`` and may land before or after the
response frame of the request that caused them, so the client-side
contract — route by ``op`` first — is exercised exactly as written.
"""

import asyncio

import numpy as np
import pytest

from repro.continuous import KnnWatch
from repro.engine import QueryOptions
from repro.index import SeriesDatabase
from repro.reduction import PAA
from repro.serving import (
    ReproServer,
    ServerConfig,
    ShardedEngine,
    encode_frame,
    read_frame,
)
from repro.serving.server import _Channel

LENGTH = 32


def make_db(count=20, seed=0):
    rng = np.random.default_rng(seed)
    db = SeriesDatabase(PAA(8), index=None)
    db.ingest(rng.normal(size=(count, LENGTH)).cumsum(axis=1))
    return db


def run_session(engine, client, config=None):
    async def main():
        server = ReproServer(engine, config or ServerConfig())
        await server.start()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            try:
                return await client(reader, writer, server)
            finally:
                writer.close()
                await writer.wait_closed()
        finally:
            await server.stop()

    return asyncio.run(main())


async def send(writer, frame):
    writer.write(encode_frame(frame))
    await writer.drain()


async def collect_until(reader, pred, limit=50):
    """Read frames until ``pred`` matches one; returns (frames, match)."""
    frames = []
    for _ in range(limit):
        frame = await read_frame(reader)
        frames.append(frame)
        if pred(frame):
            return frames, frame
    raise AssertionError(f"no matching frame in {limit}: {frames}")


def is_notify(frame):
    return frame.get("op") == "notify"


def is_reply(rid):
    return lambda frame: frame.get("id") == rid and frame.get("op") != "notify"


class TestSubscribeLifecycle:
    def test_subscribe_acks_and_pushes_the_initial_snapshot(self):
        db = make_db()
        query = np.asarray(db.data)[0] + 0.01

        async def client(reader, writer, server):
            await send(
                writer,
                {
                    "id": 1,
                    "op": "subscribe",
                    "query": KnnWatch(query=query, k=4).to_payload(),
                },
            )
            frames, ack = await collect_until(reader, is_reply(1))
            _, push = (
                ([], next(f for f in frames if is_notify(f)))
                if any(is_notify(f) for f in frames)
                else await collect_until(reader, is_notify)
            )
            return ack, push

        ack, push = run_session(db, client)
        assert ack["ok"] and ack["subscription_id"].startswith("sub-")
        assert "id" not in push  # pushes are unsolicited: routed by op
        assert push["ok"] and push["subscription_id"] == ack["subscription_id"]
        note = push["notification"]
        reference = db.knn_batch(query[None, :], QueryOptions(k=4)).results[0]
        assert note["full"] and note["seq"] == 1
        assert note["ids"] == [int(g) for g in reference.ids]
        assert note["distances"] == [float(d) for d in reference.distances]

    def test_insert_delta_and_delete_full_rerun_are_pushed(self):
        db = make_db()
        query = np.asarray(db.data)[3] + 0.01

        async def client(reader, writer, server):
            await send(
                writer,
                {
                    "id": 1,
                    "op": "subscribe",
                    "query": KnnWatch(query=query, k=3).to_payload(),
                },
            )
            await collect_until(reader, is_reply(1))
            await collect_until(reader, is_notify)

            await send(
                writer, {"id": 2, "op": "insert", "series": (query + 0.001).tolist()}
            )
            frames, reply = await collect_until(reader, is_reply(2))
            pushes = [f for f in frames if is_notify(f)]
            if not pushes:
                _, push = await collect_until(reader, is_notify)
            else:
                push = pushes[0]
            gid = reply["series_id"]

            victim = push["notification"]["ids"][0]
            await send(writer, {"id": 3, "op": "delete", "series_id": victim})
            frames, _ = await collect_until(reader, is_reply(3))
            pushes = [f for f in frames if is_notify(f)]
            if not pushes:
                _, full_push = await collect_until(reader, is_notify)
            else:
                full_push = pushes[0]
            return gid, push["notification"], victim, full_push["notification"]

        gid, delta, victim, full = run_session(db, client)
        assert gid in delta["added"] and not delta["full"]
        assert full["full"] and victim in full["removed"]
        reference = db.knn_batch(query[None, :], QueryOptions(k=3)).results[0]
        assert full["ids"] == [int(g) for g in reference.ids]
        assert full["distances"] == [float(d) for d in reference.distances]

    def test_unsubscribe_stops_pushes(self):
        db = make_db()
        query = np.asarray(db.data)[2] + 0.01

        async def client(reader, writer, server):
            await send(
                writer,
                {
                    "id": 1,
                    "op": "subscribe",
                    "query": KnnWatch(query=query, k=3).to_payload(),
                },
            )
            _, ack = await collect_until(reader, is_reply(1))
            await collect_until(reader, is_notify)
            sid = ack["subscription_id"]

            await send(
                writer, {"id": 2, "op": "unsubscribe", "subscription_id": sid}
            )
            _, reply = await collect_until(reader, is_reply(2))
            assert reply["unsubscribed"] is True

            await send(
                writer, {"id": 3, "op": "insert", "series": (query + 0.001).tolist()}
            )
            frames, _ = await collect_until(reader, is_reply(3))
            assert not any(is_notify(f) for f in frames)
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(read_frame(reader), timeout=0.3)
            return len(server.continuous.registry)

        assert run_session(db, client) == 0

    def test_stats_reports_live_subscriptions(self):
        db = make_db()
        query = np.asarray(db.data)[1] + 0.01

        async def client(reader, writer, server):
            await send(
                writer,
                {
                    "id": 1,
                    "op": "subscribe",
                    "query": KnnWatch(query=query, k=2).to_payload(),
                },
            )
            await collect_until(reader, is_reply(1))
            await send(writer, {"id": 2, "op": "stats"})
            _, stats = await collect_until(reader, is_reply(2))
            return stats

        stats = run_session(db, client)
        assert stats["server"]["subscriptions"] == 1

    def test_bad_standing_query_is_a_clean_error(self):
        async def client(reader, writer, server):
            await send(
                writer, {"id": 1, "op": "subscribe", "query": {"kind": "bogus"}}
            )
            _, reply = await collect_until(reader, is_reply(1))
            return reply

        reply = run_session(make_db(), client)
        assert reply["ok"] is False and reply["code"] == "bad_request"


class TestShardedPushes:
    def test_pushes_are_bit_identical_to_the_unsharded_engine(self):
        reference_db = make_db()
        sharded = ShardedEngine.from_database(make_db(), 2)
        query = np.asarray(reference_db.data)[4] + 0.01

        async def client(reader, writer, server):
            await send(
                writer,
                {
                    "id": 1,
                    "op": "subscribe",
                    "query": KnnWatch(query=query, k=4).to_payload(),
                },
            )
            await collect_until(reader, is_reply(1))
            _, push = await collect_until(reader, is_notify)
            return push["notification"]

        note = run_session(sharded, client)
        assert isinstance(note["generation"], list)  # sharded: one per shard
        reference = reference_db.knn_batch(query[None, :], QueryOptions(k=4)).results[0]
        assert note["ids"] == [int(g) for g in reference.ids]
        assert note["distances"] == [float(d) for d in reference.distances]


class TestBackpressure:
    def test_overflowing_the_notify_queue_marks_the_channel_lagged(self):
        db = make_db()
        server = ReproServer(db, ServerConfig(notify_queue=1))

        async def scenario():
            channel = _Channel(asyncio.Queue(1))
            server._enqueue(channel, object())
            assert not channel.lagged
            server._enqueue(channel, object())  # queue full: dropped
            assert channel.lagged

        asyncio.run(scenario())
