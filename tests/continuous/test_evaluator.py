"""Incremental evaluation per watch kind + the delivery-order guarantee.

Each kind's delta path must leave the maintained frontier bit-identical
to the one-shot engine answer on the mutated database; delivery must sink
before it acks, so a failed sink never advances the acked seq.
"""

import numpy as np
import pytest

from repro.continuous import (
    AnomalyWatch,
    ContinuousEvaluator,
    KnnWatch,
    OnlineDiscordScorer,
    RangeWatch,
    SubsequenceWatch,
)
from repro.distance import euclidean
from repro.engine import QueryOptions
from repro.index import SeriesDatabase
from repro.reduction import PAA

LENGTH = 32


def make_db(count=16, seed=0):
    rng = np.random.default_rng(seed)
    db = SeriesDatabase(PAA(8), index=None)
    db.ingest(rng.normal(size=(count, LENGTH)).cumsum(axis=1))
    return db


def collect(evaluator, query):
    notes = []
    sid = evaluator.subscribe(query, sink=notes.append)
    return sid, notes


class TestKnnWatch:
    def test_initial_snapshot_matches_scratch(self):
        db = make_db()
        evaluator = ContinuousEvaluator(db)
        query = np.asarray(db.data)[0] + 0.01
        sid, notes = collect(evaluator, KnnWatch(query=query, k=4))
        reference = db.knn_batch(query[None, :], QueryOptions(k=4)).results[0]
        assert len(notes) == 1 and notes[0].full and notes[0].seq == 1
        assert list(notes[0].ids) == list(reference.ids)
        assert list(notes[0].distances) == list(reference.distances)

    def test_near_insert_enters_the_frontier_as_a_delta(self):
        db = make_db()
        evaluator = ContinuousEvaluator(db)
        query = np.asarray(db.data)[3] + 0.01
        sid, notes = collect(evaluator, KnnWatch(query=query, k=4))
        gid = evaluator.insert(query + 0.001)
        assert len(notes) == 2
        delta = notes[1]
        assert not delta.full and delta.added == (gid,) and len(delta.removed) == 1
        reference = db.knn_batch(query[None, :], QueryOptions(k=4)).results[0]
        assert list(delta.ids) == list(reference.ids)
        assert list(delta.distances) == list(reference.distances)

    def test_far_insert_is_silent_once_the_frontier_is_full(self):
        db = make_db()
        evaluator = ContinuousEvaluator(db)
        query = np.asarray(db.data)[3] + 0.01
        sid, notes = collect(evaluator, KnnWatch(query=query, k=4))
        evaluator.insert(query + 1e6)  # far beyond the kept top-k
        assert len(notes) == 1  # only the initial snapshot

    def test_frontier_delete_triggers_a_full_rerun(self):
        db = make_db()
        evaluator = ContinuousEvaluator(db)
        query = np.asarray(db.data)[5] + 0.01
        sid, notes = collect(evaluator, KnnWatch(query=query, k=4))
        victim = notes[0].ids[0]
        assert evaluator.delete(victim)
        assert len(notes) == 2
        note = notes[1]
        assert note.full and victim in note.removed
        reference = db.knn_batch(query[None, :], QueryOptions(k=4)).results[0]
        assert list(note.ids) == list(reference.ids)
        assert list(note.distances) == list(reference.distances)

    def test_delete_outside_the_frontier_is_silent(self):
        db = make_db()
        evaluator = ContinuousEvaluator(db)
        query = np.asarray(db.data)[5] + 0.01
        sid, notes = collect(evaluator, KnnWatch(query=query, k=2))
        reference = db.knn_batch(query[None, :], QueryOptions(k=16)).results[0]
        outsider = reference.ids[-1]  # live, but nowhere near the top-2
        assert outsider not in notes[0].ids
        assert evaluator.delete(outsider)
        assert len(notes) == 1


class TestRangeWatch:
    def test_membership_uses_the_range_query_distance_primitive(self):
        db = make_db()
        evaluator = ContinuousEvaluator(db)
        query = np.asarray(db.data)[2] + 0.01
        radius = float(
            db.knn_batch(query[None, :], QueryOptions(k=3)).results[0].distances[-1]
        ) + 0.25
        sid, notes = collect(evaluator, RangeWatch(query=query, radius=radius))
        reference = db.range_query(query, radius)
        assert list(notes[0].ids) == list(reference.ids)
        assert list(notes[0].distances) == list(reference.distances)

        row = query + 0.002
        gid = evaluator.insert(row)
        delta = notes[-1]
        assert delta.added == (gid,)
        # the incremental distance is exactly range_query's verification value
        assert dict(zip(delta.ids, delta.distances))[gid] == euclidean(row, query)
        reference = db.range_query(query, radius)
        assert list(delta.ids) == list(reference.ids)
        assert list(delta.distances) == list(reference.distances)

    def test_out_of_radius_insert_and_member_delete(self):
        db = make_db()
        evaluator = ContinuousEvaluator(db)
        query = np.asarray(db.data)[2] + 0.01
        radius = float(
            db.knn_batch(query[None, :], QueryOptions(k=3)).results[0].distances[-1]
        ) + 0.25
        sid, notes = collect(evaluator, RangeWatch(query=query, radius=radius))
        evaluator.insert(query + 1e6)
        assert len(notes) == 1  # outside the radius: silent

        member = notes[0].ids[0]
        assert evaluator.delete(member)
        assert notes[-1].removed == (member,)
        reference = db.range_query(query, radius)
        assert list(notes[-1].ids) == list(reference.ids)
        assert list(notes[-1].distances) == list(reference.distances)


class TestSubsequenceWatch:
    def test_sees_only_rows_inserted_after_subscribing(self):
        db = make_db()
        evaluator = ContinuousEvaluator(db)
        pattern = np.sin(np.linspace(0.0, 3.0, 8))
        sid, notes = collect(
            evaluator, SubsequenceWatch(pattern=pattern, radius=0.5)
        )
        assert notes[0].full and notes[0].matches == ()

        rng = np.random.default_rng(9)
        carrier = rng.normal(size=LENGTH).cumsum()
        carrier[10:18] = pattern  # plant one exact occurrence
        gid = evaluator.insert(carrier)
        assert len(notes) == 2
        match_gids = {g for g, _, _ in notes[1].matches}
        assert match_gids == {gid}
        start = notes[1].matches[0][1]
        window = carrier[start : start + 8]
        assert float(np.linalg.norm(window - pattern)) <= 0.5

        evaluator.insert(rng.normal(size=LENGTH).cumsum() + 100.0)  # no match
        assert len(notes) == 2
        assert evaluator.delete(gid)
        assert notes[-1].removed == (gid,) and notes[-1].matches == ()


class TestAnomalyWatch:
    def test_alerts_reproduce_the_standalone_scorer(self):
        db = make_db(count=4)
        evaluator = ContinuousEvaluator(db)
        watch = AnomalyWatch(window=8, threshold=0.8, stride=2, history=32)
        sid, notes = collect(evaluator, watch)

        rng = np.random.default_rng(11)
        rows = [np.sin(np.linspace(0, 4 * np.pi, LENGTH)) for _ in range(3)]
        spike = rows[0].copy()
        spike[12:20] += 8.0  # an obvious discord
        rows.append(spike)
        for row in rows:
            evaluator.insert(row)

        alerts = [n for n in notes if n.alert is not None]
        assert alerts, "the injected discord never raised an alert"
        scorer = OnlineDiscordScorer(
            window=8, threshold=0.8, stride=2, history=32
        )
        expected = [a for row in rows for a in scorer.extend(row)]
        assert [n.alert for n in alerts] == [a.to_payload() for a in expected]

    def test_deletes_do_not_rewind_the_stream(self):
        db = make_db(count=4)
        evaluator = ContinuousEvaluator(db)
        sid, notes = collect(evaluator, AnomalyWatch(window=8, threshold=0.8))
        gid = evaluator.insert(np.zeros(LENGTH))
        before = len(notes)
        assert evaluator.delete(gid)
        assert len(notes) == before


class TestDeliveryGuarantee:
    def test_sink_failure_leaves_the_seq_unacked_and_resync_reemits(self):
        db = make_db()
        evaluator = ContinuousEvaluator(db)
        query = np.asarray(db.data)[1] + 0.01
        sid, notes = collect(evaluator, KnnWatch(query=query, k=3))
        acked = evaluator.registry.get(sid).seq
        assert acked == 1  # the initial snapshot was delivered and acked

        def broken_sink(note):
            raise ConnectionResetError("consumer went away mid-delivery")

        evaluator.attach_sink(sid, broken_sink)
        with pytest.raises(ConnectionResetError):
            evaluator.insert(query + 0.001)
        assert evaluator.registry.get(sid).seq == acked  # sink first, ack second

        # recovery: resync re-emits the lost delta with the seq it would
        # have carried, so a seq-deduplicating consumer converges
        evaluator.attach_sink(sid, notes.append)
        emitted = evaluator.resync(sid)
        assert len(emitted) == 1 and emitted[0].seq == acked + 1
        reference = db.knn_batch(query[None, :], QueryOptions(k=3)).results[0]
        assert list(emitted[0].ids) == list(reference.ids)
        assert list(emitted[0].distances) == list(reference.distances)

    def test_resync_is_silent_when_everything_is_acked(self):
        db = make_db()
        evaluator = ContinuousEvaluator(db)
        query = np.asarray(db.data)[1] + 0.01
        sid, notes = collect(evaluator, KnnWatch(query=query, k=3))
        evaluator.insert(query + 0.001)
        assert evaluator.resync() == []

    def test_refresh_always_reemits_a_full_snapshot(self):
        db = make_db()
        evaluator = ContinuousEvaluator(db)
        query = np.asarray(db.data)[1] + 0.01
        sid, notes = collect(evaluator, KnnWatch(query=query, k=3))
        note = evaluator.refresh(sid)  # the post-backpressure catch-up path
        assert note is not None and note.full and note.seq == 2
        reference = db.knn_batch(query[None, :], QueryOptions(k=3)).results[0]
        assert list(note.ids) == list(reference.ids)
        assert list(note.distances) == list(reference.distances)
        assert evaluator.refresh("sub-999999") is None

    def test_unsubscribe_stops_delivery(self):
        db = make_db()
        evaluator = ContinuousEvaluator(db)
        query = np.asarray(db.data)[1] + 0.01
        sid, notes = collect(evaluator, KnnWatch(query=query, k=3))
        assert evaluator.unsubscribe(sid) is True
        evaluator.insert(query + 0.001)
        assert len(notes) == 1
        assert evaluator.unsubscribe(sid) is False
