"""Gate rules: threshold arithmetic, filtering, and diff rendering."""

import pytest

from repro.experiments import (
    ExperimentSpec,
    GateRule,
    ReducerSpec,
    diff_cells,
    evaluate_gates,
)

from .conftest import TINY_SCALE

pytestmark = pytest.mark.experiments


def cell(key="batch_knn|tiny|PAA-4|none|k2-auto", workload="batch_knn", **metrics):
    return {"cell": key, "workload": workload, "metrics": metrics}


def spec_with(*gates):
    return ExperimentSpec(
        name="gated",
        scales=(TINY_SCALE,),
        reducers=(ReducerSpec("PAA", 4),),
        gates=tuple(gates),
    )


class TestEvaluateGates:
    def test_increase_violation(self):
        spec = spec_with(GateRule("latency_p50_ms", 10.0, "increase"))
        violations = evaluate_gates(
            spec, [cell(latency_p50_ms=1.0)], [cell(latency_p50_ms=1.2)]
        )
        assert len(violations) == 1
        v = violations[0]
        assert v.change_pct == pytest.approx(20.0)
        assert "latency_p50_ms" in v.describe()
        assert "violates max increase of 10%" in v.describe()

    def test_within_threshold_passes(self):
        spec = spec_with(GateRule("latency_p50_ms", 25.0, "increase"))
        assert not evaluate_gates(
            spec, [cell(latency_p50_ms=1.0)], [cell(latency_p50_ms=1.2)]
        )

    def test_decrease_violation(self):
        spec = spec_with(GateRule("batched_qps", 10.0, "decrease"))
        violations = evaluate_gates(
            spec, [cell(batched_qps=100.0)], [cell(batched_qps=80.0)]
        )
        assert len(violations) == 1
        assert violations[0].change_pct == pytest.approx(-20.0)
        # improvement in the watched direction never violates
        assert not evaluate_gates(
            spec, [cell(batched_qps=100.0)], [cell(batched_qps=150.0)]
        )

    def test_workload_filter(self):
        spec = spec_with(GateRule("accuracy", 5.0, "decrease", workload="pruning"))
        batch = cell(accuracy=1.0)  # workload batch_knn: rule must not apply
        assert not evaluate_gates(spec, [batch], [cell(accuracy=0.5)])

    def test_missing_baseline_cell_or_metric_skipped(self):
        spec = spec_with(GateRule("speedup", 5.0, "decrease"))
        # new cell: no baseline to regress against
        assert not evaluate_gates(spec, [], [cell(speedup=1.0)])
        # metric absent from the baseline cell
        assert not evaluate_gates(spec, [cell(other=1.0)], [cell(speedup=1.0)])

    def test_zero_baseline(self):
        spec = spec_with(GateRule("speedup", 5.0, "increase"))
        assert evaluate_gates(spec, [cell(speedup=0.0)], [cell(speedup=1.0)])
        assert not evaluate_gates(spec, [cell(speedup=0.0)], [cell(speedup=0.0)])


class TestDiffCells:
    def test_verdicts(self):
        spec = spec_with(
            GateRule("latency_p50_ms", 10.0, "increase"),
            GateRule("speedup", 10.0, "decrease"),
        )
        baseline = [cell(latency_p50_ms=1.0, speedup=4.0)]
        current = [
            cell(latency_p50_ms=2.0, speedup=4.0),
            cell(key="new|cell", latency_p50_ms=1.0, speedup=1.0),
        ]
        rows = diff_cells(spec, baseline, current)
        by = {(r["cell"], r["metric"]): r for r in rows}
        assert by[("batch_knn|tiny|PAA-4|none|k2-auto", "latency_p50_ms")]["verdict"] == "FAIL"
        assert by[("batch_knn|tiny|PAA-4|none|k2-auto", "speedup")]["verdict"] == "ok"
        assert by[("new|cell", "latency_p50_ms")]["verdict"] == "new"


class TestUnitNormalizedDisplay:
    """Diff output reads in ms even when the stored metric is seconds."""

    def test_seconds_metric_displays_as_ms(self):
        spec = spec_with(GateRule("trial_wall_s", 10.0, "increase"))
        rows = diff_cells(spec, [cell(trial_wall_s=0.5)], [cell(trial_wall_s=0.6)])
        (row,) = rows
        assert row["metric"] == "trial_wall_ms"
        assert row["baseline"] == pytest.approx(500.0)
        assert row["current"] == pytest.approx(600.0)
        # the verdict is computed on percent change, which scaling can't move
        assert row["change_pct"] == pytest.approx(20.0)
        assert row["verdict"] == "FAIL"

    def test_rate_metric_is_not_scaled(self):
        spec = spec_with(GateRule("inserts_per_s", 10.0, "decrease"))
        rows = diff_cells(
            spec, [cell(inserts_per_s=100.0)], [cell(inserts_per_s=95.0)]
        )
        (row,) = rows
        assert row["metric"] == "inserts_per_s"
        assert row["baseline"] == pytest.approx(100.0)
        assert row["current"] == pytest.approx(95.0)
        assert row["verdict"] == "ok"

    def test_violation_describe_uses_ms(self):
        spec = spec_with(GateRule("trial_wall_s", 10.0, "increase"))
        violations = evaluate_gates(
            spec, [cell(trial_wall_s=0.5)], [cell(trial_wall_s=0.6)]
        )
        (violation,) = violations
        text = violation.describe()
        assert "trial_wall_ms" in text
        assert "500 -> 600" in text
        assert "+20.0%" in text
