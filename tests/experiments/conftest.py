"""Shared fixtures for the experiment-service tests: a tiny gated matrix."""

import pytest

from repro.experiments import (
    EngineSpec,
    ExperimentSpec,
    GateRule,
    ReducerSpec,
    ScaleSpec,
)
from repro.kinds import IndexKind

TINY_SCALE = ScaleSpec("tiny", length=32, n_series=16, n_queries=3, n_inserts=8)


@pytest.fixture
def tiny_spec():
    """Two workload families on one tiny cell, with regression gates."""
    return ExperimentSpec(
        name="tinyspec",
        seed=3,
        repeats=2,
        workloads=("batch_knn", "pruning"),
        scales=(TINY_SCALE,),
        reducers=(ReducerSpec("PAA", 4),),
        indexes=(IndexKind.NONE,),
        engines=(EngineSpec(k=2),),
        gates=(
            GateRule("latency_p50_ms", 50.0, "increase", "batch_knn"),
            GateRule("verified_ratio", 20.0, "increase", "pruning"),
        ),
    )
