"""Spec validation, deterministic expansion, and TOML/JSON loading."""

import json
import pathlib

import pytest

from repro.experiments import (
    EngineSpec,
    ExperimentSpec,
    GateRule,
    ReducerSpec,
    ScaleSpec,
    expand,
    load_spec,
    spec_from_dict,
    spec_to_dict,
)
from repro.kinds import IndexKind

pytestmark = pytest.mark.experiments

SPEC_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "specs"


class TestValidation:
    def test_name_must_be_bare_token(self):
        with pytest.raises(ValueError, match="bare token"):
            ExperimentSpec(name="has space")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            ExperimentSpec(name="x", workloads=("nope",))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one entry"):
            ExperimentSpec(name="x", reducers=())

    def test_scale_too_small(self):
        with pytest.raises(ValueError, match="too small"):
            ScaleSpec("nano", length=4)

    def test_engine_fsync_policy_checked(self):
        with pytest.raises(ValueError, match="fsync"):
            EngineSpec(fsync="sometimes")

    def test_gate_direction_checked(self):
        with pytest.raises(ValueError, match="increase/decrease"):
            GateRule("m", 10.0, direction="sideways")

    def test_gate_workload_checked(self):
        with pytest.raises(ValueError, match="unknown workload"):
            GateRule("m", 10.0, workload="nope")


class TestExpand:
    def test_deterministic(self, tiny_spec):
        assert expand(tiny_spec) == expand(tiny_spec)

    def test_matrix_size_and_order(self, tiny_spec):
        trials = expand(tiny_spec)
        # 2 workloads x 1 scale x 1 reducer x 1 index x 1 engine x 2 repeats
        assert len(trials) == 4
        assert [t.index for t in trials] == [0, 1, 2, 3]
        assert [t.workload for t in trials] == ["batch_knn"] * 2 + ["pruning"] * 2

    def test_repeats_share_cell_seed(self, tiny_spec):
        first, second, third, _ = expand(tiny_spec)
        assert first.seed == second.seed
        assert first.cell_key == second.cell_key
        assert third.seed != first.seed  # distinct cells, distinct streams

    def test_cell_key_names_every_axis(self, tiny_spec):
        trial = expand(tiny_spec)[0]
        assert trial.cell_key == "batch_knn|tiny|PAA-4|none|k2-auto"
        axes = trial.axes()
        assert axes["method"] == "PAA" and axes["index_kind"] == "none"


class TestSerialisation:
    def test_dict_round_trip(self, tiny_spec):
        assert spec_from_dict(spec_to_dict(tiny_spec)) == tiny_spec

    def test_unknown_key_rejected(self, tiny_spec):
        payload = spec_to_dict(tiny_spec)
        payload["typo"] = 1
        with pytest.raises(ValueError, match="unknown spec keys"):
            spec_from_dict(payload)

    def test_bad_axis_entry_rejected(self, tiny_spec):
        payload = spec_to_dict(tiny_spec)
        payload["reducers"] = [{"method": "PAA", "typo": 9}]
        with pytest.raises(ValueError, match="bad reducers entry"):
            spec_from_dict(payload)

    def test_load_json(self, tiny_spec, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec_to_dict(tiny_spec)))
        assert load_spec(path) == tiny_spec

    def test_load_toml(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            'name = "t"\nworkloads = ["pruning"]\nindexes = ["dbch"]\n'
            '[[scales]]\nname = "s"\nlength = 32\nn_series = 8\nn_queries = 2\n'
            '[[reducers]]\nmethod = "PAA"\ncoefficients = 4\n'
            "[[engines]]\nk = 2\n"
        )
        spec = load_spec(path)
        assert spec.indexes == (IndexKind.DBCH,)
        assert spec.reducers == (ReducerSpec("PAA", 4),)

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("name: x")
        with pytest.raises(ValueError, match=".toml or .json"):
            load_spec(path)

    @pytest.mark.parametrize("name", ["smoke.toml", "medium.toml"])
    def test_committed_specs_parse(self, name):
        spec = load_spec(SPEC_DIR / name)
        assert spec.gates  # both committed specs carry regression gates
        assert expand(spec)
