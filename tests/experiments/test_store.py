"""ResultsStore round-trips, schema guard, exports, ad-hoc bench trials."""

import json
import sqlite3

import pytest

from repro import obs
from repro.experiments import (
    STORE_SCHEMA_VERSION,
    ResultsStore,
    environment_facts,
    expand,
    record_bench_trial,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.report import RunReport
from repro.obs.spans import SpanRecorder

pytestmark = pytest.mark.experiments


@pytest.fixture(autouse=True)
def clean_obs_state():
    prev_reg = obs.set_registry(MetricsRegistry(enabled=False))
    prev_rec = obs.set_recorder(SpanRecorder(enabled=False))
    yield
    obs.set_registry(prev_reg)
    obs.set_recorder(prev_rec)


def sample_report() -> RunReport:
    with obs.capture():
        obs.count("knn.queries", 3)
        obs.count("knn.entries_refined", 6)
        obs.count("knn.pruned.aligned", 18)
        obs.observe("knn.verified_per_query", 2.0)
        return RunReport.collect(meta={"origin": "test"})


class TestRoundTrip:
    def test_experiment_and_trial_rows(self, tiny_spec, tmp_path):
        trial = expand(tiny_spec)[0]
        with ResultsStore(tmp_path / "s.sqlite") as store:
            experiment_id = store.create_experiment(tiny_spec)
            trial_id = store.record_trial(
                experiment_id,
                trial,
                sample_report(),
                {"latency_p50_ms": 1.25},
                elapsed_s=0.5,
            )
            rows = store.trials(experiment_id)
            assert len(rows) == 1
            row = rows[0]
            assert row["cell_key"] == trial.cell_key
            assert row["status"] == "ok"
            assert row["elapsed_s"] == 0.5
            assert json.loads(row["report_json"])["meta"]["origin"] == "test"

            metrics = store.trial_metrics(trial_id)
            assert metrics["latency_p50_ms"] == 1.25
            assert metrics["knn.queries"] == 3.0
            assert metrics["knn.verified_per_query/p50"] == 2.0

    def test_cell_metrics_groups_repeats(self, tiny_spec, tmp_path):
        trials = expand(tiny_spec)[:2]  # two repeats of one cell
        with ResultsStore(tmp_path / "s.sqlite") as store:
            experiment_id = store.create_experiment(tiny_spec)
            for value, trial in zip((1.0, 3.0), trials):
                store.record_trial(
                    experiment_id, trial, sample_report(), {"speedup": value}
                )
            per_cell = store.cell_metrics(experiment_id)
            assert per_cell[trials[0].cell_key]["speedup"] == [1.0, 3.0]

    def test_environment_recorded(self, tiny_spec, tmp_path):
        with ResultsStore(tmp_path / "s.sqlite") as store:
            experiment_id = store.create_experiment(tiny_spec)
            env = store.environment(experiment_id)
        assert env == environment_facts()

    def test_latest_experiment_by_name(self, tiny_spec, tmp_path):
        with ResultsStore(tmp_path / "s.sqlite") as store:
            first = store.create_experiment(tiny_spec)
            second = store.create_experiment(tiny_spec)
            assert second > first
            assert store.latest_experiment("tinyspec")["id"] == second
            assert store.latest_experiment("missing") is None


class TestSchemaGuard:
    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "old.sqlite"
        ResultsStore(path).close()
        conn = sqlite3.connect(str(path))
        conn.execute("UPDATE schema_info SET version = ?", (STORE_SCHEMA_VERSION + 1,))
        conn.commit()
        conn.close()
        with pytest.raises(ValueError, match="schema v"):
            ResultsStore(path)


class TestExport:
    def test_export_json_snapshot(self, tiny_spec, tmp_path):
        with ResultsStore(tmp_path / "s.sqlite") as store:
            experiment_id = store.create_experiment(tiny_spec)
            store.record_trial(
                experiment_id, expand(tiny_spec)[0], sample_report(), {"x": 1.0}
            )
            out = store.export_json(tmp_path / "snap.json")
        payload = json.loads(out.read_text())
        assert payload["schema"] == STORE_SCHEMA_VERSION
        assert len(payload["experiments"]) == 1
        assert len(payload["trials"]) == 1
        assert any(m["name"] == "x" for m in payload["metrics"])


class TestBenchTrials:
    def test_record_bench_trial_creates_named_experiment(self, tiny_spec, tmp_path):
        path = tmp_path / "bench.sqlite"
        trial = expand(tiny_spec)[0]
        record_bench_trial(path, "batch_knn", trial, sample_report(), {"speedup": 4.0})
        with ResultsStore(path) as store:
            experiment = store.latest_experiment("bench-batch_knn")
            assert experiment is not None
            metrics = store.trial_metrics(store.trials(experiment["id"])[0]["id"])
            assert metrics["speedup"] == 4.0
