"""CLI surface plus the acceptance path: an injected slowdown must land in
the sqlite store and make ``repro experiment diff`` exit non-zero naming the
violated threshold, while an unmodified run passes the same gates."""

import json

import pytest

from repro.cli import main
from repro.experiments import ResultsStore, load_bench, spec_to_dict
from repro.experiments.workloads import WORKLOADS

pytestmark = pytest.mark.experiments


@pytest.fixture
def spec_file(tiny_spec, tmp_path):
    path = tmp_path / "tinyspec.json"
    path.write_text(json.dumps(spec_to_dict(tiny_spec)))
    return path


def run_spec(spec_file, tmp_path, bench_subdir):
    bench_dir = tmp_path / bench_subdir
    bench_dir.mkdir(exist_ok=True)
    code = main(
        [
            "experiment", "run", str(spec_file),
            "--store", str(tmp_path / "store.sqlite"),
            "--bench-dir", str(bench_dir),
        ]
    )
    assert code == 0
    return bench_dir / "BENCH_tinyspec.json"


class TestCLI:
    def test_run_writes_bench_and_prints_cells(self, spec_file, tmp_path, capsys):
        bench_path = run_spec(spec_file, tmp_path, "base")
        out = capsys.readouterr().out
        assert "batch_knn cells" in out and "pruning cells" in out
        assert "recorded experiment" in out
        payload = load_bench(bench_path)
        assert payload["n_trials"] == 4

    def test_report_renders_trend(self, spec_file, tmp_path, capsys):
        run_spec(spec_file, tmp_path, "base")
        code = main(
            ["experiment", "report", "--store", str(tmp_path / "store.sqlite"),
             "--metric", "latency"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "experiments in" in out
        assert "latency_p50_ms" in out
        assert "run1" in out

    def test_run_without_spec_exits(self):
        with pytest.raises(SystemExit, match="needs a spec file"):
            main(["experiment", "run"])

    def test_diff_without_baseline_exits(self, spec_file):
        with pytest.raises(SystemExit, match="--baseline"):
            main(["experiment", "diff", str(spec_file)])


class TestRegressionGate:
    def test_unmodified_run_passes_gates(self, spec_file, tmp_path, capsys):
        baseline = run_spec(spec_file, tmp_path, "base")
        run_spec(spec_file, tmp_path, "current")  # identical second run
        code = main(
            ["experiment", "diff", str(spec_file),
             "--store", str(tmp_path / "store.sqlite"),
             "--baseline", str(baseline)]
        )
        assert code == 0
        assert "all gates pass" in capsys.readouterr().out

    def test_injected_slowdown_trips_the_gate(
        self, spec_file, tmp_path, capsys, monkeypatch
    ):
        baseline = run_spec(spec_file, tmp_path, "base")

        original = WORKLOADS["batch_knn"]

        def degraded(trial):
            metrics = dict(original(trial))
            for key in ("latency_p50_ms", "latency_p90_ms", "latency_p99_ms"):
                metrics[key] *= 10.0  # a 10x latency regression
            return metrics

        monkeypatch.setitem(WORKLOADS, "batch_knn", degraded)
        run_spec(spec_file, tmp_path, "current")

        # the degraded trials are real rows in the sqlite store
        with ResultsStore(tmp_path / "store.sqlite") as store:
            experiment = store.latest_experiment("tinyspec")
            trials = store.trials(experiment["id"])
            assert len(trials) == 4
            degraded_metrics = store.trial_metrics(trials[0]["id"])
            assert degraded_metrics["latency_p50_ms"] > 0.0

        code = main(
            ["experiment", "diff", str(spec_file),
             "--store", str(tmp_path / "store.sqlite"),
             "--baseline", str(baseline)]
        )
        assert code == 1
        out = capsys.readouterr().out
        # the violation names the metric, the cell, and the threshold rule
        assert "gate violation" in out
        assert "latency_p50_ms" in out
        assert "violates max increase of 50%" in out
        assert "batch_knn|tiny|PAA-4|none|k2-auto" in out

    def test_diff_against_current_bench_file(self, spec_file, tmp_path, capsys):
        baseline = run_spec(spec_file, tmp_path, "base")
        code = main(
            ["experiment", "diff", str(spec_file),
             "--store", str(tmp_path / "store.sqlite"),
             "--baseline", str(baseline),
             "--current", str(baseline)]  # a run never regresses against itself
        )
        assert code == 0
        assert "all gates pass" in capsys.readouterr().out
