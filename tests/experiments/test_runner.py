"""Runner end-to-end: trials execute, the store fills, BENCH_* is written."""

import pytest

from repro import obs
from repro.experiments import (
    BENCH_SCHEMA_VERSION,
    ExperimentSpec,
    ReducerSpec,
    ResultsStore,
    derive_bound_ratios,
    expand,
    load_bench,
    run_experiment,
    run_trial,
)
from repro.experiments.workloads import WORKLOADS
from repro.kinds import IndexKind
from repro.obs.registry import MetricsRegistry
from repro.obs.report import RunReport
from repro.obs.spans import SpanRecorder

from .conftest import TINY_SCALE

pytestmark = pytest.mark.experiments


@pytest.fixture(autouse=True)
def clean_obs_state():
    prev_reg = obs.set_registry(MetricsRegistry(enabled=False))
    prev_rec = obs.set_recorder(SpanRecorder(enabled=False))
    yield
    obs.set_registry(prev_reg)
    obs.set_recorder(prev_rec)


class TestRunTrial:
    def test_batch_knn_metrics_and_isolation(self, tiny_spec):
        caller_registry = obs.registry()
        derived, report, elapsed = run_trial(expand(tiny_spec)[0])
        # the caller's obs state is untouched by the trial's capture
        assert obs.registry() is caller_registry
        assert elapsed > 0.0
        for key in ("sequential_qps", "batched_qps", "speedup",
                    "latency_p50_ms", "latency_p90_ms", "latency_p99_ms"):
            assert derived[key] > 0.0
        assert derived["results_identical"] == 1.0
        assert report.meta["cell"] == expand(tiny_spec)[0].cell_key
        assert report.counters.get("knn.queries", 0) > 0

    def test_pruning_trial_gains_bound_ratios(self, tiny_spec):
        trial = expand(tiny_spec)[2]  # the pruning cell
        derived, report, _ = run_trial(trial)
        assert 0.0 <= derived["pruning_power"] <= 1.0
        assert 0.0 <= derived["accuracy"] <= 1.0
        assert 0.0 < derived["verified_ratio"] <= 1.0


class TestDeriveBoundRatios:
    def test_ratios_sum_to_one(self):
        with obs.capture():
            obs.count("knn.entries_refined", 25)
            obs.count("knn.pruned.aligned", 50)
            obs.count("knn.pruned.dist_par", 25)
            report = RunReport.collect()
        ratios = derive_bound_ratios(report)
        assert ratios["verified_ratio"] == 0.25
        assert ratios["pruned_ratio.aligned"] == 0.5
        assert ratios["pruned_ratio.par"] == 0.25

    def test_empty_without_counters(self):
        with obs.capture():
            report = RunReport.collect()
        assert derive_bound_ratios(report) == {}


class TestRunExperiment:
    def test_end_to_end(self, tiny_spec, tmp_path):
        summary = run_experiment(
            tiny_spec, tmp_path / "s.sqlite", bench_dir=tmp_path
        )
        assert summary.n_trials == 4 and summary.n_failed == 0
        assert summary.bench_path == tmp_path / "BENCH_tinyspec.json"

        payload = load_bench(summary.bench_path)
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert payload["spec"]["name"] == "tinyspec"
        cells = {cell["cell"]: cell for cell in payload["cells"]}
        assert len(cells) == 2
        batch = cells["batch_knn|tiny|PAA-4|none|k2-auto"]
        assert batch["repeats"] == 2
        assert batch["metrics"]["latency_p99_ms"] > 0.0
        pruning = cells["pruning|tiny|PAA-4|none|k2-auto"]
        assert 0.0 < pruning["metrics"]["verified_ratio"] <= 1.0

        with ResultsStore(summary.store_path) as store:
            assert len(store.trials(summary.experiment_id)) == 4
            assert all(
                t["status"] == "ok" for t in store.trials(summary.experiment_id)
            )

    def test_unsupported_cells_are_skipped(self, tmp_path):
        spec = ExperimentSpec(
            name="skips",
            workloads=("ingest",),
            scales=(TINY_SCALE,),
            reducers=(ReducerSpec("PAA", 4),),
            indexes=(IndexKind.NONE,),  # ingest needs an index
        )
        summary = run_experiment(spec, tmp_path / "s.sqlite", bench_dir=None)
        assert summary.n_trials == 0 and summary.n_skipped == 1
        assert summary.bench_path is None

    def test_failures_recorded_not_fatal(self, tiny_spec, tmp_path, monkeypatch):
        def boom(trial):
            raise RuntimeError("injected")

        monkeypatch.setitem(WORKLOADS, "pruning", boom)
        summary = run_experiment(tiny_spec, tmp_path / "s.sqlite", bench_dir=tmp_path)
        assert summary.n_trials == 2 and summary.n_failed == 2
        with ResultsStore(summary.store_path) as store:
            failed = [
                t for t in store.trials(summary.experiment_id)
                if t["status"] == "failed"
            ]
            assert len(failed) == 2
            assert all(t["workload"] == "pruning" for t in failed)
        # failed cells never reach the BENCH summary
        cells = load_bench(summary.bench_path)["cells"]
        assert all(cell["workload"] == "batch_knn" for cell in cells)
