"""Failure-injection tests: corrupted and malformed persisted artifacts."""

import json

import numpy as np
import pytest

from repro.io import (
    from_jsonable,
    load_dataset,
    load_representations,
    save_dataset,
    save_representations,
)
from repro.reduction import SAPLAReducer


class TestCorruptRepresentations:
    def test_truncated_json(self, tmp_path):
        path = tmp_path / "reps.json"
        rep = SAPLAReducer(12).transform(np.arange(32.0))
        save_representations(path, [rep])
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(json.JSONDecodeError):
            load_representations(path)

    def test_missing_type_field(self):
        with pytest.raises(ValueError):
            from_jsonable({"segments": []})

    def test_segments_violating_invariants(self):
        payload = {
            "type": "segmentation",
            "segments": [
                {"start": 0, "end": 4, "a": 0.0, "b": 0.0},
                {"start": 9, "end": 12, "a": 0.0, "b": 0.0},  # gap
            ],
        }
        with pytest.raises(ValueError):
            from_jsonable(payload)

    def test_reversed_segment_bounds(self):
        payload = {
            "type": "segmentation",
            "segments": [{"start": 5, "end": 2, "a": 0.0, "b": 0.0}],
        }
        with pytest.raises(ValueError):
            from_jsonable(payload)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_representations(tmp_path / "nope.json")


class TestCorruptDatasets:
    def test_truncated_npz(self, tmp_path):
        from repro.data import UCRLikeArchive

        dataset = UCRLikeArchive(length=64, n_series=3, n_queries=1).load("Coffee")
        path = tmp_path / "ds.npz"
        save_dataset(path, dataset)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 3])
        with pytest.raises(Exception):
            load_dataset(path)

    def test_wrong_file_contents(self, tmp_path):
        path = tmp_path / "ds.npz"
        np.savez_compressed(path, unrelated=np.zeros(3))
        with pytest.raises(KeyError):
            load_dataset(path)
