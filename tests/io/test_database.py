"""Round-trip tests for whole-database persistence."""

import numpy as np
import pytest

from repro.index import SeriesDatabase
from repro.io import load_database, save_database
from repro.reduction import CHEBY, PAA, SAX, SAPLAReducer

DATA = np.random.default_rng(0).normal(size=(30, 64)).cumsum(axis=1)


@pytest.mark.parametrize(
    "reducer_cls", [SAPLAReducer, PAA, CHEBY, SAX], ids=lambda c: c.name
)
@pytest.mark.parametrize("index_kind", ["dbch", "rtree", None])
def test_round_trip_preserves_search(tmp_path, reducer_cls, index_kind):
    original = SeriesDatabase(reducer_cls(12), index=index_kind)
    original.ingest(DATA)
    save_database(original, tmp_path / "db")
    loaded = load_database(tmp_path / "db")

    query = DATA[5] + 0.01
    a = original.knn(query, 4)
    b = loaded.knn(query, 4)
    assert a.ids == b.ids
    assert a.distances == pytest.approx(b.distances)
    assert loaded.index_kind == index_kind
    assert loaded.reducer.name == reducer_cls.name


def test_save_before_ingest_rejected(tmp_path):
    db = SeriesDatabase(PAA(12))
    with pytest.raises(ValueError):
        save_database(db, tmp_path / "db")


def test_config_contents(tmp_path):
    import json

    db = SeriesDatabase(SAPLAReducer(18), index="dbch", distance_mode="lb")
    db.ingest(DATA)
    save_database(db, tmp_path / "db")
    config = json.loads((tmp_path / "db" / "config.json").read_text())
    assert config["reducer"] == "SAPLA"
    assert config["n_coefficients"] == 18
    assert config["distance_mode"] == "lb"
    loaded = load_database(tmp_path / "db")
    assert loaded.suite.mode == "lb"


def test_loaded_database_skips_reduction(tmp_path, monkeypatch):
    """Loading must reuse stored representations, not re-transform."""
    db = SeriesDatabase(PAA(12), index=None)
    db.ingest(DATA)
    save_database(db, tmp_path / "db")

    calls = {"n": 0}
    original_transform = PAA.transform

    def counting_transform(self, series):
        calls["n"] += 1
        return original_transform(self, series)

    monkeypatch.setattr(PAA, "transform", counting_transform)
    load_database(tmp_path / "db")
    assert calls["n"] == 0
