"""Unified persistence: Database.save(path) / repro.io.open_database(path).

One directory format for both database flavours — ``open_database`` reads
``config.json`` and hands back a :class:`SeriesDatabase` or a
:class:`DiskBackedDatabase` as recorded at save time.  The old
``save_database`` / ``load_database`` names stay as deprecated aliases.
"""

import json

import numpy as np
import pytest

from repro.engine import QueryOptions
from repro.index import SeriesDatabase
from repro.io import load_database, open_database, save_database
from repro.kinds import DistanceMode, IndexKind
from repro.reduction import PAA, SAPLAReducer
from repro.storage import DiskBackedDatabase


def dataset(count=14, n=32, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(count, n)).cumsum(axis=1)


class TestUnifiedRoundTrip:
    def test_memory_database_save_and_open(self, tmp_path):
        data = dataset()
        db = SeriesDatabase(
            SAPLAReducer(6), index=IndexKind.DBCH, distance_mode=DistanceMode.LB
        )
        db.ingest(data)
        db.save(tmp_path / "db")
        loaded = open_database(tmp_path / "db")
        assert isinstance(loaded, SeriesDatabase)
        assert loaded.index_kind is IndexKind.DBCH
        assert loaded.suite.mode == "lb"
        query = data[3] + 0.05
        assert loaded.knn(query, 4).ids == db.knn(query, 4).ids

    def test_memory_config_records_kind(self, tmp_path):
        db = SeriesDatabase(PAA(6), index=None)
        db.ingest(dataset())
        db.save(tmp_path / "db")
        config = json.loads((tmp_path / "db" / "config.json").read_text())
        assert config["kind"] == "memory"
        assert config["index"] is None

    def test_disk_database_save_and_open(self, tmp_path):
        data = dataset()
        db = DiskBackedDatabase(PAA(6), tmp_path / "live.bin", index=IndexKind.RTREE)
        db.ingest(data)
        db.save(tmp_path / "db")
        loaded = open_database(tmp_path / "db")
        assert isinstance(loaded, DiskBackedDatabase)
        query = data[2] + 0.1
        assert loaded.knn(query, 3).ids == db.knn(query, 3).ids
        assert loaded.io_stats.page_reads > 0
        config = json.loads((tmp_path / "db" / "config.json").read_text())
        assert config["kind"] == "disk"

    def test_loaded_database_answers_batches(self, tmp_path):
        data = dataset()
        db = SeriesDatabase(PAA(6), index=None)
        db.ingest(data)
        db.save(tmp_path / "db")
        loaded = open_database(tmp_path / "db")
        batch = loaded.knn_batch(data[:3], QueryOptions(k=3))
        expected = db.knn_batch(data[:3], QueryOptions(k=3))
        for a, b in zip(batch.results, expected.results):
            assert a.ids == b.ids
            assert a.distances == b.distances

    def test_save_before_ingest_raises(self, tmp_path):
        db = SeriesDatabase(PAA(6), index=None)
        with pytest.raises(ValueError):
            db.save(tmp_path / "db")


class TestDeprecatedAliases:
    @pytest.fixture(autouse=True)
    def _fresh_warnings(self):
        """The aliases warn once per process; forget earlier tests' calls."""
        from repro._deprecations import reset_warned

        reset_warned()

    def test_save_database_warns_and_works(self, tmp_path):
        db = SeriesDatabase(PAA(6), index=None)
        db.ingest(dataset())
        with pytest.warns(DeprecationWarning):
            save_database(db, tmp_path / "db")
        assert (tmp_path / "db" / "config.json").exists()

    def test_load_database_warns_and_works(self, tmp_path):
        data = dataset()
        db = SeriesDatabase(PAA(6), index=None)
        db.ingest(data)
        db.save(tmp_path / "db")
        with pytest.warns(DeprecationWarning):
            loaded = load_database(tmp_path / "db")
        assert loaded.knn(data[0], 2).ids == db.knn(data[0], 2).ids
