"""Round-trip tests for the persistence layer."""

import numpy as np
import pytest

from repro.data import UCRLikeArchive
from repro.io import (
    from_jsonable,
    load_dataset,
    load_representations,
    save_dataset,
    save_representations,
    to_jsonable,
)
from repro.reduction import CHEBY, SAX, SAPLAReducer

rng = np.random.default_rng(0)
SERIES = rng.normal(size=96).cumsum()


class TestRepresentationRoundTrip:
    def test_segmentation(self):
        rep = SAPLAReducer(12).transform(SERIES)
        back = from_jsonable(to_jsonable(rep))
        np.testing.assert_allclose(back.reconstruct(), rep.reconstruct())
        assert back.right_endpoints == rep.right_endpoints

    def test_chebyshev(self):
        rep = CHEBY(8).transform(SERIES)
        back = from_jsonable(to_jsonable(rep))
        np.testing.assert_allclose(back.coefficients, rep.coefficients)
        assert back.n == rep.n
        assert back.residual_norm == pytest.approx(rep.residual_norm)

    def test_sax(self):
        sax = SAX(8, alphabet_size=6)
        rep = sax.transform(SERIES)
        back = from_jsonable(to_jsonable(rep))
        np.testing.assert_array_equal(back.symbols, rep.symbols)
        assert back.bounds == rep.bounds
        assert sax.mindist(rep, back) == 0.0

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            to_jsonable(object())
        with pytest.raises(ValueError):
            from_jsonable({"type": "bogus"})


class TestFiles:
    def test_representations_file(self, tmp_path):
        reps = [SAPLAReducer(12).transform(SERIES), CHEBY(8).transform(SERIES)]
        path = tmp_path / "reps.json"
        save_representations(path, reps)
        loaded = load_representations(path)
        assert len(loaded) == 2
        np.testing.assert_allclose(loaded[0].reconstruct(), reps[0].reconstruct())

    def test_dataset_file(self, tmp_path):
        dataset = UCRLikeArchive(length=64, n_series=4, n_queries=1).load("Coffee")
        path = tmp_path / "coffee.npz"
        save_dataset(path, dataset)
        loaded = load_dataset(path)
        assert loaded.name == "Coffee"
        assert loaded.family == dataset.family
        np.testing.assert_array_equal(loaded.data, dataset.data)
        np.testing.assert_array_equal(loaded.queries, dataset.queries)
