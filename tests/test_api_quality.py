"""API-quality gates: docstrings on every public item, importability, and
__all__ hygiene across the whole package."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


def _public_items():
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            item = getattr(module, name)
            if inspect.isfunction(item) or inspect.isclass(item):
                if item.__module__ == module_name:  # skip re-exports
                    yield module_name, name, item


@pytest.mark.parametrize(
    "module_name,name,item",
    list(_public_items()),
    ids=[f"{m}.{n}" for m, n, _ in _public_items()],
)
def test_public_items_have_docstrings(module_name, name, item):
    assert inspect.getdoc(item), f"{module_name}.{name} lacks a docstring"


def test_public_classes_document_their_methods():
    """Public (non-underscore) methods of public classes carry docstrings."""
    undocumented = []
    for module_name, name, item in _public_items():
        if not inspect.isclass(item):
            continue
        for method_name, method in inspect.getmembers(item, inspect.isfunction):
            if method_name.startswith("_") or method.__qualname__.split(".")[0] != name:
                continue
            if not inspect.getdoc(method):
                undocumented.append(f"{module_name}.{name}.{method_name}")
    assert not undocumented, f"undocumented public methods: {undocumented}"


def test_version_exposed():
    assert repro.__version__
