"""End-to-end: the instrumented pipeline fills the registry (ISSUE 1 gates)."""

import numpy as np
import pytest

from repro import obs
from repro.index import SeriesDatabase
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.reduction import SAPLAReducer
from repro.storage import DiskBackedDatabase

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def clean_state():
    prev_reg = obs.set_registry(MetricsRegistry(enabled=False))
    prev_rec = obs.set_recorder(SpanRecorder(enabled=False))
    yield
    obs.set_registry(prev_reg)
    obs.set_recorder(prev_rec)


def dataset(count=30, n=64, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(count, n)).cumsum(axis=1)


class TestKNNInstrumentation:
    def test_dbch_search_fills_the_core_counters(self):
        data = dataset()
        with obs.capture() as session:
            db = SeriesDatabase(SAPLAReducer(12), index="dbch")
            db.ingest(data)
            for i in range(3):
                db.knn(data[i] + 0.05, 4)
        report = session.report()
        assert report.counters["knn.queries"] == 3
        assert report.counters["knn.nodes_visited"] > 0
        assert report.counters["knn.entries_refined"] > 0
        assert report.counters["knn.pruned.dist_par"] > 0
        assert report.counters["knn.heap_pushes"] > 0
        assert report.counters["dbch.inserts"] == len(data)
        assert report.counters["sapla.transforms"] >= len(data)
        assert report.counters["dist.par.calls"] > 0
        assert report.gauges["dbch.leaf_fill"] > 0

    def test_counters_reconstruct_pruning_power(self):
        """entries_refined / total must equal the reported pruning power."""
        data = dataset(seed=1)
        with obs.capture() as session:
            db = SeriesDatabase(SAPLAReducer(12), index="dbch")
            db.ingest(data)
            result = db.knn(data[0] + 0.1, 4)
        counters = session.report().counters
        assert counters["knn.entries_refined"] == result.n_verified
        assert counters["knn.entries_refined"] / len(data) == pytest.approx(
            result.pruning_power
        )

    def test_rtree_and_filtered_scan_paths(self):
        data = dataset(seed=2)
        with obs.capture() as session:
            db = SeriesDatabase(SAPLAReducer(12), index="rtree")
            db.ingest(data)
            db.knn(data[0], 3)
        counters = session.report().counters
        assert counters["rtree.inserts"] == len(data)
        assert counters["rtree.mbr_recomputations"] > 0
        with obs.capture() as session:
            db = SeriesDatabase(SAPLAReducer(12), index=None, distance_mode="lb")
            db.ingest(data)
            db.knn(data[0] + 0.2, 3)
        counters = session.report().counters
        assert counters["knn.pruned.dist_lb"] > 0
        assert counters["dist.lb.calls"] > 0

    def test_span_root_covers_child_time(self):
        """The acceptance gate: the root span covers >= 95% of child time."""
        data = dataset(seed=3)
        with obs.capture():
            with obs.span("cli.knn"):
                db = SeriesDatabase(SAPLAReducer(12), index="dbch")
                db.ingest(data)
                for i in range(3):
                    db.knn(data[i], 4)
        root = obs.recorder().root.children["cli.knn"]
        assert root.children  # db.ingest + knn.search recorded underneath
        assert root.wall_s >= 0.95 * root.child_wall_s()

    def test_disabled_pipeline_records_nothing(self):
        data = dataset(seed=4)
        db = SeriesDatabase(SAPLAReducer(12), index="dbch")
        db.ingest(data)
        db.knn(data[0], 3)
        snap = obs.registry().snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
        assert obs.recorder().tree() == []


class TestStorageInstrumentation:
    def test_page_io_counters(self, tmp_path):
        data = dataset(count=16, n=128, seed=5)
        with obs.capture() as session:
            db = DiskBackedDatabase(
                SAPLAReducer(12), tmp_path / "store.bin", index="dbch",
                page_size=512, cache_pages=2,
            )
            db.ingest(data)
            db.knn(data[0] + 0.1, 3)
        counters = session.report().counters
        assert counters["storage.page_writes"] > 0
        assert counters["storage.page_reads"] > 0
        # registry counters agree with the store's own accounting
        assert (
            counters["storage.page_reads"] + counters.get("storage.cache_hits", 0)
            == db.store.stats.total_accesses
        )
