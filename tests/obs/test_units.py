"""Duration display is milliseconds everywhere — pin the ``_s`` -> ``_ms`` rule.

``repro stats`` and ``repro experiment diff`` used to mix raw-seconds and
milliseconds rows in one table.  The fix is display-only: ``*_s`` duration
names render as ``*_ms`` scaled by 1000, ``*_per_s`` rates and ``*_ms``
names pass through, and stored report payloads never change.
"""

import pytest

from repro import obs
from repro.obs.registry import MetricsRegistry
from repro.obs.report import _ms_display
from repro.obs.spans import SpanRecorder

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def clean_state():
    prev_reg = obs.set_registry(MetricsRegistry(enabled=False))
    prev_rec = obs.set_recorder(SpanRecorder(enabled=False))
    yield
    obs.set_registry(prev_reg)
    obs.set_recorder(prev_rec)


class TestMsDisplay:
    def test_seconds_names_scale_to_ms(self):
        assert _ms_display("experiments.trial_wall_s") == (
            "experiments.trial_wall_ms",
            1000.0,
        )

    def test_rates_are_not_durations(self):
        assert _ms_display("inserts_per_s") == ("inserts_per_s", 1.0)

    def test_ms_names_pass_through(self):
        assert _ms_display("server.request_ms") == ("server.request_ms", 1.0)
        assert _ms_display("latency_p50_ms") == ("latency_p50_ms", 1.0)

    def test_non_duration_names_pass_through(self):
        assert _ms_display("knn.queries") == ("knn.queries", 1.0)


class TestSummaryRows:
    def sample_report(self):
        with obs.capture() as session:
            obs.observe("experiments.trial_wall_s", 0.25)
            obs.observe("experiments.trial_wall_s", 0.75)
            obs.observe("server.request_ms", 3.0)
        return session.report()

    def rows_by_metric(self, report):
        return {row["metric"]: row for row in report.summary_rows()}

    def test_seconds_histogram_renders_as_ms(self):
        rows = self.rows_by_metric(self.sample_report())
        assert "experiments.trial_wall_s" not in rows
        row = rows["experiments.trial_wall_ms"]
        assert row["kind"] == "histogram"
        assert "mean=500" in row["value"]
        assert "max=750" in row["value"]

    def test_ms_histogram_is_untouched(self):
        rows = self.rows_by_metric(self.sample_report())
        assert "mean=3" in rows["server.request_ms"]["value"]

    def test_stored_payload_keeps_seconds(self):
        # the normalization is display-only: round-tripped reports still
        # carry the catalogued ``_s`` name with raw-seconds values
        report = self.sample_report()
        payload = report.to_dict()
        hist = payload["histograms"]["experiments.trial_wall_s"]
        assert hist["mean"] == pytest.approx(0.5)
        assert "experiments.trial_wall_ms" not in payload["histograms"]
