"""Counter/gauge/histogram semantics and the disabled-mode no-op contract."""

import pytest

from repro import obs
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def clean_registry():
    """Run each test against a fresh, disabled default registry."""
    previous = obs.set_registry(MetricsRegistry(enabled=False))
    yield
    obs.set_registry(previous)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("knn.queries")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("knn.queries").inc(-1)

    def test_gauge_last_value_wins(self):
        g = Gauge("dbch.leaf_fill")
        g.set(2.0)
        g.set(3.5)
        assert g.value == 3.5

    def test_histogram_aggregates(self):
        h = Histogram("knn.verified_per_query")
        for v in (4, 10, 1):
            h.observe(v)
        assert h.count == 3
        assert h.total == 15.0
        assert h.min == 1.0
        assert h.max == 10.0
        assert h.mean == pytest.approx(5.0)


class TestRegistry:
    def test_same_name_same_instrument(self):
        reg = MetricsRegistry(enabled=True)
        assert reg.counter("knn.queries") is reg.counter("knn.queries")

    def test_undeclared_name_rejected(self):
        reg = MetricsRegistry(enabled=True)
        with pytest.raises(KeyError):
            reg.counter("not.in.catalog")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry(enabled=True)
        with pytest.raises(KeyError):
            reg.gauge("knn.queries")  # declared as a counter

    def test_snapshot_is_plain_data(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("knn.queries").inc(2)
        reg.gauge("dbch.leaf_fill").set(3.0)
        reg.histogram("knn.verified_per_query").observe(7)
        snap = reg.snapshot()
        assert snap["counters"] == {"knn.queries": 2}
        assert snap["gauges"] == {"dbch.leaf_fill": 3.0}
        assert snap["histograms"]["knn.verified_per_query"]["count"] == 1

    def test_reset_drops_instruments(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("knn.queries").inc()
        reg.reset()
        assert reg.snapshot()["counters"] == {}


class TestModuleHelpers:
    def test_disabled_calls_record_nothing(self):
        obs.count("knn.queries", 3)
        obs.gauge_set("dbch.leaf_fill", 1.0)
        obs.observe("knn.verified_per_query", 2.0)
        snap = obs.registry().snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_disabled_path_never_touches_instruments(self):
        """The no-op path must return before any instrument lookup."""

        class Exploding(MetricsRegistry):
            def counter(self, name):
                raise AssertionError("disabled count() reached the registry")

        previous = obs.set_registry(Exploding(enabled=False))
        try:
            obs.count("knn.queries")  # must not raise
        finally:
            obs.set_registry(previous)

    def test_disabled_count_allocates_nothing(self):
        """With collection off, count() must not allocate per call."""
        import gc
        import sys

        obs.count("knn.queries")  # warm up any lazy state
        gc.collect()
        gc.disable()
        try:
            before = sys.getallocatedblocks()
            for _ in range(100):
                obs.count("knn.queries")
            after = sys.getallocatedblocks()
        finally:
            gc.enable()
        # unrelated interpreter churn can move a block or two; 100 calls
        # allocating anything per call would move ~100+
        assert after - before < 20

    def test_enabled_calls_record(self):
        obs.enable()
        try:
            obs.count("knn.queries", 2)
            obs.observe("knn.verified_per_query", 4.0)
            snap = obs.registry().snapshot()
        finally:
            obs.disable()
        assert snap["counters"]["knn.queries"] == 2
        assert snap["histograms"]["knn.verified_per_query"]["mean"] == 4.0

    def test_capture_restores_disabled_flag(self):
        assert not obs.is_enabled()
        with obs.capture():
            assert obs.is_enabled()
            obs.count("knn.queries")
        assert not obs.is_enabled()
        # the collected data survives the exit for reporting
        assert obs.registry().snapshot()["counters"]["knn.queries"] == 1
