"""Satellite regression: metrics survive the engine's fork fan-out.

A ``knn_batch`` answered by worker processes must report the same counters
as an in-process run — worker-only metrics (``sapla.*`` recorded during
query reduction, ``dist.par.calls``) merge back via worker snapshots, while
the names the parent re-records itself (``knn.*``, ``engine.*``) are
excluded from the merge (:data:`repro.engine.parallel.RERECORDED_METRICS`)
so nothing is counted twice.  Worker *span trees* are the one documented
loss: per-process traces cannot merge, and the parent's enclosing
``engine.knn_batch`` span already covers the fan-out wall time.
"""

import numpy as np
import pytest

from repro import obs
from repro.engine import QueryOptions
from repro.engine.parallel import RERECORDED_METRICS
from repro.index import SeriesDatabase
from repro.obs.registry import MetricsRegistry
from repro.obs.report import RunReport
from repro.obs.spans import SpanRecorder
from repro.reduction import SAPLAReducer

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    prev_reg = obs.set_registry(MetricsRegistry(enabled=False))
    prev_rec = obs.set_recorder(SpanRecorder(enabled=False))
    yield
    obs.set_registry(prev_reg)
    obs.set_recorder(prev_rec)


def captured_counters(parallelism: int):
    rng = np.random.default_rng(42)
    data = rng.normal(size=(40, 48)).cumsum(axis=1)
    db = SeriesDatabase(SAPLAReducer(6), index=None)
    db.ingest(data)
    queries = data[:8] + 0.05
    with obs.capture():
        batch = db.knn_batch(queries, QueryOptions(k=4, parallelism=parallelism))
        report = RunReport.collect()
    return batch, report


def test_fanned_out_counters_match_in_process():
    local_batch, local = captured_counters(parallelism=1)
    fanned_batch, fanned = captured_counters(parallelism=2)
    assert fanned_batch.parallelism == 2  # the pool really forked
    for a, b in zip(local_batch.results, fanned_batch.results):
        assert a.ids == b.ids

    # identical counters, including worker-only names recorded while each
    # worker reduced its queries (sapla.*) and evaluated bounds (dist.*)
    assert fanned.counters == local.counters
    assert any(name.startswith("sapla.") for name in fanned.counters)
    assert fanned.counters["knn.queries"] == 8


def test_rerecorded_names_are_not_double_counted():
    _, fanned = captured_counters(parallelism=2)
    _, local = captured_counters(parallelism=1)
    # every exclusion-listed counter matches exactly — merging them from the
    # worker snapshots on top of the parent's own accounting would double it
    for name, value in local.counters.items():
        if any(
            name == e or (e.endswith(".") and name.startswith(e))
            for e in RERECORDED_METRICS
        ):
            assert fanned.counters[name] == value, name


def test_worker_span_trees_are_dropped_by_design():
    _, local = captured_counters(parallelism=1)
    _, fanned = captured_counters(parallelism=2)

    def span_names(nodes, prefix=""):
        out = set()
        for node in nodes:
            path = prefix + node["name"]
            out.add(path)
            out |= span_names(node.get("children", ()), path + ".")
        return out

    local_spans = span_names(local.spans)
    fanned_spans = span_names(fanned.spans)
    # the parent's own batch span is present either way...
    assert any("engine.knn_batch" in s for s in fanned_spans)
    # ...but per-query worker spans exist only in the in-process run
    assert any("sapla.transform" in s for s in local_spans)
    assert not any("sapla.transform" in s for s in fanned_spans)
