"""Histogram percentiles, snapshot merging, and the trial-ingest contract."""

import pytest

from repro import obs
from repro.obs.registry import SAMPLE_CAP, Histogram, MetricsRegistry
from repro.obs.report import COMPATIBLE_SCHEMAS, SCHEMA_VERSION, RunReport
from repro.obs.spans import SpanRecorder

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    prev_reg = obs.set_registry(MetricsRegistry(enabled=False))
    prev_rec = obs.set_recorder(SpanRecorder(enabled=False))
    yield
    obs.set_registry(prev_reg)
    obs.set_recorder(prev_rec)


class TestPercentiles:
    def test_nearest_rank_exact_below_cap(self):
        h = Histogram("knn.verified_per_query")
        for value in range(1, 101):  # 1..100, one observation each
            h.observe(float(value))
        assert h.percentile(50.0) == 50.0
        assert h.percentile(90.0) == 90.0
        assert h.percentile(99.0) == 99.0
        assert h.percentile(100.0) == 100.0

    def test_empty_histogram_percentile_is_zero(self):
        assert Histogram("knn.verified_per_query").percentile(50.0) == 0.0

    def test_decimation_beyond_cap_stays_bounded_and_close(self):
        h = Histogram("knn.verified_per_query")
        n = SAMPLE_CAP * 4
        for value in range(n):
            h.observe(float(value))
        assert h.count == n
        assert len(h.samples) < SAMPLE_CAP  # bounded memory
        assert h.min == 0.0 and h.max == float(n - 1)
        # stride-doubled decimation keeps the sample evenly spread, so
        # percentiles stay within a few percent of the true values
        assert h.percentile(50.0) == pytest.approx(n / 2, rel=0.05)
        assert h.percentile(99.0) == pytest.approx(n * 0.99, rel=0.05)

    def test_snapshot_reports_percentile_fields(self):
        registry = MetricsRegistry(enabled=True)
        for value in (1.0, 2.0, 3.0, 10.0):
            registry.histogram("knn.verified_per_query").observe(value)
        snap = registry.snapshot()["histograms"]["knn.verified_per_query"]
        assert snap["p50"] == 2.0
        assert snap["p90"] == 10.0
        assert snap["p99"] == 10.0

    def test_summary_rows_render_percentiles(self):
        with obs.capture():
            obs.observe("knn.verified_per_query", 4.0)
            report = RunReport.collect()
        (row,) = [r for r in report.summary_rows() if r["kind"] == "histogram"]
        assert "p50=4" in row["value"] and "p99=4" in row["value"]


class TestMergeSnapshot:
    def incoming(self):
        other = MetricsRegistry(enabled=True)
        other.counter("knn.queries").inc(5)
        other.gauge("engine.parallelism").set(3.0)
        for value in (1.0, 3.0):
            other.histogram("knn.verified_per_query").observe(value)
        return other.snapshot()

    def test_counters_add_gauges_overwrite_histograms_fold(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("knn.queries").inc(2)
        registry.gauge("engine.parallelism").set(1.0)
        registry.histogram("knn.verified_per_query").observe(10.0)

        registry.merge_snapshot(self.incoming())

        snap = registry.snapshot()
        assert snap["counters"]["knn.queries"] == 7
        assert snap["gauges"]["engine.parallelism"] == 3.0
        h = snap["histograms"]["knn.verified_per_query"]
        assert h["count"] == 3
        assert h["sum"] == 14.0
        assert h["min"] == 1.0 and h["max"] == 10.0

    def test_exclude_exact_name_and_dotted_prefix(self):
        other = MetricsRegistry(enabled=True)
        other.counter("knn.queries").inc(5)
        other.counter("knn.pruned.aligned").inc(9)
        other.counter("sapla.transforms").inc(2)

        registry = MetricsRegistry(enabled=True)
        registry.merge_snapshot(
            other.snapshot(), exclude=("knn.queries", "knn.pruned.")
        )
        counters = registry.snapshot()["counters"]
        assert "knn.queries" not in counters
        assert "knn.pruned.aligned" not in counters
        assert counters["sapla.transforms"] == 2

    def test_empty_incoming_histogram_ignored(self):
        registry = MetricsRegistry(enabled=True)
        registry.merge_snapshot({"histograms": {"knn.verified_per_query": {"count": 0}}})
        assert registry.snapshot()["histograms"] == {}


class TestSchemaCompat:
    def test_v1_reports_still_load(self):
        assert "repro.obs/1" in COMPATIBLE_SCHEMAS
        payload = {
            "schema": "repro.obs/1",
            "meta": {},
            "counters": {"knn.queries": 2},
            "gauges": {},
            # v1 histograms predate the percentile fields
            "histograms": {
                "knn.verified_per_query": {
                    "count": 2, "sum": 6.0, "min": 2.0, "max": 4.0, "mean": 3.0,
                }
            },
            "spans": [],
        }
        report = RunReport.from_dict(payload)
        assert report.counters["knn.queries"] == 2
        (row,) = [r for r in report.summary_rows() if r["kind"] == "histogram"]
        assert "p50=" not in row["value"]  # renders without the missing fields
        names = {r["name"] for r in report.trial_metrics()}
        assert "knn.verified_per_query/mean" in names
        assert "knn.verified_per_query/p50" not in names

    def test_current_schema_round_trips(self):
        with obs.capture():
            obs.observe("knn.verified_per_query", 1.0)
            report = RunReport.collect()
        again = RunReport.from_json(report.to_json())
        assert again.schema == SCHEMA_VERSION
        assert again.histograms == report.histograms


class TestTrialMetricsContract:
    def test_flattening_kinds_and_order(self):
        with obs.capture():
            obs.count("knn.queries", 3)
            obs.gauge_set("engine.parallelism", 2.0)
            obs.observe("knn.verified_per_query", 5.0)
            with obs.span("bench.run"):
                pass
            report = RunReport.collect()
        rows = report.trial_metrics()
        assert rows == sorted(rows, key=lambda r: (r["kind"], r["name"]))
        by_name = {r["name"]: r for r in rows}
        assert by_name["knn.queries"]["kind"] == "counter"
        assert by_name["knn.queries"]["value"] == 3.0
        assert by_name["engine.parallelism"]["kind"] == "gauge"
        for field in RunReport.HISTOGRAM_FIELDS:
            assert by_name[f"knn.verified_per_query/{field}"]["kind"] == "histogram"
        assert by_name["knn.verified_per_query/p50"]["value"] == 5.0
        assert by_name["bench.run/calls"]["kind"] == "span"
        assert by_name["bench.run/calls"]["value"] == 1.0
