"""Span nesting, aggregation, timing accumulation, and no-op behavior."""

import time

import pytest

from repro import obs
from repro.obs.spans import Span, SpanRecorder, _NOOP

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def clean_recorder():
    """Run each test against a fresh, disabled default recorder."""
    previous = obs.set_recorder(SpanRecorder(enabled=False))
    yield
    obs.set_recorder(previous)


class TestNesting:
    def test_spans_nest_under_the_active_span(self):
        rec = SpanRecorder(enabled=True)
        with rec.span("cli.knn"):
            with rec.span("db.ingest"):
                pass
            with rec.span("knn.search"):
                pass
        tree = rec.tree()
        assert [n["name"] for n in tree] == ["cli.knn"]
        assert sorted(c["name"] for c in tree[0]["children"]) == ["db.ingest", "knn.search"]

    def test_same_name_aggregates_not_appends(self):
        rec = SpanRecorder(enabled=True)
        for _ in range(5):
            with rec.span("knn.search"):
                pass
        tree = rec.tree()
        assert len(tree) == 1
        assert tree[0]["calls"] == 5

    def test_times_accumulate_and_cover_children(self):
        rec = SpanRecorder(enabled=True)
        with rec.span("cli.knn"):
            with rec.span("knn.search"):
                time.sleep(0.01)
        root = rec.root.children["cli.knn"]
        child = root.children["knn.search"]
        assert child.wall_s >= 0.009
        assert root.wall_s >= child.wall_s
        assert root.child_wall_s() == pytest.approx(child.wall_s)

    def test_exception_still_closes_span(self):
        rec = SpanRecorder(enabled=True)
        with pytest.raises(RuntimeError):
            with rec.span("cli.knn"):
                raise RuntimeError("boom")
        assert rec.root.children["cli.knn"].calls == 1
        assert rec._stack == [rec.root]

    def test_undeclared_span_name_rejected(self):
        rec = SpanRecorder(enabled=True)
        with pytest.raises(KeyError):
            rec.span("not.a.span")

    def test_counter_name_is_not_a_span(self):
        rec = SpanRecorder(enabled=True)
        with pytest.raises(KeyError):
            rec.span("knn.queries")


class TestDisabledMode:
    def test_disabled_span_is_the_shared_noop(self):
        """span() with collection off returns one shared object — it cannot
        allocate anything per call."""
        assert obs.span("cli.knn") is _NOOP
        assert obs.span("knn.search") is obs.span("db.ingest")

    def test_disabled_span_records_nothing(self):
        with obs.span("cli.knn"):
            pass
        assert obs.recorder().tree() == []


class TestSerialisation:
    def test_round_trip(self):
        rec = SpanRecorder(enabled=True)
        with rec.span("cli.knn"):
            with rec.span("knn.search"):
                pass
        payload = rec.tree()[0]
        rebuilt = Span.from_dict(payload)
        assert rebuilt.to_dict() == payload

    def test_reset_clears_tree_and_stack(self):
        rec = SpanRecorder(enabled=True)
        with rec.span("cli.knn"):
            pass
        rec.reset()
        assert rec.tree() == []
        assert rec._stack == [rec.root]
