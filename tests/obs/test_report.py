"""RunReport collection, JSON round-trip, and schema checking."""

import json

import pytest

from repro import obs
from repro.obs.registry import MetricsRegistry
from repro.obs.report import SCHEMA_VERSION, RunReport
from repro.obs.spans import SpanRecorder

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def clean_state():
    """Fresh default registry + recorder per test."""
    prev_reg = obs.set_registry(MetricsRegistry(enabled=False))
    prev_rec = obs.set_recorder(SpanRecorder(enabled=False))
    yield
    obs.set_registry(prev_reg)
    obs.set_recorder(prev_rec)


def collect_sample() -> RunReport:
    with obs.capture() as session:
        obs.count("knn.queries", 3)
        obs.gauge_set("dbch.leaf_fill", 3.25)
        obs.observe("knn.verified_per_query", 12.0)
        with obs.span("cli.knn"):
            with obs.span("knn.search"):
                pass
    return session.report(meta={"dataset": "Adiac", "k": 4})


class TestCollect:
    def test_snapshot_contents(self):
        report = collect_sample()
        assert report.schema == SCHEMA_VERSION
        assert report.created_unix > 0
        assert report.meta == {"dataset": "Adiac", "k": 4}
        assert report.counters["knn.queries"] == 3
        assert report.gauges["dbch.leaf_fill"] == 3.25
        assert report.histograms["knn.verified_per_query"]["count"] == 1
        assert report.spans[0]["name"] == "cli.knn"
        assert report.spans[0]["children"][0]["name"] == "knn.search"


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self):
        report = collect_sample()
        rebuilt = RunReport.from_json(report.to_json())
        assert rebuilt.to_dict() == report.to_dict()

    def test_save_and_load(self, tmp_path):
        report = collect_sample()
        path = report.save(tmp_path / "run.json")
        loaded = RunReport.load(path)
        assert loaded.counters == report.counters
        assert loaded.spans == report.spans

    def test_file_is_valid_json_with_schema(self, tmp_path):
        path = collect_sample().save(tmp_path / "run.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA_VERSION

    def test_unknown_schema_rejected(self):
        report = collect_sample()
        payload = report.to_dict()
        payload["schema"] = "repro.obs/999"
        with pytest.raises(ValueError):
            RunReport.from_dict(payload)

    def test_missing_schema_rejected(self):
        with pytest.raises(ValueError):
            RunReport.from_dict({"counters": {}})


class TestSummaryRows:
    def test_rows_cover_every_instrument(self):
        report = collect_sample()
        rows = {r["metric"]: r["kind"] for r in report.summary_rows()}
        assert rows["knn.queries"] == "counter"
        assert rows["dbch.leaf_fill"] == "gauge"
        assert rows["knn.verified_per_query"] == "histogram"
