"""Tests for the error-bounded (user-defined max deviation) reducer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reduction import ErrorBoundedPLA, SAPLAReducer

finite = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestGuarantee:
    @given(
        st.lists(finite, min_size=1, max_size=120),
        st.floats(min_value=0.01, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_bound_always_respected(self, values, bound):
        """The defining property: every point's error stays within the bound."""
        series = np.asarray(values)
        reducer = ErrorBoundedPLA(bound)
        recon = reducer.reconstruct(reducer.transform(series))
        assert float(np.abs(series - recon).max()) <= bound + 1e-9

    def test_zero_bound_handles_exact_lines(self):
        series = np.linspace(0, 5, 30)
        rep = ErrorBoundedPLA(0.0).transform(series)
        assert rep.n_segments == 1

    def test_zero_bound_on_noise_gives_tiny_segments(self):
        series = np.random.default_rng(0).normal(size=20)
        rep = ErrorBoundedPLA(0.0).transform(series)
        assert all(seg.length <= 2 for seg in rep)


class TestSegmentEconomy:
    def test_looser_bound_fewer_segments(self):
        series = np.random.default_rng(1).normal(size=200).cumsum()
        tight = ErrorBoundedPLA(0.2).transform(series).n_segments
        loose = ErrorBoundedPLA(2.0).transform(series).n_segments
        assert loose < tight

    def test_piecewise_linear_signal_compressed_maximally(self):
        series = np.concatenate([np.linspace(0, 10, 50), np.linspace(10, 0, 50)])
        rep = ErrorBoundedPLA(0.01).transform(series)
        assert rep.n_segments <= 3

    def test_compression_ratio(self):
        series = np.linspace(0, 10, 100)
        ratio = ErrorBoundedPLA(0.5).compression_ratio(series)
        assert ratio == pytest.approx(3 / 100)

    def test_greedy_matches_sapla_quality_at_same_budget(self):
        """At the segment count the greedy method chose, SAPLA achieves a
        comparable (usually better) max deviation — the duality the paper
        notes between the two formulations."""
        series = np.random.default_rng(2).normal(size=256).cumsum()
        bound = 1.5
        greedy = ErrorBoundedPLA(bound).transform(series)
        sapla = SAPLAReducer(3 * greedy.n_segments).transform(series)
        sapla_dev = float(np.abs(series - sapla.reconstruct()).max())
        assert sapla_dev <= bound * 2.5


class TestPolynomialDegrees:
    def test_degree_bound_respected(self):
        series = np.random.default_rng(3).normal(size=150).cumsum()
        for degree in (2, 3):
            reducer = ErrorBoundedPLA(0.8, degree=degree)
            pieces = reducer.transform_poly(series)
            recon = reducer.reconstruct_poly(pieces)
            assert float(np.abs(series - recon).max()) <= 0.8 + 1e-9

    def test_higher_degree_compresses_curvature_better(self):
        t = np.linspace(-1, 1, 200)
        series = 4 * t**2  # pure curvature
        linear = len(ErrorBoundedPLA(0.1, degree=1).transform(series))
        quadratic = len(ErrorBoundedPLA(0.1, degree=2).transform_poly(series))
        assert quadratic < linear
        assert quadratic == 1  # a single quadratic fits exactly

    def test_transform_requires_degree_one(self):
        with pytest.raises(ValueError):
            ErrorBoundedPLA(1.0, degree=2).transform(np.arange(10.0))

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            ErrorBoundedPLA(1.0, degree=0)
        with pytest.raises(ValueError):
            ErrorBoundedPLA(1.0, degree=9)

    def test_poly_pieces_cover_series(self):
        series = np.random.default_rng(4).normal(size=77)
        pieces = ErrorBoundedPLA(0.5, degree=2).transform_poly(series)
        assert pieces[0][0] == 0
        assert pieces[-1][1] == 76
        for (_, prev_end, _), (next_start, _, _) in zip(pieces, pieces[1:]):
            assert next_start == prev_end + 1


class TestValidation:
    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            ErrorBoundedPLA(-1.0)

    def test_bad_input_rejected(self):
        reducer = ErrorBoundedPLA(1.0)
        with pytest.raises(ValueError):
            reducer.transform(np.array([]))
        with pytest.raises(ValueError):
            reducer.transform(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            reducer.transform(np.array([1.0, np.nan]))

    def test_single_point(self):
        rep = ErrorBoundedPLA(1.0).transform(np.array([4.0]))
        assert rep.n_segments == 1
        assert rep.reconstruct()[0] == pytest.approx(4.0)

    def test_repr(self):
        assert "0.5" in repr(ErrorBoundedPLA(0.5))
