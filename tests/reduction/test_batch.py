"""Batch transforms must match the per-row reducers exactly."""

import numpy as np
import pytest

from repro.index import SeriesDatabase
from repro.reduction import PAA, PLA
from repro.reduction.batch import batch_paa, batch_pla

DATA = np.random.default_rng(0).normal(size=(12, 97)).cumsum(axis=1)


class TestBatchPAA:
    def test_matches_per_row(self):
        batch = batch_paa(DATA, 12)
        reducer = PAA(12)
        for row, rep in zip(DATA, batch):
            ref = reducer.transform(row)
            assert rep.right_endpoints == ref.right_endpoints
            np.testing.assert_allclose(rep.reconstruct(), ref.reconstruct(), atol=1e-12)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            batch_paa(DATA[0], 12)


class TestBatchPLA:
    def test_matches_per_row(self):
        batch = batch_pla(DATA, 12)
        reducer = PLA(12)
        for row, rep in zip(DATA, batch):
            ref = reducer.transform(row)
            assert rep.right_endpoints == ref.right_endpoints
            np.testing.assert_allclose(rep.reconstruct(), ref.reconstruct(), atol=1e-9)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            batch_pla(DATA[0], 12)

    def test_short_series(self):
        tiny = np.random.default_rng(1).normal(size=(3, 5))
        batch = batch_pla(tiny, 12)
        reducer = PLA(12)
        for row, rep in zip(tiny, batch):
            np.testing.assert_allclose(
                rep.reconstruct(), reducer.transform(row).reconstruct(), atol=1e-9
            )


class TestIngestIntegration:
    def test_precomputed_batch_feeds_ingest(self):
        reps = batch_paa(DATA, 12)
        db = SeriesDatabase(PAA(12), index="dbch")
        db.ingest(DATA, representations=reps)
        result = db.knn(DATA[3], 1)
        assert result.ids == [3]
