"""Tests for automatic method selection."""

import numpy as np
import pytest

from repro.reduction.auto import select_method


def collection(kind, count=12, n=96, seed=0):
    rng = np.random.default_rng(seed)
    if kind == "linear":
        slopes = rng.uniform(-1, 1, size=count)
        return np.outer(slopes, np.arange(n, dtype=float)) + rng.normal(
            scale=0.01, size=(count, n)
        )
    if kind == "steps":
        data = np.zeros((count, n))
        for row in data:
            boundaries = np.sort(rng.choice(np.arange(8, n - 8), 3, replace=False))
            level = 0.0
            start = 0
            for b in list(boundaries) + [n]:
                row[start:b] = level
                level += rng.normal(scale=3.0)
                start = b
        return data + rng.normal(scale=0.01, size=(count, n))
    raise ValueError(kind)


class TestSelectMethod:
    def test_linear_data_prefers_a_linear_method(self):
        report = select_method(collection("linear"), criterion="max_deviation")
        assert report.best in ("SAPLA", "PLA", "CHEBY")
        assert report.scores[report.best] == min(report.scores.values())

    def test_step_data_prefers_constants(self):
        report = select_method(collection("steps"), criterion="max_deviation")
        assert report.best in ("APCA", "SAPLA")

    def test_time_criterion_picks_a_cheap_method(self):
        report = select_method(collection("linear"), criterion="time")
        assert report.best in ("PLA", "PAA", "CHEBY")

    def test_tightness_criterion_runs(self):
        report = select_method(collection("linear", seed=1), criterion="tightness")
        assert set(report.scores) == {"SAPLA", "APCA", "PLA", "PAA", "CHEBY"}
        assert all(score >= 0 for score in report.scores.values())

    def test_reducer_factory(self):
        report = select_method(collection("linear", seed=2))
        reducer = report.reducer(12)
        assert reducer.name == report.best

    def test_validation(self):
        with pytest.raises(ValueError):
            select_method(np.zeros(8))
        with pytest.raises(ValueError):
            select_method(collection("linear"), criterion="bogus")
        with pytest.raises(ValueError):
            select_method(collection("linear"), candidates=("NOPE",))

    def test_deterministic(self):
        a = select_method(collection("steps", seed=3), seed=5)
        b = select_method(collection("steps", seed=3), seed=5)
        assert a.best == b.best
        assert a.scores == pytest.approx(b.scores)
