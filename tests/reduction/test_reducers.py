"""Shared behavioural tests across every reducer, plus Table 1 conventions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segment import LinearSegmentation
from repro.reduction import REDUCERS, CHEBY, PAA, PLA, SAX, APCA, APLA, PAALM, SAPLAReducer

rng = np.random.default_rng(42)
SERIES = rng.normal(size=96).cumsum()

SEGMENT_BASED = [SAPLAReducer, APLA, APCA, PLA, PAA, PAALM]
ALL = SEGMENT_BASED + [CHEBY, SAX]

# Table 1's coefficient cost per segment
EXPECTED_COST = {
    "SAPLA": 3,
    "APLA": 3,
    "APCA": 2,
    "PLA": 2,
    "PAA": 1,
    "PAALM": 1,
    "CHEBY": 1,
    "SAX": 1,
}


@pytest.mark.parametrize("cls", ALL, ids=lambda c: c.name)
class TestReducerContract:
    def test_reconstruction_shape(self, cls):
        reducer = cls(n_coefficients=12)
        recon = reducer.reconstruct(reducer.transform(SERIES))
        assert recon.shape == SERIES.shape
        assert np.isfinite(recon).all()

    def test_table1_coefficient_cost(self, cls):
        assert cls.coefficients_per_segment == EXPECTED_COST[cls.name]

    def test_table1_segment_count(self, cls):
        reducer = cls(n_coefficients=12)
        assert reducer.n_segments == 12 // EXPECTED_COST[cls.name]

    def test_rejects_empty_and_2d(self, cls):
        reducer = cls(n_coefficients=12)
        with pytest.raises(ValueError):
            reducer.transform(np.array([]))
        with pytest.raises(ValueError):
            reducer.transform(np.zeros((4, 4)))

    def test_rejects_too_small_budget(self, cls):
        with pytest.raises(ValueError):
            cls(n_coefficients=0)

    def test_max_deviation_nonnegative(self, cls):
        reducer = cls(n_coefficients=12)
        assert reducer.max_deviation(SERIES) >= 0.0

    def test_short_series(self, cls):
        short = np.array([1.0, 2.0, 1.5])
        reducer = cls(n_coefficients=12)
        recon = reducer.reconstruct(reducer.transform(short))
        assert recon.shape == short.shape

    def test_registry_contains_method(self, cls):
        assert REDUCERS[cls.name] is cls


@pytest.mark.parametrize("cls", SEGMENT_BASED, ids=lambda c: c.name)
class TestSegmentBased:
    def test_returns_valid_segmentation(self, cls):
        rep = cls(n_coefficients=12).transform(SERIES)
        assert isinstance(rep, LinearSegmentation)
        assert rep.length == len(SERIES)

    def test_segment_budget_respected(self, cls):
        reducer = cls(n_coefficients=12)
        rep = reducer.transform(SERIES)
        assert rep.n_segments <= reducer.n_segments

    def test_constant_segments_for_constant_methods(self, cls):
        if cls.name not in ("APCA", "PAA", "PAALM"):
            pytest.skip("linear method")
        rep = cls(n_coefficients=12).transform(SERIES)
        assert all(seg.a == 0.0 for seg in rep)


class TestQualityOrdering:
    """The paper's headline quality relationships (Figs. 1, 12a)."""

    @staticmethod
    def _deviation_sum(rep, series):
        return sum(
            float(np.abs(series[s.start : s.end + 1] - s.reconstruct()).max()) for s in rep
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_apla_optimal_sum_at_equal_segment_count(self, seed):
        """APLA minimises the sum of segment max deviations; at the same
        segment count no other linear segmentation can beat it."""
        series = np.random.default_rng(seed).normal(size=64).cumsum()
        apla = self._deviation_sum(APLA(12).transform(series), series)  # N = 4
        pla = self._deviation_sum(PLA(8).transform(series), series)  # N = 4
        sapla = self._deviation_sum(SAPLAReducer(12).transform(series), series)  # N = 4
        assert apla <= pla + 1e-9
        assert apla <= sapla + 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_sapla_close_to_apla(self, seed):
        """SAPLA sacrifices only a little max deviation vs the optimal APLA."""
        series = np.random.default_rng(seed + 10).normal(size=64).cumsum()
        apla = APLA(12).max_deviation(series)
        sapla = SAPLAReducer(12).max_deviation(series)
        assert sapla <= max(2.5 * apla, apla + 1.0)

    @pytest.mark.parametrize("seed", range(5))
    def test_adaptive_beats_equal_on_bursty_series(self, seed):
        """Adaptive segmentation wins on series with localised structure."""
        rng = np.random.default_rng(seed + 20)
        series = np.zeros(120)
        series[40:44] = 12.0  # a burst an equal-length grid straddles
        series += rng.normal(scale=0.1, size=120)
        assert SAPLAReducer(12).max_deviation(series) <= PAA(12).max_deviation(series) + 1e-9


class TestAPLA:
    def test_optimal_on_tiny_series_vs_bruteforce(self):
        from itertools import combinations

        from repro.core.linefit import SeriesStats
        from repro.core.segment import Segment

        series = np.array([0.0, 1.0, 5.0, 2.0, 2.5, 8.0, 7.0, 3.0])
        n, target = len(series), 3
        stats = SeriesStats(series)

        def cost(boundaries):
            pts = [-1] + list(boundaries) + [n - 1]
            total = 0.0
            for s, e in zip(pts, pts[1:]):
                seg = Segment.fit(stats, s + 1, e)
                total += float(
                    np.abs(series[s + 1 : e + 1] - seg.reconstruct()).max()
                )
            return total

        brute = min(cost(b) for b in combinations(range(n - 1), target - 1))
        rep = APLA(n_coefficients=3 * target).transform(series)
        got = sum(
            float(np.abs(series[s.start : s.end + 1] - s.reconstruct()).max()) for s in rep
        )
        assert got <= brute + 1e-9

    def test_error_matrix_values(self):
        from repro.reduction.apla import error_matrix

        series = np.array([0.0, 1.0, 2.0, 10.0])
        matrix = error_matrix(series)
        assert matrix[0, 2] == pytest.approx(0.0, abs=1e-12)  # perfect line
        assert matrix[0, 0] == 0.0
        assert matrix[0, 3] > 1.0

    def test_error_matrix_matches_direct_computation(self):
        from repro.core.linefit import SeriesStats
        from repro.core.segment import Segment
        from repro.reduction.apla import error_matrix

        series = np.random.default_rng(1).normal(size=20)
        stats = SeriesStats(series)
        matrix = error_matrix(series)
        for i in range(0, 20, 3):
            for j in range(i, 20, 4):
                seg = Segment.fit(stats, i, j)
                ref = float(np.abs(series[i : j + 1] - seg.reconstruct()).max())
                assert matrix[i, j] == pytest.approx(ref, abs=1e-9)


class TestAPCA:
    def test_perfect_steps_recovered(self):
        series = np.concatenate([np.full(20, 1.0), np.full(20, 5.0), np.full(20, -2.0)])
        rep = APCA(n_coefficients=6).transform(series)  # N = 3
        assert rep.n_segments == 3
        assert APCA(n_coefficients=6).max_deviation(series) == pytest.approx(0.0, abs=1e-9)

    def test_adaptive_boundaries_follow_steps(self):
        series = np.concatenate([np.full(50, 0.0), np.full(10, 10.0)])
        rep = APCA(n_coefficients=4).transform(series)
        assert 49 in rep.right_endpoints


class TestPLAandPAA:
    def test_pla_exact_on_straight_line(self):
        series = np.linspace(0, 10, 50)
        assert PLA(n_coefficients=4).max_deviation(series) == pytest.approx(0.0, abs=1e-9)

    def test_paa_segments_are_means(self):
        series = np.arange(8.0)
        rep = PAA(n_coefficients=4).transform(series)
        assert [seg.b for seg in rep] == pytest.approx([0.5, 2.5, 4.5, 6.5])

    def test_equal_length_within_one(self):
        rep = PLA(n_coefficients=6).transform(SERIES)
        lengths = [seg.length for seg in rep]
        assert max(lengths) - min(lengths) <= 1


class TestCHEBY:
    def test_exact_on_low_degree_polynomial(self):
        x = np.linspace(-1, 1, 40)
        series = 2 * x**2 - x + 1
        assert CHEBY(n_coefficients=5).max_deviation(series) == pytest.approx(0.0, abs=1e-8)

    def test_more_coefficients_reduce_error(self):
        few = CHEBY(n_coefficients=4).max_deviation(SERIES)
        many = CHEBY(n_coefficients=24).max_deviation(SERIES)
        assert many <= few + 1e-9

    def test_residual_norm_recorded(self):
        rep = CHEBY(n_coefficients=6).transform(SERIES)
        recon = CHEBY(n_coefficients=6).reconstruct(rep)
        assert rep.residual_norm == pytest.approx(float(np.linalg.norm(SERIES - recon)), rel=1e-6)


class TestSAX:
    def test_symbols_within_alphabet(self):
        sax = SAX(n_coefficients=8, alphabet_size=4)
        rep = sax.transform(SERIES)
        assert rep.symbols.min() >= 0
        assert rep.symbols.max() < 4

    def test_mindist_zero_for_identical(self):
        sax = SAX(n_coefficients=8)
        rep = sax.transform(SERIES)
        assert sax.mindist(rep, rep) == 0.0

    def test_mindist_lower_bounds_euclidean_znormalised(self):
        sax = SAX(n_coefficients=8, alphabet_size=6)
        rng = np.random.default_rng(3)
        for _ in range(20):
            a = rng.normal(size=64)
            b = rng.normal(size=64)
            a = (a - a.mean()) / a.std()
            b = (b - b.mean()) / b.std()
            dist = float(np.linalg.norm(a - b))
            assert sax.mindist(sax.transform(a), sax.transform(b)) <= dist + 1e-9

    def test_mindist_requires_same_layout(self):
        sax = SAX(n_coefficients=8)
        other = SAX(n_coefficients=4)
        with pytest.raises(ValueError):
            sax.mindist(sax.transform(SERIES), other.transform(SERIES))

    def test_alphabet_validation(self):
        with pytest.raises(ValueError):
            SAX(n_coefficients=8, alphabet_size=1)


class TestPAALM:
    def test_smoothing_reduces_variance(self):
        from repro.reduction.paalm import lagrangian_smooth

        noisy = np.random.default_rng(0).normal(size=200)
        smoothed = lagrangian_smooth(noisy, lam=10.0)
        assert smoothed.var() < noisy.var()

    def test_lambda_zero_is_plain_paa(self):
        series = SERIES
        paalm = PAALM(n_coefficients=12, lam=0.0).transform(series)
        paa = PAA(n_coefficients=12).transform(series)
        got = [seg.b for seg in paalm]
        ref = [seg.b for seg in paa]
        assert got == pytest.approx(ref, abs=1e-9)

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            PAALM(n_coefficients=12, lam=-1.0)

    def test_worse_max_deviation_than_paa_on_noisy_data(self):
        """PAALM's pattern orientation costs max deviation (the paper's point)."""
        noisy = np.random.default_rng(5).normal(size=240) * 3
        assert (
            PAALM(n_coefficients=12, lam=20.0).max_deviation(noisy)
            >= PAA(n_coefficients=12).max_deviation(noisy) - 1e-6
        )


@given(st.integers(min_value=3, max_value=36), st.integers(min_value=4, max_value=64))
@settings(max_examples=25, deadline=None)
def test_all_reducers_cover_any_series(m, n):
    series = np.random.default_rng(m * n).normal(size=n).cumsum()
    for cls in ALL:
        reducer = cls(n_coefficients=m)
        recon = reducer.reconstruct(reducer.transform(series))
        assert recon.shape == series.shape
