"""Tests for the 1d-SAX (mean + slope symbols) extension."""

import numpy as np
import pytest

from repro.data import z_normalize
from repro.distance import euclidean
from repro.reduction import SAX, OneDSAX

rng = np.random.default_rng(0)
SERIES = z_normalize(rng.normal(size=128).cumsum())


class TestOneDSAX:
    def test_symbols_within_alphabets(self):
        reducer = OneDSAX(8, mean_alphabet=4, slope_alphabet=4)
        rep = reducer.transform(SERIES)
        assert rep.mean_symbols.min() >= 0 and rep.mean_symbols.max() < 4
        assert rep.slope_symbols.min() >= 0 and rep.slope_symbols.max() < 4
        assert len(rep.bounds) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            OneDSAX(8, mean_alphabet=1)
        with pytest.raises(ValueError):
            OneDSAX(8, slope_alphabet=1)

    def test_reconstruction_shape(self):
        reducer = OneDSAX(8)
        recon = reducer.reconstruct(reducer.transform(SERIES))
        assert recon.shape == SERIES.shape
        assert np.isfinite(recon).all()

    def test_slopes_improve_on_plain_sax_for_trends(self):
        """On trending data, slope symbols cut reconstruction error."""
        trend = z_normalize(np.linspace(0, 10, 128) + rng.normal(scale=0.05, size=128))
        one_d = OneDSAX(8, mean_alphabet=8, slope_alphabet=8)
        plain = SAX(8, alphabet_size=8)
        err_1d = float(np.abs(trend - one_d.reconstruct(one_d.transform(trend))).max())
        err_sax = float(np.abs(trend - plain.reconstruct(plain.transform(trend))).max())
        assert err_1d <= err_sax + 1e-9

    def test_mindist_lower_bounds_euclidean(self):
        reducer = OneDSAX(8, mean_alphabet=6)
        for seed in range(15):
            r = np.random.default_rng(seed + 100)
            a = z_normalize(r.normal(size=96))
            b = z_normalize(r.normal(size=96))
            bound = reducer.mindist(reducer.transform(a), reducer.transform(b))
            assert bound <= euclidean(a, b) + 1e-9

    def test_mindist_zero_for_identical(self):
        reducer = OneDSAX(8)
        rep = reducer.transform(SERIES)
        assert reducer.mindist(rep, rep) == 0.0

    def test_mindist_layout_mismatch(self):
        reducer = OneDSAX(8)
        other = OneDSAX(4)
        with pytest.raises(ValueError):
            reducer.mindist(reducer.transform(SERIES), other.transform(SERIES))

    def test_identical_trends_share_slope_symbols(self):
        up = z_normalize(np.linspace(0, 1, 64))
        reducer = OneDSAX(4, slope_alphabet=4)
        rep = reducer.transform(up)
        assert len(set(rep.slope_symbols.tolist())) == 1  # uniform slope
