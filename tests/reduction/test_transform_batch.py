"""``transform_batch`` must be bit-identical to per-series ``transform``.

The write side (ingest, insert_batch, WAL replay, bulk load) batches every
reduction through :meth:`repro.reduction.Reducer.transform_batch`; its
contract is *bit* equality with the scalar path, not closeness, so a
database built either way answers every query identically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.index import SeriesDatabase
from repro.reduction import REDUCERS, reduce_rows
from repro.reduction.base import Reducer

REDUCER_NAMES = sorted(REDUCERS)
LENGTHS = (1, 2, 3, 7, 17, 64, 130)
BUDGETS = (4, 12, 24)

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)


def _matrix(rng, count, n):
    return np.cumsum(rng.normal(size=(count, n)), axis=1)


def _rep_key(rep):
    """A bit-exact, cache-insensitive key for any representation."""
    segments = getattr(rep, "segments", None)
    if segments is not None:
        return tuple(
            (s.start, s.end, np.float64(s.a).tobytes(), np.float64(s.b).tobytes())
            for s in segments
        )
    coefficients = getattr(rep, "coefficients", None)
    if coefficients is not None:
        return np.asarray(coefficients, dtype=float).tobytes()
    symbols = getattr(rep, "symbols", None)
    if symbols is not None:
        return tuple(symbols)
    raise TypeError(f"no bit-exact key for {type(rep).__name__}")


class TestEquivalenceGrid:
    @pytest.mark.parametrize("name", REDUCER_NAMES)
    @pytest.mark.parametrize("budget", BUDGETS)
    def test_bit_identical_across_lengths(self, name, budget):
        rng = np.random.default_rng(hash((name, budget)) % 2**32)
        reducer = REDUCERS[name](budget)
        for n in LENGTHS:
            matrix = _matrix(rng, 5, n)
            batch = reducer.transform_batch(matrix)
            for row, rep in zip(matrix, batch):
                assert _rep_key(rep) == _rep_key(reducer.transform(row)), (name, budget, n)

    @pytest.mark.parametrize("name", REDUCER_NAMES)
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_bit_identical_on_arbitrary_values(self, name, data):
        rows = data.draw(
            st.lists(
                st.lists(finite, min_size=9, max_size=9),
                min_size=1,
                max_size=4,
            )
        )
        matrix = np.asarray(rows, dtype=float)
        reducer = REDUCERS[name](6)
        batch = reducer.transform_batch(matrix)
        for row, rep in zip(matrix, batch):
            assert _rep_key(rep) == _rep_key(reducer.transform(row))

    def test_single_point_series(self):
        matrix = np.array([[3.5], [-2.0]])
        for name in REDUCER_NAMES:
            reducer = REDUCERS[name](4)
            batch = reducer.transform_batch(matrix)
            for row, rep in zip(matrix, batch):
                assert _rep_key(rep) == _rep_key(reducer.transform(row)), name


class TestValidation:
    def test_rejects_1d(self):
        for name in REDUCER_NAMES:
            with pytest.raises(ValueError):
                REDUCERS[name](4).transform_batch(np.zeros(8))

    def test_rejects_empty(self):
        for name in REDUCER_NAMES:
            with pytest.raises(ValueError):
                REDUCERS[name](4).transform_batch(np.zeros((0, 8)))

    def test_rejects_non_finite(self):
        matrix = np.ones((2, 8))
        matrix[1, 3] = np.nan
        for name in REDUCER_NAMES:
            with pytest.raises(ValueError):
                REDUCERS[name](4).transform_batch(matrix)


class TestObservability:
    def test_batch_counters(self):
        matrix = _matrix(np.random.default_rng(0), 6, 32)
        obs.set_registry(obs.MetricsRegistry(enabled=True))
        try:
            REDUCERS["PAA"](8).transform_batch(matrix)
            counters = obs.registry().snapshot()["counters"]
        finally:
            obs.disable()
        assert counters["reduce.batch_calls"] == 1
        assert counters["reduce.batch_rows"] == 6
        # PAA has a vectorised kernel: no scalar fallback recorded
        assert "reduce.scalar_fallback" not in counters

    def test_scalar_fallback_counted(self):
        matrix = _matrix(np.random.default_rng(0), 4, 32)
        obs.set_registry(obs.MetricsRegistry(enabled=True))
        try:
            REDUCERS["CHEBY"](8).transform_batch(matrix)
            counters = obs.registry().snapshot()["counters"]
        finally:
            obs.disable()
        assert counters["reduce.scalar_fallback"] == 4


class TestReduceRows:
    def test_duck_typed_reducer_falls_back(self):
        class Plain:
            def transform(self, row):
                return float(np.sum(row))

        matrix = np.arange(12, dtype=float).reshape(3, 4)
        assert reduce_rows(Plain(), matrix) == [6.0, 22.0, 38.0]

    def test_empty_matrix(self):
        assert reduce_rows(REDUCERS["PAA"](4), np.zeros((0, 8))) == []


class TestFanout:
    def test_parallel_matches_sequential(self):
        matrix = _matrix(np.random.default_rng(2), 12, 48)
        reducer = REDUCERS["SAPLA"](12)
        sequential = reducer.transform_batch(matrix)
        parallel = reducer.transform_batch(matrix, parallelism=2)
        for a, b in zip(sequential, parallel):
            assert _rep_key(a) == _rep_key(b)


class TestDatabaseEquivalence:
    """A bulk-built database answers queries identically to an incremental one."""

    @pytest.mark.parametrize("name", ("SAPLA", "PAA", "APCA"))
    def test_bulk_vs_incremental_knn_batch(self, name):
        rng = np.random.default_rng(9)
        data = _matrix(rng, 28, 48)
        queries = _matrix(rng, 4, 48)

        bulk_db = SeriesDatabase(REDUCERS[name](12), index="dbch")
        bulk_db.ingest(data, bulk=True)

        incremental = SeriesDatabase(REDUCERS[name](12), index="dbch")
        incremental.ingest(data[:1])
        for row in data[1:]:
            incremental.insert(row)
        incremental._flush_pending()

        bulk_results = bulk_db.knn_batch(queries)
        inc_results = incremental.knn_batch(queries)
        for a, b in zip(bulk_results.results, inc_results.results):
            assert a.ids == b.ids
            assert a.distances == b.distances

    def test_insert_batch_matches_insert_loop(self):
        rng = np.random.default_rng(13)
        data = _matrix(rng, 16, 48)
        extra = _matrix(rng, 6, 48)

        loop_db = SeriesDatabase(REDUCERS["SAPLA"](12), index="dbch")
        loop_db.ingest(data)
        batch_db = SeriesDatabase(REDUCERS["SAPLA"](12), index="dbch")
        batch_db.ingest(data)

        loop_ids = [loop_db.insert(row) for row in extra]
        batch_ids = batch_db.insert_batch(extra)
        assert loop_ids == list(batch_ids)
        loop_db._flush_pending()
        batch_db._flush_pending()
        for e1, e2 in zip(loop_db.entries, batch_db.entries):
            assert e1.series_id == e2.series_id
            assert _rep_key(e1.representation) == _rep_key(e2.representation)
