"""Tests for labeled dataset generation."""

import numpy as np
import pytest

from repro.data import LabeledDataset, load_labeled


class TestLoadLabeled:
    def test_shapes_and_labels(self):
        ds = load_labeled("ECG200", n_classes=3, n_per_class=5, n_queries_per_class=2, length=64)
        assert ds.data.shape == (15, 64)
        assert ds.queries.shape == (6, 64)
        assert ds.n_classes == 3
        assert set(ds.labels) == {0, 1, 2}
        assert len(ds.query_labels) == 6
        assert ds.length == 64

    def test_deterministic(self):
        a = load_labeled("Coffee", length=64)
        b = load_labeled("Coffee", length=64)
        np.testing.assert_array_equal(a.data, b.data)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_instances_are_z_normalized(self):
        ds = load_labeled("Adiac", length=64)
        for row in ds.data:
            assert row.mean() == pytest.approx(0.0, abs=1e-9)

    def test_classes_are_separable(self):
        """Same-class instances sit closer than cross-class on average."""
        ds = load_labeled("Adiac", n_classes=2, n_per_class=8, length=128, noise=0.2)
        same, cross = [], []
        for i in range(len(ds.data)):
            for j in range(i + 1, len(ds.data)):
                d = float(np.linalg.norm(ds.data[i] - ds.data[j]))
                (same if ds.labels[i] == ds.labels[j] else cross).append(d)
        assert np.mean(same) < np.mean(cross)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_labeled("NotADataset")

    def test_too_few_classes_rejected(self):
        with pytest.raises(ValueError):
            load_labeled("Coffee", n_classes=1)

    def test_train_split_is_shuffled(self):
        ds = load_labeled("Coffee", n_classes=2, n_per_class=10, length=64)
        assert not all(
            ds.labels[i] <= ds.labels[i + 1] for i in range(len(ds.labels) - 1)
        )
