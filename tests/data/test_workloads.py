"""Tests for the query perturbation workloads."""

import numpy as np
import pytest

from repro.data import PERTURBATIONS, perturb, query_workload

SERIES = np.sin(np.linspace(0, 12, 200)) + 0.1


class TestPerturb:
    @pytest.mark.parametrize("kind", sorted(PERTURBATIONS))
    def test_shape_preserved(self, kind):
        out = perturb(SERIES, kind, 0.2, seed=1)
        assert out.shape == SERIES.shape
        assert np.isfinite(out).all()

    @pytest.mark.parametrize("kind", sorted(PERTURBATIONS))
    def test_severity_zero_is_identity(self, kind):
        np.testing.assert_array_equal(perturb(SERIES, kind, 0.0), SERIES)

    @pytest.mark.parametrize("kind", sorted(PERTURBATIONS))
    def test_deterministic(self, kind):
        a = perturb(SERIES, kind, 0.3, seed=7)
        b = perturb(SERIES, kind, 0.3, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_noise_grows_with_severity(self):
        small = np.linalg.norm(perturb(SERIES, "noise", 0.05, seed=2) - SERIES)
        large = np.linalg.norm(perturb(SERIES, "noise", 0.5, seed=2) - SERIES)
        assert large > small

    def test_shift_is_a_rotation(self):
        out = perturb(SERIES, "shift", 0.1, seed=3)
        assert sorted(out) == pytest.approx(sorted(SERIES))

    def test_scale_preserves_shape_up_to_factor(self):
        out = perturb(SERIES, "scale", 0.2, seed=4)
        ratio = out / SERIES
        assert ratio.std() == pytest.approx(0.0, abs=1e-9)

    def test_dropout_creates_linear_stretch(self):
        out = perturb(SERIES, "dropout", 0.2, seed=5)
        second_diff = np.abs(np.diff(out, n=2))
        assert (second_diff < 1e-9).sum() >= 0.1 * len(SERIES)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            perturb(SERIES, "alien", 0.1)

    def test_negative_severity_rejected(self):
        with pytest.raises(ValueError):
            perturb(SERIES, "noise", -0.1)


class TestQueryWorkload:
    def test_per_row_determinism_and_variation(self):
        queries = np.stack([SERIES, SERIES])
        out = query_workload(queries, "noise", 0.2, seed=1)
        assert out.shape == queries.shape
        # identical inputs get different perturbations per row
        assert not np.allclose(out[0], out[1])
        again = query_workload(queries, "noise", 0.2, seed=1)
        np.testing.assert_array_equal(out, again)
