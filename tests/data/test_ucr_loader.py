"""Tests for the real-UCR tsv loader (exercised on synthetic tsv files)."""

import numpy as np
import pytest

from repro.data import load_ucr_dataset, load_ucr_tsv


def write_tsv(path, labels, matrix):
    with open(path, "w") as handle:
        for label, row in zip(labels, matrix):
            values = "\t".join(f"{v:.6f}" for v in row)
            handle.write(f"{label}\t{values}\n")


@pytest.fixture
def ucr_dir(tmp_path):
    """A fake extracted UCR archive with one dataset."""
    rng = np.random.default_rng(0)
    folder = tmp_path / "FakeSet"
    folder.mkdir()
    train = rng.normal(size=(8, 32))
    test = rng.normal(size=(4, 32))
    write_tsv(folder / "FakeSet_TRAIN.tsv", [1, 1, 2, 2, 5, 5, 1, 2], train)
    write_tsv(folder / "FakeSet_TEST.tsv", [1, 2, 5, 5], test)
    return tmp_path


class TestLoadTSV:
    def test_labels_recoded_contiguously(self, ucr_dir):
        labels, series = load_ucr_tsv(ucr_dir / "FakeSet" / "FakeSet_TRAIN.tsv")
        assert sorted(set(labels)) == [0, 1, 2]  # from {1, 2, 5}
        assert series.shape == (8, 32)

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\n2\n")
        with pytest.raises(ValueError):
            load_ucr_tsv(path)


class TestLoadDataset:
    def test_full_dataset(self, ucr_dir):
        dataset = load_ucr_dataset(ucr_dir, "FakeSet")
        assert dataset.data.shape == (8, 32)
        assert dataset.queries.shape == (4, 32)
        assert dataset.n_classes == 3
        # z-normalised by default
        for row in dataset.data:
            assert row.mean() == pytest.approx(0.0, abs=1e-9)

    def test_resampling(self, ucr_dir):
        dataset = load_ucr_dataset(ucr_dir, "FakeSet", length=64)
        assert dataset.data.shape == (8, 64)

    def test_no_normalization(self, ucr_dir):
        dataset = load_ucr_dataset(ucr_dir, "FakeSet", normalize=False)
        assert any(abs(row.mean()) > 1e-6 for row in dataset.data)

    def test_missing_dataset(self, ucr_dir):
        with pytest.raises(FileNotFoundError):
            load_ucr_dataset(ucr_dir, "NoSuchSet")

    def test_missing_test_split_tolerated(self, tmp_path):
        folder = tmp_path / "TrainOnly"
        folder.mkdir()
        write_tsv(folder / "TrainOnly_TRAIN.tsv", [0, 1], np.zeros((2, 16)) + [[1.0], [2.0]])
        dataset = load_ucr_dataset(tmp_path, "TrainOnly")
        assert dataset.queries.shape[0] == 0

    def test_nan_values_handled_with_resampling(self, tmp_path):
        folder = tmp_path / "Gappy"
        folder.mkdir()
        matrix = np.random.default_rng(1).normal(size=(3, 20))
        matrix[0, 5] = np.nan  # a missing value, as DodgerLoop* have
        write_tsv(folder / "Gappy_TRAIN.tsv", [0, 1, 0], matrix)
        dataset = load_ucr_dataset(tmp_path, "Gappy", length=20)
        assert dataset.data.shape == (3, 20)
        assert np.isfinite(dataset.data).all()

    def test_variable_length_without_resampling_rejected(self, tmp_path):
        folder = tmp_path / "VarLen"
        folder.mkdir()
        matrix = np.random.default_rng(2).normal(size=(2, 20))
        matrix[0, 15:] = np.nan  # shorter first series after NaN stripping
        write_tsv(folder / "VarLen_TRAIN.tsv", [0, 1], matrix)
        with pytest.raises(ValueError):
            load_ucr_dataset(tmp_path, "VarLen")
        dataset = load_ucr_dataset(tmp_path, "VarLen", length=16)
        assert dataset.data.shape == (2, 16)
