"""Tests for the dataset complexity profiles."""

import numpy as np
import pytest

from repro.data.stats import profile_dataset, profile_series


class TestProfileSeries:
    def test_straight_line(self):
        profile = profile_series(np.linspace(0, 10, 100))
        assert profile.turning_points == 0.0
        assert profile.trend_strength == pytest.approx(1.0)

    def test_step_signal_is_plateau_heavy(self):
        series = np.concatenate([np.zeros(50), np.full(50, 5.0)])
        profile = profile_series(series)
        assert profile.plateau_fraction > 0.9

    def test_alternating_signal_maximises_turning_points(self):
        series = np.tile([0.0, 1.0], 50)
        profile = profile_series(series)
        assert profile.turning_points > 0.9

    def test_white_noise_has_high_spectral_entropy(self):
        noise = np.random.default_rng(0).normal(size=512)
        sine = np.sin(np.linspace(0, 20 * np.pi, 512))
        assert (
            profile_series(noise).spectral_entropy
            > profile_series(sine).spectral_entropy + 0.3
        )

    def test_constant_series(self):
        profile = profile_series(np.full(32, 2.0))
        assert profile.trend_strength == 0.0
        assert profile.spectral_entropy == 0.0

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            profile_series(np.array([1.0, 2.0]))


class TestProfileDataset:
    def test_mean_over_rows(self):
        data = np.stack([np.linspace(0, 1, 64), np.linspace(1, 0, 64)])
        profile = profile_dataset(data)
        assert profile.trend_strength == pytest.approx(1.0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            profile_dataset(np.zeros(16))

    def test_families_are_distinguishable(self):
        """Step-family datasets are plateau-heavier than walk-family ones."""
        from repro.data import UCRLikeArchive

        archive = UCRLikeArchive(length=256, n_series=6, n_queries=0)
        step = profile_dataset(archive.load("EOGHorizontalSignal").data)
        walk = profile_dataset(archive.load("Car").data)
        assert step.plateau_fraction > walk.plateau_fraction
