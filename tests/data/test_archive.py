"""Tests for the synthetic archive, generators and normalisation."""

import numpy as np
import pytest

from repro.data import (
    DATASETS,
    FAMILIES,
    UCRLikeArchive,
    generate,
    resample_to_length,
    z_normalize,
)


class TestNormalize:
    def test_z_normalize_moments(self):
        series = np.random.default_rng(0).normal(loc=5, scale=3, size=200)
        z = z_normalize(series)
        assert z.mean() == pytest.approx(0.0, abs=1e-9)
        assert z.std() == pytest.approx(1.0, abs=1e-9)

    def test_constant_series_centered_not_divided(self):
        z = z_normalize(np.full(10, 4.0))
        np.testing.assert_allclose(z, 0.0)

    def test_resample_identity(self):
        series = np.arange(16.0)
        np.testing.assert_array_equal(resample_to_length(series, 16), series)

    def test_resample_preserves_endpoints(self):
        series = np.array([1.0, 5.0, 2.0, 8.0])
        out = resample_to_length(series, 11)
        assert out[0] == pytest.approx(1.0)
        assert out[-1] == pytest.approx(8.0)
        assert out.shape == (11,)

    def test_resample_down(self):
        out = resample_to_length(np.sin(np.linspace(0, 6, 100)), 10)
        assert out.shape == (10,)

    def test_resample_rejects_bad_length(self):
        with pytest.raises(ValueError):
            resample_to_length(np.arange(4.0), 0)


class TestGenerators:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_family_produces_finite_series(self, family):
        rng = np.random.default_rng(1)
        series = generate(family, rng, 256)
        assert series.shape == (256,)
        assert np.isfinite(series).all()

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_family_is_not_constant(self, family):
        rng = np.random.default_rng(2)
        series = generate(family, rng, 512)
        assert series.std() > 0

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            generate("nope", np.random.default_rng(0), 64)

    def test_spike_family_has_bursts(self):
        rng = np.random.default_rng(3)
        series = generate("spike", rng, 512)
        assert np.abs(series).max() > 5 * np.abs(np.median(series))

    def test_step_family_has_plateaus(self):
        rng = np.random.default_rng(4)
        series = generate("step", rng, 512)
        diffs = np.abs(np.diff(series))
        # most consecutive deltas are tiny (plateaus), a few are big (saccades)
        assert np.quantile(diffs, 0.5) < np.quantile(diffs, 0.995) / 3


class TestArchive:
    def test_exactly_117_datasets(self):
        assert len(DATASETS) == 117

    def test_known_names_present(self):
        for name in ("Adiac", "ECG200", "EOGHorizontalSignal", "Yoga", "Crop"):
            assert name in DATASETS

    def test_variable_length_names_absent(self):
        for name in ("PLAID", "AllGestureWiimoteX", "GestureMidAirD1"):
            assert name not in DATASETS

    def test_families_are_valid(self):
        assert set(DATASETS.values()) <= set(FAMILIES)

    def test_load_shapes(self):
        archive = UCRLikeArchive(length=128, n_series=10, n_queries=2)
        ds = archive.load("ECG200")
        assert ds.data.shape == (10, 128)
        assert ds.queries.shape == (2, 128)
        assert ds.family == "spike"
        assert ds.length == 128

    def test_series_are_z_normalized(self):
        archive = UCRLikeArchive(length=256, n_series=5, n_queries=1)
        ds = archive.load("Coffee")
        for row in ds.data:
            assert row.mean() == pytest.approx(0.0, abs=1e-9)

    def test_deterministic(self):
        a = UCRLikeArchive(length=128, n_series=4, n_queries=1).load("Wafer")
        b = UCRLikeArchive(length=128, n_series=4, n_queries=1).load("Wafer")
        np.testing.assert_array_equal(a.data, b.data)

    def test_different_datasets_differ(self):
        archive = UCRLikeArchive(length=128, n_series=4, n_queries=1)
        a = archive.load("ECG200")
        b = archive.load("ECG5000")
        assert not np.allclose(a.data, b.data)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            UCRLikeArchive().load("NotADataset")

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            UCRLikeArchive(length=2)

    def test_one_per_family_is_stratified(self):
        archive = UCRLikeArchive()
        subset = archive.one_per_family()
        assert len(subset) == len(set(DATASETS.values()))
        assert len({archive.family_of(n) for n in subset}) == len(subset)

    def test_iteration_and_len(self):
        archive = UCRLikeArchive()
        assert len(archive) == 117
        assert sorted(archive) == archive.names
