"""Tests for the benchmark harness: config, experiment drivers, reporting."""

import numpy as np
import pytest

from repro.bench import (
    DEFAULT_METHODS,
    ExperimentConfig,
    config_from_env,
    make_reducer,
    render_table,
    run_bound_ablation,
    run_dbch_ablation,
    run_index_grid,
    run_maxdev_and_time,
    run_scaling,
    run_worked_example,
    summarise_ingest_knn,
    summarise_pruning_accuracy,
    summarise_tree_shape,
)


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        dataset_names=("ECG200", "Adiac"),
        length=64,
        n_series=6,
        n_queries=2,
        ks=(2,),
        methods=("SAPLA", "APLA", "PAA", "SAX"),
    )


@pytest.fixture(scope="module")
def tiny_grid(tiny_config):
    return run_index_grid(tiny_config)


class TestConfig:
    def test_defaults_are_one_per_family(self):
        config = ExperimentConfig(length=64, n_series=4, n_queries=1)
        families = {config.archive.family_of(n) for n in config.dataset_names}
        assert len(families) == len(config.dataset_names)

    def test_env_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_LENGTH", "128")
        monkeypatch.setenv("REPRO_SERIES", "7")
        monkeypatch.setenv("REPRO_DATASETS", "ECG200, Adiac")
        monkeypatch.setenv("REPRO_KS", "2,4")
        config = config_from_env()
        assert config.length == 128
        assert config.n_series == 7
        assert config.dataset_names == ("ECG200", "Adiac")
        assert config.ks == (2, 4)

    def test_env_config_all(self, monkeypatch):
        monkeypatch.setenv("REPRO_DATASETS", "all")
        config = config_from_env()
        assert len(config.dataset_names) == 117

    def test_make_reducer(self):
        for name in DEFAULT_METHODS:
            reducer = make_reducer(name, 12)
            assert reducer.name == name


class TestMaxdevExperiment:
    def test_rows_cover_methods(self, tiny_config):
        rows = run_maxdev_and_time(tiny_config)
        assert {r["method"] for r in rows} == set(tiny_config.methods)
        for row in rows:
            assert row["reduction_time_s"] >= 0.0
            if row["method"] == "SAX":
                assert np.isnan(row["max_deviation"])
            else:
                assert row["max_deviation"] >= 0.0


class TestIndexGrid:
    def test_grid_has_all_record_kinds(self, tiny_grid):
        kinds = {r["kind"] for r in tiny_grid}
        assert kinds == {"knn", "tree"}
        assert any(r["method"] == "LinearScan" for r in tiny_grid)

    def test_pruning_accuracy_summary(self, tiny_config, tiny_grid):
        rows = summarise_pruning_accuracy(tiny_grid)
        pairs = {(r["method"], r["index"]) for r in rows}
        assert pairs == {
            (m, i) for m in tiny_config.methods for i in ("rtree", "dbch")
        }
        for row in rows:
            assert 0.0 <= row["pruning_power"] <= 1.0
            assert 0.0 <= row["accuracy"] <= 1.0

    def test_ingest_knn_summary(self, tiny_config, tiny_grid):
        rows = summarise_ingest_knn(tiny_grid)
        methods = {r["method"] for r in rows}
        assert "LinearScan" in methods
        for row in rows:
            assert row["ingest_time_s"] >= 0.0
            assert row["knn_time_s"] >= 0.0

    def test_tree_shape_summary(self, tiny_grid):
        rows = summarise_tree_shape(tiny_grid)
        for row in rows:
            assert row["total_nodes"] == pytest.approx(
                row["internal_nodes"] + row["leaf_nodes"]
            )
            assert row["height"] >= 1


class TestScalingAndWorkedExample:
    def test_scaling_rows(self):
        rows = run_scaling(lengths=(32, 64), methods=("SAPLA", "PAA"), repeats=1)
        assert len(rows) == 4
        assert all(r["reduction_time_s"] >= 0.0 for r in rows)

    def test_worked_example_values(self):
        rows = run_worked_example()
        by = {r["method"]: r for r in rows}
        assert by["SAPLA"]["N"] == 4
        assert by["SAPLA"]["max_deviation"] <= 9.27273 + 1e-6
        assert by["APLA"]["sum_segment_deviation"] <= by["PLA"]["sum_segment_deviation"]


class TestAblations:
    def test_bound_ablation(self, tiny_config):
        rows = run_bound_ablation(tiny_config)
        assert {r["variant"] for r in rows} == {
            "paper-bounds",
            "exact-bounds",
            "no-endpoint-stage",
            "peak-split",
        }

    def test_dbch_ablation(self, tiny_config):
        rows = run_dbch_ablation(tiny_config)
        assert {r["query_bound"] for r in rows} == {"Dist_PAR", "Dist_LB"}


class TestReporting:
    def test_render_table_alignment(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 22, "b": 1e-9}]
        text = render_table("T", rows)
        assert "T" in text
        assert "22" in text
        assert "1.000e-09" in text

    def test_render_empty(self):
        assert "(no rows)" in render_table("T", [])
