"""Tests for the ASCII chart rendering."""

from repro.bench.charts import bar_chart, grouped_bar_chart

ROWS = [
    {"method": "SAPLA", "index": "rtree", "value": 2.0},
    {"method": "SAPLA", "index": "dbch", "value": 4.0},
    {"method": "PAA", "index": "rtree", "value": 1.0},
]


class TestBarChart:
    def test_contains_labels_and_values(self):
        text = bar_chart("T", ROWS, "method", "value")
        assert "T" in text
        assert "SAPLA" in text and "PAA" in text
        assert "4" in text

    def test_longest_bar_belongs_to_max(self):
        text = bar_chart("T", ROWS, "method", "value", width=20)
        lines = [l for l in text.splitlines() if "█" in l]
        longest = max(lines, key=lambda l: l.count("█"))
        assert "4" in longest

    def test_empty(self):
        assert "(no rows)" in bar_chart("T", [], "method", "value")

    def test_zero_values_do_not_crash(self):
        text = bar_chart("T", [{"m": "a", "v": 0.0}], "m", "v")
        assert "a" in text


class TestGroupedBarChart:
    def test_groups_appear_once(self):
        text = grouped_bar_chart("T", ROWS, "method", "index", "value")
        assert text.count("SAPLA") == 1
        assert "rtree" in text and "dbch" in text

    def test_empty(self):
        assert "(no rows)" in grouped_bar_chart("T", [], "method", "index", "value")
