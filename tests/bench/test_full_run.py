"""Tests for the one-shot orchestration runner."""

import json

import pytest

from repro.bench import EXPERIMENT_TITLES, ExperimentConfig, run_all


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        dataset_names=("Coffee",),
        length=64,
        n_series=5,
        n_queries=1,
        ks=(2,),
        methods=("SAPLA", "PAA"),
    )


class TestRunAll:
    def test_produces_every_experiment(self, tiny_config, tmp_path):
        results = run_all(tiny_config, tmp_path)
        assert set(results) == set(EXPERIMENT_TITLES)
        for name in EXPERIMENT_TITLES:
            assert (tmp_path / f"{name}.json").exists()
            assert (tmp_path / f"{name}.txt").exists()
        assert (tmp_path / "index_grid.json").exists()

    def test_json_matches_returned_rows(self, tiny_config, tmp_path):
        results = run_all(tiny_config, tmp_path)
        stored = json.loads((tmp_path / "fig1_worked_example.json").read_text())
        assert stored == results["fig1_worked_example"]

    def test_cache_is_used(self, tiny_config, tmp_path):
        messages = []
        run_all(tiny_config, tmp_path, progress=messages.append)
        assert any("running" in m for m in messages)
        messages.clear()
        run_all(tiny_config, tmp_path, progress=messages.append)
        assert all("cached" in m for m in messages)

    def test_overwrite_reruns(self, tiny_config, tmp_path):
        run_all(tiny_config, tmp_path)
        messages = []
        run_all(tiny_config, tmp_path, overwrite=True, progress=messages.append)
        assert any("running" in m for m in messages)


class TestCLIAll:
    def test_experiment_all_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "experiment", "all", "--datasets", "Coffee",
                "--length", "64", "--series", "4", "--queries", "1",
                "--ks", "2", "--output", str(tmp_path / "out"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "persisted" in out
        assert (tmp_path / "out" / "fig12_maxdev_and_time.json").exists()
