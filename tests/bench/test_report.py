"""Tests for the markdown report generator."""

import pytest

from repro.bench import ExperimentConfig, generate_report, run_all


@pytest.fixture(scope="module")
def results_dir(tmp_path_factory):
    config = ExperimentConfig(
        dataset_names=("Coffee",),
        length=64,
        n_series=5,
        n_queries=1,
        ks=(2,),
        methods=("SAPLA", "PAA"),
    )
    out = tmp_path_factory.mktemp("results")
    run_all(config, out)
    return out


class TestGenerateReport:
    def test_report_contains_every_experiment(self, results_dir):
        report = generate_report(results_dir)
        for title in ("Fig 12", "Fig 13", "Fig 14", "Table 1", "Ablation"):
            assert title in report

    def test_charts_included(self, results_dir):
        report = generate_report(results_dir)
        assert "█" in report  # at least one bar rendered

    def test_written_to_file(self, results_dir, tmp_path):
        target = tmp_path / "report.md"
        generate_report(results_dir, target)
        assert target.exists()
        assert "# Experiment report" in target.read_text()

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            generate_report(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(FileNotFoundError):
            generate_report(empty)

    def test_cli_report(self, results_dir, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        assert main(["report", "--results", str(results_dir), "--output", str(out)]) == 0
        assert out.exists()
        capsys.readouterr()
        assert main(["report", "--results", str(results_dir)]) == 0
        assert "# Experiment report" in capsys.readouterr().out
