"""Tests for the subsequence-level tasks: motifs, discords, clustering,
change-point detection, range queries, and the window utilities."""

import numpy as np
import pytest

from repro.apps import (
    detect_change_points,
    find_discord,
    find_motifs,
    kmeans_time_series,
    sliding_windows,
    windows_overlap,
)
from repro.index import SeriesDatabase
from repro.reduction import PAA, SAPLAReducer


class TestWindows:
    def test_shapes_and_starts(self):
        windows, starts = sliding_windows(np.arange(10.0), window=4, stride=2)
        assert windows.shape == (4, 4)
        np.testing.assert_array_equal(starts, [0, 2, 4, 6])

    def test_normalized_windows(self):
        windows, _ = sliding_windows(np.arange(10.0) * 3 + 5, window=5, normalize=True)
        for w in windows:
            assert w.mean() == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            sliding_windows(np.arange(4.0), window=1)
        with pytest.raises(ValueError):
            sliding_windows(np.arange(4.0), window=10)
        with pytest.raises(ValueError):
            sliding_windows(np.arange(4.0), window=2, stride=0)

    def test_overlap(self):
        assert windows_overlap(0, 3, 4)
        assert not windows_overlap(0, 4, 4)


class TestMotifs:
    @staticmethod
    def planted_series(seed=0):
        """Noise with the same smooth pattern planted twice."""
        rng = np.random.default_rng(seed)
        series = rng.normal(scale=1.0, size=400)
        pattern = 5 * np.sin(np.linspace(0, 2 * np.pi, 40))
        series[50:90] = pattern + rng.normal(scale=0.05, size=40)
        series[300:340] = pattern + rng.normal(scale=0.05, size=40)
        return series

    def test_finds_planted_motif(self):
        series = self.planted_series()
        motifs = find_motifs(series, window=40, stride=5)
        top = motifs[0]
        assert abs(top.start_a - 50) <= 5
        assert abs(top.start_b - 300) <= 5

    def test_no_trivial_matches(self):
        series = self.planted_series(seed=1)
        for motif in find_motifs(series, window=40, stride=5, top_k=3):
            assert not windows_overlap(motif.start_a, motif.start_b, 40)

    def test_top_k_returns_distinct_pairs(self):
        series = self.planted_series(seed=2)
        motifs = find_motifs(series, window=40, stride=10, top_k=3)
        assert len({(m.start_a, m.start_b) for m in motifs}) == len(motifs)
        distances = [m.distance for m in motifs]
        assert distances == sorted(distances)

    def test_validation(self):
        with pytest.raises(ValueError):
            find_motifs(np.arange(100.0), window=10, top_k=0)


class TestDiscords:
    def test_finds_planted_anomaly(self):
        rng = np.random.default_rng(3)
        t = np.linspace(0, 20 * np.pi, 600)
        series = np.sin(t) + rng.normal(scale=0.05, size=600)
        series[400:440] += np.sin(np.linspace(0, 14 * np.pi, 40)) * 2.5
        discord = find_discord(series, window=40, stride=5)
        assert 370 <= discord.start <= 440
        assert discord.nn_distance > 0

    def test_pruning_happens(self):
        rng = np.random.default_rng(4)
        series = np.sin(np.linspace(0, 30, 500)) + rng.normal(scale=0.05, size=500)
        discord = find_discord(series, window=40, stride=5)
        windows_count = (500 - 40) // 5 + 1
        all_pairs = windows_count * (windows_count - 1)
        assert discord.n_verified < all_pairs  # early exits actually fire

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            find_discord(np.arange(10.0), window=10)


class TestClustering:
    @staticmethod
    def two_cluster_data(seed=5):
        rng = np.random.default_rng(seed)
        flat = rng.normal(scale=0.2, size=(10, 64))
        trend = np.linspace(0, 8, 64) + rng.normal(scale=0.2, size=(10, 64))
        return np.vstack([flat, trend])

    def test_separates_clusters_raw(self):
        data = self.two_cluster_data()
        result = kmeans_time_series(data, k=2, seed=1)
        first = set(result.labels[:10])
        second = set(result.labels[10:])
        assert len(first) == 1 and len(second) == 1 and first != second

    def test_separates_clusters_reduced(self):
        data = self.two_cluster_data(seed=6)
        result = kmeans_time_series(data, k=2, reducer=SAPLAReducer(12), seed=1)
        assert len(set(result.labels[:10])) == 1
        assert set(result.labels[:10]) != set(result.labels[10:])

    def test_inertia_decreases_with_k(self):
        data = self.two_cluster_data(seed=7)
        i1 = kmeans_time_series(data, k=1).inertia
        i4 = kmeans_time_series(data, k=4).inertia
        assert i4 <= i1

    def test_validation(self):
        with pytest.raises(ValueError):
            kmeans_time_series(np.zeros(8), k=2)
        with pytest.raises(ValueError):
            kmeans_time_series(np.zeros((4, 8)), k=9)

    def test_identical_points(self):
        data = np.ones((6, 16))
        result = kmeans_time_series(data, k=2)
        assert result.inertia == pytest.approx(0.0)


class TestChangePoints:
    def test_detects_level_shift(self):
        series = np.concatenate([np.zeros(100), np.full(100, 5.0)])
        series += np.random.default_rng(8).normal(scale=0.05, size=200)
        points = detect_change_points(series, n_change_points=1)
        assert len(points) == 1
        assert abs(points[0].position - 99) <= 4

    def test_detects_multiple_regimes(self):
        series = np.concatenate(
            [np.linspace(0, 5, 80), np.linspace(5, -5, 80), np.full(80, -5.0)]
        )
        points = detect_change_points(series, n_change_points=2)
        positions = [p.position for p in points]
        assert len(points) == 2
        assert any(abs(p - 79) <= 8 for p in positions)
        assert any(abs(p - 159) <= 8 for p in positions)

    def test_scores_sorted_by_position(self):
        series = np.random.default_rng(9).normal(size=200).cumsum()
        points = detect_change_points(series, n_change_points=3)
        positions = [p.position for p in points]
        assert positions == sorted(positions)

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_change_points(np.arange(50.0), n_change_points=0)


class TestRangeQuery:
    def test_exact_with_guaranteed_bound(self):
        rng = np.random.default_rng(10)
        data = rng.normal(size=(40, 64)).cumsum(axis=1)
        db = SeriesDatabase(SAPLAReducer(12), index=None, distance_mode="lb")
        db.ingest(data)
        query = data[5] + 0.01
        radius = 5.0
        result = db.range_query(query, radius)
        brute = [
            i for i, row in enumerate(data) if np.linalg.norm(query - row) <= radius
        ]
        assert result.ids == sorted(brute, key=lambda i: np.linalg.norm(query - data[i]))
        assert all(d <= radius for d in result.distances)

    def test_prunes_candidates(self):
        rng = np.random.default_rng(11)
        data = rng.normal(size=(60, 64)).cumsum(axis=1)
        db = SeriesDatabase(PAA(12), index=None)
        db.ingest(data)
        result = db.range_query(data[0], radius=1.0)
        assert result.n_verified < len(data)
        assert result.ids[0] == 0

    def test_validation(self):
        db = SeriesDatabase(PAA(12), index=None)
        with pytest.raises(RuntimeError):
            db.range_query(np.zeros(8), 1.0)
        db.ingest(np.zeros((4, 8)))
        with pytest.raises(ValueError):
            db.range_query(np.zeros(8), -1.0)
