"""Tests for the analog forecaster."""

import numpy as np
import pytest

from repro.apps import AnalogForecaster


def periodic_history(n=600, period=50, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return np.sin(2 * np.pi * t / period) + rng.normal(scale=noise, size=n)


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            AnalogForecaster(window=20, horizon=0)
        with pytest.raises(ValueError):
            AnalogForecaster(window=20, horizon=5, k=0)

    def test_history_too_short(self):
        with pytest.raises(ValueError):
            AnalogForecaster(window=20, horizon=10).fit(np.arange(25.0))

    def test_forecast_before_fit(self):
        with pytest.raises(RuntimeError):
            AnalogForecaster(window=20, horizon=5).forecast()

    def test_wrong_context_length(self):
        forecaster = AnalogForecaster(window=20, horizon=5).fit(periodic_history())
        with pytest.raises(ValueError):
            forecaster.forecast(np.zeros(7))


class TestForecasting:
    def test_periodic_signal_predicted(self):
        history = periodic_history()
        horizon = 25
        forecaster = AnalogForecaster(window=50, horizon=horizon, k=3, stride=2)
        forecaster.fit(history[:-horizon])
        forecast = forecaster.forecast(history[-horizon - 50 : -horizon])
        truth = history[-horizon:]
        rmse = float(np.sqrt(np.mean((forecast.values - truth) ** 2)))
        assert rmse < 0.3  # far below the signal amplitude of 1.0

    def test_forecast_shape_and_metadata(self):
        forecaster = AnalogForecaster(window=40, horizon=10, k=2, stride=5)
        forecaster.fit(periodic_history(seed=1))
        forecast = forecaster.forecast()
        assert forecast.values.shape == (10,)
        assert len(forecast.analog_starts) <= 2
        assert all(d >= 0 for d in forecast.analog_distances)

    def test_default_context_is_history_tail(self):
        history = periodic_history(seed=2)
        forecaster = AnalogForecaster(window=40, horizon=10, stride=5).fit(history)
        explicit = forecaster.forecast(history[-40:])
        default = forecaster.forecast()
        np.testing.assert_allclose(default.values, explicit.values)

    def test_analogs_do_not_peek_into_the_horizon(self):
        history = periodic_history(seed=3)
        horizon = 20
        forecaster = AnalogForecaster(window=50, horizon=horizon, stride=2).fit(history)
        forecast = forecaster.forecast()
        n = len(history)
        for start in forecast.analog_starts:
            assert start + 50 + horizon <= n  # future fully inside history
