"""Tests for subsequence similarity search."""

import numpy as np
import pytest

from repro.apps import SubsequenceIndex
from repro.reduction import PLA


def sequence_with_pattern(seed=0, n=600, at=(120, 430)):
    rng = np.random.default_rng(seed)
    sequence = rng.normal(scale=0.3, size=n)
    pattern = 3 * np.sin(np.linspace(0, 3 * np.pi, 50))
    for start in at:
        sequence[start : start + 50] = pattern + rng.normal(scale=0.05, size=50)
    return sequence, pattern


class TestSubsequenceIndex:
    def test_validation(self):
        with pytest.raises(ValueError):
            SubsequenceIndex(window=1)
        with pytest.raises(ValueError):
            SubsequenceIndex(window=8, stride=0)

    def test_search_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            SubsequenceIndex(window=8).search(np.zeros(8))

    def test_pattern_length_checked(self):
        sequence, _ = sequence_with_pattern()
        index = SubsequenceIndex(window=50, stride=5).fit(sequence)
        with pytest.raises(ValueError):
            index.search(np.zeros(10))

    def test_finds_planted_occurrences(self):
        sequence, pattern = sequence_with_pattern()
        index = SubsequenceIndex(window=50, stride=2).fit(sequence)
        matches = index.search(pattern, k=2)
        starts = sorted(m.start for m in matches)
        assert abs(starts[0] - 120) <= 4
        assert abs(starts[1] - 430) <= 4

    def test_matches_do_not_overlap(self):
        sequence, pattern = sequence_with_pattern(seed=1)
        index = SubsequenceIndex(window=50, stride=2).fit(sequence)
        matches = index.search(pattern, k=4)
        starts = [m.start for m in matches]
        for i in range(len(starts)):
            for j in range(i + 1, len(starts)):
                assert abs(starts[i] - starts[j]) >= 50

    def test_distances_sorted(self):
        sequence, pattern = sequence_with_pattern(seed=2)
        index = SubsequenceIndex(window=50, stride=5).fit(sequence)
        matches = index.search(pattern, k=3)
        distances = [m.distance for m in matches]
        assert distances == sorted(distances)

    def test_range_search(self):
        sequence, pattern = sequence_with_pattern(seed=3)
        index = SubsequenceIndex(window=50, stride=2, index=None).fit(sequence)
        exact = index.search(pattern, k=1)[0]
        hits = index.range_search(pattern, radius=exact.distance + 0.5)
        assert any(abs(h.start - exact.start) <= 2 for h in hits)
        assert all(h.distance <= exact.distance + 0.5 for h in hits)

    def test_custom_reducer(self):
        sequence, pattern = sequence_with_pattern(seed=4)
        index = SubsequenceIndex(window=50, stride=5, reducer=PLA(12)).fit(sequence)
        matches = index.search(pattern, k=1)
        assert abs(matches[0].start - 120) <= 5 or abs(matches[0].start - 430) <= 5
