"""Tests for agglomerative clustering over representations."""

import numpy as np
import pytest

from repro.apps import agglomerative_cluster
from repro.reduction import SAPLAReducer


def two_cluster_data(seed=0):
    rng = np.random.default_rng(seed)
    flat = rng.normal(scale=0.2, size=(8, 64))
    trend = np.linspace(0, 8, 64) + rng.normal(scale=0.2, size=(8, 64))
    return np.vstack([flat, trend])


class TestAgglomerative:
    def test_raw_distance_separates_clusters(self):
        data = two_cluster_data()
        result = agglomerative_cluster(data, n_clusters=2)
        assert len(set(result.labels[:8])) == 1
        assert set(result.labels[:8]) != set(result.labels[8:])
        assert result.n_clusters == 2

    def test_reduced_distance_separates_clusters(self):
        data = two_cluster_data(seed=1)
        result = agglomerative_cluster(data, n_clusters=2, reducer=SAPLAReducer(12))
        assert len(set(result.labels[:8])) == 1
        assert set(result.labels[:8]) != set(result.labels[8:])

    def test_merge_history_length(self):
        data = two_cluster_data(seed=2)
        result = agglomerative_cluster(data, n_clusters=3)
        assert len(result.merges) == len(data) - 3
        distances = [d for _, _, d in result.merges]
        assert all(d >= 0 for d in distances)

    def test_n_clusters_equals_count_is_identity(self):
        data = two_cluster_data(seed=3)
        result = agglomerative_cluster(data, n_clusters=len(data))
        assert sorted(set(result.labels)) == list(range(len(data)))
        assert result.merges == []

    def test_single_cluster(self):
        data = two_cluster_data(seed=4)
        result = agglomerative_cluster(data, n_clusters=1)
        assert set(result.labels) == {0}

    def test_custom_distance(self):
        data = two_cluster_data(seed=5)
        result = agglomerative_cluster(
            data, n_clusters=2, distance=lambda a, b: float(np.abs(a - b).sum())
        )
        assert result.n_clusters == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            agglomerative_cluster(np.zeros(8), 2)
        with pytest.raises(ValueError):
            agglomerative_cluster(two_cluster_data(), n_clusters=0)
        with pytest.raises(ValueError):
            agglomerative_cluster(two_cluster_data(), n_clusters=100)
