"""Tests for k-NN classification over reduced representations."""

import numpy as np
import pytest

from repro.apps import KNNClassifier
from repro.data import load_labeled
from repro.reduction import PAA, SAPLAReducer


@pytest.fixture(scope="module")
def dataset():
    return load_labeled(
        "Adiac", n_classes=2, n_per_class=10, n_queries_per_class=3, length=128, noise=0.2
    )


class TestKNNClassifier:
    def test_validation(self):
        with pytest.raises(ValueError):
            KNNClassifier(SAPLAReducer(12), k=0)

    def test_predict_before_fit_rejected(self, dataset):
        clf = KNNClassifier(SAPLAReducer(12))
        with pytest.raises(RuntimeError):
            clf.predict_one(dataset.queries[0])

    def test_label_count_mismatch_rejected(self, dataset):
        clf = KNNClassifier(SAPLAReducer(12))
        with pytest.raises(ValueError):
            clf.fit(dataset.data, dataset.labels[:-1])

    def test_classifies_separable_data(self, dataset):
        report = KNNClassifier(SAPLAReducer(12), k=1).evaluate(dataset)
        assert report.accuracy >= 0.8
        assert 0.0 < report.mean_pruning_power <= 1.0
        assert report.predictions.shape == dataset.query_labels.shape

    @pytest.mark.parametrize("index", ["dbch", "rtree", None])
    def test_all_index_kinds(self, dataset, index):
        report = KNNClassifier(PAA(12), k=3, index=index).evaluate(dataset)
        assert report.accuracy >= 0.5

    def test_training_point_classified_as_itself(self, dataset):
        clf = KNNClassifier(SAPLAReducer(12), k=1).fit(dataset.data, dataset.labels)
        label, _ = clf.predict_one(dataset.data[4])
        assert label == dataset.labels[4]

    def test_majority_vote_with_larger_k(self, dataset):
        report = KNNClassifier(SAPLAReducer(12), k=5).evaluate(dataset)
        assert report.accuracy >= 0.6
