"""Tests for multivariate reduction and search."""

import numpy as np
import pytest

from repro.multivariate import (
    MultivariateDatabase,
    MultivariateReducer,
    multivariate_euclidean,
)
from repro.reduction import PAA, SAPLAReducer


def collection(count=20, channels=3, n=64, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(count, channels, n)).cumsum(axis=2)


class TestMultivariateReducer:
    def test_round_trip_shapes(self):
        reducer = MultivariateReducer(lambda: SAPLAReducer(12))
        series = collection(count=1)[0]
        rep = reducer.transform(series)
        assert rep.n_channels == 3
        recon = reducer.reconstruct(rep)
        assert recon.shape == series.shape

    def test_channels_reduced_independently(self):
        reducer = MultivariateReducer(lambda: PAA(8))
        series = collection(count=1, seed=1)[0]
        rep = reducer.transform(series)
        uni = PAA(8)
        for c in range(3):
            np.testing.assert_allclose(
                rep.channels[c].reconstruct(), uni.transform(series[c]).reconstruct()
            )

    def test_max_deviation(self):
        reducer = MultivariateReducer(lambda: SAPLAReducer(12))
        assert reducer.max_deviation(collection(count=1, seed=2)[0]) >= 0.0

    def test_validation(self):
        with pytest.raises(TypeError):
            MultivariateReducer(lambda: object())
        reducer = MultivariateReducer(lambda: PAA(8))
        with pytest.raises(ValueError):
            reducer.transform(np.zeros(8))

    def test_name(self):
        assert MultivariateReducer(lambda: SAPLAReducer(12)).name == "MV-SAPLA"


class TestMultivariateEuclidean:
    def test_zero_and_known(self):
        a = collection(count=1, seed=3)[0]
        assert multivariate_euclidean(a, a) == 0.0
        b = a + 1.0
        assert multivariate_euclidean(a, b) == pytest.approx(np.sqrt(a.size))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            multivariate_euclidean(np.zeros((2, 4)), np.zeros((2, 5)))


class TestMultivariateDatabase:
    def test_knn_exact_with_lb(self):
        data = collection(seed=4)
        db = MultivariateDatabase(MultivariateReducer(lambda: SAPLAReducer(12)))
        db.ingest(data)
        rng = np.random.default_rng(5)
        for _ in range(4):
            query = data[rng.integers(len(data))] + rng.normal(scale=0.1, size=data.shape[1:])
            got = db.knn(query, 3)
            truth = db.ground_truth(query, 3)
            assert got.ids == truth.ids
            assert got.distances == pytest.approx(truth.distances)

    def test_pruning_happens(self):
        data = collection(count=40, seed=6)
        db = MultivariateDatabase(MultivariateReducer(lambda: SAPLAReducer(12)))
        db.ingest(data)
        result = db.knn(data[0], 1)
        assert result.ids[0] == 0
        assert result.pruning_power < 1.0

    def test_validation(self):
        db = MultivariateDatabase(MultivariateReducer(lambda: PAA(8)))
        with pytest.raises(RuntimeError):
            db.knn(np.zeros((2, 8)), 1)
        with pytest.raises(ValueError):
            db.ingest(np.zeros((4, 8)))
        db.ingest(collection(count=4, seed=7))
        with pytest.raises(ValueError):
            db.knn(np.zeros((5, 64)), 1)

    def test_self_query(self):
        data = collection(seed=8)
        db = MultivariateDatabase(MultivariateReducer(lambda: PAA(8)))
        db.ingest(data)
        result = db.knn(data[7], 1)
        assert result.ids == [7]
        assert result.distances[0] == pytest.approx(0.0, abs=1e-9)
