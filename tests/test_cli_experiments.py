"""CLI coverage for the remaining experiment subcommands."""

import pytest

from repro.cli import main

COMMON = [
    "--datasets", "Coffee",
    "--length", "64", "--series", "5", "--queries", "1", "--ks", "2",
    "--methods", "SAPLA", "PAA",
]


class TestExperimentPaths:
    def test_table1(self, capsys):
        assert main(["experiment", "table1", *COMMON]) == 0
        assert "reduction_time_s" in capsys.readouterr().out

    def test_fig14(self, capsys):
        assert main(["experiment", "fig14", *COMMON]) == 0
        out = capsys.readouterr().out
        assert "ingest_time_s" in out
        assert "LinearScan" in out

    def test_fig15(self, capsys):
        assert main(["experiment", "fig15", *COMMON]) == 0
        assert "total_nodes" in capsys.readouterr().out

    def test_ablation_bounds(self, capsys):
        assert main(["experiment", "ablation-bounds", *COMMON]) == 0
        assert "peak-split" in capsys.readouterr().out

    def test_methods_filter_restricts_rows(self, capsys):
        assert main(["experiment", "fig12", *COMMON]) == 0
        out = capsys.readouterr().out
        assert "SAPLA" in out and "PAA" in out
        assert "CHEBY" not in out

    def test_fig13_chart_rendered(self, capsys):
        assert main(["experiment", "fig13", *COMMON]) == 0
        out = capsys.readouterr().out
        assert "pruning power (lower is better)" in out
        assert "█" in out
