"""Tests for DTW and LB_Keogh."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance import dtw, dtw_envelope, euclidean, lb_keogh

finite = st.floats(min_value=-100, max_value=100, allow_nan=False)


def series_pair(n=40, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=n).cumsum(), rng.normal(size=n).cumsum()


class TestDTW:
    def test_identity(self):
        a, _ = series_pair()
        assert dtw(a, a) == pytest.approx(0.0, abs=1e-9)

    def test_symmetry(self):
        a, b = series_pair(seed=1)
        assert dtw(a, b) == pytest.approx(dtw(b, a))

    def test_never_exceeds_euclidean(self):
        """The diagonal path is always available, so DTW <= Euclid."""
        for seed in range(10):
            a, b = series_pair(seed=seed)
            assert dtw(a, b) <= euclidean(a, b) + 1e-9

    def test_warping_absorbs_shift(self):
        """A small time shift costs DTW far less than Euclid."""
        t = np.linspace(0, 6 * np.pi, 120)
        a = np.sin(t)
        b = np.roll(a, 4)
        assert dtw(a, b, band=8) < 0.5 * euclidean(a, b)

    def test_band_monotone(self):
        """Wider bands can only reduce the distance."""
        a, b = series_pair(seed=2)
        narrow = dtw(a, b, band=1)
        wide = dtw(a, b, band=20)
        assert wide <= narrow + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            dtw(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            dtw(np.array([]), np.array([]))

    def test_unconstrained_matches_textbook_case(self):
        a = np.array([0.0, 0.0, 1.0, 2.0, 1.0, 0.0])
        b = np.array([0.0, 1.0, 2.0, 1.0, 0.0, 0.0])
        assert dtw(a, b, band=6) == pytest.approx(0.0, abs=1e-9)


class TestEnvelope:
    def test_envelope_brackets_series(self):
        a, _ = series_pair(seed=3)
        lower, upper = dtw_envelope(a, band=5)
        assert (lower <= a + 1e-12).all()
        assert (a <= upper + 1e-12).all()

    def test_wider_band_widens_envelope(self):
        a, _ = series_pair(seed=4)
        l1, u1 = dtw_envelope(a, band=2)
        l2, u2 = dtw_envelope(a, band=10)
        assert (l2 <= l1 + 1e-12).all()
        assert (u2 >= u1 - 1e-12).all()


class TestLBKeogh:
    @pytest.mark.parametrize("seed", range(10))
    def test_lower_bounds_dtw(self, seed):
        a, b = series_pair(seed=seed + 10)
        band = 4
        assert lb_keogh(a, b, band) <= dtw(a, b, band) + 1e-9

    def test_zero_for_candidate_inside_envelope(self):
        a = np.sin(np.linspace(0, 6, 60))
        assert lb_keogh(a, a, band=3) == 0.0

    def test_precomputed_envelope_matches(self):
        a, b = series_pair(seed=20)
        env = dtw_envelope(a, band=4)
        assert lb_keogh(a, b, 4, envelope=env) == pytest.approx(lb_keogh(a, b, 4))

    def test_validation(self):
        with pytest.raises(ValueError):
            lb_keogh(np.zeros(3), np.zeros(4))

    @given(st.lists(finite, min_size=4, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_lower_bound_property(self, values):
        a = np.asarray(values)
        b = a[::-1].copy()
        assert lb_keogh(a, b, band=2) <= dtw(a, b, band=2) + 1e-6


class TestDTWClassification:
    def test_classifier_with_dtw_metric(self):
        from repro.apps import KNNClassifier
        from repro.data import load_labeled
        from repro.reduction import PAA

        dataset = load_labeled(
            "GunPoint", n_classes=2, n_per_class=8, n_queries_per_class=2, length=96
        )
        clf = KNNClassifier(PAA(12), k=1, metric="dtw", band=5)
        report = clf.evaluate(dataset)
        assert report.accuracy >= 0.75
        assert 0.0 < report.mean_pruning_power <= 1.0

    def test_unknown_metric_rejected(self):
        from repro.apps import KNNClassifier
        from repro.reduction import PAA

        with pytest.raises(ValueError):
            KNNClassifier(PAA(12), metric="cosine")
