"""The bound cascade's dominance, caching and accounting contracts.

Everything the search paths rely on lives here: every cheap tier value is
``<=`` the exact bound it fronts *as floating point* (deflation absorbs the
cross-route rounding drift), the vectorised tier equals the scalar one, the
DBCH node tier never overshoots ``node_distance``, the build-time pairwise
accelerator never overshoots the suite's pairwise distance, and unsupported
methods (SAX MINDIST) report themselves out cleanly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.distance.cascade import (
    BoundCascade,
    PairwiseAccel,
    make_pairwise_accel,
    reconstruction_norm,
)
from repro.index import SeriesDatabase
from repro.kinds import DistanceMode, IndexKind
from repro.reduction import REDUCERS

#: (reducer name, DistanceMode) -> the suite mode the cascade sees; one
#: config per cheap-tier formula.
TIER_CONFIGS = [
    ("SAPLA", DistanceMode.PAR, "par"),
    ("SAPLA", DistanceMode.LB, "lb"),
    ("SAPLA", DistanceMode.AE, "ae"),
    ("PAA", DistanceMode.PAR, "aligned"),
    ("CHEBY", DistanceMode.PAR, "triangle"),
]

CONFIG_IDS = [f"{name}-{suite_mode}" for name, _, suite_mode in TIER_CONFIGS]


def dataset(count=20, n=48, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(count, n)).cumsum(axis=1)


def build(name, mode, data, index=None):
    db = SeriesDatabase(REDUCERS[name](8), index=index, distance_mode=mode)
    db.ingest(data)
    return db


class TestReconstructionNorm:
    @pytest.mark.parametrize("name", ["SAPLA", "APLA", "APCA", "PAA", "PLA", "CHEBY"])
    def test_matches_reconstruction(self, name):
        reducer = REDUCERS[name](8)
        for i, series in enumerate(dataset(6, seed=4)):
            rep = reducer.transform(series)
            expected = np.linalg.norm(np.asarray(reducer.reconstruct(rep), dtype=float))
            assert reconstruction_norm(rep, reducer) == pytest.approx(
                expected, rel=1e-9, abs=1e-9
            ), f"row {i}"

    def test_cached_on_the_representation(self):
        reducer = REDUCERS["SAPLA"](8)
        rep = reducer.transform(dataset(1)[0])
        first = reconstruction_norm(rep, reducer)
        assert rep._cascade_norm == first
        rep._cascade_norm = 123.0  # poke the cache to prove it is consulted
        assert reconstruction_norm(rep, reducer) == 123.0


class TestDominance:
    @pytest.mark.parametrize("name,mode,suite_mode", TIER_CONFIGS, ids=CONFIG_IDS)
    def test_cheap_never_exceeds_refine(self, name, mode, suite_mode):
        data = dataset(seed=1)
        db = build(name, mode, data)
        cascade = db.cascade()
        assert cascade.supported
        assert cascade.mode == suite_mode
        for qi in (0, 7):
            query = data[qi] + 0.25
            ctx = db.query_context(query)
            qc = cascade.for_query(ctx)
            assert qc is not None
            for entry in db.entries:
                rep = entry.representation
                assert qc.cheap(rep) <= qc.refine(rep)

    @pytest.mark.parametrize("name,mode,suite_mode", TIER_CONFIGS, ids=CONFIG_IDS)
    def test_refine_equals_suite_bound(self, name, mode, suite_mode):
        """Refinement is the suite's own bound — same value, not an analogue."""
        data = dataset(seed=6)
        db = build(name, mode, data)
        ctx = db.query_context(data[3] - 0.1)
        qc = db.cascade().for_query(ctx)
        for entry in db.entries:
            rep = entry.representation
            assert qc.refine(rep) == db.suite.query_bound(ctx, rep)

    @pytest.mark.parametrize("name,mode,suite_mode", TIER_CONFIGS, ids=CONFIG_IDS)
    def test_vectorised_keys_equal_scalar_cheap(self, name, mode, suite_mode):
        data = dataset(seed=2)
        db = build(name, mode, data)
        cascade = db.cascade()
        ctx = db.query_context(data[5] + 0.5)
        collection = cascade.collection(db)
        keys = cascade.for_query(ctx).cheap_keys(collection)
        scalar = cascade.for_query(ctx)
        by_sid = {e.series_id: e.representation for e in db.entries}
        for sid, key in zip(collection.sids.tolist(), keys.tolist()):
            assert key == scalar.cheap(by_sid[sid])

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_random_dominance_all_tiers(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(8, 32)).cumsum(axis=1)
        query = rng.normal(size=32).cumsum()
        for name, mode, _ in TIER_CONFIGS:
            db = build(name, mode, data)
            ctx = db.query_context(query)
            qc = db.cascade().for_query(ctx)
            for entry in db.entries:
                rep = entry.representation
                assert qc.cheap(rep) <= qc.refine(rep)


class TestNodeTier:
    @pytest.mark.parametrize("name,mode,suite_mode", TIER_CONFIGS, ids=CONFIG_IDS)
    def test_node_lower_never_exceeds_node_distance(self, name, mode, suite_mode):
        data = dataset(count=40, seed=3)
        db = build(name, mode, data, index=IndexKind.DBCH)
        ctx = db.query_context(data[9] + 0.3)
        qc = db.cascade().for_query(ctx)
        stack = [db.tree.root]
        seen = 0
        while stack:
            node = stack.pop()
            assert qc.node_lower(node) <= db.node_distance(ctx, node)
            seen += 1
            if not node.is_leaf:
                stack.extend(node.children)
        assert seen > 1  # the tree actually has internal structure


class TestPairwiseAccel:
    @pytest.mark.parametrize("name,mode,suite_mode", TIER_CONFIGS, ids=CONFIG_IDS)
    def test_lower_never_exceeds_pairwise(self, name, mode, suite_mode):
        data = dataset(count=10, seed=5)
        db = build(name, mode, data)
        accel = make_pairwise_accel(db.suite, db.reducer)
        assert accel is not None
        reps = [e.representation for e in db.entries]
        for a in reps[:5]:
            for b in reps[5:]:
                assert accel.lower(a, b) <= db.suite.pairwise(a, b)

    def test_metric_flag_tracks_reconstruction_modes(self):
        data = dataset(count=6)
        recon = build("SAPLA", DistanceMode.LB, data)
        cheby = build("CHEBY", DistanceMode.PAR, data)
        assert make_pairwise_accel(recon.suite, recon.reducer).metric is True
        assert make_pairwise_accel(cheby.suite, cheby.reducer).metric is False

    def test_certainly_not_above_requires_a_margin(self):
        assert PairwiseAccel.certainly_not_above(1.0, 2.0)
        assert not PairwiseAccel.certainly_not_above(2.0, 2.0)
        assert not PairwiseAccel.certainly_not_above(3.0, 2.0)


class TestUnsupportedModes:
    def test_sax_has_no_cascade(self):
        data = dataset()
        db = build("SAX", DistanceMode.PAR, data)
        cascade = db.cascade()
        assert not cascade.supported
        assert cascade.for_query(db.query_context(data[0])) is None
        assert cascade.collection(db) is None
        assert make_pairwise_accel(db.suite, db.reducer) is None

    def test_sax_searches_still_answer(self):
        data = dataset()
        db = build("SAX", DistanceMode.PAR, data, index=IndexKind.DBCH)
        result = db.knn(data[2] + 0.05, 3)
        assert len(result.ids) == 3


class TestAccounting:
    def test_search_emits_cascade_counters(self):
        data = dataset(count=40, seed=7)
        with obs.capture() as session:
            db = build("SAPLA", DistanceMode.LB, data, index=IndexKind.DBCH)
            for i in range(3):
                db.knn(data[i] + 0.1, 4)
        counters = session.report().counters
        assert counters["cascade.queries"] == 3
        assert counters["cascade.cheap_bounds"] >= counters["cascade.refines"]
        assert counters["cascade.cheap_bounds"] > 0
        assert "cascade.pairwise_skipped" in counters  # DBCH build used the accel

    def test_collection_cache_reused_within_a_generation(self):
        data = dataset()
        db = build("SAPLA", DistanceMode.PAR, data)
        cascade = db.cascade()
        first = cascade.collection(db)
        assert cascade.collection(db) is first
