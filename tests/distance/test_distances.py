"""Tests for the distance measures, including the lower-bounding lemmas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segment import LinearSegmentation, Segment
from repro.distance import (
    aligned_distance,
    dist_ae,
    dist_lb,
    dist_par,
    dist_s,
    euclidean,
    euclidean_squared,
    project_onto_layout,
    triangle_lower_bound,
)
from repro.reduction import APCA, CHEBY, PAA, PLA, SAPLAReducer

rng = np.random.default_rng(17)


def random_pair(n=64, seed=0):
    r = np.random.default_rng(seed)
    q = r.normal(size=n).cumsum()
    c = r.normal(size=n).cumsum()
    return q, c


class TestEuclidean:
    def test_zero_for_identical(self):
        a = rng.normal(size=10)
        assert euclidean(a, a) == 0.0

    def test_known_value(self):
        assert euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            euclidean(np.zeros(3), np.zeros(4))

    def test_squared_consistency(self):
        a, b = random_pair(seed=1)
        assert euclidean(a, b) ** 2 == pytest.approx(euclidean_squared(a, b))


class TestDistS:
    def test_matches_pointwise_sum(self):
        seg_q = Segment(0, 9, 0.5, 1.0)
        seg_c = Segment(0, 9, -0.2, 2.0)
        ref = float(np.sum((seg_q.reconstruct() - seg_c.reconstruct()) ** 2))
        assert dist_s(seg_q, seg_c) == pytest.approx(ref)

    def test_constant_segments(self):
        seg_q = Segment(0, 4, 0.0, 1.0)
        seg_c = Segment(0, 4, 0.0, 3.0)
        assert dist_s(seg_q, seg_c) == pytest.approx(5 * 4.0)

    def test_window_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dist_s(Segment(0, 4, 0, 0), Segment(0, 5, 0, 0))

    @given(
        st.floats(-5, 5), st.floats(-5, 5), st.floats(-5, 5), st.floats(-5, 5),
        st.integers(min_value=1, max_value=50),
    )
    def test_eq12_closed_form_property(self, aq, bq, ac, bc, l):
        seg_q = Segment(0, l - 1, aq, bq)
        seg_c = Segment(0, l - 1, ac, bc)
        ref = float(np.sum((seg_q.reconstruct() - seg_c.reconstruct()) ** 2))
        assert dist_s(seg_q, seg_c) == pytest.approx(ref, rel=1e-9, abs=1e-9)


class TestDistPar:
    def test_equals_reconstruction_distance(self):
        q, c = random_pair(seed=2)
        rep_q = SAPLAReducer(12).transform(q)
        rep_c = SAPLAReducer(12).transform(c)
        ref = euclidean(rep_q.reconstruct(), rep_c.reconstruct())
        assert dist_par(rep_q, rep_c) == pytest.approx(ref, rel=1e-9)

    def test_symmetric(self):
        q, c = random_pair(seed=3)
        rep_q = SAPLAReducer(12).transform(q)
        rep_c = APCA(8).transform(c)
        assert dist_par(rep_q, rep_c) == pytest.approx(dist_par(rep_c, rep_q))

    def test_length_mismatch_rejected(self):
        rep_a = LinearSegmentation([Segment(0, 4, 0, 0)])
        rep_b = LinearSegmentation([Segment(0, 5, 0, 0)])
        with pytest.raises(ValueError):
            dist_par(rep_a, rep_b)

    @pytest.mark.parametrize("reducer", [SAPLAReducer(12), APCA(8), PLA(12), PAA(12)])
    def test_bit_identical_to_scalar_partition_route(self, reducer):
        """The lane-vectorised Dist_PAR equals partition + dist_s to the bit."""
        r = np.random.default_rng(11)
        for n in (7, 64, 130):
            rows = r.normal(size=(4, n)).cumsum(axis=1)
            reps = [reducer.transform(row) for row in rows]
            for rep_q in reps:
                for rep_c in reps:
                    union = sorted(
                        set(rep_q.right_endpoints) | set(rep_c.right_endpoints)
                    )
                    total = sum(
                        dist_s(sq, sc)
                        for sq, sc in zip(rep_q.partition(union), rep_c.partition(union))
                    )
                    ref = float(np.sqrt(max(total, 0.0)))
                    got = dist_par(rep_q, rep_c)
                    assert np.float64(got).tobytes() == np.float64(ref).tobytes()

    @pytest.mark.parametrize("seed", range(10))
    def test_lower_bounds_euclidean_in_practice(self, seed):
        """Dist_PAR <= Dist on typical data (the paper's lemma; see the
        documented caveat in dist_par's docstring)."""
        q, c = random_pair(n=128, seed=seed + 100)
        rep_q = SAPLAReducer(12).transform(q)
        rep_c = SAPLAReducer(12).transform(c)
        assert dist_par(rep_q, rep_c) <= euclidean(q, c) * 1.02 + 1e-9

    def test_documented_counterexample_identical_series(self):
        """Identical series with different layouts give Dist_PAR > 0 = Dist:
        the caveat recorded in the docstring and DESIGN.md."""
        series = np.array([0.0, 0.0, 1.0, 5.0, 2.0, 0.0])
        rep_a = LinearSegmentation([Segment(0, 2, 0.5, 0.0), Segment(3, 5, -2.5, 5.0)])
        rep_b = LinearSegmentation([Segment(0, 5, 0.4, 0.5)])
        assert dist_par(rep_a, rep_b) > 0.0

    @pytest.mark.parametrize("seed", range(10))
    def test_tighter_than_dist_lb(self, seed):
        """Paper Sec. A.6: Dist_LB <= Dist_PAR (tightness).

        The inequality holds up to the same partition caveat documented on
        dist_par (restrictions are not sub-window refits), so individual
        pairs may disagree by a fraction of a percent."""
        q, c = random_pair(n=128, seed=seed + 200)
        rep_q = SAPLAReducer(12).transform(q)
        rep_c = SAPLAReducer(12).transform(c)
        assert dist_lb(q, rep_c) <= dist_par(rep_q, rep_c) * 1.01 + 1e-6

    def test_tighter_than_dist_lb_on_average(self):
        """Across many pairs, Dist_PAR approximates Dist more tightly than
        Dist_LB — the property the DBCH-tree exploits."""
        par_ratios, lb_ratios = [], []
        for seed in range(20):
            q, c = random_pair(n=128, seed=seed + 900)
            rep_q = SAPLAReducer(12).transform(q)
            rep_c = SAPLAReducer(12).transform(c)
            true = euclidean(q, c)
            par_ratios.append(dist_par(rep_q, rep_c) / true)
            lb_ratios.append(dist_lb(q, rep_c) / true)
        assert np.mean(par_ratios) >= np.mean(lb_ratios)


class TestDistLB:
    @pytest.mark.parametrize("seed", range(15))
    def test_unconditional_lower_bound(self, seed):
        """Dist_LB <= Dist always (projection argument)."""
        q, c = random_pair(n=96, seed=seed + 300)
        for reducer in (SAPLAReducer(12), APCA(8), PLA(8)):
            rep_c = reducer.transform(c)
            assert dist_lb(q, rep_c) <= euclidean(q, c) + 1e-9

    def test_projection_layout_preserved(self):
        q, c = random_pair(seed=4)
        rep_c = SAPLAReducer(12).transform(c)
        projected = project_onto_layout(q, rep_c)
        assert projected.right_endpoints == rep_c.right_endpoints

    def test_projection_length_mismatch_rejected(self):
        _, c = random_pair(seed=5)
        rep_c = SAPLAReducer(12).transform(c)
        with pytest.raises(ValueError):
            project_onto_layout(np.zeros(10), rep_c)

    def test_zero_for_query_equal_to_reconstruction(self):
        _, c = random_pair(seed=6)
        rep_c = SAPLAReducer(12).transform(c)
        assert dist_lb(rep_c.reconstruct(), rep_c) == pytest.approx(0.0, abs=1e-9)


class TestDistAE:
    @pytest.mark.parametrize("seed", range(5))
    def test_tighter_approximation_than_dist_lb(self, seed):
        q, c = random_pair(n=96, seed=seed + 400)
        rep_c = SAPLAReducer(12).transform(c)
        true = euclidean(q, c)
        assert abs(dist_ae(q, rep_c) - true) <= true  # sanity: same scale

    def test_can_exceed_euclidean(self):
        """Dist_AE breaks the lower-bounding lemma (paper Fig. 10)."""
        # query equal to the data series: true distance is 0, but the
        # reconstruction differs from the raw series, so Dist_AE > 0
        c = np.random.default_rng(7).normal(size=64).cumsum()
        rep_c = APCA(8).transform(c)
        assert dist_ae(c, rep_c) > 0.0 == euclidean(c, c)

    def test_length_mismatch_rejected(self):
        rep = LinearSegmentation([Segment(0, 4, 0, 0)])
        with pytest.raises(ValueError):
            dist_ae(np.zeros(3), rep)


class TestEqualLengthBounds:
    @pytest.mark.parametrize("seed", range(10))
    def test_pla_lower_bound(self, seed):
        q, c = random_pair(n=80, seed=seed + 500)
        rep_q = PLA(8).transform(q)
        rep_c = PLA(8).transform(c)
        assert aligned_distance(rep_q, rep_c) <= euclidean(q, c) + 1e-9

    @pytest.mark.parametrize("seed", range(10))
    def test_paa_lower_bound(self, seed):
        q, c = random_pair(n=80, seed=seed + 600)
        rep_q = PAA(8).transform(q)
        rep_c = PAA(8).transform(c)
        assert aligned_distance(rep_q, rep_c) <= euclidean(q, c) + 1e-9

    def test_layout_mismatch_rejected(self):
        q, c = random_pair(seed=8)
        with pytest.raises(ValueError):
            aligned_distance(PAA(8).transform(q), PAA(4).transform(c))

    @pytest.mark.parametrize("seed", range(10))
    def test_cheby_triangle_lower_bound(self, seed):
        from repro.distance import dist_cheby

        q, c = random_pair(n=80, seed=seed + 700)
        reducer = CHEBY(8)
        got = dist_cheby(reducer, reducer.transform(q), reducer.transform(c))
        assert got <= euclidean(q, c) + 1e-9

    def test_triangle_bound_clips_at_zero(self):
        assert triangle_lower_bound(np.zeros(4), np.zeros(4), 1.0, 1.0) == 0.0


class TestSuite:
    def test_all_methods_have_suites(self):
        from repro.distance import make_suite
        from repro.reduction import REDUCERS

        for name, cls in REDUCERS.items():
            reducer = cls(n_coefficients=12)
            suite = make_suite(reducer)
            assert suite.method == name

    def test_suite_modes_for_adaptive(self):
        from repro.distance import QueryContext, make_suite

        q, c = random_pair(n=64, seed=9)
        reducer = SAPLAReducer(12)
        ctx = QueryContext(series=q, representation=reducer.transform(q))
        rep_c = reducer.transform(c)
        true = euclidean(q, c)
        lb = make_suite(reducer, "lb").query_bound(ctx, rep_c)
        par = make_suite(reducer, "par").query_bound(ctx, rep_c)
        ae = make_suite(reducer, "ae").query_bound(ctx, rep_c)
        assert lb <= true + 1e-9
        assert lb <= par + 1e-6  # tightness ordering
        assert abs(ae - true) < true  # AE approximates closely

    def test_unknown_mode_rejected(self):
        from repro.distance import make_suite

        with pytest.raises(ValueError):
            make_suite(SAPLAReducer(12), "bogus")
