"""One facade, three backends: ``repro.client.connect`` end to end.

The same typed :class:`KnnRequest`/:class:`RangeRequest` objects must get
the same answers from an in-process database, a saved database directory,
a sharded home, and a live TCP server — and every legacy entry point
(`repro.knn`, direct ``QueryEngine`` construction, ``save_database`` /
``load_database``) must route through the facade with a *single-shot*
``DeprecationWarning``.
"""

import asyncio
import threading
import warnings

import numpy as np
import pytest

import repro
from repro._deprecations import reset_warned
from repro.client import (
    KnnRequest,
    LocalClient,
    QueryResult,
    RangeRequest,
    ServerError,
    TcpClient,
    connect,
)
from repro.index import SeriesDatabase
from repro.kinds import DistanceMode
from repro.reduction import PAA
from repro.serving import ReproServer, ServerConfig, ShardedEngine

LENGTH = 32


@pytest.fixture
def fresh_warnings():
    reset_warned()
    yield
    reset_warned()


def make_db(count=24):
    rng = np.random.default_rng(1)
    db = SeriesDatabase(PAA(8), index=None, distance_mode=DistanceMode.PAR)
    db.ingest(rng.normal(size=(count, LENGTH)).cumsum(axis=1))
    return db


def reference_answers(db, queries, k=5):
    from repro.engine import QueryOptions

    return db.knn_batch(queries, QueryOptions(k=k)).results


def assert_matches(results, reference):
    assert len(results) == len(reference)
    for got, want in zip(results, reference):
        assert isinstance(got, QueryResult)
        assert got.ids == want.ids
        assert got.distances == want.distances


class TestRequestTypes:
    def test_knn_request_coerces_single_series(self):
        request = KnnRequest(queries=np.zeros(LENGTH), k=3)
        assert request.queries.shape == (1, LENGTH)

    def test_knn_request_validates_eagerly(self):
        with pytest.raises(ValueError):
            KnnRequest(queries=np.zeros(LENGTH), k=0)
        with pytest.raises(ValueError):
            KnnRequest(queries=np.zeros((2, 2, 2)))

    def test_range_request_validates(self):
        with pytest.raises(ValueError):
            RangeRequest(query=np.zeros((2, LENGTH)), radius=1.0)
        with pytest.raises(ValueError):
            RangeRequest(query=np.zeros(LENGTH), radius=-1.0)

    def test_payload_round_trip_is_exact(self):
        rng = np.random.default_rng(7)
        request = KnnRequest(queries=rng.normal(size=(2, LENGTH)), k=4, lookahead=2)
        back = KnnRequest.from_payload(request.to_payload())
        np.testing.assert_array_equal(back.queries, request.queries)
        assert back.k == 4 and back.lookahead == 2

    def test_query_result_payload_round_trip(self):
        result = QueryResult(
            ids=[3, 1], distances=[0.5, 1.25], n_verified=4, n_total=10,
            generation=(1, 2, 3),
        )
        back = QueryResult.from_payload(result.to_payload())
        assert back == result
        assert back.pruning_power == pytest.approx(0.4)


class TestLocalBackends:
    def test_connect_to_database_object(self):
        db = make_db()
        queries = np.asarray(db.data)[:3] + 0.01
        with connect(db) as client:
            assert isinstance(client, LocalClient)
            results = client.knn(KnnRequest(queries=queries, k=5))
        assert_matches(results, reference_answers(db, queries))
        assert db.data is not None  # borrowed backends are not torn down

    def test_connect_to_saved_directory(self, tmp_path):
        db = make_db()
        db.save(tmp_path / "db")
        queries = np.asarray(db.data)[:2]
        with connect(tmp_path / "db") as client:
            results = client.knn(KnnRequest(queries=queries, k=4))
            stats = client.stats()
        assert_matches(results, reference_answers(db, queries, k=4))
        assert stats["server"]["backend"] == "local"

    def test_connect_to_sharded_home(self, tmp_path):
        db = make_db()
        ShardedEngine.from_database(db, 3).save(tmp_path / "home")
        queries = np.asarray(db.data)[:3]
        with connect(tmp_path / "home") as client:
            assert client.database.n_shards == 3
            results = client.knn(KnnRequest(queries=queries, k=6))
            stats = client.stats()
        assert_matches(results, reference_answers(db, queries, k=6))
        assert stats["server"]["shards"] == 3

    def test_range_query_through_facade(self):
        db = make_db()
        data = np.asarray(db.data)
        radius = float(np.linalg.norm(data[0] - data[1])) + 1e-9
        want = db.range_query(data[0], radius)
        with connect(db) as client:
            got = client.range(RangeRequest(query=data[0], radius=radius))
        assert got.ids == want.ids
        assert got.distances == want.distances

    def test_connect_rejects_unknown_targets(self, tmp_path):
        with pytest.raises(ValueError):
            connect(tmp_path / "nowhere")
        with pytest.raises(TypeError):
            connect(42)

    def test_ping(self):
        with connect(make_db()) as client:
            assert client.ping() is True


class _ServerThread:
    """Host a ReproServer on a background event loop for the sync TcpClient."""

    def __init__(self, engine, config=None):
        self.server = ReproServer(engine, config or ServerConfig())
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        started.wait(timeout=10)

    @property
    def port(self):
        return self.server.port

    def stop(self):
        async def shutdown():
            await self.server.stop()
            self.loop.stop()

        asyncio.run_coroutine_threadsafe(shutdown(), self.loop)
        self.thread.join(timeout=10)
        self.loop.close()


class TestTcpBackend:
    def test_tcp_client_bit_identical(self):
        db = make_db()
        queries = np.asarray(db.data)[:3] + 0.01
        reference = reference_answers(db, queries)
        host = _ServerThread(ShardedEngine.from_database(db, 2))
        try:
            with TcpClient("127.0.0.1", host.port) as client:
                assert client.ping() is True
                results = client.knn(KnnRequest(queries=queries, k=5))
                stats = client.stats()
        finally:
            host.stop()
        assert_matches(results, reference)
        assert stats["server"]["shards"] == 2

    def test_connect_tcp_url(self):
        db = make_db()
        host = _ServerThread(db)
        try:
            with connect(f"tcp://127.0.0.1:{host.port}") as client:
                assert isinstance(client, TcpClient)
                results = client.knn(KnnRequest(queries=np.asarray(db.data)[:1], k=2))
        finally:
            host.stop()
        assert results[0].ids[0] == 0

    def test_server_error_surfaces(self):
        db = make_db()
        host = _ServerThread(db)
        try:
            with connect(f"tcp://127.0.0.1:{host.port}") as client:
                with pytest.raises(ServerError):
                    # wrong series length: the engine rejects it server-side
                    client.knn(KnnRequest(queries=np.zeros(7), k=2))
        finally:
            host.stop()


class TestDeprecatedEntryPoints:
    def test_free_knn_warns_once_and_routes(self, fresh_warnings):
        db = make_db()
        query = np.asarray(db.data)[4]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = repro.knn(db, query, k=3)
            second = repro.knn(db, query, k=3)
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1  # single-shot
        assert "repro.client" in str(deprecations[0].message)
        assert first.ids == second.ids == db.knn(query, 3).ids

    def test_query_engine_construction_warns_once(self, fresh_warnings):
        from repro.engine import QueryEngine

        db = make_db()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            QueryEngine(db)
            QueryEngine(db)
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1

    def test_db_engine_accessor_does_not_warn(self, fresh_warnings):
        db = make_db()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            db.engine().knn_batch(np.asarray(db.data)[:1])
        assert not [w for w in caught if w.category is DeprecationWarning]

    def test_save_and_load_database_warn_and_route(self, fresh_warnings, tmp_path):
        from repro.io import load_database, save_database

        db = make_db()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            save_database(db, tmp_path / "db")
            loaded = load_database(tmp_path / "db")
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 2  # one per entry point, not per call
        assert loaded._count == db._count
        query = np.asarray(db.data)[0]
        assert loaded.knn(query, 3).ids == db.knn(query, 3).ids
