"""Checkpointing and compaction over both database kinds."""

import numpy as np
import pytest

from repro.index import SeriesDatabase
from repro.io import open_database
from repro.kinds import IndexKind
from repro.lifecycle import (
    DurabilityOptions,
    WAL_FILENAME,
    checkpoint,
    compact,
)
from repro.lifecycle.wal import MAGIC
from repro.reduction import PAA
from repro.storage import DiskBackedDatabase

LENGTH = 48


def memory_db(directory, rows=40, seed=0):
    rng = np.random.default_rng(seed)
    db = SeriesDatabase(PAA(n_coefficients=8), index=IndexKind.DBCH)
    db.ingest(rng.normal(size=(rows, LENGTH)))
    db.save(directory)
    return open_database(directory, durability=DurabilityOptions()), rng


def disk_db(directory, rows=40, seed=0):
    rng = np.random.default_rng(seed)
    db = DiskBackedDatabase(
        PAA(n_coefficients=8), directory / "series.bin", index=IndexKind.RTREE
    )
    db.ingest(rng.normal(size=(rows, LENGTH)))
    db.save(directory)
    return open_database(directory, durability=DurabilityOptions()), rng


@pytest.fixture(params=["memory", "disk"])
def opened(request, tmp_path):
    maker = memory_db if request.param == "memory" else disk_db
    db, rng = maker(tmp_path)
    return db, rng, tmp_path


class TestCheckpoint:
    def test_folds_wal_and_truncates(self, opened):
        db, rng, home = opened
        for _ in range(5):
            db.insert(rng.normal(size=LENGTH))
        db.delete(0)
        assert (home / WAL_FILENAME).stat().st_size > len(MAGIC)
        report = checkpoint(db)
        assert report.row_count == 45
        assert report.live_count == 44
        assert report.wal_bytes_folded > 0
        assert (home / WAL_FILENAME).read_bytes() == MAGIC

    def test_reopen_after_checkpoint_matches(self, opened):
        db, rng, home = opened
        for _ in range(5):
            db.insert(rng.normal(size=LENGTH))
        db.delete(3)
        checkpoint(db)
        fresh = open_database(home)
        assert sorted(e.series_id for e in fresh.entries) == sorted(
            e.series_id for e in db.entries
        )
        q = rng.normal(size=LENGTH)
        a, b = db.knn(q, 5), fresh.knn(q, 5)
        assert a.ids == b.ids
        assert a.distances == b.distances

    def test_unsaved_database_needs_directory(self):
        db = SeriesDatabase(PAA(n_coefficients=8), index=None)
        db.ingest(np.random.default_rng(0).normal(size=(5, LENGTH)))
        with pytest.raises(ValueError):
            checkpoint(db)


class TestCompaction:
    def test_reclaims_at_least_forty_percent_when_half_deleted(self, opened):
        db, rng, home = opened
        live = sorted(e.series_id for e in db.entries)
        for sid in live[: len(live) // 2]:
            db.delete(sid)
        report = compact(db)
        assert report.rows_before == 40
        assert report.rows_live == 20
        assert report.rows_dropped == 20
        assert report.reclaimed_fraction >= 0.40
        assert report.reclaimed_bytes == 20 * LENGTH * 8

    def test_renumbers_contiguously_and_preserves_answers(self, opened):
        db, rng, home = opened
        q = rng.normal(size=LENGTH)
        for sid in (1, 5, 7, 20):
            db.delete(sid)
        before = db.knn(q, 5)
        survivors = sorted(e.series_id for e in db.entries)
        id_map = {old: new for new, old in enumerate(survivors)}
        compact(db)
        assert sorted(e.series_id for e in db.entries) == list(range(36))
        after = db.knn(q, 5)
        assert after.ids == [id_map[i] for i in before.ids]
        assert after.distances == before.distances

    def test_persists_and_reopens(self, opened):
        db, rng, home = opened
        for sid in range(0, 40, 2):
            db.delete(sid)
        compact(db)
        fresh = open_database(home)
        assert len(fresh.entries) == 20
        q = rng.normal(size=LENGTH)
        assert fresh.knn(q, 4).ids == db.knn(q, 4).ids

    def test_ground_truth_fast_path_after_compaction(self, opened):
        db, rng, home = opened
        db.delete(2)
        compact(db)
        q = rng.normal(size=LENGTH)
        gt = db.ground_truth(q, 3)
        # no tombstones left: the scan covers exactly the live rows
        assert gt.n_total == 39

    def test_refuses_empty_database(self, opened):
        db, _, _ = opened
        for e in list(db.entries):
            db.delete(e.series_id)
        with pytest.raises(ValueError):
            compact(db)


class TestGroundTruthOverfetch:
    def test_overfetch_capped_by_tombstones(self, tmp_path):
        db, rng = memory_db(tmp_path, rows=30)
        q = rng.normal(size=LENGTH)
        db.delete(0)
        db.delete(1)
        gt = db.ground_truth(q, 40)  # k beyond the live count
        assert len(gt.ids) == 28
        assert set(gt.ids).isdisjoint({0, 1})

    def test_matches_brute_force_under_churn(self, tmp_path):
        db, rng = memory_db(tmp_path, rows=25)
        for sid in (3, 9, 12):
            db.delete(sid)
        q = rng.normal(size=LENGTH)
        gt = db.ground_truth(q, 5)
        data = np.asarray(db.data)
        dists = np.linalg.norm(data - q[None, :], axis=1)
        want = sorted((d, i) for i, d in enumerate(dists) if i not in {3, 9, 12})[:5]
        assert gt.ids == [i for _, i in want]
        assert gt.distances == pytest.approx([d for d, _ in want])
