"""WAL format, fsync policies, torn-tail tolerance."""

import numpy as np
import pytest

from repro.lifecycle import (
    DurabilityOptions,
    FsyncPolicy,
    WalError,
    WriteAheadLog,
    read_wal,
)
from repro.lifecycle.wal import MAGIC


def test_round_trip_insert_delete_checkpoint(tmp_path):
    path = tmp_path / "wal.log"
    series = np.arange(8, dtype=float)
    with WriteAheadLog.open(path) as wal:
        wal.append_insert(0, series)
        wal.append_delete(0)
        wal.append_checkpoint(1)
    records, torn = read_wal(path)
    assert torn == 0
    assert [r.op for r in records] == ["insert", "delete", "checkpoint"]
    assert records[0].series_id == 0
    np.testing.assert_array_equal(records[0].series, series)
    assert records[1].series_id == 0
    assert records[2].row_count == 1
    assert [r.lsn for r in records] == [1, 2, 3]


def test_missing_file_reads_empty(tmp_path):
    records, torn = read_wal(tmp_path / "absent.log")
    assert records == [] and torn == 0


def test_non_wal_file_raises(tmp_path):
    path = tmp_path / "junk.log"
    path.write_bytes(b"definitely not a WAL file at all")
    with pytest.raises(WalError):
        read_wal(path)


def test_torn_tail_is_dropped_and_reported(tmp_path):
    path = tmp_path / "wal.log"
    with WriteAheadLog.open(path) as wal:
        wal.append_insert(0, np.ones(4))
        wal.append_insert(1, np.ones(4))
    clean = path.read_bytes()
    # simulate a crash mid-append: half a record of garbage at the tail
    path.write_bytes(clean + b"\x99" * 7)
    records, torn = read_wal(path)
    assert len(records) == 2
    assert torn == 7


def test_corrupt_crc_stops_replay_at_the_flip(tmp_path):
    path = tmp_path / "wal.log"
    with WriteAheadLog.open(path) as wal:
        wal.append_insert(0, np.ones(4))
        wal.append_insert(1, np.ones(4))
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF  # flip one payload byte of the second record
    path.write_bytes(bytes(blob))
    records, torn = read_wal(path)
    assert len(records) == 1
    assert torn > 0


def test_open_truncates_torn_tail_and_resumes_lsn(tmp_path):
    path = tmp_path / "wal.log"
    with WriteAheadLog.open(path) as wal:
        wal.append_insert(0, np.ones(4))
        wal.append_insert(1, np.ones(4))
    size_clean = path.stat().st_size
    with open(path, "ab") as handle:
        handle.write(b"\x00" * 11)
    with WriteAheadLog.open(path) as wal:
        assert path.stat().st_size == size_clean  # tail trimmed on open
        assert wal.last_lsn == 2
        assert wal.append_delete(0) == 3
    records, torn = read_wal(path)
    assert torn == 0
    assert [r.lsn for r in records] == [1, 2, 3]


def test_reset_truncates_but_lsn_continues(tmp_path):
    path = tmp_path / "wal.log"
    with WriteAheadLog.open(path) as wal:
        wal.append_insert(0, np.ones(4))
        wal.reset()
        assert path.read_bytes() == MAGIC
        assert wal.append_insert(1, np.ones(4)) == 2  # LSN survives truncation
    records, _ = read_wal(path)
    assert [r.lsn for r in records] == [2]


def test_size_bytes_excludes_magic(tmp_path):
    path = tmp_path / "wal.log"
    with WriteAheadLog.open(path) as wal:
        assert wal.size_bytes() == 0
        wal.append_delete(7)
        assert wal.size_bytes() > 0


class TestDurabilityOptions:
    def test_string_policy_coerces(self):
        assert DurabilityOptions(fsync="always").fsync is FsyncPolicy.ALWAYS

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError):
            DurabilityOptions(batch_records=0)

    def test_policies_control_fsync_cadence(self, tmp_path, monkeypatch):
        import repro.lifecycle.wal as wal_mod

        calls = []
        monkeypatch.setattr(wal_mod.os, "fsync", lambda fd: calls.append(fd))
        with WriteAheadLog.open(
            tmp_path / "a.log", DurabilityOptions(fsync=FsyncPolicy.ALWAYS)
        ) as wal:
            wal.append_delete(1)
            wal.append_delete(2)
        always = len(calls)
        calls.clear()
        with WriteAheadLog.open(
            tmp_path / "b.log", DurabilityOptions(fsync=FsyncPolicy.BATCH, batch_records=2)
        ) as wal:
            wal.append_delete(1)
            batched_after_one = len(calls)
            wal.append_delete(2)
            batched_after_two = len(calls)
        assert always >= 2  # one per append (close may add one)
        assert batched_after_one == 0
        assert batched_after_two == 1
