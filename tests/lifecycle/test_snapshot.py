"""Snapshot-consistent serving: generation counter, pinning, deferred ops."""

import numpy as np
import pytest

from repro.index import SeriesDatabase
from repro.kinds import IndexKind
from repro.reduction import PAA


def make_db(rows=20, length=32, seed=0):
    rng = np.random.default_rng(seed)
    db = SeriesDatabase(PAA(n_coefficients=8), index=IndexKind.DBCH)
    db.ingest(rng.normal(size=(rows, length)))
    return db, rng


class TestGeneration:
    def test_bumps_once_per_visible_mutation(self):
        db, rng = make_db()
        g0 = db.generation
        db.insert(rng.normal(size=32))
        assert db.generation == g0 + 1
        db.delete(0)
        assert db.generation == g0 + 2

    def test_failed_delete_does_not_bump(self):
        db, _ = make_db()
        g0 = db.generation
        assert not db.delete(999)
        assert db.generation == g0


class TestSnapshotPinning:
    def test_pinned_view_is_stable_while_mutations_land(self):
        db, rng = make_db()
        snap = db.snapshot()
        entries_before = list(snap.entries)
        gen_before = snap.generation
        db.insert(rng.normal(size=32))
        db.delete(1)
        # the snapshot's view is untouched
        assert snap.entries is entries_before or snap.entries == entries_before
        assert snap.generation == gen_before
        assert len(snap.entries) == 20
        snap.release()
        # mutations became visible in order after the unpin
        assert len(db.entries) == 20  # +1 insert, -1 delete
        assert db.generation == gen_before + 2
        assert all(e.series_id != 1 for e in db.entries)

    def test_raw_row_lands_immediately_but_entry_defers(self):
        db, rng = make_db()
        with db.freeze() as snap:
            sid = db.insert(rng.normal(size=32))
            assert sid == 20
            assert db.data.shape[0] == 21  # raw row appended at once
            assert len(snap.entries) == 20  # index visibility deferred
        assert len(db.entries) == 21

    def test_nested_snapshots_release_in_any_order(self):
        db, rng = make_db()
        a = db.snapshot()
        b = db.snapshot()
        db.insert(rng.normal(size=32))
        a.release()
        assert len(db.entries) == 20  # still pinned by b
        b.release()
        assert len(db.entries) == 21

    def test_release_is_idempotent(self):
        db, _ = make_db()
        snap = db.snapshot()
        snap.release()
        snap.release()
        db.delete(0)
        assert len(db.entries) == 19

    def test_searches_through_snapshot_ignore_concurrent_inserts(self):
        db, rng = make_db(rows=30)
        q = rng.normal(size=32)
        before = db.knn(q, 5)
        snap = db.snapshot()
        near_duplicate = db.data[before.ids[0]] + 1e-9
        db.insert(near_duplicate)
        # a fresh query through the pinned view sees the old entry set
        from repro.engine import QueryOptions

        pinned_result = snap.engine().knn_batch(q[None, :], QueryOptions(k=5))
        assert pinned_result.results[0].ids == before.ids
        snap.release()
        after = db.knn(q, 5)
        assert 30 in after.ids  # the duplicate ranks at/near the top now

    def test_flush_pending_refuses_while_pinned(self):
        db, rng = make_db()
        snap = db.snapshot()
        db.insert(rng.normal(size=32))
        with pytest.raises(RuntimeError):
            db._flush_pending()
        snap.release()


class TestBatchGeneration:
    def test_batch_result_reports_serving_generation(self):
        db, rng = make_db()
        batch = db.knn_batch(rng.normal(size=(3, 32)))
        assert batch.generation == db.generation
        db.insert(rng.normal(size=32))
        batch2 = db.knn_batch(rng.normal(size=(2, 32)))
        assert batch2.generation == batch.generation + 1


class TestAmortisedInsert:
    def test_buffer_doubles_not_copies_per_insert(self):
        db, rng = make_db(rows=4)
        buffers = set()
        for _ in range(60):
            db.insert(rng.normal(size=32))
            buffers.add(id(db._buf))
        # 4 -> 64 rows should reallocate only a handful of times
        assert len(buffers) <= 6
        assert db.data.shape == (64, 32)

    def test_insert_into_empty_database(self):
        db = SeriesDatabase(PAA(n_coefficients=4), index=None)
        sid = db.insert(np.arange(16, dtype=float))
        assert sid == 0
        assert db.knn(np.arange(16, dtype=float), 1).ids == [0]
