"""Tests for the durability & maintenance subsystem (repro.lifecycle)."""
