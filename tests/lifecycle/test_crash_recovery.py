"""Kill -9 a process mid-ingest; recovery must lose nothing acknowledged.

The child opens a saved database with ``FsyncPolicy.ALWAYS`` and inserts a
deterministic stream of series, printing each id the moment the insert call
returns (i.e. after the WAL record is fsynced).  The parent SIGKILLs it at
several points, reopens the directory, and asserts:

* every acknowledged insert survived (zero lost committed records);
* ids are contiguous with no duplicates;
* k-NN answers are bit-identical to a cleanly built database holding the
  same surviving rows.
"""

import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.index import SeriesDatabase
from repro.io import open_database
from repro.kinds import IndexKind
from repro.reduction import PAA

LENGTH = 32
SEED_ROWS = 10
CHILD_SEED = 1234

CHILD_SCRIPT = textwrap.dedent(
    """
    import sys
    import numpy as np
    from repro.io import open_database
    from repro.lifecycle import DurabilityOptions, FsyncPolicy

    directory, total = sys.argv[1], int(sys.argv[2])
    db = open_database(
        directory, durability=DurabilityOptions(fsync=FsyncPolicy.ALWAYS)
    )
    rng = np.random.default_rng({seed})
    for _ in range(total):
        sid = db.insert(rng.normal(size={length}))
        print(sid, flush=True)  # acknowledged: the WAL record is on disk
    """
).format(seed=CHILD_SEED, length=LENGTH)


def seed_directory(tmp_path):
    rng = np.random.default_rng(0)
    db = SeriesDatabase(PAA(n_coefficients=8), index=IndexKind.DBCH)
    db.ingest(rng.normal(size=(SEED_ROWS, LENGTH)))
    db.save(tmp_path)
    return tmp_path


def run_child_and_kill_after(directory, acks_before_kill, total=200):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT, str(directory), str(total)],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    acked = []
    try:
        for line in child.stdout:
            acked.append(int(line))
            if len(acked) >= acks_before_kill:
                os.kill(child.pid, signal.SIGKILL)
                break
    finally:
        child.stdout.close()
        child.wait()
    return acked


@pytest.mark.parametrize("kill_after", [1, 17, 60])
def test_sigkill_mid_ingest_loses_nothing_acknowledged(tmp_path, kill_after):
    seed_directory(tmp_path)
    acked = run_child_and_kill_after(tmp_path, kill_after)
    assert len(acked) >= kill_after

    recovered = open_database(tmp_path)
    live = sorted(e.series_id for e in recovered.entries)
    # no duplicates, ids contiguous, and every acknowledged insert present
    assert len(live) == len(set(live))
    assert set(acked) <= set(live)
    assert live == list(range(live[-1] + 1))
    assert live[-1] >= acked[-1]

    # bit-identical answers vs a cleanly built database over the same rows
    clean = SeriesDatabase(PAA(n_coefficients=8), index=IndexKind.DBCH)
    clean.ingest(np.asarray(recovered.data)[: len(live)])
    rng = np.random.default_rng(99)
    for q in rng.normal(size=(5, LENGTH)):
        a = recovered.knn(q, 5)
        b = clean.knn(q, 5)
        assert a.ids == b.ids
        assert a.distances == b.distances


def test_double_recovery_is_idempotent(tmp_path):
    seed_directory(tmp_path)
    run_child_and_kill_after(tmp_path, 9)
    first = open_database(tmp_path)
    live_first = sorted(e.series_id for e in first.entries)
    # opening again without checkpointing replays the same WAL again
    second = open_database(tmp_path)
    live_second = sorted(e.series_id for e in second.entries)
    assert live_first == live_second
    assert len(live_second) == len(set(live_second))


def test_recovery_then_checkpoint_clears_the_log(tmp_path):
    from repro.lifecycle import WAL_FILENAME, checkpoint
    from repro.lifecycle.wal import MAGIC

    seed_directory(tmp_path)
    run_child_and_kill_after(tmp_path, 5)
    db = open_database(tmp_path)
    checkpoint(db)
    assert (tmp_path / WAL_FILENAME).read_bytes() == MAGIC
    reopened = open_database(tmp_path)
    assert sorted(e.series_id for e in reopened.entries) == sorted(
        e.series_id for e in db.entries
    )
