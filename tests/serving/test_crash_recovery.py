"""SIGKILL a sharded ingest; per-shard WAL recovery must lose nothing.

Mirrors tests/lifecycle/test_crash_recovery.py for the sharded layer: the
child opens a sharded home with ``FsyncPolicy.ALWAYS`` durability and
inserts through :class:`repro.serving.ShardedEngine` (each record fsynced
into its *shard's* WAL before the insert returns), printing every global
id it gets back.  The parent SIGKILLs it mid-stream, reopens the home, and
asserts the acknowledged prefix survived — including the cross-shard
torn-prefix repair, since the kill can land between two shards' appends —
and that queries over the recovered engine are bit-identical to a cleanly
built unsharded database over the same rows.
"""

import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.index import SeriesDatabase
from repro.kinds import DistanceMode
from repro.reduction import PAA
from repro.serving import ShardedEngine

LENGTH = 32
SEED_ROWS = 10
N_SHARDS = 3
CHILD_SEED = 4321

CHILD_SCRIPT = textwrap.dedent(
    """
    import sys
    import numpy as np
    from repro.lifecycle import DurabilityOptions, FsyncPolicy
    from repro.serving import ShardedEngine

    home, total = sys.argv[1], int(sys.argv[2])
    engine = ShardedEngine.open(
        home, durability=DurabilityOptions(fsync=FsyncPolicy.ALWAYS)
    )
    rng = np.random.default_rng({seed})
    for _ in range(total):
        gid = engine.insert(rng.normal(size={length}))
        print(gid, flush=True)  # acknowledged: the shard's WAL record is on disk
    """
).format(seed=CHILD_SEED, length=LENGTH)


def seed_home(tmp_path):
    rng = np.random.default_rng(0)
    db = SeriesDatabase(PAA(8), index=None, distance_mode=DistanceMode.PAR)
    db.ingest(rng.normal(size=(SEED_ROWS, LENGTH)))
    home = tmp_path / "home"
    ShardedEngine.from_database(db, N_SHARDS).save(home)
    return home


def run_child_and_kill_after(home, acks_before_kill, total=120):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT, str(home), str(total)],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    acked = []
    try:
        for line in child.stdout:
            acked.append(int(line))
            if len(acked) >= acks_before_kill:
                os.kill(child.pid, signal.SIGKILL)
                break
    finally:
        child.stdout.close()
        child.wait()
    return acked


@pytest.mark.parametrize("kill_after", [1, 14, 40])
def test_sigkill_mid_ingest_loses_nothing_acknowledged(tmp_path, kill_after):
    home = seed_home(tmp_path)
    acked = run_child_and_kill_after(home, kill_after)
    assert len(acked) >= kill_after

    recovered = ShardedEngine.open(home)
    count = recovered.count
    # the recovered prefix covers every acknowledged insert, ids contiguous
    assert count > acked[-1]
    assert set(acked) <= set(range(count))
    assert len(recovered) == count  # no deletes in this stream
    # shard counts form exactly the round-robin split of the prefix
    assert [s._count for s in recovered.shards] == [
        len(range(s, count, N_SHARDS)) for s in range(N_SHARDS)
    ]

    # bit-identical answers vs a cleanly built unsharded database over the
    # same surviving rows, reassembled in global id order
    rows = np.stack(
        [
            np.asarray(recovered.shards[g % N_SHARDS].data)[g // N_SHARDS]
            for g in range(count)
        ]
    )
    clean = SeriesDatabase(PAA(8), index=None, distance_mode=DistanceMode.PAR)
    clean.ingest(rows)
    rng = np.random.default_rng(99)
    queries = rng.normal(size=(5, LENGTH))
    from repro.engine import QueryOptions

    a = recovered.knn_batch(queries, QueryOptions(k=5))
    b = clean.knn_batch(queries, QueryOptions(k=5))
    for ra, rb in zip(a.results, b.results):
        assert ra.ids == rb.ids
        assert ra.distances == rb.distances


def test_double_recovery_is_idempotent(tmp_path):
    home = seed_home(tmp_path)
    run_child_and_kill_after(home, 9)
    first = ShardedEngine.open(home)
    second = ShardedEngine.open(home)
    assert first.count == second.count
    assert [s._count for s in first.shards] == [s._count for s in second.shards]


def test_recovery_then_checkpoint_clears_the_logs(tmp_path):
    from repro.lifecycle import WAL_FILENAME
    from repro.lifecycle.wal import MAGIC

    home = seed_home(tmp_path)
    run_child_and_kill_after(home, 7)
    engine = ShardedEngine.open(home)
    count = engine.count
    engine.checkpoint()
    for s in range(N_SHARDS):
        wal = home / f"shard-{s:02d}" / WAL_FILENAME
        assert wal.read_bytes() == MAGIC
    reopened = ShardedEngine.open(home)
    assert reopened.count == count
