"""Sharded scatter-gather == single engine, bit for bit.

The :class:`repro.serving.ShardedEngine` contract mirrors the batched
engine's: for every exact configuration (a true lower-bounding query
bound), any shard count, any index kind and cascade on or off, the merged
answers carry exactly the ids *and* distances of the unsharded engine —
including the stable ``(distance, id)`` tie-break on duplicates.  The
persistence half covers the sharded home round trip, per-shard WAL
recovery, and torn-prefix repair.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import QueryOptions
from repro.index import SeriesDatabase
from repro.kinds import DistanceMode, IndexKind
from repro.lifecycle import DurabilityOptions, FsyncPolicy
from repro.reduction import REDUCERS
from repro.serving import MANIFEST_FILENAME, ShardedEngine, partition_database

#: (reducer, mode) pairs whose bound is a guaranteed lower bound — each
#: shard's top-k is exact over its rows, so the merge must be exact too
#: (mirrors tests/engine/test_equivalence.py)
EXACT_CONFIGS = [
    ("SAPLA", DistanceMode.LB),
    ("APLA", DistanceMode.LB),
    ("APCA", DistanceMode.LB),
    ("PLA", DistanceMode.PAR),
    ("PAA", DistanceMode.PAR),
    ("PAALM", DistanceMode.PAR),
    ("CHEBY", DistanceMode.PAR),
    ("SAX", DistanceMode.PAR),
]

SHARD_COUNTS = [1, 2, 4, 7]


def dataset(count=22, n=48, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(count, n)).cumsum(axis=1)


def build(name, index, mode, data):
    db = SeriesDatabase(REDUCERS[name](8), index=index, distance_mode=mode)
    db.ingest(data)
    return db


def queries_for(data, seed=1, q=3):
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(data), size=q)
    return data[picks] + rng.normal(scale=0.05, size=(q, data.shape[1]))


def assert_batches_identical(single, sharded):
    assert len(single.results) == len(sharded.results)
    for a, b in zip(single.results, sharded.results):
        assert a.ids == b.ids
        assert a.distances == b.distances


class TestBitIdentity:
    @settings(max_examples=20, deadline=None)
    @given(
        n_shards=st.sampled_from(SHARD_COUNTS),
        config=st.sampled_from(EXACT_CONFIGS),
        index=st.sampled_from([None, IndexKind.DBCH, IndexKind.RTREE]),
        cascade=st.booleans(),
        k=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=30),
    )
    def test_knn_batch_matches_single_engine(
        self, n_shards, config, index, cascade, k, seed
    ):
        name, mode = config
        data = dataset(seed=seed)
        db = build(name, index, mode, data)
        engine = ShardedEngine.from_database(db, n_shards)
        options = QueryOptions(k=k, cascade=cascade)
        queries = queries_for(data, seed=seed + 1)
        assert_batches_identical(
            db.knn_batch(queries, options), engine.knn_batch(queries, options)
        )

    @pytest.mark.parametrize("name,mode", EXACT_CONFIGS)
    @pytest.mark.parametrize("n_shards", [2, 5])
    def test_every_exact_config(self, name, mode, n_shards):
        data = dataset()
        db = build(name, None, mode, data)
        engine = ShardedEngine.from_database(db, n_shards)
        options = QueryOptions(k=7)
        queries = queries_for(data)
        assert_batches_identical(
            db.knn_batch(queries, options), engine.knn_batch(queries, options)
        )

    def test_duplicate_rows_tie_break(self):
        # identical rows force distance ties; the merge must resolve them
        # by global id exactly like the single engine does
        base = dataset(count=6)
        data = np.vstack([base, base, base])
        db = build("PAA", None, DistanceMode.PAR, data)
        engine = ShardedEngine.from_database(db, 4)
        options = QueryOptions(k=9)
        assert_batches_identical(
            db.knn_batch(base[:3], options), engine.knn_batch(base[:3], options)
        )

    def test_range_query_matches_single_engine(self):
        data = dataset()
        db = build("PAA", None, DistanceMode.PAR, data)
        engine = ShardedEngine.from_database(db, 3)
        query = data[4]
        radius = float(np.linalg.norm(data[4] - data[9])) + 1e-9
        a = db.range_query(query, radius)
        b = engine.range_query(query, radius)
        assert a.ids == b.ids
        assert a.distances == b.distances

    def test_generation_is_per_shard_tuple(self):
        db = build("PAA", None, DistanceMode.PAR, dataset())
        engine = ShardedEngine.from_database(db, 3)
        batch = engine.knn_batch(dataset()[:2], QueryOptions(k=2))
        assert batch.generation == engine.generation
        assert len(batch.generation) == 3


class TestPartitionAndMutation:
    def test_round_robin_placement(self):
        db = build("PAA", None, DistanceMode.PAR, dataset(count=10))
        shards = partition_database(db, 3)
        assert [s._count for s in shards] == [4, 3, 3]
        for s, shard in enumerate(shards):
            expected = np.asarray(db.data)[s::3]
            np.testing.assert_array_equal(np.asarray(shard.data), expected)

    def test_tombstones_carry_over(self):
        data = dataset(count=10)
        db = build("PAA", None, DistanceMode.PAR, data)
        db.delete(4)
        db.delete(7)
        engine = ShardedEngine.from_database(db, 3)
        assert engine.count == 10
        assert len(engine) == 8
        options = QueryOptions(k=8)
        assert_batches_identical(
            db.knn_batch(data[:2], options), engine.knn_batch(data[:2], options)
        )

    def test_insert_routes_and_stays_identical(self):
        data = dataset(count=9)
        extra = dataset(count=4, seed=5)
        db = build("PAA", None, DistanceMode.PAR, data)
        engine = ShardedEngine.from_database(db, 3)
        for row in extra:
            gid_single = db.insert(row)
            gid_sharded = engine.insert(row)
            assert gid_single == gid_sharded
            assert engine.shard_of(gid_sharded) == gid_sharded % 3
        options = QueryOptions(k=6)
        assert_batches_identical(
            db.knn_batch(extra, options), engine.knn_batch(extra, options)
        )

    def test_delete_global_id(self):
        data = dataset(count=9)
        db = build("PAA", None, DistanceMode.PAR, data)
        engine = ShardedEngine.from_database(db, 2)
        assert engine.delete(5)
        assert not engine.delete(5)  # already tombstoned
        assert not engine.delete(99)  # never allocated
        db.delete(5)
        assert_batches_identical(
            db.knn_batch(data[:2], QueryOptions(k=8)),
            engine.knn_batch(data[:2], QueryOptions(k=8)),
        )

    def test_rejects_non_prefix_shards(self):
        data = dataset(count=9)
        shards = partition_database(build("PAA", None, DistanceMode.PAR, data), 3)
        shards[2].insert(data[0])  # shard 2 gets ahead of shard 1
        with pytest.raises(ValueError, match="round-robin prefix"):
            ShardedEngine(shards)


class TestPersistence:
    def durability(self):
        return DurabilityOptions(fsync=FsyncPolicy.ALWAYS)

    def seeded_home(self, tmp_path, n_shards=3, count=10):
        data = dataset(count=count)
        db = build("PAA", None, DistanceMode.PAR, data)
        engine = ShardedEngine.from_database(db, n_shards)
        home = tmp_path / "home"
        engine.save(home)
        return home, data

    def test_save_open_round_trip(self, tmp_path):
        home, data = self.seeded_home(tmp_path)
        assert (home / MANIFEST_FILENAME).exists()
        reopened = ShardedEngine.open(home)
        assert reopened.n_shards == 3
        assert reopened.count == 10
        reference = build("PAA", None, DistanceMode.PAR, data)
        assert_batches_identical(
            reference.knn_batch(data[:3], QueryOptions(k=5)),
            reopened.knn_batch(data[:3], QueryOptions(k=5)),
        )

    def test_wal_recovery_without_checkpoint(self, tmp_path):
        home, data = self.seeded_home(tmp_path)
        engine = ShardedEngine.open(home, durability=self.durability())
        extra = dataset(count=5, seed=9)
        gids = [engine.insert(row) for row in extra]
        assert gids == [10, 11, 12, 13, 14]
        assert engine.delete(3)
        engine.close()

        recovered = ShardedEngine.open(home)
        assert recovered.count == 15
        assert len(recovered) == 14
        reference = build("PAA", None, DistanceMode.PAR, np.vstack([data, extra]))
        reference.delete(3)
        assert_batches_identical(
            reference.knn_batch(extra, QueryOptions(k=6)),
            recovered.knn_batch(extra, QueryOptions(k=6)),
        )

    def test_checkpoint_truncates_wals(self, tmp_path):
        home, _ = self.seeded_home(tmp_path)
        engine = ShardedEngine.open(home, durability=self.durability())
        for row in dataset(count=3, seed=9):
            engine.insert(row)
        reports = engine.checkpoint()
        assert len(reports) == 3
        engine.close()
        recovered = ShardedEngine.open(home)
        assert recovered.count == 13

    def test_torn_prefix_is_trimmed(self, tmp_path):
        from repro.io import open_database

        home, data = self.seeded_home(tmp_path)
        # one shard gets a row the coordinator never acknowledged (a torn
        # cross-shard batch): opening must trim back to the longest
        # consistent round-robin prefix
        rogue = open_database(home / "shard-02", durability=self.durability())
        rogue.insert(dataset(count=1, seed=42)[0])
        rogue.wal.sync()
        rogue.wal.close()

        recovered = ShardedEngine.open(home)
        assert recovered.count == 10
        assert [s._count for s in recovered.shards] == [4, 3, 3]
        reference = build("PAA", None, DistanceMode.PAR, data)
        assert_batches_identical(
            reference.knn_batch(data[:3], QueryOptions(k=5)),
            recovered.knn_batch(data[:3], QueryOptions(k=5)),
        )
        # and the trim is durable: reopening doesn't resurrect the row
        again = ShardedEngine.open(home)
        assert again.count == 10

    def test_parallel_scatter_identical(self, tmp_path):
        data = dataset(count=20)
        db = build("PAA", None, DistanceMode.PAR, data)
        engine = ShardedEngine.from_database(db, 4, parallel=True)
        try:
            assert_batches_identical(
                db.knn_batch(data[:4], QueryOptions(k=7)),
                engine.knn_batch(data[:4], QueryOptions(k=7)),
            )
        finally:
            engine.close()
