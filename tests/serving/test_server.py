"""Loopback asyncio server: protocol, pipelining, admission control.

Each test runs one :class:`repro.serving.ReproServer` on an ephemeral
loopback port inside its own event loop (``asyncio.run``), talks to it
with raw length-prefixed frames, and asserts on the response envelopes —
including the ``overloaded`` shedding path, which is driven with an engine
that blocks until the test releases it.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.engine import QueryOptions
from repro.index import SeriesDatabase
from repro.kinds import DistanceMode
from repro.reduction import PAA
from repro.serving import (
    FrameError,
    ReproServer,
    ServerConfig,
    ShardedEngine,
    encode_frame,
    read_frame,
)

LENGTH = 32


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(0)
    database = SeriesDatabase(PAA(8), index=None, distance_mode=DistanceMode.PAR)
    database.ingest(rng.normal(size=(30, LENGTH)).cumsum(axis=1))
    return database


def run_session(engine, client, config=None):
    """Start a server, run ``client(reader, writer, server)``, stop it."""

    async def main():
        server = ReproServer(engine, config or ServerConfig())
        await server.start()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            try:
                return await client(reader, writer, server)
            finally:
                writer.close()
                await writer.wait_closed()
        finally:
            await server.stop()

    return asyncio.run(main())


async def call(reader, writer, frame):
    writer.write(encode_frame(frame))
    await writer.drain()
    return await read_frame(reader)


class TestProtocol:
    def test_ping_and_stats(self, db):
        async def client(reader, writer, server):
            pong = await call(reader, writer, {"id": 1, "op": "ping"})
            stats = await call(reader, writer, {"id": 2, "op": "stats"})
            return pong, stats

        pong, stats = run_session(db, client)
        assert pong == {"id": 1, "op": "ping", "ok": True, "pong": True}
        assert stats["ok"] and stats["server"]["shards"] == 1
        assert stats["server"]["max_in_flight"] == 64

    def test_knn_bit_identical_over_the_wire(self, db):
        queries = np.asarray(db.data)[:3] + 0.01
        reference = db.knn_batch(queries, QueryOptions(k=5))

        async def client(reader, writer, server):
            return await call(
                reader,
                writer,
                {"id": 7, "op": "knn", "queries": queries.tolist(), "k": 5},
            )

        reply = run_session(db, client)
        assert reply["ok"] and reply["id"] == 7
        for wire, local in zip(reply["results"], reference.results):
            assert wire["ids"] == local.ids
            assert wire["distances"] == local.distances  # exact: JSON doubles

    def test_knn_against_sharded_engine(self, db):
        queries = np.asarray(db.data)[:2]
        reference = db.knn_batch(queries, QueryOptions(k=4))
        engine = ShardedEngine.from_database(db, 3)

        async def client(reader, writer, server):
            return await call(
                reader,
                writer,
                {"id": 1, "op": "knn", "queries": queries.tolist(), "k": 4},
            )

        reply = run_session(engine, client)
        assert reply["ok"]
        for wire, local in zip(reply["results"], reference.results):
            assert wire["ids"] == local.ids
            assert wire["distances"] == local.distances
        assert reply["results"][0]["generation"] == list(engine.generation)

    def test_range_op(self, db):
        data = np.asarray(db.data)
        radius = float(np.linalg.norm(data[0] - data[1])) + 1e-9
        reference = db.range_query(data[0], radius)

        async def client(reader, writer, server):
            return await call(
                reader,
                writer,
                {"id": 3, "op": "range", "query": data[0].tolist(), "radius": radius},
            )

        reply = run_session(db, client)
        assert reply["ok"]
        assert reply["result"]["ids"] == reference.ids
        assert reply["result"]["distances"] == reference.distances

    def test_unknown_op_and_bad_payload(self, db):
        async def client(reader, writer, server):
            bad_op = await call(reader, writer, {"id": 1, "op": "shutdown"})
            bad_req = await call(reader, writer, {"id": 2, "op": "knn", "k": 3})
            return bad_op, bad_req

        bad_op, bad_req = run_session(db, client)
        assert bad_op == {
            "id": 1,
            "ok": False,
            "code": "bad_request",
            "error": "unknown op 'shutdown'",
        }
        assert not bad_req["ok"] and bad_req["code"] == "bad_request"

    def test_pipelined_responses_matched_by_id(self, db):
        queries = np.asarray(db.data)[:4]

        async def client(reader, writer, server):
            for i, query in enumerate(queries):
                writer.write(
                    encode_frame(
                        {"id": 100 + i, "op": "knn", "queries": [query.tolist()], "k": 1}
                    )
                )
            await writer.drain()
            return [await read_frame(reader) for _ in queries]

        replies = run_session(db, client)
        by_id = {r["id"]: r for r in replies}
        assert sorted(by_id) == [100, 101, 102, 103]
        for i in range(4):
            assert by_id[100 + i]["results"][0]["ids"] == [i]  # its own nearest

    def test_oversized_frame_drops_the_connection(self, db):
        config = ServerConfig(max_frame_bytes=256)

        async def client(reader, writer, server):
            big = {"id": 1, "op": "knn", "queries": [[0.0] * 500], "k": 1}
            writer.write(encode_frame(big))  # client cap is the default 32 MiB
            await writer.drain()
            return await read_frame(reader)

        assert run_session(db, client, config) is None  # server hung up

    def test_frame_error_round_trip_helpers(self):
        with pytest.raises(FrameError):
            encode_frame({"pad": "x" * 64}, max_frame_bytes=16)


class _BlockingEngine:
    """knn_batch blocks until released; lets a test fill the admission queue."""

    def __init__(self, db):
        self._db = db
        self.release = threading.Event()

    def knn_batch(self, queries, options):
        self.release.wait(timeout=30)
        return self._db.knn_batch(queries, options)

    def range_query(self, query, radius):
        return self._db.range_query(query, radius)


class TestAdmissionControl:
    def test_sheds_beyond_queue_depth(self, db):
        engine = _BlockingEngine(db)
        config = ServerConfig(max_in_flight=1, queue_depth=1)
        query = [np.asarray(db.data)[0].tolist()]

        async def client(reader, writer, server):
            for i in range(3):
                writer.write(
                    encode_frame({"id": i, "op": "knn", "queries": query, "k": 1})
                )
            await writer.drain()
            shed = await read_frame(reader)  # the third is shed immediately
            assert server.in_flight == 2  # one executing + one waiting
            engine.release.set()
            served = [await read_frame(reader) for _ in range(2)]
            return shed, served, server.peak_in_flight

        shed, served, peak = run_session(engine, client, config)
        assert shed == {
            "id": 2,
            "ok": False,
            "code": "overloaded",
            "error": "admission queue is full; retry later",
        }
        assert sorted(r["id"] for r in served) == [0, 1]
        assert all(r["ok"] for r in served)
        assert peak == 2  # capped at max_in_flight + queue_depth

    def test_ping_and_stats_bypass_admission(self, db):
        engine = _BlockingEngine(db)
        config = ServerConfig(max_in_flight=1, queue_depth=0)
        query = [np.asarray(db.data)[0].tolist()]

        async def client(reader, writer, server):
            # queue_depth=0: every query is shed, but control ops still answer
            shed = await call(
                reader, writer, {"id": 1, "op": "knn", "queries": query, "k": 1}
            )
            pong = await call(reader, writer, {"id": 2, "op": "ping"})
            stats = await call(reader, writer, {"id": 3, "op": "stats"})
            engine.release.set()
            return shed, pong, stats

        shed, pong, stats = run_session(engine, client, config)
        assert shed["code"] == "overloaded"
        assert pong["pong"] is True
        assert stats["server"]["queue_depth"] == 0

    def test_many_pipelined_queries_all_answered(self, db):
        n = 200
        queries = np.asarray(db.data)
        reference = {
            i: db.knn_batch(queries[i % 30][None, :], QueryOptions(k=3)).results[0]
            for i in range(30)
        }
        config = ServerConfig(max_in_flight=8, queue_depth=n)

        async def client(reader, writer, server):
            for i in range(n):
                writer.write(
                    encode_frame(
                        {
                            "id": i,
                            "op": "knn",
                            "queries": [queries[i % 30].tolist()],
                            "k": 3,
                        }
                    )
                )
            await writer.drain()
            replies = [await read_frame(reader) for _ in range(n)]
            return replies, server.peak_in_flight

        replies, peak = run_session(db, client, config)
        assert len(replies) == n
        for reply in replies:
            assert reply["ok"], reply
            local = reference[reply["id"] % 30]
            assert reply["results"][0]["ids"] == local.ids
            assert reply["results"][0]["distances"] == local.distances
        assert peak > 8  # the queue really did hold a population


class TestServerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(max_in_flight=0)
        with pytest.raises(ValueError):
            ServerConfig(queue_depth=-1)
        with pytest.raises(ValueError):
            ServerConfig(workers=0)

    def test_port_zero_picks_a_free_port(self, db):
        async def client(reader, writer, server):
            return server.port

        assert run_session(db, client) > 0
