"""Packed column blocks and the batched page-store read path.

The exactness story: the float32 in-memory block is only ever a *filter*
cache (its norms are float64, taken from the original rows), while the
memory-mapped block shares bytes with the page file itself, so values read
through it are bit-identical to per-row page reads — and the physical-I/O
accounting must say so too.
"""

import numpy as np
import pytest

from repro import obs
from repro.storage import ColumnBlockStore, PagedSeriesStore

DATA = np.random.default_rng(3).normal(size=(24, 48)).cumsum(axis=1)


class TestInMemoryBlock:
    def test_from_array_packs_float32_with_float64_norms(self):
        block = ColumnBlockStore.from_array(DATA)
        assert block.dtype == np.float32
        assert block.block.flags["C_CONTIGUOUS"]
        assert block.count == 24 and block.length == 48
        assert len(block) == 24
        assert block.row_norms.dtype == np.float64
        np.testing.assert_array_equal(block.row_norms, np.linalg.norm(DATA, axis=1))
        np.testing.assert_allclose(block.block, DATA, rtol=1e-6, atol=1e-5)

    def test_gather_returns_requested_order(self):
        block = ColumnBlockStore.from_array(DATA)
        got = block.gather([5, 0, 17, 5])
        np.testing.assert_array_equal(got, DATA[[5, 0, 17, 5]].astype(np.float32))

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            ColumnBlockStore(np.zeros(8))

    def test_counters(self):
        with obs.capture() as session:
            block = ColumnBlockStore.from_array(DATA)
            block.gather([1, 2])
            block.gather(np.array([3]))
        counters = session.report().counters
        assert counters["columns.builds"] == 1
        assert counters["columns.gathers"] == 2


class TestMappedBlock:
    def test_mapped_rows_are_bit_identical_to_reads(self, tmp_path):
        store = PagedSeriesStore.write(tmp_path / "s.bin", DATA)
        block = store.mapped_columns()
        assert block is not None
        assert block.dtype == np.float64
        assert block.row_norms is None
        ids = [2, 19, 0, 7]
        np.testing.assert_array_equal(block.gather(ids), store.get_rows(ids))
        np.testing.assert_array_equal(np.asarray(block.block), store.read_all())

    def test_mapped_block_cached_until_append(self, tmp_path):
        store = PagedSeriesStore.write(tmp_path / "s.bin", DATA)
        first = store.mapped_columns()
        assert store.mapped_columns() is first
        store.put_row(len(store), DATA[0] + 1.0)
        rebuilt = store.mapped_columns()
        assert rebuilt is not first
        assert rebuilt.count == len(DATA) + 1
        np.testing.assert_array_equal(rebuilt.gather([len(DATA)])[0], DATA[0] + 1.0)

    def test_gather_charges_physical_pages(self, tmp_path):
        store = PagedSeriesStore.write(
            tmp_path / "s.bin", DATA, page_size=256, cache_pages=2
        )
        block = store.mapped_columns()
        store.stats.reset()
        with obs.capture() as session:
            block.gather([0, 11])
        # 48 float64 values = 384 bytes: each row spans at least 2 pages of 256
        assert store.stats.page_reads >= 4
        assert session.report().counters["storage.page_reads"] == store.stats.page_reads

    def test_empty_store_maps_to_none(self, tmp_path):
        path = tmp_path / "s.bin"
        store = PagedSeriesStore.write(path, DATA)
        with pytest.raises(ValueError):
            ColumnBlockStore.from_paged(_EmptyStoreProxy(store))


class _EmptyStoreProxy:
    """A store that reports zero rows — from_paged must refuse it."""

    def __init__(self, store):
        self.path = store.path
        self.page_size = store.page_size
        self.length = store.length

    def __len__(self):
        return 0


class TestBatchedReads:
    def test_get_rows_matches_individual_reads(self, tmp_path):
        store = PagedSeriesStore.write(tmp_path / "s.bin", DATA)
        ids = [9, 3, 3, 21, 0]
        batched = store.get_rows(ids)
        for row, sid in zip(batched, ids):
            np.testing.assert_array_equal(row, store.read(sid))

    def test_get_rows_counts_one_batch(self, tmp_path):
        store = PagedSeriesStore.write(tmp_path / "s.bin", DATA)
        with obs.capture() as session:
            store.get_rows([1, 5, 9])
        assert session.report().counters["pages.batch_reads"] == 1

    def test_get_rows_validates_ids(self, tmp_path):
        store = PagedSeriesStore.write(tmp_path / "s.bin", DATA)
        with pytest.raises(IndexError):
            store.get_rows([0, len(DATA)])
