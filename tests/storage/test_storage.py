"""Tests for the paged store and the disk-backed database."""

import numpy as np
import pytest

from repro.reduction import SAPLAReducer
from repro.storage import DiskBackedDatabase, PagedSeriesStore

DATA = np.random.default_rng(0).normal(size=(40, 64)).cumsum(axis=1)


class TestPagedStore:
    def test_write_and_read_round_trip(self, tmp_path):
        store = PagedSeriesStore.write(tmp_path / "store.bin", DATA)
        for i in (0, 7, 39):
            np.testing.assert_allclose(store.read(i), DATA[i])
        np.testing.assert_allclose(store.read_all(), DATA)

    def test_open_existing(self, tmp_path):
        PagedSeriesStore.write(tmp_path / "store.bin", DATA)
        store = PagedSeriesStore.open(tmp_path / "store.bin")
        assert len(store) == 40
        assert store.length == 64
        np.testing.assert_allclose(store.read(3), DATA[3])

    def test_page_reads_counted(self, tmp_path):
        store = PagedSeriesStore.write(tmp_path / "s.bin", DATA, page_size=256, cache_pages=2)
        store.stats.reset()
        store.read(0)
        assert store.stats.page_reads >= 2  # 64 * 8 bytes = 2 pages of 256

    def test_cache_hits(self, tmp_path):
        store = PagedSeriesStore.write(tmp_path / "s.bin", DATA, page_size=4096, cache_pages=8)
        store.stats.reset()
        store.read(0)
        first = store.stats.page_reads
        store.read(0)  # same pages again
        assert store.stats.page_reads == first
        assert store.stats.cache_hits > 0

    def test_lru_eviction(self, tmp_path):
        store = PagedSeriesStore.write(tmp_path / "s.bin", DATA, page_size=512, cache_pages=1)
        store.stats.reset()
        store.read(0)
        store.read(30)  # far away: evicts
        reads_before = store.stats.page_reads
        store.read(0)  # must re-read
        assert store.stats.page_reads > reads_before

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            PagedSeriesStore(tmp_path / "x.bin", page_size=8)
        with pytest.raises(ValueError):
            PagedSeriesStore(tmp_path / "x.bin", cache_pages=0)
        with pytest.raises(ValueError):
            PagedSeriesStore.write(tmp_path / "x.bin", np.zeros(4))
        store = PagedSeriesStore.write(tmp_path / "ok.bin", DATA)
        with pytest.raises(IndexError):
            store.read(100)

    def test_corrupt_header(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"\0" * 8)
        with pytest.raises(ValueError):
            PagedSeriesStore.open(path)


class TestDiskBackedDatabase:
    def test_search_matches_memory_database(self, tmp_path):
        from repro.index import SeriesDatabase

        disk = DiskBackedDatabase(SAPLAReducer(12), tmp_path / "db.bin", index="dbch")
        disk.ingest(DATA)
        memory = SeriesDatabase(SAPLAReducer(12), index="dbch")
        memory.ingest(DATA)
        query = DATA[5] + 0.05
        a = disk.knn(query, 4)
        b = memory.knn(query, 4)
        assert a.ids == b.ids
        assert a.distances == pytest.approx(b.distances)

    def test_io_tracks_verifications(self, tmp_path):
        disk = DiskBackedDatabase(
            SAPLAReducer(12), tmp_path / "db.bin", index=None, distance_mode="lb"
        )
        disk.ingest(DATA)
        disk.reset_io()
        result = disk.knn(DATA[0] + 0.01, 1)
        stats = disk.io_stats
        # pruning means far fewer page accesses than a full scan
        full_scan_accesses = len(DATA) * disk.store.pages_per_series()
        assert stats.total_accesses < full_scan_accesses
        assert result.n_verified < len(DATA)

    def test_ground_truth_reads_everything(self, tmp_path):
        disk = DiskBackedDatabase(SAPLAReducer(12), tmp_path / "db.bin")
        disk.ingest(DATA)
        disk.reset_io()
        truth = disk.ground_truth(DATA[3], 2)
        assert truth.ids[0] == 3
        assert disk.io_stats.total_accesses >= len(DATA)

    def test_search_before_ingest_rejected(self, tmp_path):
        disk = DiskBackedDatabase(SAPLAReducer(12), tmp_path / "db.bin")
        with pytest.raises(RuntimeError):
            disk.knn(np.zeros(8), 1)
        with pytest.raises(RuntimeError):
            disk.ground_truth(np.zeros(8), 1)
