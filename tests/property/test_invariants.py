"""Cross-stack property tests: the invariants everything else relies on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SAPLA, SeriesStats, StreamingSAPLA
from repro.core.areas import area_between_lines
from repro.core.linefit import LineFit
from repro.distance import dist_lb, dist_par, euclidean
from repro.index import SeriesDatabase
from repro.reduction import APCA, PAA, PLA, SAPLAReducer

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)


def series_strategy(min_size=4, max_size=100):
    return st.lists(finite, min_size=min_size, max_size=max_size).map(
        lambda xs: np.asarray(xs, dtype=float)
    )


class TestLineFitAlgebra:
    @given(series_strategy(2, 40), series_strategy(2, 40), series_strategy(2, 40))
    @settings(max_examples=50)
    def test_merge_is_associative(self, a, b, c):
        fa, fb, fc = map(LineFit.from_values, (a, b, c))
        left = fa.merge(fb).merge(fc)
        right = fa.merge(fb.merge(fc))
        assert left.coefficients == pytest.approx(right.coefficients, abs=1e-4)

    @given(series_strategy(2, 40), finite)
    @settings(max_examples=50)
    def test_extend_then_shrink_is_identity(self, values, new):
        fit = LineFit.from_values(values)
        round_trip = fit.extend_right(new).shrink_right(new)
        assert round_trip.coefficients == pytest.approx(fit.coefficients, abs=1e-6)
        round_trip = fit.extend_left(new).shrink_left(new)
        assert round_trip.coefficients == pytest.approx(fit.coefficients, abs=1e-6)

    @given(series_strategy(2, 60))
    @settings(max_examples=50)
    def test_residuals_sum_to_zero(self, values):
        """The normal equations: reconstruction preserves the mean."""
        fit = LineFit.from_values(values)
        residuals = values - fit.reconstruct()
        assert float(residuals.sum()) == pytest.approx(0.0, abs=1e-5 * (1 + np.abs(values).sum()))


class TestAreaProperties:
    @given(finite, finite, finite, finite, st.floats(0, 50), st.floats(0.1, 50))
    @settings(max_examples=50)
    def test_symmetry(self, a1, b1, a2, b2, t0, width):
        forward = area_between_lines(a1, b1, a2, b2, t0, t0 + width)
        backward = area_between_lines(a2, b2, a1, b1, t0, t0 + width)
        assert forward == pytest.approx(backward, rel=1e-9, abs=1e-9)

    @given(finite, finite, st.floats(0, 50), st.floats(0.1, 50))
    @settings(max_examples=50)
    def test_identical_lines_zero(self, a, b, t0, width):
        assert area_between_lines(a, b, a, b, t0, t0 + width) == 0.0


class TestReductionInvariants:
    @given(series_strategy(4, 80), st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_sapla_reconstruction_error_bounded_by_range(self, values, n_segments):
        rep = SAPLA(n_segments=n_segments).transform(values)
        gap = float(np.abs(values - rep.reconstruct()).max())
        spread = float(values.max() - values.min())
        assert gap <= spread + 1e-6

    @given(series_strategy(6, 80))
    @settings(max_examples=30, deadline=None)
    def test_segment_methods_agree_on_linear_data(self, values):
        """On perfectly linear data every linear method is lossless."""
        linear = np.linspace(values[0], values[0] + 5, 40)
        for reducer in (SAPLAReducer(6), PLA(4)):
            recon = reducer.reconstruct(reducer.transform(linear))
            assert float(np.abs(linear - recon).max()) < 1e-6

    @given(series_strategy(8, 60), st.integers(min_value=2, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_streaming_matches_length(self, values, budget):
        stream = StreamingSAPLA(budget)
        stream.extend(values)
        assert stream.representation.length == len(values)


class TestDistanceInvariants:
    @given(series_strategy(16, 64), series_strategy(16, 64))
    @settings(max_examples=30, deadline=None)
    def test_dist_lb_lower_bounds_for_every_adaptive_method(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        true = euclidean(a, b)
        for reducer in (SAPLAReducer(9), APCA(6), PAA(6)):
            rep_b = reducer.transform(b)
            assert dist_lb(a, rep_b) <= true + 1e-6 * (1 + true)

    @given(series_strategy(16, 64))
    @settings(max_examples=30, deadline=None)
    def test_dist_par_identity_of_same_representation(self, a):
        rep = SAPLAReducer(9).transform(a)
        assert dist_par(rep, rep) == pytest.approx(0.0, abs=1e-9)

    @given(series_strategy(16, 64), series_strategy(16, 64))
    @settings(max_examples=30, deadline=None)
    def test_dist_par_symmetry(self, a, b):
        n = min(len(a), len(b))
        rep_a = SAPLAReducer(9).transform(a[:n])
        rep_b = APCA(6).transform(b[:n])
        assert dist_par(rep_a, rep_b) == pytest.approx(dist_par(rep_b, rep_a), rel=1e-9)


class TestSearchInvariants:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_exact_scan_never_misses(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(20, 32)).cumsum(axis=1)
        db = SeriesDatabase(SAPLAReducer(9), index=None, distance_mode="lb")
        db.ingest(data)
        query = data[int(rng.integers(20))] + rng.normal(scale=0.1, size=32)
        got = db.knn(query, 3)
        truth = db.ground_truth(query, 3)
        assert got.ids == truth.ids
