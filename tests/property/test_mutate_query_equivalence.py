"""Interleaved insert/delete/knn_batch equals a freshly built database.

For any sequence of mutations, the surviving series must answer queries
exactly as if a new database had been built from just those series — ids
mapped through the survivors' rank order, distances bit-identical.  Runs
across reducer x index kind; the configurations all use guaranteed lower
bounds (PAA aligned, SAPLA with ``DistanceMode.LB``) so answers are exact
and independent of tree shape.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import QueryOptions
from repro.index import SeriesDatabase
from repro.kinds import DistanceMode, IndexKind
from repro.reduction import PAA, SAPLAReducer

LENGTH = 32
K = 4

CONFIGS = [
    ("paa-dbch", lambda: SeriesDatabase(PAA(n_coefficients=8), index=IndexKind.DBCH)),
    ("paa-rtree", lambda: SeriesDatabase(PAA(n_coefficients=8), index=IndexKind.RTREE)),
    ("paa-scan", lambda: SeriesDatabase(PAA(n_coefficients=8), index=None)),
    (
        "sapla-lb-dbch",
        lambda: SeriesDatabase(
            SAPLAReducer(8), index=IndexKind.DBCH, distance_mode=DistanceMode.LB
        ),
    ),
]


def op_strategy():
    return st.lists(
        st.one_of(
            st.tuples(st.just("insert"), st.integers(0, 2**31 - 1)),
            st.tuples(st.just("delete"), st.integers(0, 59)),
            st.tuples(st.just("query"), st.integers(0, 2**31 - 1)),
        ),
        min_size=1,
        max_size=24,
    )


def row_from(seed):
    return np.random.default_rng(seed).normal(size=LENGTH)


@pytest.mark.parametrize("name,factory", CONFIGS, ids=[c[0] for c in CONFIGS])
@given(ops=op_strategy())
@settings(max_examples=12, deadline=None)
def test_interleaved_mutations_match_fresh_database(name, factory, ops):
    rng = np.random.default_rng(7)
    base = rng.normal(size=(12, LENGTH))
    db = factory()
    db.ingest(base)
    rows = {i: base[i] for i in range(12)}  # id -> raw row, survivors only
    next_id = 12

    deferred_queries = []
    for op, value in ops:
        if op == "insert":
            sid = db.insert(row_from(value))
            assert sid == next_id
            rows[sid] = row_from(value)
            next_id += 1
        elif op == "delete":
            expected = value in rows
            assert db.delete(value) == expected
            rows.pop(value, None)
        else:
            deferred_queries.append(row_from(value))
    if not rows:
        return
    queries = np.asarray(deferred_queries[-3:] or [rng.normal(size=LENGTH)])

    # fresh database over the surviving rows, in ascending original-id order
    survivors = sorted(rows)
    fresh = factory()
    fresh.ingest(np.asarray([rows[sid] for sid in survivors]))
    id_map = dict(enumerate(survivors))  # fresh id -> original id

    k = min(K, len(survivors))
    got = db.knn_batch(queries, QueryOptions(k=k))
    want = fresh.knn_batch(queries, QueryOptions(k=k))
    for mutated, rebuilt in zip(got.results, want.results):
        assert mutated.ids == [id_map[i] for i in rebuilt.ids]
        assert mutated.distances == rebuilt.distances  # bit-identical
