"""Tests for the evaluation metrics."""

import time

import numpy as np
import pytest

from repro.core.segment import LinearSegmentation, Segment
from repro.metrics import (
    CPUTimer,
    cpu_time,
    max_deviation,
    segment_deviations,
    sum_of_segment_deviations,
)


def make_rep():
    return LinearSegmentation([Segment(0, 4, 1.0, 0.0), Segment(5, 9, 0.0, 2.0)])


class TestMaxDeviation:
    def test_zero_for_identical(self):
        series = np.arange(10.0)
        assert max_deviation(series, series) == 0.0

    def test_known_value(self):
        assert max_deviation(np.array([0.0, 5.0]), np.array([1.0, 2.0])) == 3.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            max_deviation(np.zeros(3), np.zeros(4))


class TestSegmentDeviations:
    def test_per_segment_values(self):
        rep = make_rep()
        series = rep.reconstruct()
        series[2] += 1.5  # inside segment 0
        series[7] -= 0.5  # inside segment 1
        devs = segment_deviations(series, rep)
        assert devs == pytest.approx([1.5, 0.5])

    def test_sum(self):
        rep = make_rep()
        series = rep.reconstruct()
        series[0] += 2.0
        series[9] += 3.0
        assert sum_of_segment_deviations(series, rep) == pytest.approx(5.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            segment_deviations(np.zeros(5), make_rep())


class TestTiming:
    def test_timer_accumulates(self):
        timer = CPUTimer()
        with cpu_time(timer):
            sum(i * i for i in range(200_000))
        first = timer.elapsed
        assert first > 0.0
        with cpu_time(timer):
            sum(i * i for i in range(200_000))
        assert timer.elapsed > first

    def test_context_manager_creates_timer(self):
        with cpu_time() as timer:
            time.process_time()  # trivial work
        assert timer.elapsed >= 0.0

    def test_stop_returns_delta(self):
        timer = CPUTimer()
        timer.start()
        delta = timer.stop()
        assert delta >= 0.0
        assert timer.elapsed == pytest.approx(delta)
