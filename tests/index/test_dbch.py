"""DBCH-tree structural invariants and hull behaviour."""

import numpy as np
import pytest

from repro.distance import dist_par, make_suite
from repro.index.dbch import DBCHTree
from repro.index.entries import Entry
from repro.reduction import SAPLAReducer


def scalar_distance(a, b):
    """A trivial metric for structural tests: reps are floats."""
    return abs(a - b)


def make_scalar_tree(values, max_entries=5, min_entries=2):
    tree = DBCHTree(scalar_distance, max_entries=max_entries, min_entries=min_entries)
    for i, v in enumerate(values):
        tree.insert(Entry(series_id=i, representation=float(v)))
    return tree


def check_invariants(tree):
    for node in tree.iter_nodes():
        items = node.items()
        if node is not tree.root:
            assert len(items) >= tree.min_entries
        assert len(items) <= tree.max_entries
        assert node.hull is not None
        assert node.volume >= 0.0
        if not node.is_leaf:
            for child in node.children:
                assert child.parent is node


class TestDBCHStructure:
    def test_fill_validation(self):
        with pytest.raises(ValueError):
            DBCHTree(scalar_distance, max_entries=4, min_entries=4)

    @pytest.mark.parametrize("count", [1, 5, 6, 30, 100])
    def test_invariants_after_inserts(self, count):
        values = np.random.default_rng(count).normal(size=count) * 10
        tree = make_scalar_tree(values)
        assert len(tree) == count
        check_invariants(tree)

    def test_all_entries_reachable(self):
        values = np.random.default_rng(1).normal(size=64)
        tree = make_scalar_tree(values)
        seen = set()
        for node in tree.iter_nodes():
            if node.is_leaf:
                seen.update(e.series_id for e in node.entries)
        assert seen == set(range(64))

    def test_leaf_hull_is_max_pairwise_distance(self):
        tree = make_scalar_tree([0.0, 1.0, 10.0])
        leaf = tree.root
        assert leaf.volume == pytest.approx(10.0)
        assert sorted(leaf.hull) == [0.0, 10.0]

    def test_node_distance_inside_hull_is_zero(self):
        tree = make_scalar_tree([0.0, 10.0])
        assert tree.node_distance(5.0, tree.root) == 0.0

    def test_node_distance_outside_hull(self):
        tree = make_scalar_tree([0.0, 10.0])
        # query 25: du = 25, dl = 15, volume = 10 -> 15 - 10 = 5
        assert tree.node_distance(25.0, tree.root) == pytest.approx(5.0)

    def test_split_separates_clusters(self):
        """Two well-separated value clusters should land in different leaves."""
        values = [0.0, 0.1, 0.2, 100.0, 100.1, 100.2]
        tree = make_scalar_tree(values, max_entries=5, min_entries=2)
        leaves = [n for n in tree.iter_nodes() if n.is_leaf]
        assert len(leaves) == 2
        groups = [sorted(e.representation for e in leaf.entries) for leaf in leaves]
        groups.sort()
        assert groups[0] == [0.0, 0.1, 0.2]
        assert groups[1] == [100.0, 100.1, 100.2]

    def test_identical_representations_do_not_break(self):
        tree = make_scalar_tree([3.0] * 20)
        assert len(tree) == 20
        check_invariants(tree)


class TestDBCHWithRepresentations:
    def test_tree_over_sapla_representations(self):
        rng = np.random.default_rng(7)
        data = rng.normal(size=(40, 64)).cumsum(axis=1)
        reducer = SAPLAReducer(12)
        suite = make_suite(reducer)
        tree = DBCHTree(suite.pairwise)
        for i, series in enumerate(data):
            tree.insert(Entry(series_id=i, representation=reducer.transform(series)))
        check_invariants(tree)
        assert len(tree) == 40

    def test_homogeneous_clusters_grouped(self):
        """Series from two distinct generators should mostly separate."""
        rng = np.random.default_rng(8)
        flat = rng.normal(scale=0.1, size=(10, 64))
        trend = np.linspace(0, 50, 64) + rng.normal(scale=0.1, size=(10, 64))
        data = np.vstack([flat, trend])
        reducer = SAPLAReducer(12)
        tree = DBCHTree(dist_par, max_entries=5, min_entries=2)
        for i, series in enumerate(data):
            tree.insert(Entry(series_id=i, representation=reducer.transform(series)))
        # the root's two subtrees should split flat vs trend nearly perfectly
        assert not tree.root.is_leaf
        purity = []
        for child in tree.root.children:
            ids = set()
            stack = [child]
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    ids.update(e.series_id for e in node.entries)
                else:
                    stack.extend(node.children)
            flat_count = sum(1 for i in ids if i < 10)
            purity.append(max(flat_count, len(ids) - flat_count) / len(ids))
        assert min(purity) >= 0.8
