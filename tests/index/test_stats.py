"""Tests for the index overlap/fill diagnostics."""

import numpy as np
import pytest

from repro.index import (
    RTree,
    SeriesDatabase,
    dbch_overlap,
    leaf_fill,
    rtree_overlap,
)
from repro.index.dbch import DBCHTree
from repro.index.entries import Entry
from repro.reduction import SAPLAReducer


def rtree_of(points):
    tree = RTree()
    for i, p in enumerate(points):
        tree.insert(Entry(series_id=i, representation=None, feature=np.asarray(p, float)))
    return tree


class TestRTreeOverlap:
    def test_single_leaf_has_no_overlap(self):
        tree = rtree_of(np.random.default_rng(0).normal(size=(4, 2)))
        assert rtree_overlap(tree) == 0.0

    def test_separated_clusters_low_overlap(self):
        rng = np.random.default_rng(1)
        cluster_a = rng.normal(size=(15, 2)) * 0.1
        cluster_b = rng.normal(size=(15, 2)) * 0.1 + 100.0
        tree = rtree_of(np.vstack([cluster_a, cluster_b]))
        assert rtree_overlap(tree) < 0.5

    def test_interleaved_points_overlap_more(self):
        rng = np.random.default_rng(2)
        spread = rtree_of(rng.normal(size=(40, 6)))  # high-dim noise: boxes overlap
        assert 0.0 <= rtree_overlap(spread) <= 1.0

    def test_leaf_fill(self):
        tree = rtree_of(np.random.default_rng(3).normal(size=(25, 2)))
        fill = leaf_fill(tree)
        assert 2.0 <= fill <= 5.0


class TestDBCHOverlap:
    def test_scalar_tree(self):
        tree = DBCHTree(lambda a, b: abs(a - b))
        values = list(np.linspace(0, 100, 30))
        for i, v in enumerate(values):
            tree.insert(Entry(series_id=i, representation=float(v)))
        frac = dbch_overlap(tree)
        assert 0.0 <= frac <= 1.0
        assert 2.0 <= leaf_fill(tree) <= 5.0

    def test_on_representations(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(30, 64)).cumsum(axis=1)
        db = SeriesDatabase(SAPLAReducer(12), index="dbch")
        db.ingest(data)
        assert 0.0 <= dbch_overlap(db.tree) <= 1.0

    def test_empty_tree(self):
        tree = DBCHTree(lambda a, b: abs(a - b))
        assert dbch_overlap(tree) == 0.0
        assert leaf_fill(tree) == pytest.approx(0.0)
