"""Single-series insert and a stateful CRUD property test for the database."""

import numpy as np
import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.index import SeriesDatabase
from repro.reduction import PAA, SAPLAReducer


class TestInsert:
    def test_insert_into_empty(self):
        db = SeriesDatabase(SAPLAReducer(12), index="dbch")
        series = np.random.default_rng(0).normal(size=32)
        assert db.insert(series) == 0
        assert db.knn(series, 1).ids == [0]

    def test_insert_after_ingest(self):
        data = np.random.default_rng(1).normal(size=(10, 32)).cumsum(axis=1)
        db = SeriesDatabase(SAPLAReducer(12), index="rtree")
        db.ingest(data)
        new = data[0] * -2.0
        new_id = db.insert(new)
        assert new_id == 10
        assert db.knn(new, 1).ids == [10]

    def test_insert_length_mismatch(self):
        db = SeriesDatabase(PAA(8), index=None)
        db.ingest(np.zeros((3, 16)))
        with pytest.raises(ValueError):
            db.insert(np.zeros(8))

    def test_ids_stable_after_delete(self):
        data = np.random.default_rng(2).normal(size=(5, 16))
        db = SeriesDatabase(PAA(8), index="dbch")
        db.ingest(data)
        db.delete(2)
        new_id = db.insert(np.random.default_rng(3).normal(size=16))
        assert new_id == 5  # append-only ids


class DatabaseMachine(RuleBasedStateMachine):
    """CRUD consistency: the database must always agree with a plain model.

    Uses the no-tree, guaranteed-lower-bound configuration where search is
    provably exact, so any disagreement is a genuine bug.
    """

    def __init__(self):
        super().__init__()
        self.rng = np.random.default_rng(1234)
        self.db = SeriesDatabase(PAA(8), index=None)
        self.model: "dict[int, np.ndarray]" = {}

    @initialize()
    def seed_database(self):
        data = self.rng.normal(size=(3, 24)).cumsum(axis=1)
        self.db.ingest(data)
        self.model = {i: data[i] for i in range(3)}

    @rule()
    def insert_series(self):
        series = self.rng.normal(size=24).cumsum()
        new_id = self.db.insert(series)
        assert new_id not in self.model
        self.model[new_id] = series

    @rule(offset=st.integers(min_value=0, max_value=10_000))
    def delete_some_series(self, offset):
        if not self.model:
            return
        ids = sorted(self.model)
        victim = ids[offset % len(ids)]
        assert self.db.delete(victim)
        del self.model[victim]

    @rule(offset=st.integers(min_value=0, max_value=10_000))
    def delete_missing_is_noop(self, offset):
        missing = max(self.model, default=0) + 1000 + offset
        assert not self.db.delete(missing)

    @invariant()
    def knn_matches_model(self):
        if not self.model:
            return
        query = self.rng.normal(size=24).cumsum()
        k = min(3, len(self.model))
        result = self.db.knn(query, k)
        expected = sorted(
            self.model, key=lambda i: float(np.linalg.norm(query - self.model[i]))
        )[:k]
        assert result.ids == expected


DatabaseMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
TestDatabaseCRUD = DatabaseMachine.TestCase
