"""Tests for deletion in the R-tree, DBCH-tree, and the database layer."""

import numpy as np
import pytest

from repro.index import RTree, SeriesDatabase
from repro.index.dbch import DBCHTree
from repro.index.entries import Entry
from repro.reduction import SAPLAReducer

from .test_rtree import check_invariants as check_rtree
from .test_dbch import check_invariants as check_dbch


def rtree_with(points):
    tree = RTree()
    for i, p in enumerate(points):
        tree.insert(Entry(series_id=i, representation=None, feature=np.asarray(p, float)))
    return tree


def dbch_with(values):
    tree = DBCHTree(lambda a, b: abs(a - b))
    for i, v in enumerate(values):
        tree.insert(Entry(series_id=i, representation=float(v)))
    return tree


class TestRTreeDeletion:
    def test_delete_existing(self):
        points = np.random.default_rng(0).normal(size=(30, 3))
        tree = rtree_with(points)
        assert tree.delete(7)
        assert len(tree) == 29
        check_rtree(tree)
        ids = {e.series_id for n in tree.iter_nodes() if n.is_leaf for e in n.entries}
        assert 7 not in ids and len(ids) == 29

    def test_delete_missing_returns_false(self):
        tree = rtree_with(np.zeros((4, 2)))
        assert not tree.delete(99)
        assert len(tree) == 4

    def test_delete_everything(self):
        points = np.random.default_rng(1).normal(size=(20, 2))
        tree = rtree_with(points)
        for i in range(20):
            assert tree.delete(i)
        assert len(tree) == 0

    def test_underflow_triggers_reinsertion(self):
        """Deleting down to underflow must keep all remaining reachable."""
        points = np.random.default_rng(2).normal(size=(40, 2))
        tree = rtree_with(points)
        for i in range(0, 30):
            tree.delete(i)
        check_rtree(tree)
        ids = {e.series_id for n in tree.iter_nodes() if n.is_leaf for e in n.entries}
        assert ids == set(range(30, 40))

    def test_insert_after_delete(self):
        points = np.random.default_rng(3).normal(size=(12, 2))
        tree = rtree_with(points)
        tree.delete(4)
        tree.insert(Entry(series_id=100, representation=None, feature=np.array([9.0, 9.0])))
        assert len(tree) == 12
        check_rtree(tree)


class TestDBCHDeletion:
    def test_delete_existing(self):
        tree = dbch_with(np.random.default_rng(4).normal(size=25) * 10)
        assert tree.delete(3)
        assert len(tree) == 24
        check_dbch(tree)

    def test_delete_missing(self):
        tree = dbch_with([1.0, 2.0, 3.0])
        assert not tree.delete(9)

    def test_delete_down_to_empty(self):
        tree = dbch_with(np.linspace(0, 10, 15))
        for i in range(15):
            assert tree.delete(i)
        assert len(tree) == 0

    def test_hulls_recomputed(self):
        tree = dbch_with([0.0, 5.0, 10.0])
        tree.delete(2)  # remove the value 10 -> volume shrinks to 5
        assert tree.root.volume == pytest.approx(5.0)


class TestDatabaseDeletion:
    def test_deleted_series_never_returned(self):
        data = np.random.default_rng(5).normal(size=(30, 64)).cumsum(axis=1)
        db = SeriesDatabase(SAPLAReducer(12), index="dbch")
        db.ingest(data)
        assert db.delete(3)
        result = db.knn(data[3], 5)
        assert 3 not in result.ids
        truth = db.ground_truth(data[3], 5)
        assert 3 not in truth.ids
        assert result.accuracy_against(truth) >= 0.6

    def test_delete_missing_returns_false(self):
        data = np.random.default_rng(6).normal(size=(10, 32))
        db = SeriesDatabase(SAPLAReducer(12), index="rtree")
        db.ingest(data)
        assert not db.delete(42)

    def test_counts_shrink(self):
        data = np.random.default_rng(7).normal(size=(10, 32))
        db = SeriesDatabase(SAPLAReducer(12), index=None)
        db.ingest(data)
        db.delete(0)
        result = db.knn(data[1], 2)
        assert result.n_total == 9
