"""Tests for bulk loading of both index structures."""

import numpy as np
import pytest

from repro.index import SeriesDatabase, bulk_load_dbch, bulk_load_rtree
from repro.index.entries import Entry
from repro.index.mbr import Box
from repro.reduction import SAPLAReducer


def point_entries(count, dims=4, seed=0):
    points = np.random.default_rng(seed).normal(size=(count, dims))
    return [Entry(series_id=i, representation=float(p[0]), feature=p) for i, p in enumerate(points)]


def reachable_ids(tree):
    seen = set()
    for node in tree.iter_nodes():
        if node.is_leaf:
            seen.update(e.series_id for e in node.entries)
    return seen


class TestBulkRTree:
    @pytest.mark.parametrize("count", [0, 1, 5, 6, 37, 200])
    def test_all_entries_reachable(self, count):
        tree = bulk_load_rtree(point_entries(count))
        assert len(tree) == count
        if count:
            assert reachable_ids(tree) == set(range(count))

    def test_boxes_contain_children(self):
        tree = bulk_load_rtree(point_entries(60, seed=1))
        for node in tree.iter_nodes():
            if node.is_leaf:
                for entry in node.entries:
                    assert node.box.contains(Box.of_point(entry.feature))
            else:
                for child in node.children:
                    assert node.box.contains(child.box)
                    assert child.parent is node

    def test_fill_is_dense(self):
        """Packed leaves average close to the maximum fill."""
        tree = bulk_load_rtree(point_entries(100, seed=2), max_entries=5)
        counts = tree.node_counts()
        assert 100 / counts["leaf"] >= 3.5

    def test_missing_feature_rejected(self):
        with pytest.raises(ValueError):
            bulk_load_rtree([Entry(series_id=0, representation=1.0, feature=None)])


class TestBulkDBCH:
    @staticmethod
    def distance(a, b):
        return abs(a - b)

    @pytest.mark.parametrize("count", [0, 1, 5, 6, 37, 200])
    def test_all_entries_reachable(self, count):
        entries = point_entries(count, seed=3)
        tree = bulk_load_dbch(entries, self.distance)
        assert len(tree) == count
        if count:
            assert reachable_ids(tree) == set(range(count))

    def test_hulls_computed(self):
        tree = bulk_load_dbch(point_entries(50, seed=4), self.distance)
        for node in tree.iter_nodes():
            assert node.hull is not None
            assert node.volume >= 0.0

    def test_similar_entries_grouped(self):
        """Distance ordering should put the two value clusters in
        different subtrees."""
        values = [0.0, 0.1, 0.2, 0.3, 100.0, 100.1, 100.2, 100.3]
        entries = [Entry(series_id=i, representation=v) for i, v in enumerate(values)]
        tree = bulk_load_dbch(entries, self.distance, max_entries=4)
        leaves = [n for n in tree.iter_nodes() if n.is_leaf]
        for leaf in leaves:
            vals = [e.representation for e in leaf.entries]
            assert max(vals) - min(vals) < 50  # never mixes the clusters


class TestDatabaseBulkIngest:
    def test_bulk_search_matches_incremental(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(50, 64)).cumsum(axis=1)
        query = data[7] + 0.05
        for index_kind in ("rtree", "dbch"):
            incremental = SeriesDatabase(SAPLAReducer(12), index=index_kind)
            incremental.ingest(data)
            packed = SeriesDatabase(SAPLAReducer(12), index=index_kind)
            packed.ingest(data, bulk=True)
            a = incremental.knn(query, 5)
            b = packed.knn(query, 5)
            assert b.ids[0] == a.ids[0] == 7

    def test_bulk_tree_is_flatter_or_equal(self):
        rng = np.random.default_rng(6)
        data = rng.normal(size=(60, 64)).cumsum(axis=1)
        incremental = SeriesDatabase(SAPLAReducer(12), index="rtree")
        incremental.ingest(data)
        packed = SeriesDatabase(SAPLAReducer(12), index="rtree")
        packed.ingest(data, bulk=True)
        assert packed.tree.height <= incremental.tree.height
        assert packed.tree.node_counts()["total"] <= incremental.tree.node_counts()["total"]
