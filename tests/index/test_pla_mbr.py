"""Tests for the Chen-style query-to-PLA-MBR lower bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance import dist_pla, euclidean
from repro.index.pla_mbr import PLABox, pla_feature, pla_mbr_mindist
from repro.reduction import PLA

N_COEFF = 8  # N = 4 equal segments
LENGTH = 64


def reps(count, seed=0):
    rng = np.random.default_rng(seed)
    reducer = PLA(N_COEFF)
    return [reducer.transform(rng.normal(size=LENGTH).cumsum()) for _ in range(count)]


class TestPLABox:
    def test_of_and_extend(self):
        members = reps(5)
        box = PLABox.of(members)
        for rep in members:
            feature = pla_feature(rep)
            assert (box.mins <= feature + 1e-12).all()
            assert (feature <= box.maxs + 1e-12).all()

    def test_layout_mismatch_rejected(self):
        box = PLABox.of(reps(2))
        other = PLA(4).transform(np.random.default_rng(1).normal(size=LENGTH))
        with pytest.raises(ValueError):
            box.extend(other)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PLABox.of([])


class TestMindist:
    def test_point_box_equals_dist_pla(self):
        member = reps(1, seed=2)[0]
        query = reps(1, seed=3)[0]
        box = PLABox.of([member])
        assert pla_mbr_mindist(query, box) == pytest.approx(
            dist_pla(query, member), rel=1e-9
        )

    def test_query_inside_box_gives_zero(self):
        members = reps(6, seed=4)
        box = PLABox.of(members)
        assert pla_mbr_mindist(members[2], box) == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("seed", range(10))
    def test_lower_bounds_every_member(self, seed):
        """The defining property: MINDIST <= Dist_PLA(q, C) for all C in box."""
        members = reps(8, seed=seed + 10)
        box = PLABox.of(members)
        query = reps(1, seed=seed + 100)[0]
        bound = pla_mbr_mindist(query, box)
        for member in members:
            assert bound <= dist_pla(query, member) + 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_lower_bounds_euclidean_of_members(self, seed):
        """Chained: MINDIST <= Dist_PLA <= Euclid for raw member series."""
        rng = np.random.default_rng(seed + 500)
        reducer = PLA(N_COEFF)
        raws = [rng.normal(size=LENGTH).cumsum() for _ in range(6)]
        members = [reducer.transform(raw) for raw in raws]
        box = PLABox.of(members)
        raw_query = rng.normal(size=LENGTH).cumsum()
        query = reducer.transform(raw_query)
        bound = pla_mbr_mindist(query, box)
        for raw in raws:
            assert bound <= euclidean(raw_query, raw) + 1e-9

    def test_query_layout_mismatch_rejected(self):
        box = PLABox.of(reps(3, seed=6))
        with pytest.raises(ValueError):
            pla_mbr_mindist(PLA(4).transform(np.zeros(LENGTH) + 1.0), box)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_lower_bound_property(self, seed):
        members = reps(4, seed=seed)
        box = PLABox.of(members)
        query = reps(1, seed=seed + 77777)[0]
        bound = pla_mbr_mindist(query, box)
        assert all(bound <= dist_pla(query, m) + 1e-9 for m in members)
