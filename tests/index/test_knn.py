"""k-NN engine tests: exactness of linear scan, pruning accounting, and the
paper's qualitative index comparisons."""

import numpy as np
import pytest

from repro.index import SeriesDatabase, linear_scan
from repro.reduction import PAA, PLA, SAPLAReducer, APCA


def dataset(count=40, n=64, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(count, n)).cumsum(axis=1)


class TestLinearScan:
    def test_finds_exact_neighbours(self):
        data = dataset()
        query = data[3] + 0.01
        result = linear_scan(data, query, 3)
        assert result.ids[0] == 3
        assert result.n_verified == len(data)
        assert result.pruning_power == 1.0

    def test_distances_sorted(self):
        data = dataset(seed=1)
        result = linear_scan(data, np.zeros(64), 10)
        assert result.distances == sorted(result.distances)

    def test_k_larger_than_collection(self):
        data = dataset(count=5, seed=2)
        result = linear_scan(data, np.zeros(64), 10)
        assert len(result.ids) == 5


class TestKNNResult:
    def test_accuracy_against_truth(self):
        from repro.index.knn import KNNResult

        truth = KNNResult(ids=[1, 2, 3, 4], distances=[0] * 4, n_verified=4, n_total=4)
        got = KNNResult(ids=[1, 2, 9, 8], distances=[0] * 4, n_verified=4, n_total=4)
        assert got.accuracy_against(truth) == 0.5
        assert truth.accuracy_against(truth) == 1.0

    def test_empty_truth(self):
        from repro.index.knn import KNNResult

        empty = KNNResult(ids=[], distances=[], n_verified=0, n_total=0)
        assert empty.accuracy_against(empty) == 1.0
        assert empty.pruning_power == 0.0


@pytest.mark.parametrize("index_kind", [None, "rtree", "dbch"])
@pytest.mark.parametrize("reducer_cls", [SAPLAReducer, APCA, PLA, PAA], ids=lambda c: c.name)
class TestSearchModes:
    def test_search_runs_and_returns_k(self, index_kind, reducer_cls):
        data = dataset(seed=3)
        db = SeriesDatabase(reducer_cls(12), index=index_kind)
        db.ingest(data)
        result = db.knn(data[0] + 0.05, 4)
        assert len(result.ids) == 4
        assert result.n_total == len(data)
        assert 0 < result.n_verified <= len(data)

    def test_self_query_finds_itself(self, index_kind, reducer_cls):
        data = dataset(seed=4)
        db = SeriesDatabase(reducer_cls(12), index=index_kind)
        db.ingest(data)
        result = db.knn(data[7], 1)
        assert result.ids == [7]
        assert result.distances[0] == pytest.approx(0.0, abs=1e-9)


class TestGuarantees:
    def test_filtered_scan_with_guaranteed_lb_is_exact(self):
        """GEMINI with a true lower bound and no tree never misses."""
        data = dataset(count=60, seed=5)
        db = SeriesDatabase(SAPLAReducer(12), index=None, distance_mode="lb")
        db.ingest(data)
        rng = np.random.default_rng(6)
        for _ in range(5):
            query = data[rng.integers(60)] + rng.normal(scale=0.2, size=64)
            got = db.knn(query, 5)
            truth = db.ground_truth(query, 5)
            assert got.accuracy_against(truth) == 1.0
            assert got.distances == pytest.approx(truth.distances)

    def test_filtered_scan_prunes(self):
        """The lower bound must actually skip most raw verifications."""
        data = dataset(count=100, seed=7)
        db = SeriesDatabase(SAPLAReducer(12), index=None, distance_mode="lb")
        db.ingest(data)
        result = db.knn(data[0] + 0.01, 1)
        assert result.pruning_power < 0.8

    def test_equal_length_filtered_scan_exact(self):
        data = dataset(count=60, seed=8)
        for reducer in (PAA(12), PLA(12)):
            db = SeriesDatabase(reducer, index=None)
            db.ingest(data)
            query = data[11] + 0.1
            got = db.knn(query, 5)
            truth = db.ground_truth(query, 5)
            assert got.accuracy_against(truth) == 1.0


class TestPaperComparisons:
    """Qualitative shape of Figs. 13-16 on a small homogeneous collection."""

    @staticmethod
    def build(index_kind, reducer_cls=SAPLAReducer, count=50, seed=9):
        data = dataset(count=count, seed=seed)
        db = SeriesDatabase(reducer_cls(12), index=index_kind)
        db.ingest(data)
        return db, data

    def test_dbch_accuracy_reasonable_for_adaptive(self):
        db, data = self.build("dbch")
        rng = np.random.default_rng(10)
        accs = []
        for _ in range(5):
            query = data[rng.integers(len(data))] + rng.normal(scale=0.3, size=64)
            got = db.knn(query, 4)
            accs.append(got.accuracy_against(db.ground_truth(query, 4)))
        assert np.mean(accs) >= 0.6

    def test_dbch_leaves_fuller_than_rtree(self):
        """Fig. 15: DBCH leaves pack ~4 entries, R-tree leaves ~2, for
        adaptive representations."""
        db_r, _ = self.build("rtree")
        db_d, _ = self.build("dbch")
        r_counts = db_r.tree.node_counts()
        d_counts = db_d.tree.node_counts()
        r_fill = len(db_r.entries) / r_counts["leaf"]
        d_fill = len(db_d.entries) / d_counts["leaf"]
        assert d_fill >= r_fill * 0.9  # DBCH at least as space-efficient

    def test_invalid_index_kind(self):
        with pytest.raises(ValueError):
            SeriesDatabase(SAPLAReducer(12), index="btree")

    def test_search_before_ingest_rejected(self):
        db = SeriesDatabase(SAPLAReducer(12))
        with pytest.raises(RuntimeError):
            db.knn(np.zeros(8), 1)

    def test_ingest_requires_matrix(self):
        db = SeriesDatabase(SAPLAReducer(12))
        with pytest.raises(ValueError):
            db.ingest(np.zeros(8))
