"""Tests for the iSAX tree."""

import numpy as np
import pytest

from repro.data import z_normalize
from repro.index import ISAXIndex, linear_scan
from repro.index.isax import _breakpoints, _Word


def dataset(count=60, n=64, seed=0):
    rng = np.random.default_rng(seed)
    raw = rng.normal(size=(count, n)).cumsum(axis=1)
    return np.stack([z_normalize(row) for row in raw])


class TestBreakpoints:
    def test_counts(self):
        assert _breakpoints(1).shape == (1,)
        assert _breakpoints(3).shape == (7,)

    def test_nested_across_cardinalities(self):
        """The property iSAX prefix-matching relies on."""
        coarse = _breakpoints(2)
        fine = _breakpoints(3)
        for bp in coarse:
            assert np.min(np.abs(fine - bp)) < 1e-12

    def test_symbol_prefix_property(self):
        """A symbol at b bits equals the top b bits of the full symbol."""
        rng = np.random.default_rng(1)
        values = rng.normal(size=200)
        full_bits = 6
        full = np.searchsorted(_breakpoints(full_bits), values)
        for bits in (1, 2, 3):
            coarse = np.searchsorted(_breakpoints(bits), values)
            np.testing.assert_array_equal(coarse, full >> (full_bits - bits))


class TestWord:
    def test_matches_prefix(self):
        word = _Word(symbols=(0b10,), bits=(2,))
        assert word.matches(np.array([0b10_11]), max_bits=4)
        assert not word.matches(np.array([0b01_11]), max_bits=4)

    def test_refined(self):
        word = _Word(symbols=(1, 0), bits=(1, 1))
        child = word.refined(0, 1)
        assert child.symbols == (0b11, 0)
        assert child.bits == (2, 1)


class TestISAXIndex:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ISAXIndex(base_bits=0)
        with pytest.raises(ValueError):
            ISAXIndex(base_bits=5, max_bits=3)
        with pytest.raises(ValueError):
            ISAXIndex(leaf_capacity=1)

    def test_search_before_ingest_rejected(self):
        index = ISAXIndex()
        with pytest.raises(RuntimeError):
            index.knn(np.zeros(8), 1)
        with pytest.raises(RuntimeError):
            index.approximate_search(np.zeros(8))

    def test_ingest_requires_matrix(self):
        with pytest.raises(ValueError):
            ISAXIndex().ingest(np.zeros(8))

    def test_all_series_indexed(self):
        data = dataset()
        index = ISAXIndex(n_segments=8, leaf_capacity=6)
        index.ingest(data)
        assert len(index) == len(data)
        counts = index.node_counts()
        assert counts["total"] == counts["internal"] + counts["leaf"]

    def test_knn_is_exact(self):
        """All iSAX bounds are true lower bounds, so k-NN must be exact."""
        data = dataset(seed=2)
        index = ISAXIndex(n_segments=8, leaf_capacity=5)
        index.ingest(data)
        rng = np.random.default_rng(3)
        for _ in range(5):
            query = z_normalize(
                data[rng.integers(len(data))] + rng.normal(scale=0.1, size=data.shape[1])
            )
            got = index.knn(query, 5)
            truth = linear_scan(data, query, 5)
            assert got.ids == truth.ids
            assert got.distances == pytest.approx(truth.distances)

    def test_knn_prunes(self):
        data = dataset(count=120, seed=4)
        index = ISAXIndex(n_segments=8, leaf_capacity=6)
        index.ingest(data)
        result = index.knn(data[0], 1)
        assert result.ids[0] == 0
        assert result.pruning_power < 1.0

    def test_approximate_search_returns_similar_leaf(self):
        data = dataset(count=100, seed=5)
        index = ISAXIndex(n_segments=8, leaf_capacity=8)
        index.ingest(data)
        candidates = index.approximate_search(data[10])
        assert candidates  # the query's own leaf is never empty
        assert 10 in candidates

    def test_split_occurs_with_small_leaves(self):
        data = dataset(count=80, seed=6)
        index = ISAXIndex(n_segments=8, leaf_capacity=4)
        index.ingest(data)
        assert index.node_counts()["internal"] >= 1

    def test_identical_series_overflow_leaf(self):
        """Fully-refined identical words grow one leaf instead of looping."""
        data = np.tile(z_normalize(np.sin(np.linspace(0, 6, 32))), (20, 1))
        index = ISAXIndex(n_segments=4, max_bits=3, leaf_capacity=4)
        index.ingest(data)
        assert len(index) == 20
        result = index.knn(data[0], 3)
        assert len(result.ids) == 3
