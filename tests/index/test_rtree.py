"""R-tree structural invariants and behaviour."""

import numpy as np
import pytest

from repro.index.entries import Entry
from repro.index.mbr import Box
from repro.index.rtree import RTree


def make_tree(points, max_entries=5, min_entries=2, split="quadratic"):
    tree = RTree(max_entries=max_entries, min_entries=min_entries, split=split)
    for i, p in enumerate(points):
        tree.insert(Entry(series_id=i, representation=None, feature=np.asarray(p, float)))
    return tree


def random_points(count, dims=4, seed=0):
    return np.random.default_rng(seed).normal(size=(count, dims))


class TestBox:
    def test_union_and_contains(self):
        a = Box.of_point(np.array([0.0, 0.0]))
        b = Box.of_point(np.array([2.0, 3.0]))
        u = a.union(b)
        assert u.contains(a) and u.contains(b)
        assert u.margin == pytest.approx(5.0)

    def test_enlargement(self):
        a = Box(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = Box.of_point(np.array([3.0, 1.0]))
        assert a.enlargement(b) == pytest.approx(2.0)
        inside = Box.of_point(np.array([0.5, 0.5]))
        assert a.enlargement(inside) == 0.0

    def test_min_dist_inside_is_zero(self):
        box = Box(np.array([0.0, 0.0]), np.array([2.0, 2.0]))
        w = np.ones(2)
        assert box.min_dist(np.array([1.0, 1.0]), w) == 0.0
        assert box.min_dist(np.array([5.0, 2.0]), w) == pytest.approx(3.0)

    def test_weighted_min_dist(self):
        box = Box(np.array([0.0]), np.array([1.0]))
        assert box.min_dist(np.array([3.0]), np.array([2.0])) == pytest.approx(4.0)


def check_invariants(tree):
    """Every parent box contains its children; fills within limits."""
    for node in tree.iter_nodes():
        items = node.items()
        if node is not tree.root:
            assert len(items) >= tree.min_entries
        assert len(items) <= tree.max_entries
        if node.is_leaf:
            for entry in node.entries:
                assert node.box.contains(Box.of_point(entry.feature))
        else:
            for child in node.children:
                assert child.parent is node
                assert node.box.contains(child.box)


class TestRTree:
    def test_fill_factor_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=4, min_entries=4)

    def test_entry_needs_feature(self):
        with pytest.raises(ValueError):
            RTree().insert(Entry(series_id=0, representation=None, feature=None))

    @pytest.mark.parametrize("count", [1, 5, 6, 25, 100])
    def test_invariants_after_inserts(self, count):
        tree = make_tree(random_points(count))
        assert len(tree) == count
        check_invariants(tree)

    def test_all_entries_reachable(self):
        count = 60
        tree = make_tree(random_points(count, seed=2))
        seen = set()
        for node in tree.iter_nodes():
            if node.is_leaf:
                seen.update(e.series_id for e in node.entries)
        assert seen == set(range(count))

    def test_height_grows_logarithmically(self):
        small = make_tree(random_points(10, seed=3))
        large = make_tree(random_points(200, seed=3))
        assert small.height <= large.height <= 8

    def test_node_counts(self):
        tree = make_tree(random_points(50, seed=4))
        counts = tree.node_counts()
        assert counts["total"] == counts["internal"] + counts["leaf"]
        assert counts["leaf"] >= 1

    def test_node_distance_zero_for_contained_query(self):
        tree = make_tree(random_points(30, seed=5))
        weights = np.ones(4)
        inside = tree.root.box.mins  # a corner of the root box
        assert tree.node_distance(inside, weights, tree.root) == 0.0

    def test_identical_points_do_not_break_split(self):
        points = np.zeros((20, 3))
        tree = make_tree(points)
        assert len(tree) == 20
        check_invariants(tree)


class TestLinearSplit:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            RTree(split="cubic")

    @pytest.mark.parametrize("count", [6, 30, 120])
    def test_invariants_hold(self, count):
        tree = make_tree(random_points(count, seed=7), split="linear")
        assert len(tree) == count
        check_invariants(tree)

    def test_all_entries_reachable(self):
        count = 80
        tree = make_tree(random_points(count, seed=8), split="linear")
        seen = set()
        for node in tree.iter_nodes():
            if node.is_leaf:
                seen.update(e.series_id for e in node.entries)
        assert seen == set(range(count))

    def test_identical_points_do_not_break(self):
        tree = make_tree(np.zeros((20, 3)), split="linear")
        assert len(tree) == 20
        check_invariants(tree)
