"""Focused tests of k-NN engine internals and distance-mode effects."""

import numpy as np
import pytest

from repro.index import SeriesDatabase
from repro.reduction import SAPLAReducer


def dataset(count=40, n=64, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(count, n)).cumsum(axis=1)


class TestNodesVisited:
    def test_tree_search_reports_visits(self):
        db = SeriesDatabase(SAPLAReducer(12), index="dbch")
        db.ingest(dataset())
        result = db.knn(dataset()[0], 3)
        assert result.nodes_visited >= 1

    def test_filtered_scan_reports_zero_visits(self):
        db = SeriesDatabase(SAPLAReducer(12), index=None)
        db.ingest(dataset(seed=1))
        result = db.knn(dataset(seed=1)[0], 3)
        assert result.nodes_visited == 0


class TestDistanceModes:
    def test_ae_mode_can_lose_neighbours(self):
        """Dist_AE overestimates near-duplicates, so the filtered scan can
        skip the true nearest neighbour — the failure Fig. 10 warns about."""
        rng = np.random.default_rng(2)
        base = rng.normal(size=(30, 64)).cumsum(axis=1)
        db_ae = SeriesDatabase(SAPLAReducer(12), index=None, distance_mode="ae")
        db_lb = SeriesDatabase(SAPLAReducer(12), index=None, distance_mode="lb")
        db_ae.ingest(base)
        db_lb.ingest(base)
        accs_ae, accs_lb = [], []
        for i in range(6):
            query = base[i] + rng.normal(scale=0.02, size=64)
            truth = db_lb.ground_truth(query, 3)
            accs_ae.append(db_ae.knn(query, 3).accuracy_against(truth))
            accs_lb.append(db_lb.knn(query, 3).accuracy_against(truth))
        assert np.mean(accs_lb) == 1.0
        assert np.mean(accs_lb) >= np.mean(accs_ae)

    def test_par_mode_prunes_at_least_as_well_as_lb(self):
        data = dataset(count=60, seed=3)
        prunes = {}
        for mode in ("par", "lb"):
            db = SeriesDatabase(SAPLAReducer(12), index=None, distance_mode=mode)
            db.ingest(data)
            prunes[mode] = np.mean(
                [db.knn(data[i] + 0.05, 3).pruning_power for i in range(5)]
            )
        assert prunes["par"] <= prunes["lb"] + 0.1


class TestEdgeCases:
    def test_k_zero_rejected(self):
        db = SeriesDatabase(SAPLAReducer(12), index="dbch")
        db.ingest(dataset(seed=4))
        with pytest.raises(ValueError):
            db.knn(dataset(seed=4)[0], 0)

    def test_duplicate_series_all_retrievable(self):
        data = np.tile(dataset(count=1, seed=5), (6, 1))
        db = SeriesDatabase(SAPLAReducer(12), index="dbch")
        db.ingest(data)
        result = db.knn(data[0], 6)
        assert sorted(result.ids) == list(range(6))
        assert all(d == pytest.approx(0.0, abs=1e-9) for d in result.distances)
