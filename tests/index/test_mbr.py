"""Tests for the feature mapping feeding the R-tree."""

import numpy as np
import pytest

from repro.core.segment import LinearSegmentation, Segment
from repro.index.mbr import feature_vector, feature_weights
from repro.reduction import CHEBY, SAX, SAPLAReducer

SERIES = np.random.default_rng(0).normal(size=64).cumsum()


class TestFeatureVector:
    def test_segmentation_interleaves_means_and_endpoints(self):
        rep = LinearSegmentation([Segment(0, 3, 1.0, 0.0), Segment(4, 7, 0.0, 5.0)])
        features = feature_vector(rep)
        # mean of segment 0: b + a*(l-1)/2 = 0 + 1.5; endpoint 3
        assert features[0] == pytest.approx(1.5)
        assert features[1] == 3.0
        assert features[2] == pytest.approx(5.0)
        assert features[3] == 7.0

    def test_padding_to_budget(self):
        rep = LinearSegmentation([Segment(0, 7, 0.0, 2.0)])
        features = feature_vector(rep, n_segments=3)
        assert features.shape == (6,)
        # padded slots repeat the last segment's (mean, endpoint)
        assert features[2] == features[0] and features[4] == features[0]
        assert features[3] == features[1] and features[5] == features[1]

    def test_padding_never_truncates(self):
        rep = SAPLAReducer(12).transform(SERIES)
        features = feature_vector(rep, n_segments=2)  # smaller than actual
        assert features.shape == (2 * rep.n_segments,)

    def test_chebyshev_features_are_coefficients(self):
        rep = CHEBY(6).transform(SERIES)
        np.testing.assert_array_equal(feature_vector(rep), rep.coefficients)

    def test_sax_features_are_symbols(self):
        rep = SAX(8).transform(SERIES)
        np.testing.assert_array_equal(feature_vector(rep), rep.symbols.astype(float))

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            feature_vector(object())


class TestFeatureWeights:
    def test_weights_match_feature_dimensions(self):
        rep = SAPLAReducer(12).transform(SERIES)
        assert feature_weights(rep).shape == feature_vector(rep).shape
        assert feature_weights(rep, 6).shape == feature_vector(rep, 6).shape

    def test_value_dims_weighted_by_segment_length(self):
        rep = LinearSegmentation([Segment(0, 15, 0.0, 0.0)])
        weights = feature_weights(rep)
        assert weights[0] == pytest.approx(4.0)  # sqrt(16/1)
        assert weights[1] < 1.0  # endpoint dims damped

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            feature_weights(3.14)
