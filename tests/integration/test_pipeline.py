"""Integration tests: the full archive -> reduce -> index -> search pipeline."""

import numpy as np
import pytest

from repro.data import UCRLikeArchive
from repro.distance import dist_lb, dist_par, euclidean
from repro.index import SeriesDatabase
from repro.metrics import max_deviation
from repro.reduction import REDUCERS, SAPLAReducer


@pytest.fixture(scope="module")
def archive():
    return UCRLikeArchive(length=128, n_series=20, n_queries=3)


class TestEndToEnd:
    @pytest.mark.parametrize("name", ["ECG200", "Adiac", "EOGHorizontalSignal"])
    def test_full_pipeline(self, archive, name):
        dataset = archive.load(name)
        db = SeriesDatabase(SAPLAReducer(12), index="dbch")
        db.ingest(dataset.data)
        for query in dataset.queries:
            truth = db.ground_truth(query, 4)
            result = db.knn(query, 4)
            assert len(result.ids) == 4
            # DBCH with Dist_PAR should retrieve well on homogeneous data
            assert result.accuracy_against(truth) >= 0.5

    def test_every_method_end_to_end(self, archive):
        dataset = archive.load("Car")
        for name, cls in REDUCERS.items():
            db = SeriesDatabase(cls(12), index="dbch")
            db.ingest(dataset.data)
            result = db.knn(dataset.queries[0], 3)
            assert len(result.ids) == 3, name

    def test_quality_stack_consistency(self, archive):
        """Reductions, distances, and metrics agree on the same data."""
        dataset = archive.load("Beef")
        reducer = SAPLAReducer(12)
        a, b = dataset.data[0], dataset.data[1]
        rep_a, rep_b = reducer.transform(a), reducer.transform(b)
        true = euclidean(a, b)
        assert dist_lb(a, rep_b) <= true + 1e-9
        assert dist_par(rep_a, rep_b) == pytest.approx(
            euclidean(rep_a.reconstruct(), rep_b.reconstruct())
        )
        assert max_deviation(a, rep_a.reconstruct()) >= 0.0

    def test_reduction_compresses(self, archive):
        """Representation coefficient count is far below the series length."""
        dataset = archive.load("Coffee")
        rep = SAPLAReducer(12).transform(dataset.data[0])
        assert rep.n_coefficients == 12
        assert rep.n_coefficients < dataset.length / 4

    def test_larger_budget_means_better_quality(self, archive):
        dataset = archive.load("Adiac")
        devs = []
        for m in (6, 12, 24):
            reducer = SAPLAReducer(m)
            devs.append(
                float(
                    np.mean(
                        [
                            max_deviation(s, reducer.reconstruct(reducer.transform(s)))
                            for s in dataset.data[:8]
                        ]
                    )
                )
            )
        assert devs[2] <= devs[0] + 1e-9  # more coefficients, no worse


class TestRobustness:
    def test_flat_dataset(self):
        data = np.zeros((10, 64))
        db = SeriesDatabase(SAPLAReducer(12), index="dbch")
        db.ingest(data)
        result = db.knn(np.zeros(64), 3)
        assert len(result.ids) == 3
        assert result.distances[0] == 0.0

    def test_single_series_collection(self):
        data = np.random.default_rng(0).normal(size=(1, 64))
        for index_kind in ("rtree", "dbch", None):
            db = SeriesDatabase(SAPLAReducer(12), index=index_kind)
            db.ingest(data)
            result = db.knn(data[0], 1)
            assert result.ids == [0]

    def test_extreme_values(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(8, 64)) * 1e6
        db = SeriesDatabase(SAPLAReducer(12), index="dbch")
        db.ingest(data)
        result = db.knn(data[2], 2)
        assert result.ids[0] == 2

    def test_short_series_collection(self):
        data = np.random.default_rng(2).normal(size=(12, 8))
        db = SeriesDatabase(SAPLAReducer(12), index="dbch")
        db.ingest(data)
        result = db.knn(data[5], 3)
        assert result.ids[0] == 5
