"""The README's quickstart code must actually work as written."""

import numpy as np


def test_readme_quickstart():
    from repro import SAPLA

    series = np.sin(np.linspace(0, 12, 512)) + 0.1 * np.random.default_rng(0).normal(
        size=512
    )

    representation = SAPLA(n_coefficients=18).transform(series)
    assert representation.right_endpoints[-1] == 511
    approx = representation.reconstruct()
    assert approx.shape == series.shape

    from repro.index import SeriesDatabase
    from repro.reduction import SAPLAReducer

    db = SeriesDatabase(SAPLAReducer(18), index="dbch")
    db.ingest(
        np.stack(
            [
                series + np.random.default_rng(i).normal(scale=0.2, size=512)
                for i in range(20)  # README uses 100; 20 keeps the test quick
            ]
        )
    )
    result = db.knn(series, k=5)
    assert len(result.ids) == 5
    assert 0.0 < result.pruning_power <= 1.0
