"""Every example script must run to completion as a real process."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(SCRIPTS) >= 8


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
