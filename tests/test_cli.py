"""End-to-end tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main


class TestDatasets:
    def test_list_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "ECG200" in out
        assert "117 datasets" in out

    def test_filter_family(self, capsys):
        assert main(["datasets", "--family", "spike"]) == 0
        out = capsys.readouterr().out
        assert "ECG200" in out
        assert "Adiac" not in out

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            main(["datasets", "--family", "nope"])


class TestGenerateAndKNN:
    def test_generate_npz(self, tmp_path, capsys):
        out = tmp_path / "ds.npz"
        code = main(
            [
                "generate", "--dataset", "Coffee", "--length", "64",
                "--series", "6", "--queries", "2", "--output", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert "6 series" in capsys.readouterr().out

    def test_knn_from_archive(self, capsys):
        code = main(
            [
                "knn", "--dataset", "Coffee", "--method", "PAA",
                "--k", "3", "--length", "64", "--series", "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pruning_power" in out

    def test_knn_from_npz(self, tmp_path, capsys):
        out = tmp_path / "ds.npz"
        main(
            [
                "generate", "--dataset", "Coffee", "--length", "64",
                "--series", "8", "--queries", "1", "--output", str(out),
            ]
        )
        capsys.readouterr()
        assert main(["knn", "--dataset", str(out), "--k", "2"]) == 0
        assert "accuracy" in capsys.readouterr().out


class TestReduceReconstruct:
    def test_round_trip(self, tmp_path, capsys):
        series = np.sin(np.linspace(0, 10, 80))
        src = tmp_path / "series.csv"
        np.savetxt(src, series, delimiter=",")
        rep_path = tmp_path / "rep.json"
        assert main(
            [
                "reduce", "--method", "SAPLA", "--coefficients", "12",
                "--input", str(src), "--output", str(rep_path),
            ]
        ) == 0
        payload = json.loads(rep_path.read_text())
        assert payload["type"] == "segmentation"

        out_path = tmp_path / "recon.txt"
        assert main(
            ["reconstruct", "--input", str(rep_path), "--output", str(out_path)]
        ) == 0
        recon = np.loadtxt(out_path)
        assert recon.shape == series.shape
        assert np.abs(series - recon).max() < 1.0

    def test_npy_input(self, tmp_path):
        src = tmp_path / "series.npy"
        np.save(src, np.arange(40.0))
        assert main(
            [
                "reduce", "--input", str(src),
                "--output", str(tmp_path / "rep.json"),
            ]
        ) == 0

    def test_empty_input_rejected(self, tmp_path):
        src = tmp_path / "empty.csv"
        src.write_text("")
        with pytest.raises((SystemExit, ValueError)):
            main(["reduce", "--input", str(src), "--output", str(tmp_path / "r.json")])


class TestExperiments:
    @pytest.mark.parametrize("which", ["fig1", "ablation-dbch"])
    def test_quick_experiments(self, which, capsys):
        code = main(
            [
                "experiment", which, "--datasets", "Coffee",
                "--length", "64", "--series", "6", "--queries", "1",
                "--ks", "2",
            ]
        )
        assert code == 0
        assert "---" in capsys.readouterr().out

    def test_fig12_small(self, capsys):
        code = main(
            [
                "experiment", "fig12", "--datasets", "Coffee", "Wafer",
                "--length", "64", "--series", "4", "--queries", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "max_deviation" in out

    def test_fig13_small(self, capsys):
        code = main(
            [
                "experiment", "fig13", "--datasets", "Coffee",
                "--length", "64", "--series", "6", "--queries", "1", "--ks", "2",
            ]
        )
        assert code == 0
        assert "pruning_power" in capsys.readouterr().out
