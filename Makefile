# Convenience targets for the SAPLA reproduction.

.PHONY: install test bench bench-full examples results clean verify verify-obs verify-engine \
	verify-lifecycle verify-experiments verify-cascade verify-serving verify-continuous \
	verify-reduction crash-matrix baseline

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

# observability layer: marker-selected tests + the metric-name lint
verify-obs:
	python scripts/check_metric_names.py
	PYTHONPATH=src pytest tests/ -m obs -q

# batched query engine: its tests + a small-N batch-knn smoke benchmark
verify-engine:
	python scripts/check_metric_names.py
	PYTHONPATH=src pytest tests/engine -q
	PYTHONPATH=src REPRO_SERIES=64 REPRO_QUERIES=16 REPRO_LENGTH=64 \
	pytest benchmarks/bench_batch_knn.py --benchmark-only -q

# durability layer: lint + WAL/recovery/maintenance/snapshot tests +
# the mutate-vs-fresh equivalence property + a short crash matrix
verify-lifecycle:
	python scripts/check_metric_names.py
	PYTHONPATH=src pytest tests/lifecycle tests/property/test_mutate_query_equivalence.py -q
	python scripts/crash_matrix.py --kills 3 --series 300

# SIGKILL an ingesting subprocess at random points; recovery must lose nothing
crash-matrix:
	python scripts/crash_matrix.py

# experiment service: lint + its tests + a tiny end-to-end matrix — run the
# smoke spec, render its report, then diff it against the BENCH it just
# wrote (must pass its own gates and exit 0)
verify-experiments:
	python scripts/check_metric_names.py
	PYTHONPATH=src pytest tests/experiments -q
	rm -f /tmp/repro-verify-experiments.sqlite /tmp/BENCH_smoke.json
	PYTHONPATH=src python -m repro experiment run benchmarks/specs/smoke.toml \
		--store /tmp/repro-verify-experiments.sqlite --bench-dir /tmp
	PYTHONPATH=src python -m repro experiment report \
		--store /tmp/repro-verify-experiments.sqlite
	PYTHONPATH=src python -m repro experiment diff benchmarks/specs/smoke.toml \
		--store /tmp/repro-verify-experiments.sqlite --baseline /tmp/BENCH_smoke.json

# bound cascade + packed columns + early abandoning: lint + the dominance,
# column-block and bit-identity equivalence tests, then the medium spec
# against the committed baseline (the >= 25% batch-knn gate lives there)
verify-cascade:
	python scripts/check_metric_names.py
	PYTHONPATH=src pytest tests/distance/test_cascade.py tests/storage/test_columns.py \
		tests/engine/test_equivalence.py -q
	rm -f /tmp/repro-verify-cascade.sqlite /tmp/BENCH_medium.json
	PYTHONPATH=src python -m repro experiment run benchmarks/specs/medium.toml \
		--store /tmp/repro-verify-cascade.sqlite --bench-dir /tmp
	PYTHONPATH=src python -m repro experiment diff benchmarks/specs/medium.toml \
		--store /tmp/repro-verify-cascade.sqlite --baseline BENCH_medium.json

# sharded serving layer + client facade: lint + the sharding/server/client
# tests, then the loopback load test (>= 1000 concurrent in-flight queries,
# answers bit-identical to the unsharded engine) with its latency report
# rendered through repro stats
verify-serving:
	python scripts/check_metric_names.py
	PYTHONPATH=src pytest tests/serving tests/client -q
	PYTHONPATH=src python scripts/serve_loadtest.py --report /tmp/repro-serve-loadtest.json
	PYTHONPATH=src python -m repro stats --report /tmp/repro-serve-loadtest.json

# continuous-query subsystem: lint + its tests, then the subscription load
# test (>= 100 standing subscriptions over streaming ingest, pushed
# frontiers bit-identical to scratch re-runs) whose insert-to-notify
# latency report is committed and rendered through repro stats
verify-continuous:
	python scripts/check_metric_names.py
	PYTHONPATH=src pytest tests/continuous -q
	PYTHONPATH=src python scripts/continuous_loadtest.py \
		--report benchmarks/results/continuous_loadtest.report.json
	PYTHONPATH=src python -m repro stats \
		--report benchmarks/results/continuous_loadtest.report.json

# batched write side: lint + the transform_batch bit-identity grid and the
# batched core/streaming tests, then the batch-vs-scalar micro-benchmark
# whose report is committed
verify-reduction:
	python scripts/check_metric_names.py
	PYTHONPATH=src pytest tests/reduction tests/core -q
	PYTHONPATH=src python benchmarks/bench_reduction_batch.py \
		--report benchmarks/results/reduction_batch.report.json

# the default verify chain: every subsystem gate in sequence
verify: verify-obs verify-engine verify-lifecycle verify-experiments \
	verify-cascade verify-serving verify-continuous verify-reduction

# regenerate the committed perf baseline: BENCH_medium.json at the repo
# root plus a JSON export of the results store
baseline:
	PYTHONPATH=src python -m repro experiment run benchmarks/specs/medium.toml \
		--store benchmarks/results/experiments.sqlite --bench-dir .
	PYTHONPATH=src python scripts/export_experiments.py \
		benchmarks/results/experiments.sqlite benchmarks/results/experiments_store.json

bench:
	pytest benchmarks/ --benchmark-only

# the paper's full grid (hours in pure Python; see DESIGN.md)
bench-full:
	REPRO_LENGTH=1024 REPRO_SERIES=100 REPRO_QUERIES=5 REPRO_DATASETS=all \
	REPRO_COEFFICIENTS=12,18,24 REPRO_KS=4,8,16,32,64 \
	pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script; done

results:
	python -m repro experiment all --output results

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
