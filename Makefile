# Convenience targets for the SAPLA reproduction.

.PHONY: install test bench bench-full examples results clean verify-obs verify-engine \
	verify-lifecycle crash-matrix

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

# observability layer: marker-selected tests + the metric-name lint
verify-obs:
	python scripts/check_metric_names.py
	PYTHONPATH=src pytest tests/ -m obs -q

# batched query engine: its tests + a small-N batch-knn smoke benchmark
verify-engine:
	python scripts/check_metric_names.py
	PYTHONPATH=src pytest tests/engine -q
	PYTHONPATH=src REPRO_SERIES=64 REPRO_QUERIES=16 REPRO_LENGTH=64 \
	pytest benchmarks/bench_batch_knn.py --benchmark-only -q

# durability layer: lint + WAL/recovery/maintenance/snapshot tests +
# the mutate-vs-fresh equivalence property + a short crash matrix
verify-lifecycle:
	python scripts/check_metric_names.py
	PYTHONPATH=src pytest tests/lifecycle tests/property/test_mutate_query_equivalence.py -q
	python scripts/crash_matrix.py --kills 3 --series 300

# SIGKILL an ingesting subprocess at random points; recovery must lose nothing
crash-matrix:
	python scripts/crash_matrix.py

bench:
	pytest benchmarks/ --benchmark-only

# the paper's full grid (hours in pure Python; see DESIGN.md)
bench-full:
	REPRO_LENGTH=1024 REPRO_SERIES=100 REPRO_QUERIES=5 REPRO_DATASETS=all \
	REPRO_COEFFICIENTS=12,18,24 REPRO_KS=4,8,16,32,64 \
	pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script; done

results:
	python -m repro experiment all --output results

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
