"""Crash-matrix smoke: SIGKILL an ingesting subprocess, verify recovery.

Seeds a database directory, then for each kill point forks a child that
opens the directory durably (``FsyncPolicy.ALWAYS``) and streams inserts,
killing it with SIGKILL after N acknowledged inserts.  After every kill the
directory is reopened and checked:

* every acknowledged insert survived (zero lost committed records);
* ids are contiguous with no duplicates;
* k-NN answers match a cleanly built database bit-for-bit.

Run from the repo root (used by ``make crash-matrix``):

    python scripts/crash_matrix.py [--kills 3] [--series 1000] [--seed 7]

Exit status 0 = every kill point recovered cleanly, 1 = any property
violated.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import textwrap

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro.index import SeriesDatabase  # noqa: E402
from repro.io import open_database  # noqa: E402
from repro.kinds import IndexKind  # noqa: E402
from repro.reduction import PAA  # noqa: E402

LENGTH = 32
SEED_ROWS = 16
CHILD_SEED = 20220329  # the paper's conference year + date, fixed forever

CHILD_SCRIPT = textwrap.dedent(
    f"""
    import sys
    import numpy as np
    from repro.io import open_database
    from repro.lifecycle import DurabilityOptions, FsyncPolicy

    directory, total = sys.argv[1], int(sys.argv[2])
    db = open_database(
        directory, durability=DurabilityOptions(fsync=FsyncPolicy.ALWAYS)
    )
    rng = np.random.default_rng({CHILD_SEED})
    for _ in range(total):
        sid = db.insert(rng.normal(size={LENGTH}))
        print(sid, flush=True)
    """
)


def seed_directory(directory: pathlib.Path) -> None:
    rng = np.random.default_rng(0)
    db = SeriesDatabase(PAA(n_coefficients=8), index=IndexKind.DBCH)
    db.ingest(rng.normal(size=(SEED_ROWS, LENGTH)))
    db.save(directory)


def kill_child_after(directory: pathlib.Path, acks: int, total: int) -> "list[int]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT, str(directory), str(total)],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    acked: "list[int]" = []
    try:
        for line in child.stdout:
            acked.append(int(line))
            if len(acked) >= acks:
                os.kill(child.pid, signal.SIGKILL)
                break
    finally:
        child.stdout.close()
        child.wait()
    return acked


def verify(directory: pathlib.Path, acked: "list[int]") -> "list[str]":
    problems: "list[str]" = []
    db = open_database(directory)
    live = sorted(e.series_id for e in db.entries)
    if len(live) != len(set(live)):
        problems.append("duplicate series ids after recovery")
    if live != list(range(len(live))):
        problems.append(f"ids not contiguous after recovery: {live[:8]}...")
    lost = sorted(set(acked) - set(live))
    if lost:
        problems.append(f"lost {len(lost)} acknowledged insert(s): {lost[:8]}")
    clean = SeriesDatabase(PAA(n_coefficients=8), index=IndexKind.DBCH)
    clean.ingest(np.asarray(db.data)[: len(live)])
    rng = np.random.default_rng(99)
    for q in rng.normal(size=(3, LENGTH)):
        a, b = db.knn(q, 5), clean.knn(q, 5)
        if a.ids != b.ids or a.distances != b.distances:
            problems.append("recovered k-NN differs from a cleanly built database")
            break
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kills", type=int, default=3, help="kill points to test")
    parser.add_argument("--series", type=int, default=1000, help="child insert budget")
    parser.add_argument("--seed", type=int, default=7, help="kill-point RNG seed")
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    kill_points = sorted(int(k) for k in rng.integers(1, max(args.series // 2, 2), args.kills))
    failures = 0
    for point in kill_points:
        with tempfile.TemporaryDirectory(prefix="crash-matrix-") as tmp:
            directory = pathlib.Path(tmp)
            seed_directory(directory)
            acked = kill_child_after(directory, point, args.series)
            problems = verify(directory, acked)
        if problems:
            failures += 1
            print(f"FAIL kill after {point} acks:")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"ok   kill after {point:>4} acks: {len(acked)} acknowledged, all recovered")
    if failures:
        print(f"{failures}/{len(kill_points)} kill point(s) failed")
        return 1
    print(f"crash matrix clean: {len(kill_points)} kill point(s), zero lost records")
    return 0


if __name__ == "__main__":
    sys.exit(main())
