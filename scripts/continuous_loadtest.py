"""Loopback subscription load test: >= 100 standing queries, bit-identical.

Builds a synthetic database, starts a loopback
:class:`repro.serving.ReproServer`, registers ``--subscriptions`` standing
queries (a 3:1 mix of k-NN and range watches) on one subscriber
connection, then streams ``--inserts`` rows — every other one a noisy copy
of a watch query, so deltas are guaranteed — and ``--deletes`` tombstones
through a second connection.  Push frames are read concurrently the whole
time; each one's insert-to-notify latency is the gap between writing the
mutation frame and reading the push frame it produced, matched by the
``generation`` both the mutation response and the notification carry.

The run fails (exit 1) unless

* at least ``--min-subscriptions`` subscriptions are live end to end
  (100 by default, the acceptance bar),
* every subscription's final pushed frontier is bit-identical — ids *and*
  distances — to re-running its query from scratch on a fresh engine fed
  the same mutations, and
* at least one delta push was observed per mutation phase.

``--report`` writes the captured :class:`repro.obs.RunReport` (the
``continuous.notify_ms`` histogram plus the client-observed
``notify_p50_ms``/``notify_p99_ms`` in the meta) which the Makefile
renders through ``repro stats --report``.  Run from the repo root:

    PYTHONPATH=src python scripts/continuous_loadtest.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import struct
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro import obs  # noqa: E402
from repro.continuous import KnnWatch, RangeWatch  # noqa: E402
from repro.engine import QueryOptions  # noqa: E402
from repro.index import SeriesDatabase  # noqa: E402
from repro.reduction import REDUCERS  # noqa: E402
from repro.serving import (  # noqa: E402
    ReproServer,
    ServerConfig,
    ShardedEngine,
    encode_frame,
    read_frame,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--series", type=int, default=256, help="database rows")
    parser.add_argument("--length", type=int, default=128, help="series length")
    parser.add_argument("--queries", type=int, default=32, help="distinct watch queries")
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--subscriptions", type=int, default=128)
    parser.add_argument(
        "--min-subscriptions", type=int, default=100,
        help="required live standing subscriptions",
    )
    parser.add_argument("--inserts", type=int, default=80, help="rows streamed in")
    parser.add_argument(
        "--deletes", type=int, default=10,
        help="streamed rows tombstoned again after the inserts",
    )
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--report", default=None, metavar="OUT.json")
    return parser.parse_args()


def _build_engine(args, data):
    db = SeriesDatabase(REDUCERS["PAA"](n_coefficients=12), index=None)
    db.ingest(data)
    if args.shards > 1:
        return ShardedEngine.from_database(db, args.shards)
    return db


def _gen_key(generation):
    return tuple(generation) if isinstance(generation, list) else generation


def _watches(args, queries, radii):
    """The subscription mix: every 4th one a range watch, the rest k-NN."""
    watches = []
    for i in range(args.subscriptions):
        q = queries[i % args.queries]
        if i % 4 == 3:
            watches.append(RangeWatch(query=q, radius=radii[i % args.queries]))
        else:
            watches.append(KnnWatch(query=q, k=args.k))
    return watches


async def _drive(args, engine, watches, stream, delete_plan, received, gen_t0):
    """Subscribe, mutate, listen; returns (sids, deleted gids, mutate seconds)."""
    config = ServerConfig(
        queue_depth=args.subscriptions + args.inserts + args.deletes + 64,
        notify_queue=args.inserts + args.deletes + 8,
    )
    server = ReproServer(engine, config)
    await server.start()
    try:
        sub_reader, sub_writer = await asyncio.open_connection("127.0.0.1", server.port)
        mut_reader, mut_writer = await asyncio.open_connection("127.0.0.1", server.port)
        try:
            for i, watch in enumerate(watches):
                sub_writer.write(
                    encode_frame({"id": i, "op": "subscribe", "query": watch.to_payload()})
                )
            await sub_writer.drain()
            sids_by_rid = {}
            while len(sids_by_rid) < len(watches) or len(received) < len(watches):
                frame = await read_frame(sub_reader)
                if frame.get("op") == "notify":
                    received.append((time.perf_counter(), frame["notification"]))
                elif not frame.get("ok"):
                    raise RuntimeError(f"subscribe failed: {frame}")
                else:
                    sids_by_rid[frame["id"]] = str(frame["subscription_id"])
            sids = [sids_by_rid[i] for i in range(len(watches))]

            done = asyncio.Event()
            inserted_gids = []
            deleted_gids = []
            timings = {}

            async def _mutate():
                started = time.perf_counter()
                for i, row in enumerate(stream):
                    t0 = time.perf_counter()
                    mut_writer.write(
                        encode_frame({"id": i, "op": "insert", "series": row.tolist()})
                    )
                    await mut_writer.drain()
                    reply = await read_frame(mut_reader)
                    inserted_gids.append(int(reply["series_id"]))
                    gen_t0[_gen_key(reply["generation"])] = t0
                for j, victim_index in enumerate(delete_plan):
                    gid = inserted_gids[victim_index]
                    t0 = time.perf_counter()
                    mut_writer.write(
                        encode_frame(
                            {"id": len(stream) + j, "op": "delete", "series_id": gid}
                        )
                    )
                    await mut_writer.drain()
                    reply = await read_frame(mut_reader)
                    if reply.get("deleted"):
                        deleted_gids.append(gid)
                        gen_t0[_gen_key(reply["generation"])] = t0
                timings["mutate_s"] = time.perf_counter() - started
                done.set()

            async def _listen():
                # cancellation-safe framing: buffer raw bytes ourselves so a
                # timed-out read never strands half a frame
                buffer = bytearray()
                quiet = 0
                while True:
                    try:
                        chunk = await asyncio.wait_for(
                            sub_reader.read(1 << 16), timeout=0.5
                        )
                    except asyncio.TimeoutError:
                        if done.is_set() and not buffer:
                            quiet += 1
                            if quiet >= 2:
                                return
                        continue
                    if not chunk:
                        return
                    quiet = 0
                    buffer.extend(chunk)
                    while len(buffer) >= 4:
                        (length,) = struct.unpack(">I", bytes(buffer[:4]))
                        if len(buffer) < 4 + length:
                            break
                        body = bytes(buffer[4 : 4 + length])
                        del buffer[: 4 + length]
                        frame = json.loads(body.decode("utf-8"))
                        if frame.get("op") == "notify":
                            received.append((time.perf_counter(), frame["notification"]))

            await asyncio.gather(_mutate(), _listen())
            return sids, deleted_gids, timings["mutate_s"]
        finally:
            for writer in (sub_writer, mut_writer):
                writer.close()
                await writer.wait_closed()
    finally:
        await server.stop()


def main() -> int:
    args = parse_args()
    rng = np.random.default_rng(args.seed)
    data = rng.normal(size=(args.series, args.length)).cumsum(axis=1)
    picks = rng.integers(0, args.series, size=args.queries)
    queries = data[picks] + rng.normal(scale=0.05, size=(args.queries, args.length))

    # range radii: just past each query's current 4th neighbour, so the
    # near-duplicate inserts below are guaranteed to join the result set
    reference = SeriesDatabase(REDUCERS["PAA"](n_coefficients=12), index=None)
    reference.ingest(data)
    radii = [
        float(r.distances[-1]) + 0.5
        for r in reference.knn_batch(queries, QueryOptions(k=4)).results
    ]

    n_inserts = args.inserts
    rng = np.random.default_rng(args.seed + 1)
    wild = rng.normal(size=(n_inserts, args.length)).cumsum(axis=1)
    near_picks = rng.integers(0, args.queries, size=n_inserts)
    near = queries[near_picks] + rng.normal(scale=0.05, size=(n_inserts, args.length))
    stream = np.where((np.arange(n_inserts) % 2 == 0)[:, None], near, wild)
    delete_plan = list(range(0, n_inserts, max(n_inserts // max(args.deletes, 1), 1)))[
        : args.deletes
    ]

    watches = _watches(args, queries, radii)
    received: list = []
    gen_t0: dict = {}

    with obs.capture() as session:
        engine = _build_engine(args, data)
        sids, deleted_gids, mutate_s = asyncio.run(
            _drive(args, engine, watches, stream, delete_plan, received, gen_t0)
        )
        closer = getattr(engine, "close", None)
        if callable(closer):
            closer()

    # client-observed insert-to-notify latency + final pushed frontiers
    latencies = []
    state: dict = {}
    for recv_t, note in received:
        sid = note["subscription_id"]
        if sid not in state or note["seq"] > state[sid][0]:
            state[sid] = (note["seq"], note)
        t0 = gen_t0.get(_gen_key(note.get("generation")))
        if t0 is not None:
            latencies.append((recv_t - t0) * 1e3)
    latencies.sort()
    p50 = latencies[len(latencies) // 2] if latencies else float("nan")
    p99 = (
        latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
        if latencies
        else float("nan")
    )

    report = session.report(
        meta={
            "command": "continuous_loadtest",
            "subscriptions": len(sids),
            "inserts": n_inserts,
            "deletes": len(deleted_gids),
            "shards": args.shards,
            "delta_pushes": len(latencies),
            "notify_p50_ms": round(p50, 3),
            "notify_p99_ms": round(p99, 3),
        }
    )
    if args.report:
        report.save(args.report)

    # scratch verification: a fresh engine fed the same mutations must
    # answer every watch identically to its final pushed frontier
    scratch = _build_engine(args, data)
    replayed = [int(scratch.insert(row)) for row in stream]
    for gid in deleted_gids:
        scratch.delete(gid)
    mismatches = 0
    for i, watch in enumerate(watches):
        note = state.get(sids[i], (0, None))[1]
        if note is None:
            mismatches += 1
            continue
        if isinstance(watch, KnnWatch):
            result = scratch.knn_batch(
                np.asarray([watch.query]), QueryOptions(k=watch.k)
            ).results[0]
        else:
            result = scratch.range_query(watch.query, watch.radius)
        want_ids = [int(g) for g in result.ids]
        want_distances = [float(d) for d in result.distances]
        if note["ids"] != want_ids or note["distances"] != want_distances:
            mismatches += 1
    closer = getattr(scratch, "close", None)
    if callable(closer):
        closer()

    print(
        f"{len(sids)} standing subscriptions over {n_inserts} inserts + "
        f"{len(deleted_gids)} deletes in {mutate_s:.2f}s "
        f"({(n_inserts + len(deleted_gids)) / mutate_s:.0f} mutations/s, "
        f"{args.shards} shard(s)); {len(latencies)} delta pushes, "
        f"insert-to-notify p50 {p50:.1f} ms, p99 {p99:.1f} ms"
    )

    failures = []
    if len(sids) < args.min_subscriptions:
        failures.append(
            f"only {len(sids)} subscriptions < required {args.min_subscriptions}"
        )
    if set(deleted_gids) - set(replayed):
        failures.append("scratch replay assigned different ids than the server")
    if not latencies:
        failures.append("no delta pushes observed")
    if mismatches:
        failures.append(
            f"{mismatches} subscriptions' final frontiers differ from scratch re-runs"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"OK: sustained >= {args.min_subscriptions} standing subscriptions "
        "with bit-identical pushed frontiers"
    )
    if args.report:
        print(f"wrote {args.report}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
