"""Loopback load test: >= 1000 concurrent in-flight queries, bit-identical.

Builds a synthetic database, computes every answer on the *unsharded*
engine first, then partitions the data into round-robin shards behind a
:class:`repro.serving.ShardedEngine`, starts a loopback
:class:`repro.serving.ReproServer`, and fires ``--inflight`` single-query
k-NN requests pipelined over ``--connections`` sockets — every frame is
written before any response is read, so the whole population is in flight
at once while the admission controller drains it ``--max-in-flight`` at a
time.

The run fails (exit 1) unless

* the server's accepted in-flight high-water mark reaches
  ``--min-inflight`` (1000 by default, the acceptance bar), and
* every wire answer is bit-identical — ids *and* distances — to the
  unsharded engine's answer for the same query.

``--report`` writes the captured :class:`repro.obs.RunReport` (the
``server.request_ms`` histogram carries the p50/p99 the Makefile renders
through ``repro stats --report``).  Run from the repo root:

    PYTHONPATH=src python scripts/serve_loadtest.py
"""

from __future__ import annotations

import argparse
import asyncio
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro import obs  # noqa: E402
from repro.engine import QueryOptions  # noqa: E402
from repro.index import SeriesDatabase  # noqa: E402
from repro.reduction import REDUCERS  # noqa: E402
from repro.serving import (  # noqa: E402
    ReproServer,
    ServerConfig,
    ShardedEngine,
    encode_frame,
    read_frame,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--series", type=int, default=256, help="database rows")
    parser.add_argument("--length", type=int, default=128, help="series length")
    parser.add_argument("--queries", type=int, default=32, help="distinct query series")
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--inflight", type=int, default=1200, help="requests fired")
    parser.add_argument(
        "--min-inflight", type=int, default=1000,
        help="required accepted in-flight high-water mark",
    )
    parser.add_argument("--connections", type=int, default=16)
    parser.add_argument("--max-in-flight", type=int, default=32)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--report", default=None, metavar="OUT.json")
    return parser.parse_args()


async def _drive_connection(port: int, frames: list) -> list:
    """Write every frame, then read every response; returns (id, ms, reply)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    samples = []
    try:
        sent = {}
        for frame in frames:
            sent[frame["id"]] = time.perf_counter()
            writer.write(encode_frame(frame))
        await writer.drain()
        for _ in frames:
            reply = await read_frame(reader)
            samples.append(
                (reply["id"], (time.perf_counter() - sent[reply["id"]]) * 1e3, reply)
            )
    finally:
        writer.close()
        await writer.wait_closed()
    return samples


async def _drive(engine, config: ServerConfig, requests: list, n_conns: int):
    server = ReproServer(engine, config)
    await server.start()
    try:
        batches = [requests[c::n_conns] for c in range(n_conns)]
        started = time.perf_counter()
        per_conn = await asyncio.gather(
            *(_drive_connection(server.port, batch) for batch in batches)
        )
        elapsed = time.perf_counter() - started
    finally:
        await server.stop()
    return elapsed, [s for batch in per_conn for s in batch], server.peak_in_flight


def main() -> int:
    args = parse_args()
    rng = np.random.default_rng(args.seed)
    data = rng.normal(size=(args.series, args.length)).cumsum(axis=1)
    picks = rng.integers(0, args.series, size=args.queries)
    queries = data[picks] + rng.normal(scale=0.05, size=(args.queries, args.length))

    db = SeriesDatabase(REDUCERS["PAA"](n_coefficients=12), index=None)
    db.ingest(data)
    reference = db.knn_batch(queries, QueryOptions(k=args.k))
    expected = [
        ([int(i) for i in r.ids], [float(d) for d in r.distances])
        for r in reference.results
    ]

    requests = [
        {
            "id": i,
            "op": "knn",
            "queries": queries[i % args.queries][None, :].tolist(),
            "k": args.k,
        }
        for i in range(args.inflight)
    ]
    config = ServerConfig(
        max_in_flight=args.max_in_flight, queue_depth=args.inflight + 64
    )

    with obs.capture() as session:
        sharded = ShardedEngine.from_database(db, args.shards)
        elapsed, samples, peak = asyncio.run(
            _drive(sharded, config, requests, min(args.connections, args.inflight))
        )
        sharded.close()
    report = session.report(
        meta={
            "command": "serve_loadtest",
            "shards": args.shards,
            "inflight": args.inflight,
            "connections": args.connections,
            "max_in_flight": args.max_in_flight,
        }
    )
    if args.report:
        report.save(args.report)

    mismatches = sum(
        1
        for rid, _, reply in samples
        if not reply.get("ok")
        or reply["results"][0]["ids"] != expected[rid % args.queries][0]
        or reply["results"][0]["distances"] != expected[rid % args.queries][1]
    )
    latencies = sorted(ms for _, ms, _ in samples)
    p50 = latencies[len(latencies) // 2]
    p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
    print(
        f"{len(samples)}/{args.inflight} answers in {elapsed:.2f}s "
        f"({len(samples) / elapsed:.0f} qps) over {args.shards} shard(s); "
        f"peak in-flight {peak}, p50 {p50:.1f} ms, p99 {p99:.1f} ms"
    )

    failures = []
    if len(samples) != args.inflight:
        failures.append(f"lost {args.inflight - len(samples)} responses")
    if mismatches:
        failures.append(f"{mismatches} answers differ from the unsharded engine")
    if peak < args.min_inflight:
        failures.append(f"peak in-flight {peak} < required {args.min_inflight}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"OK: sustained >= {args.min_inflight} concurrent in-flight queries "
        "with bit-identical scatter-gather answers"
    )
    if args.report:
        print(f"wrote {args.report}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
