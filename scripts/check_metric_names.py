"""Lint: every instrumented call site must use a catalogued metric name.

Walks ``src/repro`` (including the ``repro.lifecycle`` durability layer),
``benchmarks`` and ``scripts`` with ``ast``, finds calls to the
observability helpers
(``obs.count`` / ``obs.gauge_set`` / ``obs.observe`` / ``obs.span`` and
their bare-imported forms, plus ``registry.counter/gauge/histogram`` and
``recorder.span``), and checks every *literal* first argument against the
canonical catalogue in ``repro.obs.catalog`` — including the kind (a span
name passed to ``count`` is as wrong as a typo).  Non-literal names are
reported only with ``--strict`` (dynamic selection is expected to go
through catalogued tables like ``PRUNED_METRICS``).

The reverse direction is linted for the experiment service's, bound
cascade's, verification filter's, batched-storage, serving and continuous
namespaces: every ``experiments.*`` / ``cascade.*`` / ``verify.*`` /
``pages.*`` / ``columns.*`` / ``server.*`` / ``shard.*`` /
``continuous.*`` name declared in the catalogue must be *used* by at
least one literal call site, so the catalogue cannot accumulate dead
metrics.

Exit status 0 = clean, 1 = violations found.  Run from the repo root:

    python scripts/check_metric_names.py
"""

from __future__ import annotations

import ast
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.catalog import CATALOG, SPAN  # noqa: E402

#: helper name -> the kind its first argument must be declared as
#: (None = any catalogued kind; the registry method itself re-checks)
HELPER_KINDS = {
    "count": "counter",
    "gauge_set": "gauge",
    "observe": "histogram",
    "span": SPAN,
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
}

#: files whose calls define rather than use the helpers
SKIP = {ROOT / "src" / "repro" / "obs"}


def helper_name(call: ast.Call) -> "str | None":
    """The observability helper this call targets, if any."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id if func.id in HELPER_KINDS else None
    if isinstance(func, ast.Attribute) and func.attr in HELPER_KINDS:
        return func.attr
    return None


def check_file(path: pathlib.Path, used: "set[str]") -> "list[str]":
    violations: "list[str]" = []
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        helper = helper_name(node)
        if helper is None:
            continue
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            if "--strict" in sys.argv:
                violations.append(
                    f"{path.relative_to(ROOT)}:{node.lineno}: non-literal metric "
                    f"name passed to {helper}()"
                )
            continue
        name = first.value
        used.add(name)
        declared = CATALOG.get(name)
        if declared is None:
            violations.append(
                f"{path.relative_to(ROOT)}:{node.lineno}: {helper}({name!r}) "
                "uses a name missing from repro.obs.catalog.CATALOG"
            )
        elif declared[0] != HELPER_KINDS[helper]:
            violations.append(
                f"{path.relative_to(ROOT)}:{node.lineno}: {helper}({name!r}) "
                f"but {name!r} is declared as a {declared[0]}"
            )
    return violations


#: directory trees the lint walks (benchmarks emit engine.* names, and the
#: crash-matrix harness under scripts/ emits recovery.* names)
WALKED = (ROOT / "src" / "repro", ROOT / "benchmarks", ROOT / "scripts")


def main() -> int:
    violations: "list[str]" = []
    used: "set[str]" = set()
    for base in WALKED:
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            if any(skip in path.parents for skip in SKIP):
                continue
            violations.extend(check_file(path, used))
    # reverse check: every catalogued name in the fully-literal namespaces
    # must have a caller
    reverse_prefixes = (
        "experiments.",
        "cascade.",
        "verify.",
        "pages.",
        "columns.",
        "server.",
        "shard.",
        "continuous.",
        "reduce.",
    )
    for name in sorted(CATALOG):
        if name.startswith(reverse_prefixes) and name not in used:
            violations.append(
                f"repro.obs.catalog declares {name!r} but no literal call "
                "site under the walked trees records it"
            )
    if violations:
        print(f"{len(violations)} metric-name violation(s):")
        for line in violations:
            print(f"  {line}")
        return 1
    print("metric names OK: every instrumented call site is catalogued")
    return 0


if __name__ == "__main__":
    sys.exit(main())
