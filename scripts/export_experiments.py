"""Export an experiment results store to a committable JSON snapshot.

Usage:

    PYTHONPATH=src python scripts/export_experiments.py <store.sqlite> <out.json>

The sqlite store itself is a binary artifact; committing its
:meth:`repro.experiments.ResultsStore.export_json` snapshot instead keeps
the perf trajectory reviewable in diffs.
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.experiments import ResultsStore  # noqa: E402


def main(argv: "list[str]") -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    store_path, out_path = argv
    with ResultsStore(store_path) as store:
        written = store.export_json(out_path)
        n = len(store.experiments())
    print(f"exported {n} experiment(s) from {store_path} to {written}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
