"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``     list the synthetic archive (optionally one family)
``generate``     materialise one dataset to a ``.npz`` file
``reduce``       reduce a series file to a representation JSON
``reconstruct``  rebuild a series from a representation JSON
``knn``          run k-NN over a dataset with a chosen method and index
``ingest``       insert series into a saved database through its WAL
``checkpoint``   fold a database's WAL into its saved state
``compact``      drop tombstoned rows and reclaim space
``shard``        materialise a sharded home (N round-robin shards) from a
                 saved database directory
``serve``        answer k-NN/range queries over TCP (length-prefixed JSON
                 frames) from a saved database or sharded home; see
                 docs/serving.md for the wire protocol and admission knobs
``subscribe``    register a standing query (k-NN / range / subsequence /
                 anomaly) against a server or local database and print each
                 pushed notification as a JSON line; see docs/continuous.md
``watch``        stream a series file through the online discord scorer and
                 print each anomaly alert as a JSON line
``experiment``   regenerate one of the paper's tables/figures, or drive the
                 experiment service: ``experiment run <spec.toml>`` executes
                 a declarative benchmark matrix into an sqlite results store
                 and writes ``BENCH_<spec>.json``; ``experiment report``
                 renders trend tables from the store; ``experiment diff``
                 judges the latest run against a committed baseline with the
                 spec's regression gates (non-zero exit on violation)
``stats``        list the metric catalogue or summarise a saved run report

``knn`` and ``experiment`` accept ``--report out.json`` to capture the
observability layer (counters, gauges, histograms, span tree) for the run
and write it as a schema-versioned :class:`repro.obs.RunReport`.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional, Sequence

import numpy as np

from . import obs
from .bench import (
    ExperimentConfig,
    print_table,
    run_bound_ablation,
    run_dbch_ablation,
    run_index_grid,
    run_maxdev_and_time,
    run_scaling,
    run_worked_example,
    summarise_ingest_knn,
    summarise_pruning_accuracy,
    summarise_tree_shape,
)
from .data import DATASETS, UCRLikeArchive
from .engine import QueryOptions
from .index import SeriesDatabase
from .io import from_jsonable, load_dataset, save_dataset, to_jsonable
from .kinds import IndexKind
from .reduction import REDUCERS

__all__ = ["main"]


def _read_series(path: str) -> np.ndarray:
    """Load a single series from .npy, .csv or .txt (one value per line)."""
    p = pathlib.Path(path)
    if p.suffix == ".npy":
        series = np.load(p)
    else:
        series = np.loadtxt(p, delimiter="," if p.suffix == ".csv" else None)
    series = np.asarray(series, dtype=float).ravel()
    if series.size == 0:
        raise SystemExit(f"no values found in {path}")
    return series


def _cmd_datasets(args) -> int:
    names = sorted(DATASETS)
    if args.family:
        names = [n for n in names if DATASETS[n] == args.family]
        if not names:
            raise SystemExit(f"no datasets in family {args.family!r}")
    for name in names:
        print(f"{name:<32} {DATASETS[name]}")
    print(f"\n{len(names)} datasets")
    return 0


def _cmd_generate(args) -> int:
    archive = UCRLikeArchive(
        length=args.length, n_series=args.series, n_queries=args.queries
    )
    dataset = archive.load(args.dataset)
    save_dataset(args.output, dataset)
    print(
        f"wrote {args.output}: {dataset.data.shape[0]} series + "
        f"{dataset.queries.shape[0]} queries of length {dataset.length}"
    )
    return 0


def _cmd_reduce(args) -> int:
    import json

    series = _read_series(args.input)
    reducer = REDUCERS[args.method](n_coefficients=args.coefficients)
    representation = reducer.transform(series)
    payload = to_jsonable(representation)
    pathlib.Path(args.output).write_text(json.dumps(payload, indent=2))
    recon = reducer.reconstruct(representation)
    print(
        f"{args.method} M={args.coefficients}: n={len(series)} -> "
        f"{args.output}; max deviation {np.abs(series - recon).max():.6g}"
    )
    return 0


def _cmd_reconstruct(args) -> int:
    import json

    payload = json.loads(pathlib.Path(args.input).read_text())
    representation = from_jsonable(payload)
    kind = payload["type"]
    if kind == "segmentation":
        recon = representation.reconstruct()
    else:
        raise SystemExit(
            f"reconstruct currently supports segment representations, got {kind!r} "
            "(use the library API for CHEBY/SAX)"
        )
    np.savetxt(args.output, recon)
    print(f"wrote {args.output}: {len(recon)} points")
    return 0


def _knn_rows(db: SeriesDatabase, dataset, args) -> list:
    k = args.k
    if args.batch:
        options = QueryOptions(k=k, parallelism=args.parallelism, deadline_s=args.deadline)
        results = db.knn_batch(dataset.queries, options).results
    else:
        results = [db.knn(query, k) for query in dataset.queries]
    rows = []
    for qi, (query, result) in enumerate(zip(dataset.queries, results)):
        truth = db.ground_truth(query, k)
        rows.append(
            {
                "query": qi,
                "neighbours": " ".join(map(str, result.ids)),
                "pruning_power": result.pruning_power,
                "accuracy": result.accuracy_against(truth),
            }
        )
    return rows


def _cmd_knn(args) -> int:
    if args.dataset.endswith(".npz"):
        dataset = load_dataset(args.dataset)
    else:
        archive = UCRLikeArchive(length=args.length, n_series=args.series)
        dataset = archive.load(args.dataset)
    reducer = REDUCERS[args.method](n_coefficients=args.coefficients)
    index = None if args.index == "none" else IndexKind(args.index)
    db = SeriesDatabase(reducer, index=index)
    if args.report:
        with obs.capture() as session:
            with obs.span("cli.knn"):
                db.ingest(dataset.data)
                rows = _knn_rows(db, dataset, args)
        report = session.report(
            meta={
                "command": "knn",
                "dataset": dataset.name,
                "method": args.method,
                "coefficients": args.coefficients,
                "index": args.index,
                "k": args.k,
                "batch": bool(args.batch),
                "parallelism": args.parallelism,
                "n_series": int(dataset.data.shape[0]),
                "length": int(dataset.data.shape[1]),
            }
        )
        report.save(args.report)
    else:
        db.ingest(dataset.data)
        rows = _knn_rows(db, dataset, args)
    print_table(
        f"k-NN (k={args.k}, {args.method}, index={args.index}) over {dataset.name}", rows
    )
    if args.report:
        print(f"wrote {args.report}")
    return 0


def _cmd_ingest(args) -> int:
    from .io import open_database
    from .lifecycle import DurabilityOptions

    durability = DurabilityOptions(
        wal=not args.no_wal, fsync=args.fsync, batch_records=args.fsync_batch
    )
    with obs.span("cli.ingest"):
        db = open_database(args.database, durability=durability)
        if args.input.endswith(".npz"):
            try:
                rows = load_dataset(args.input).data
            except KeyError:  # plain archive with just a 'data' matrix
                with np.load(args.input, allow_pickle=False) as archive:
                    rows = np.atleast_2d(np.asarray(archive["data"], dtype=float))
        else:
            rows = np.atleast_2d(_read_series(args.input))
        first = last = None
        for row in rows:
            sid = db.insert(row)
            first = sid if first is None else first
            last = sid
        if db.wal is not None:
            db.wal.sync()
        else:
            from .lifecycle import checkpoint

            checkpoint(db)  # without a WAL the inserts only survive a save
    print(f"inserted {len(rows)} series as ids {first}..{last} into {args.database}")
    return 0


def _cmd_checkpoint(args) -> int:
    from .io import open_database
    from .lifecycle import checkpoint

    with obs.span("cli.checkpoint"):
        db = open_database(args.database)
        report = checkpoint(db)
    print(
        f"checkpointed {report.directory}: {report.live_count} live of "
        f"{report.row_count} rows, folded {report.wal_bytes_folded} WAL bytes"
    )
    return 0


def _cmd_compact(args) -> int:
    from .io import open_database
    from .lifecycle import compact

    with obs.span("cli.compact"):
        db = open_database(args.database)
        report = compact(db)
    print(
        f"compacted {report.directory}: dropped {report.rows_dropped} of "
        f"{report.rows_before} rows, reclaimed {report.reclaimed_bytes} bytes "
        f"({report.reclaimed_fraction:.1%} of raw data)"
    )
    return 0


def _open_serving_target(path: str, shards: int):
    """A query engine for ``serve``: sharded home, db dir, or partition on load."""
    from .io import open_database
    from .serving import MANIFEST_FILENAME, ShardedEngine

    home = pathlib.Path(path)
    if (home / MANIFEST_FILENAME).exists():
        if shards > 1:
            raise SystemExit(
                f"{path} is already a sharded home; --shards only applies "
                "to plain database directories (use 'repro shard' to re-partition)"
            )
        return ShardedEngine.open(home)
    db = open_database(home)
    if shards > 1:
        return ShardedEngine.from_database(db, shards)
    return db


def _cmd_serve(args) -> int:
    import asyncio

    from .serving import ReproServer, ServerConfig

    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_in_flight=args.max_in_flight,
        queue_depth=args.queue_depth,
        workers=args.workers,
    )

    async def _run(engine) -> None:
        server = ReproServer(engine, config)
        await server.start()
        shards = getattr(engine, "n_shards", 1)
        print(
            f"serving {args.database} on {config.host}:{server.port} "
            f"({shards} shard(s), max_in_flight={config.max_in_flight}, "
            f"queue_depth={config.queue_depth}); Ctrl-C to stop"
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    def _serve_once() -> None:
        engine = _open_serving_target(args.database, args.shards)
        try:
            asyncio.run(_run(engine))
        except KeyboardInterrupt:
            print("\nshutting down")
        finally:
            close = getattr(engine, "close", None)
            if callable(close):
                close()

    if args.report:
        with obs.capture() as session:
            with obs.span("cli.serve"):
                _serve_once()
        session.report(
            meta={"command": "serve", "database": args.database, "shards": args.shards}
        ).save(args.report)
        print(f"wrote {args.report}")
    else:
        _serve_once()
    return 0


def _build_standing_query(args):
    """A standing query from the ``subscribe`` command's flags."""
    from .continuous import AnomalyWatch, KnnWatch, RangeWatch, SubsequenceWatch

    kind = args.kind
    if kind == "knn":
        if not args.query:
            raise SystemExit("--kind knn needs --query FILE")
        return KnnWatch(query=_read_series(args.query), k=args.k)
    if kind == "range":
        if not args.query:
            raise SystemExit("--kind range needs --query FILE")
        if args.radius is None:
            raise SystemExit("--kind range needs --radius")
        return RangeWatch(query=_read_series(args.query), radius=args.radius)
    if kind == "subsequence":
        if not args.pattern:
            raise SystemExit("--kind subsequence needs --pattern FILE")
        if args.radius is None:
            raise SystemExit("--kind subsequence needs --radius")
        return SubsequenceWatch(
            pattern=_read_series(args.pattern), radius=args.radius, stride=args.stride
        )
    return AnomalyWatch(
        window=args.window,
        threshold=args.threshold,
        stride=args.stride,
        max_segments=args.segments,
        history=args.history,
    )


def _cmd_subscribe(args) -> int:
    import json

    from .client import connect

    query = _build_standing_query(args)
    received = 0
    with obs.span("cli.subscribe"):
        client = connect(args.database)
        try:
            subscription = client.subscribe(query)
            print(
                f"subscribed {subscription.id} ({query.kind}) on {args.database}; "
                "notifications follow as JSON lines",
                file=sys.stderr,
            )
            try:
                while args.count <= 0 or received < args.count:
                    try:
                        note = subscription.next(timeout=args.timeout)
                    except TimeoutError:
                        print(
                            f"no notification within {args.timeout}s; stopping",
                            file=sys.stderr,
                        )
                        break
                    except (StopIteration, ConnectionError):
                        break
                    print(json.dumps(note.to_payload(), sort_keys=True), flush=True)
                    received += 1
            except KeyboardInterrupt:
                print("\nstopping", file=sys.stderr)
            finally:
                try:
                    subscription.close()
                except (ConnectionError, OSError):
                    pass  # server went away mid-iteration: nothing to undo
        finally:
            client.close()
    print(f"{received} notification(s)", file=sys.stderr)
    return 0


def _cmd_watch(args) -> int:
    import json

    from .continuous import OnlineDiscordScorer

    series = _read_series(args.input)
    n_alerts = 0
    with obs.span("cli.watch"):
        scorer = OnlineDiscordScorer(
            window=args.window,
            threshold=args.threshold,
            stride=args.stride,
            max_segments=args.segments,
            history=args.history,
        )
        chunk = max(1, args.chunk)
        for start in range(0, len(series), chunk):
            for alert in scorer.extend(series[start : start + chunk]):
                print(json.dumps(alert.to_payload(), sort_keys=True), flush=True)
                n_alerts += 1
    print(
        f"{n_alerts} alert(s) over {scorer.n_points} points "
        f"(window={args.window}, threshold={args.threshold})",
        file=sys.stderr,
    )
    return 0


def _cmd_shard(args) -> int:
    from .io import open_database
    from .serving import ShardedEngine

    with obs.span("cli.shard"):
        db = open_database(args.database)
        engine = ShardedEngine.from_database(db, args.shards)
        engine.save(args.output)
    print(
        f"sharded {args.database} ({len(engine)} live series) into "
        f"{args.shards} round-robin shard(s) under {args.output}"
    )
    return 0


def _cmd_stats(args) -> int:
    if args.report:
        report = obs.RunReport.load(args.report)
        meta = ", ".join(f"{k}={v}" for k, v in sorted(report.meta.items()))
        print_table(f"run report {args.report} ({meta})", report.summary_rows())
        if report.spans:
            print("\nspan tree (wall seconds, CPU seconds, calls):")
            _print_spans(report.spans, indent=1)
        return 0
    rows = [
        {"metric": name, "kind": kind, "description": description}
        for name, (kind, description) in sorted(obs.CATALOG.items())
    ]
    print_table("canonical metric catalogue (repro.obs)", rows)
    return 0


def _print_spans(spans, indent: int) -> None:
    for node in spans:
        print(
            f"{'  ' * indent}{node['name']:<28} wall={node['wall_s']:.4f}s "
            f"cpu={node['cpu_s']:.4f}s calls={node['calls']}"
        )
        _print_spans(node.get("children", ()), indent + 1)


def _cmd_report(args) -> int:
    from .bench import generate_report

    report = generate_report(args.results, args.output)
    if args.output:
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


_EXPERIMENTS = (
    "all",
    "fig1",
    "table1",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "ablation-bounds",
    "ablation-dbch",
    # experiment service (declarative spec matrix -> sqlite store -> gates)
    "run",
    "report",
    "diff",
)


def _print_cells(cells) -> None:
    """One table per workload family; cells carry heterogeneous metrics."""
    by_workload: dict = {}
    for cell in cells:
        by_workload.setdefault(cell["workload"], []).append(cell)
    for workload, rows in sorted(by_workload.items()):
        table_rows = [
            {
                "scale": c["scale"],
                "method": c["method"],
                "M": c["coefficients"],
                "index": c["index_kind"],
                "engine": c["engine"],
                "repeats": c["repeats"],
                **c["metrics"],
            }
            for c in rows
        ]
        print_table(f"{workload} cells (median over repeats)", table_rows)


def _cmd_experiment_run(args) -> int:
    from . import experiments as exp

    if not args.spec:
        raise SystemExit("repro experiment run needs a spec file (.toml or .json)")
    spec = exp.load_spec(args.spec)
    summary = exp.run_experiment(
        spec, args.store, bench_dir=args.bench_dir, progress=print
    )
    _print_cells(summary.cells)
    print(
        f"\nrecorded experiment {summary.experiment_id} "
        f"({summary.n_trials} trials, {summary.n_skipped} skipped, "
        f"{summary.n_failed} failed) into {summary.store_path}"
    )
    return 1 if summary.n_failed else 0


def _cmd_experiment_report(args) -> int:
    from . import experiments as exp

    with exp.ResultsStore(args.store) as store:
        overview = exp.experiment_rows(store)
        if not overview:
            raise SystemExit(f"no experiments recorded in {args.store}")
        print_table(f"experiments in {args.store}", overview)
        trend = exp.trend_rows(store, metric=args.metric, workload=args.workload)
        print_table("per-cell metric trend (median over repeats)", trend)
    return 0


def _cmd_experiment_diff(args) -> int:
    from . import experiments as exp

    if not args.spec:
        raise SystemExit("repro experiment diff needs the spec file (for its gates)")
    if not args.baseline:
        raise SystemExit("repro experiment diff needs --baseline BENCH_<spec>.json")
    spec = exp.load_spec(args.spec)
    baseline = exp.load_bench(args.baseline)
    if args.current:
        current_cells = exp.load_bench(args.current)["cells"]
        current_label = args.current
    else:
        with exp.ResultsStore(args.store) as store:
            experiment = store.latest_experiment(spec.name)
            if experiment is None:
                raise SystemExit(
                    f"no {spec.name!r} experiment in {args.store}; run the spec first"
                )
            current_cells = exp.summarise_cells(
                spec, store.cell_metrics(experiment["id"])
            )
            current_label = f"{args.store} (experiment {experiment['id']})"
    rows = exp.diff_cells(spec, baseline["cells"], current_cells)
    print_table(
        f"gates: {current_label} vs baseline {args.baseline}",
        rows or [{"cell": "-", "metric": "-", "verdict": "no gated metrics"}],
    )
    violations = exp.evaluate_gates(spec, baseline["cells"], current_cells)
    if violations:
        print(f"\n{len(violations)} gate violation(s):")
        for violation in violations:
            print(f"  {violation.describe()}")
        return 1
    print("\nall gates pass")
    return 0


def _cmd_experiment(args) -> int:
    if args.which == "run":
        return _cmd_experiment_run(args)
    if args.which == "report":
        return _cmd_experiment_report(args)
    if args.which == "diff":
        return _cmd_experiment_diff(args)
    config_kwargs = dict(
        dataset_names=tuple(args.datasets) if args.datasets else (),
        length=args.length,
        n_series=args.series,
        n_queries=args.queries,
        coefficients=tuple(args.coefficients),
        ks=tuple(args.ks),
    )
    if args.methods:
        config_kwargs["methods"] = tuple(args.methods)
    config = ExperimentConfig(**config_kwargs)
    if args.report:
        with obs.capture() as session:
            with obs.span("cli.experiment"):
                code = _run_experiment(args, config)
        session.report(
            meta={
                "command": "experiment",
                "which": args.which,
                "datasets": list(config.dataset_names),
                "coefficients": list(config.coefficients),
                "ks": list(config.ks),
                "length": config.length,
                "n_series": config.n_series,
            }
        ).save(args.report)
        print(f"wrote {args.report}")
        return code
    return _run_experiment(args, config)


def _run_experiment(args, config: ExperimentConfig) -> int:
    which = args.which
    if which == "all":
        from .bench import run_all

        results = run_all(
            config, args.output, overwrite=args.overwrite, progress=print
        )
        for name, rows in results.items():
            from .bench import EXPERIMENT_TITLES

            print_table(EXPERIMENT_TITLES[name], rows)
        print(f"\nresults persisted under {args.output}")
    elif which == "fig1":
        print_table("Fig 1 — worked example (M=12)", run_worked_example())
    elif which == "table1":
        print_table(
            "Table 1 — reduction time vs length",
            run_scaling(lengths=(64, 128, min(config.length, 256))),
        )
    elif which == "fig12":
        print_table("Fig 12 — max deviation & reduction time", run_maxdev_and_time(config))
    elif which in ("fig13", "fig14", "fig15"):
        grid = run_index_grid(config)
        if which == "fig13":
            from .bench import grouped_bar_chart

            rows = summarise_pruning_accuracy(grid)
            print_table("Fig 13 — pruning power & accuracy", rows)
            print()
            print(
                grouped_bar_chart(
                    "Fig 13a — pruning power (lower is better)",
                    rows,
                    "method",
                    "index",
                    "pruning_power",
                )
            )
        elif which == "fig14":
            print_table("Fig 14 — ingest & k-NN CPU time", summarise_ingest_knn(grid))
        else:
            print_table("Figs 15/16 — node counts & height", summarise_tree_shape(grid))
    elif which == "ablation-bounds":
        print_table("Ablation — SAPLA bound modes", run_bound_ablation(config))
    elif which == "ablation-dbch":
        print_table("Ablation — DBCH query bound", run_dbch_ablation(config))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SAPLA (EDBT 2022) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="list the synthetic archive")
    p.add_argument("--family", help="filter by shape family")
    p.set_defaults(func=_cmd_datasets)

    p = sub.add_parser("generate", help="materialise one dataset to .npz")
    p.add_argument("--dataset", required=True)
    p.add_argument("--length", type=int, default=1024)
    p.add_argument("--series", type=int, default=100)
    p.add_argument("--queries", type=int, default=5)
    p.add_argument("--output", required=True)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("reduce", help="reduce a series file to JSON")
    p.add_argument("--method", choices=sorted(REDUCERS), default="SAPLA")
    p.add_argument("--coefficients", type=int, default=12)
    p.add_argument("--input", required=True, help=".npy/.csv/.txt series file")
    p.add_argument("--output", required=True, help="representation JSON path")
    p.set_defaults(func=_cmd_reduce)

    p = sub.add_parser("reconstruct", help="rebuild a series from JSON")
    p.add_argument("--input", required=True)
    p.add_argument("--output", required=True)
    p.set_defaults(func=_cmd_reconstruct)

    p = sub.add_parser("knn", help="k-NN search over a dataset")
    p.add_argument("--dataset", required=True, help="archive name or .npz path")
    p.add_argument("--method", choices=sorted(REDUCERS), default="SAPLA")
    p.add_argument("--coefficients", type=int, default=12)
    p.add_argument("--index", choices=("rtree", "dbch", "none"), default="dbch")
    p.add_argument("--k", type=int, default=8)
    p.add_argument("--length", type=int, default=256)
    p.add_argument("--series", type=int, default=50)
    p.add_argument(
        "--batch", action="store_true",
        help="answer all queries in one QueryEngine.knn_batch call",
    )
    p.add_argument(
        "--parallelism", type=int, default=1, metavar="N",
        help="worker processes for --batch frontier walks (1 = in process)",
    )
    p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the --batch call; late queries return partial results",
    )
    p.add_argument(
        "--report", default=None, metavar="OUT.json",
        help="capture metrics + spans for the run and write a RunReport here",
    )
    p.set_defaults(func=_cmd_knn)

    p = sub.add_parser("ingest", help="insert series into a saved database (WAL-durable)")
    p.add_argument("--database", required=True, help="database directory (from save)")
    p.add_argument("--input", required=True, help=".npz dataset or .npy/.csv/.txt series")
    p.add_argument(
        "--fsync", choices=("always", "batch", "never"), default="batch",
        help="WAL fsync policy for the inserts",
    )
    p.add_argument(
        "--fsync-batch", type=int, default=64, metavar="N",
        help="records per fsync under --fsync batch",
    )
    p.add_argument(
        "--no-wal", action="store_true",
        help="skip the write-ahead log (crash loses uncheckpointed inserts)",
    )
    p.set_defaults(func=_cmd_ingest)

    p = sub.add_parser("checkpoint", help="fold a database's WAL into its saved state")
    p.add_argument("--database", required=True, help="database directory (from save)")
    p.set_defaults(func=_cmd_checkpoint)

    p = sub.add_parser("compact", help="drop tombstoned rows and reclaim space")
    p.add_argument("--database", required=True, help="database directory (from save)")
    p.set_defaults(func=_cmd_compact)

    p = sub.add_parser("shard", help="partition a saved database into a sharded home")
    p.add_argument("--database", required=True, help="source database directory (from save)")
    p.add_argument("--output", required=True, help="sharded home directory to create")
    p.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="round-robin shard count (series id modulo N)",
    )
    p.set_defaults(func=_cmd_shard)

    p = sub.add_parser("serve", help="serve k-NN/range queries over TCP")
    p.add_argument(
        "--database", required=True,
        help="database directory or sharded home (from 'repro shard')",
    )
    p.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="partition a plain database into N in-memory shards at startup",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0, help="0 picks a free port")
    p.add_argument(
        "--max-in-flight", type=int, default=64, metavar="N",
        help="queries executing concurrently on the thread pool",
    )
    p.add_argument(
        "--queue-depth", type=int, default=2048, metavar="N",
        help="admitted queries allowed to wait; beyond this arrivals are shed",
    )
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="execution threads (defaults to --max-in-flight)",
    )
    p.add_argument(
        "--report", default=None, metavar="OUT.json",
        help="write a RunReport (server.* / shard.* metrics) on shutdown",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "subscribe",
        help="register a standing query and print pushed notifications",
    )
    p.add_argument(
        "--database", required=True,
        help="tcp://host:port of a running server, a database directory, "
        "or a sharded home",
    )
    p.add_argument(
        "--kind", choices=("knn", "range", "subsequence", "anomaly"), default="knn",
        help="standing-query kind to register",
    )
    p.add_argument(
        "--query", default=None, metavar="FILE",
        help=".npy/.csv/.txt series for --kind knn/range",
    )
    p.add_argument(
        "--pattern", default=None, metavar="FILE",
        help=".npy/.csv/.txt pattern for --kind subsequence",
    )
    p.add_argument("--k", type=int, default=8, help="top-k size for --kind knn")
    p.add_argument(
        "--radius", type=float, default=None,
        help="match radius for --kind range/subsequence",
    )
    p.add_argument(
        "--window", type=int, default=32,
        help="scored window length for --kind anomaly",
    )
    p.add_argument(
        "--threshold", type=float, default=1.0,
        help="alert distance threshold for --kind anomaly",
    )
    p.add_argument(
        "--stride", type=int, default=1,
        help="window stride for --kind subsequence/anomaly",
    )
    p.add_argument(
        "--segments", type=int, default=8, metavar="M",
        help="StreamingSAPLA budget per anomaly window",
    )
    p.add_argument(
        "--history", type=int, default=64, metavar="N",
        help="anomaly windows kept comparable",
    )
    p.add_argument(
        "--count", type=int, default=0, metavar="N",
        help="stop after N notifications (0 = run until timeout/Ctrl-C)",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="stop when no notification arrives for this long",
    )
    p.set_defaults(func=_cmd_subscribe)

    p = sub.add_parser(
        "watch", help="stream a series file through the online discord scorer"
    )
    p.add_argument(
        "--input", required=True, help=".npy/.csv/.txt series file to score"
    )
    p.add_argument("--window", type=int, default=32, help="scored window length")
    p.add_argument(
        "--threshold", type=float, default=1.0,
        help="alert when the nearest prior window is farther than this",
    )
    p.add_argument("--stride", type=int, default=1, help="window stride")
    p.add_argument(
        "--segments", type=int, default=8, metavar="M",
        help="StreamingSAPLA budget per window",
    )
    p.add_argument(
        "--history", type=int, default=64, metavar="N",
        help="windows kept comparable (memory bound)",
    )
    p.add_argument(
        "--chunk", type=int, default=256, metavar="N",
        help="values fed to the scorer per extend() call",
    )
    p.set_defaults(func=_cmd_watch)

    p = sub.add_parser("stats", help="metric catalogue / run-report summary")
    p.add_argument(
        "--report", default=None, metavar="RUN.json",
        help="summarise this RunReport instead of listing the catalogue",
    )
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("report", help="render a markdown report from results")
    p.add_argument("--results", default="results", help="run_all output directory")
    p.add_argument("--output", default=None, help="write the report here")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "experiment",
        help="regenerate a paper table/figure, or drive the experiment service "
        "(run <spec> / report / diff)",
    )
    p.add_argument("which", choices=_EXPERIMENTS)
    p.add_argument(
        "spec", nargs="?", default=None,
        help="experiment spec file (.toml/.json) for the run/diff subcommands",
    )
    p.add_argument(
        "--store", default="experiments.sqlite", metavar="DB",
        help="sqlite results store for run/report/diff",
    )
    p.add_argument(
        "--bench-dir", default=".", metavar="DIR",
        help="where 'run' writes its BENCH_<spec>.json trajectory summary",
    )
    p.add_argument(
        "--baseline", default=None, metavar="BENCH.json",
        help="baseline trajectory file 'diff' compares against",
    )
    p.add_argument(
        "--current", default=None, metavar="BENCH.json",
        help="trajectory file to judge; defaults to the store's latest run of the spec",
    )
    p.add_argument(
        "--metric", default=None,
        help="substring filter on metric names in 'report' trend tables",
    )
    p.add_argument(
        "--workload", default=None,
        help="workload-family filter in 'report' trend tables",
    )
    p.add_argument("--datasets", nargs="*", default=None)
    p.add_argument("--length", type=int, default=256)
    p.add_argument("--series", type=int, default=24)
    p.add_argument("--queries", type=int, default=3)
    p.add_argument("--coefficients", nargs="*", type=int, default=[12])
    p.add_argument("--ks", nargs="*", type=int, default=[4, 8])
    p.add_argument(
        "--methods", nargs="*", choices=sorted(REDUCERS), default=None,
        help="restrict the evaluated methods",
    )
    p.add_argument("--output", default="results", help="directory for 'all' results")
    p.add_argument("--overwrite", action="store_true", help="re-run cached experiments")
    p.add_argument(
        "--report", default=None, metavar="OUT.json",
        help="capture metrics + spans for the run and write a RunReport here",
    )
    p.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    """Parse arguments and dispatch to the selected command."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
