"""Round-robin sharding: N independent databases behind one engine facade.

A :class:`ShardedEngine` partitions one logical collection across ``N``
:class:`repro.index.SeriesDatabase` shards by hashing on the series id —
round-robin, ``shard = id % N`` — and answers queries by scatter-gather:
every shard runs its own :class:`repro.engine.QueryEngine` over a pinned
snapshot, and the coordinator merges the per-shard answers with the *same*
stable ``(distance, series id)`` tie-break the single engine uses.

**Why round-robin and not consistent hashing:** the placement doubles as
the id codec.  Global id ``g`` lives in shard ``g % N`` at local row
``g // N``; both directions are pure arithmetic, so nothing mutable maps
ids, the per-shard write-ahead logs recover local rows only, and the
global view falls out of the invariant.  Global ids are assigned
sequentially, so within each shard local order equals global order and
the per-shard tie-break agrees with the unsharded one by construction.

**Exactness caveat:** the merged top-k is bit-identical to the single
engine whenever the representation bound is a true lower bound (any
equal-length method, or adaptive methods under
:attr:`repro.DistanceMode.LB`), because then each shard's top-k is exact
over its rows and the global top-k is contained in their union.  Under
the tighter-but-unguaranteed ``Dist_PAR`` both sharded and unsharded
answers are approximate and may differ the way any two approximate runs
may.

**Durability:** :meth:`ShardedEngine.save` writes one sub-directory per
shard (each with its own WAL under a durability policy) plus a
``sharding.json`` manifest; :meth:`ShardedEngine.open` reopens and
recovers every shard independently, then trims any shard that got ahead
of the round-robin prefix (possible only when a crash tears an unsynced
batch across shards) back to the longest consistent prefix.
"""

from __future__ import annotations

import json
import pathlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from threading import RLock
from typing import List, Optional, Sequence, Union

import numpy as np

from .. import obs
from ..engine.options import BatchResult, QueryOptions
from ..index.knn import KNNResult, SeriesDatabase
from ..kinds import DistanceMode, IndexKind
from ..reduction import REDUCERS

__all__ = ["ShardedEngine", "partition_database", "MANIFEST_FILENAME"]

PathLike = Union[str, pathlib.Path]

#: manifest file marking a directory as a sharded database home
MANIFEST_FILENAME = "sharding.json"

#: current manifest schema version
MANIFEST_VERSION = 1


def _shard_dir(home: pathlib.Path, shard: int) -> pathlib.Path:
    return home / f"shard-{shard:02d}"


def _rows(data, ids: "Sequence[int]") -> np.ndarray:
    """Materialise the given rows from an array or a paged row view."""
    gather = getattr(data, "gather", None)
    if gather is not None and not isinstance(data, np.ndarray):
        return np.asarray(gather(list(ids)), dtype=float)
    return np.asarray(data, dtype=float)[list(ids)]


def _needed_rows(total: int, shard: int, n_shards: int) -> int:
    """Rows shard ``shard`` holds when the global prefix has ``total`` rows."""
    if total <= shard:
        return 0
    return (total - shard + n_shards - 1) // n_shards


def _distance_mode(db) -> DistanceMode:
    """The :class:`repro.DistanceMode` to rebuild ``db``'s suite with."""
    try:
        return DistanceMode(db.suite.mode)
    except ValueError:
        return DistanceMode.PAR  # non-adaptive suites report 'aligned' etc.


def _clone_empty(db) -> SeriesDatabase:
    """A fresh, empty database with ``db``'s reducer/index/suite settings."""
    reducer = REDUCERS[db.reducer.name](n_coefficients=db.reducer.n_coefficients)
    return SeriesDatabase(
        reducer,
        index=db.index_kind,
        distance_mode=_distance_mode(db),
        max_entries=db.max_entries,
        min_entries=db.min_entries,
    )


def partition_database(db, n_shards: int, bulk: bool = False) -> "List[SeriesDatabase]":
    """Split ``db`` into ``n_shards`` round-robin shards, reusing its reductions.

    Global row ``g`` (live or tombstoned) becomes local row ``g // n_shards``
    of shard ``g % n_shards``; stored representations are carried over so
    partitioning never re-runs the reducer.  Works for both in-memory and
    disk-backed sources (disk rows are materialised into memory shards).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    inner = getattr(db, "_inner", db)
    if inner.data is None:
        raise ValueError("cannot partition a database before ingest")
    count = inner._count
    by_id = {e.series_id: e for e in inner.entries}
    shards: "List[SeriesDatabase]" = []
    for s in range(n_shards):
        shard = _clone_empty(inner)
        gids = list(range(s, count, n_shards))
        if gids:
            live = [(local, by_id[g]) for local, g in enumerate(gids) if g in by_id]
            shard.ingest(
                _rows(inner.data, gids),
                representations=[e.representation for _, e in live],
                live_ids=[local for local, _ in live],
                bulk=bulk,
            )
        shards.append(shard)
    return shards


def _truncate_tail(shard: SeriesDatabase, keep: int) -> None:
    """Drop every row with local id >= ``keep`` (crash-repair only).

    Rebuilds the shard from its first ``keep`` rows, reusing the stored
    representations of the surviving live entries.
    """
    if keep <= 0:
        shard.data = None
        shard._buf = None
        shard._count = 0
        shard.entries = []
        shard._live_ids = set()
        shard.tree = None
        shard._rep_cache = None
        shard._columns = None
        shard._generation += 1
        return
    entries = [e for e in sorted(shard.entries, key=lambda e: e.series_id) if e.series_id < keep]
    shard.ingest(
        np.array(np.asarray(shard.data)[:keep], dtype=float),
        representations=[e.representation for e in entries],
        live_ids=[e.series_id for e in entries],
    )


class ShardedEngine:
    """Scatter-gather query execution over round-robin shards.

    Owns ``N`` independent :class:`repro.index.SeriesDatabase` shards and
    exposes the single-engine surface — :meth:`knn_batch`,
    :meth:`range_query`, :meth:`insert`, :meth:`delete` — in *global* id
    space.  Per batch, every shard's snapshot is pinned, searched through
    its own query engine, and the per-query answers are merged by the
    stable ``(distance, series id)`` rule; see the module docstring for
    when the merge is provably identical to the unsharded engine.

    Construct via :meth:`from_database` (partition an existing database),
    :meth:`open` (reopen a sharded home saved by :meth:`save`), or directly
    from a list of shard databases whose row counts form a valid
    round-robin prefix.
    """

    def __init__(self, shards: "Sequence[SeriesDatabase]", parallel: bool = False):
        if not shards:
            raise ValueError("at least one shard is required")
        self._shards = list(shards)
        counts = [sh._count for sh in self._shards]
        total = sum(counts)
        n = len(self._shards)
        for s, have in enumerate(counts):
            if have != _needed_rows(total, s, n):
                raise ValueError(
                    "shard row counts are not a round-robin prefix: "
                    f"shard {s} holds {have} rows, expected {_needed_rows(total, s, n)}"
                )
        self._next_id = total
        self._home: "Optional[pathlib.Path]" = None
        self._lock = RLock()
        self._pool = (
            ThreadPoolExecutor(max_workers=n, thread_name_prefix="repro-shard")
            if parallel and n > 1
            else None
        )

    # -- construction ----------------------------------------------------
    @classmethod
    def from_database(cls, db, n_shards: int, parallel: bool = False) -> "ShardedEngine":
        """Partition ``db`` into ``n_shards`` and wrap the result."""
        return cls(partition_database(db, n_shards), parallel=parallel)

    @classmethod
    def open(cls, home: PathLike, durability=None, parallel: bool = False) -> "ShardedEngine":
        """Reopen a sharded home saved by :meth:`save`.

        Each shard recovers independently through its own WAL (see
        :func:`repro.io.open_database`).  If a crash tore an unsynced write
        batch across shards, any shard ahead of the longest consistent
        round-robin prefix is trimmed back to it (and checkpointed so the
        trim sticks) — exactly the acknowledged prefix survives.
        """
        from ..io.database import open_database
        from ..lifecycle.recovery import recover_database
        from ..lifecycle.wal import WAL_FILENAME, DurabilityOptions, WriteAheadLog

        home = pathlib.Path(home)
        manifest = json.loads((home / MANIFEST_FILENAME).read_text())
        n = int(manifest["n_shards"])
        shards: "List[SeriesDatabase]" = []
        for s in range(n):
            directory = _shard_dir(home, s)
            if (directory / "config.json").exists():
                shards.append(open_database(directory, durability=durability))
                continue
            # never-checkpointed shard: rebuild from the manifest + its WAL
            reducer = REDUCERS[manifest["reducer"]](
                n_coefficients=int(manifest["n_coefficients"])
            )
            raw_index = manifest.get("index")
            shard = SeriesDatabase(
                reducer,
                index=None if raw_index is None else IndexKind(raw_index),
                distance_mode=manifest.get("distance_mode", DistanceMode.PAR),
                max_entries=int(manifest.get("max_entries", 5)),
                min_entries=int(manifest.get("min_entries", 2)),
            )
            shard._home = directory
            wal_path = directory / WAL_FILENAME
            had_wal = wal_path.exists()
            if had_wal:
                recover_database(shard, wal_path, 0)
            if durability is not None or had_wal:
                directory.mkdir(parents=True, exist_ok=True)
                shard.attach_wal(
                    WriteAheadLog.open(wal_path, durability or DurabilityOptions())
                )
            shards.append(shard)
        cls._repair_prefix(home, shards)
        engine = cls(shards, parallel=parallel)
        engine._home = home
        return engine

    @staticmethod
    def _repair_prefix(home: pathlib.Path, shards: "List[SeriesDatabase]") -> None:
        """Trim shards that got ahead of the longest consistent prefix."""
        from ..lifecycle.maintenance import checkpoint

        n = len(shards)
        total = min(sh._count * n + s for s, sh in enumerate(shards))
        for s, shard in enumerate(shards):
            keep = _needed_rows(total, s, n)
            if shard._count <= keep:
                continue
            _truncate_tail(shard, keep)
            if shard.data is not None:
                checkpoint(shard, _shard_dir(home, s))
            elif shard.wal is not None:
                shard.wal.reset()

    # -- introspection ----------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Number of shards behind this engine."""
        return len(self._shards)

    @property
    def shards(self) -> "List[SeriesDatabase]":
        """The shard databases (read-only access; mutate through the engine)."""
        return list(self._shards)

    @property
    def count(self) -> int:
        """Total rows across shards, tombstones included (= next global id)."""
        return self._next_id

    @property
    def generation(self) -> "tuple":
        """Per-shard generation counters (the sharded version vector)."""
        return tuple(sh.generation for sh in self._shards)

    def __len__(self) -> int:
        """Number of live (non-tombstoned) series across all shards."""
        return sum(len(sh._live_ids) for sh in self._shards)

    def shard_of(self, series_id: int) -> int:
        """The shard a global series id lives in."""
        return int(series_id) % len(self._shards)

    # -- queries -----------------------------------------------------------
    def knn_batch(
        self, queries: np.ndarray, options: "Optional[QueryOptions]" = None
    ) -> BatchResult:
        """Scatter a batch to every shard and merge the per-shard top-k.

        Returns a :class:`repro.engine.BatchResult` in global id space;
        ``generation`` carries the per-shard generation tuple.  Each shard
        pins its own snapshot for the duration of the batch, so concurrent
        inserts/deletes never shift any shard mid-flight.
        """
        options = options if options is not None else QueryOptions()
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2:
            raise ValueError("knn_batch expects a (Q, n) array of queries")
        n = len(self._shards)
        start = time.perf_counter()
        deadline = None if options.deadline_s is None else start + options.deadline_s
        snaps = [sh.snapshot() for sh in self._shards]
        try:
            def run(snap):
                if snap.data is None:
                    return None
                opts = options
                if deadline is not None:
                    remaining = max(deadline - time.perf_counter(), 1e-9)
                    opts = replace(options, deadline_s=remaining)
                return snap.engine().knn_batch(queries, opts)

            if self._pool is not None:
                batches = list(self._pool.map(run, snaps))
            else:
                batches = [run(snap) for snap in snaps]
            merge_start = time.perf_counter()
            results, timed_out = self._merge(batches, len(queries), options.k)
            if obs.is_enabled():
                obs.count("shard.batches")
                obs.count(
                    "shard.queries", len(queries) * sum(1 for b in batches if b is not None)
                )
                obs.gauge_set("shard.count", n)
                obs.observe(
                    "shard.merge_ms", (time.perf_counter() - merge_start) * 1000.0
                )
            return BatchResult(
                results=results,
                timed_out=sorted(timed_out),
                elapsed_s=time.perf_counter() - start,
                rounds=max((b.rounds for b in batches if b is not None), default=0),
                parallelism=max((b.parallelism for b in batches if b is not None), default=1),
                generation=tuple(snap.generation for snap in snaps),
            )
        finally:
            for snap in snaps:
                snap.release()

    def _merge(self, batches, n_queries: int, k: int):
        """Merge per-shard batches into global-id results (stable tie-break)."""
        n = len(self._shards)
        results: "List[KNNResult]" = []
        timed_out: "set[int]" = set()
        for batch in batches:
            if batch is not None:
                timed_out.update(batch.timed_out)
        for i in range(n_queries):
            merged: "List[tuple[float, int]]" = []
            n_verified = n_total = nodes_visited = n_candidates = 0
            node_pushes = heap_pushes = 0
            for shard, batch in enumerate(batches):
                if batch is None:
                    continue
                r = batch.results[i]
                merged.extend(
                    (d, local * n + shard) for d, local in zip(r.distances, r.ids)
                )
                n_verified += r.n_verified
                n_total += r.n_total
                nodes_visited += r.nodes_visited
                n_candidates += r.n_candidates
                node_pushes += r.node_pushes
                heap_pushes += r.heap_pushes
            merged.sort()  # (distance, global id) — the single-engine tie-break
            top = merged[:k]
            results.append(
                KNNResult(
                    ids=[gid for _, gid in top],
                    distances=[d for d, _ in top],
                    n_verified=n_verified,
                    n_total=n_total,
                    nodes_visited=nodes_visited,
                    n_candidates=n_candidates,
                    node_pushes=node_pushes,
                    heap_pushes=heap_pushes,
                )
            )
        return results, timed_out

    def range_query(self, query: np.ndarray, radius: float) -> KNNResult:
        """All series within ``radius`` of ``query``, merged across shards.

        Each shard is frozen (mutations defer) while it scans; hits are
        re-keyed to global ids and ordered by the stable
        ``(distance, series id)`` rule.
        """
        hits: "List[tuple[float, int]]" = []
        n_verified = n_total = nodes_visited = n_candidates = 0
        node_pushes = heap_pushes = 0
        n = len(self._shards)
        for s, shard in enumerate(self._shards):
            if shard.data is None:
                continue
            with shard.freeze():
                r = shard.range_query(query, radius)
            hits.extend((d, local * n + s) for d, local in zip(r.distances, r.ids))
            n_verified += r.n_verified
            n_total += r.n_total
            nodes_visited += r.nodes_visited
            n_candidates += r.n_candidates
            node_pushes += r.node_pushes
            heap_pushes += r.heap_pushes
        hits.sort()
        return KNNResult(
            ids=[gid for _, gid in hits],
            distances=[d for d, _ in hits],
            n_verified=n_verified,
            n_total=n_total,
            nodes_visited=nodes_visited,
            n_candidates=n_candidates,
            node_pushes=node_pushes,
            heap_pushes=heap_pushes,
        )

    # -- mutation ----------------------------------------------------------
    def insert(self, series: np.ndarray) -> int:
        """Insert one series; returns its *global* id.

        The id is allocated sequentially and routed to shard ``id % N``;
        with per-shard WALs attached the shard logs (and fsyncs per policy)
        the local record before anything changes, exactly like the
        unsharded path.
        """
        with self._lock:
            gid = self._next_id
            n = len(self._shards)
            local = self._shards[gid % n].insert(series)
            if local != gid // n:
                raise RuntimeError(
                    f"shard {gid % n} assigned local id {local}, expected {gid // n}; "
                    "the round-robin invariant is broken"
                )
            self._next_id += 1
            return gid

    def insert_batch(self, data: np.ndarray) -> "List[int]":
        """Insert many series; returns their *global* ids.

        Ids are allocated sequentially and routed round-robin exactly as a
        loop of :meth:`insert` would, but each shard receives its rows as
        one :meth:`repro.index.SeriesDatabase.insert_batch` call, so the
        reduction runs array-at-a-time per shard.  Per-shard WAL record
        order is unchanged (each shard's rows arrive in global-id order).
        """
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("insert_batch expects a (count, n) array of series")
        if matrix.shape[0] == 0:
            return []
        with self._lock:
            n = len(self._shards)
            gids = list(range(self._next_id, self._next_id + matrix.shape[0]))
            for s in range(n):
                positions = [p for p, gid in enumerate(gids) if gid % n == s]
                if not positions:
                    continue
                locals_ = self._shards[s].insert_batch(matrix[positions])
                expected = [gids[p] // n for p in positions]
                if list(locals_) != expected:
                    raise RuntimeError(
                        f"shard {s} assigned local ids {locals_}, expected {expected}; "
                        "the round-robin invariant is broken"
                    )
            self._next_id += matrix.shape[0]
            return gids

    def delete(self, series_id: int) -> bool:
        """Tombstone one global series id in its shard."""
        series_id = int(series_id)
        if series_id < 0 or series_id >= self._next_id:
            return False
        n = len(self._shards)
        return self._shards[series_id % n].delete(series_id // n)

    # -- persistence / lifecycle -------------------------------------------
    def save(self, home: PathLike) -> None:
        """Persist every shard plus the ``sharding.json`` manifest."""
        home = pathlib.Path(home)
        home.mkdir(parents=True, exist_ok=True)
        template = self._shards[0]
        manifest = {
            "version": MANIFEST_VERSION,
            "placement": "round_robin",
            "n_shards": len(self._shards),
            "reducer": template.reducer.name,
            "n_coefficients": template.reducer.n_coefficients,
            "index": template.index_kind,
            "distance_mode": str(_distance_mode(template)),
            "max_entries": template.max_entries,
            "min_entries": template.min_entries,
        }
        (home / MANIFEST_FILENAME).write_text(json.dumps(manifest, indent=2))
        for s, shard in enumerate(self._shards):
            directory = _shard_dir(home, s)
            if shard.data is None:
                directory.mkdir(parents=True, exist_ok=True)
                shard._home = directory
            else:
                shard.save(directory)
        self._home = home

    def checkpoint(self) -> list:
        """Checkpoint every non-empty shard (persist state, truncate WAL)."""
        from ..lifecycle.maintenance import checkpoint

        if self._home is None:
            raise RuntimeError("save the sharded engine to a home directory first")
        reports = []
        for s, shard in enumerate(self._shards):
            if shard.data is None:
                continue
            reports.append(checkpoint(shard, _shard_dir(self._home, s)))
        return reports

    def sync(self) -> None:
        """Force-fsync every shard's WAL (no-op for shards without one)."""
        for shard in self._shards:
            if shard.wal is not None:
                shard.wal.sync()

    def close(self) -> None:
        """Shut the scatter pool down and close every shard WAL."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for shard in self._shards:
            if shard.wal is not None:
                shard.wal.close()
