"""Sharded serving: scatter-gather engines and the asyncio TCP server.

The composition layer over the batched engine, bound cascade and
durability machinery: :func:`partition_database` splits one collection
into round-robin shards, :class:`ShardedEngine` answers queries across
them with the single-engine tie-break (and per-shard WAL/checkpoint
lifecycle), and :class:`ReproServer` puts the whole thing behind a TCP
listener speaking length-prefixed JSON frames with admission control.

Clients should not import this package directly — use
:func:`repro.client.connect`, which returns the same typed surface for an
in-process database, a sharded home directory, or a running server.
"""

from .protocol import FrameError, MAX_FRAME_BYTES, encode_frame, read_frame
from .server import ReproServer, ServerConfig
from .sharding import MANIFEST_FILENAME, ShardedEngine, partition_database

__all__ = [
    "FrameError",
    "MANIFEST_FILENAME",
    "MAX_FRAME_BYTES",
    "ReproServer",
    "ServerConfig",
    "ShardedEngine",
    "encode_frame",
    "partition_database",
    "read_frame",
]
