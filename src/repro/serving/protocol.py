"""Length-prefixed JSON framing for the TCP serving protocol.

Every message — request or response — is one *frame*: a 4-byte big-endian
unsigned length followed by that many bytes of UTF-8 JSON.  Requests carry
``{"id": <client-chosen int>, "op": <operation>, ...payload}``; responses
echo the ``id`` (so clients may pipeline many requests per connection and
match answers out of order) and carry ``{"ok": true, ...body}`` or
``{"ok": false, "code": <machine code>, "error": <human message>}``.

Operations and their payloads (see :mod:`repro.client.api` for the
dataclasses the payloads mirror):

===============  ==============================================  =======================
op               request payload                                 ok-response body
===============  ==============================================  =======================
``knn``          :meth:`repro.client.KnnRequest.to_payload`      ``results`` (list of
                                                                 :class:`QueryResult`
                                                                 payloads)
``range``        :meth:`repro.client.RangeRequest.to_payload`    ``result`` (one
                                                                 :class:`QueryResult`
                                                                 payload)
``insert``       ``series`` (list of floats)                     ``series_id``,
                                                                 ``generation``
``delete``       ``series_id``                                   ``deleted``,
                                                                 ``generation``
``subscribe``    ``query`` (a standing-query payload, see        ``subscription_id``
                 :func:`repro.continuous.query_from_payload`)
``unsubscribe``  ``subscription_id``                             ``unsubscribed``
``stats``        —                                               ``stats`` (metrics
                                                                 snapshot), ``server``
``ping``         —                                               ``pong: true``
===============  ==============================================  =======================

**Push frames.**  After a ``subscribe``, the server writes unsolicited
``notify`` frames on the same connection whenever the standing query's
result changes: ``{"op": "notify", "ok": true, "subscription_id": ...,
"notification": <Notification payload>}``.  Push frames carry **no**
``id`` key — they answer no request — so pipelining clients must route
frames by ``op`` before matching ids (see
:meth:`repro.client.TcpClient._call`).  Delivery order per subscription
follows notification ``seq``; see ``docs/continuous.md`` for backpressure
and resync semantics.

JSON serialises doubles via their shortest round-trip repr, so distances
survive the wire bit-for-bit — the serving tests assert byte-identical
answers against the in-process engine (and the continuous tests assert
the same for pushed deltas).
"""

from __future__ import annotations

import json
import struct
from typing import Optional

__all__ = [
    "FrameError",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "read_frame",
    "read_frame_blocking",
    "error_response",
    "ok_response",
]

#: default ceiling on one frame's JSON body (guards the server's memory)
MAX_FRAME_BYTES = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")


class FrameError(ValueError):
    """A malformed, oversized or truncated frame."""


def encode_frame(message: dict, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """One wire frame: 4-byte big-endian length + UTF-8 JSON body."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > max_frame_bytes:
        raise FrameError(f"frame of {len(body)} bytes exceeds the {max_frame_bytes} cap")
    return _HEADER.pack(len(body)) + body


def _decode(body: bytes) -> dict:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise FrameError("frame body must be a JSON object")
    return message


async def read_frame(reader, max_frame_bytes: int = MAX_FRAME_BYTES) -> "Optional[dict]":
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns ``None`` on a clean end-of-stream (connection closed between
    frames); raises :class:`FrameError` on truncation mid-frame or an
    oversized/malformed body.
    """
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise FrameError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        raise FrameError(f"frame of {length} bytes exceeds the {max_frame_bytes} cap")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc
    return _decode(body)


def read_frame_blocking(stream, max_frame_bytes: int = MAX_FRAME_BYTES) -> "Optional[dict]":
    """Read one frame from a blocking binary file-like (``socket.makefile('rb')``)."""
    header = stream.read(_HEADER.size)
    if not header:
        return None  # clean close between frames
    if len(header) != _HEADER.size:
        raise FrameError("connection closed mid-header")
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        raise FrameError(f"frame of {length} bytes exceeds the {max_frame_bytes} cap")
    body = stream.read(length)
    if len(body) != length:
        raise FrameError("connection closed mid-frame")
    return _decode(body)


def ok_response(request_id, op: str, body: "Optional[dict]" = None) -> dict:
    """A success envelope echoing the request id."""
    message = {"id": request_id, "op": op, "ok": True}
    if body:
        message.update(body)
    return message


def error_response(request_id, code: str, error: str) -> dict:
    """A failure envelope: machine-readable ``code`` + human ``error``."""
    return {"id": request_id, "ok": False, "code": code, "error": error}
