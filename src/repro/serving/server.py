"""Stdlib-only asyncio TCP server fronting a (sharded) query engine.

:class:`ReproServer` accepts connections speaking the length-prefixed JSON
protocol of :mod:`repro.serving.protocol`, admits each query under a
two-stage admission controller, executes it on a thread pool (NumPy
verification releases the GIL, so shard scatter and many requests overlap),
and writes the response frame back — responses carry the request's ``id``,
so clients may pipeline arbitrarily many requests per connection.

**Admission control.**  ``max_in_flight`` bounds the queries *executing*
concurrently; arrivals beyond it wait in an admission queue bounded by
``queue_depth``; arrivals beyond *that* are shed immediately with an
``overloaded`` error rather than queued into unbounded memory.  The
accepted in-flight population (waiting + executing) is therefore capped at
``max_in_flight + queue_depth``, and a loopback load test can hold well
over 1000 queries in flight with the defaults.

Everything is instrumented through :mod:`repro.obs`: ``server.*`` counters
(requests, sheds, errors, connections), the ``server.in_flight`` gauge and
the ``server.request_ms`` latency histogram, whose p50/p99 render through
``repro stats``.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

from .. import obs
from ..client.api import KnnRequest, RangeRequest, QueryResult
from .protocol import (
    MAX_FRAME_BYTES,
    FrameError,
    encode_frame,
    error_response,
    ok_response,
    read_frame,
)

__all__ = ["ServerConfig", "ReproServer"]


@dataclass(frozen=True)
class ServerConfig:
    """Validated, immutable configuration for one :class:`ReproServer`.

    Args:
        host: interface to bind (loopback by default).
        port: TCP port; 0 picks a free one (read it back from
            :attr:`ReproServer.port` after start).
        max_in_flight: queries executing concurrently on the thread pool.
        queue_depth: admitted queries allowed to *wait* for an execution
            slot; arrivals beyond this are shed with an ``overloaded``
            error.
        workers: thread-pool size for query execution (defaults to
            ``max_in_flight``).
        max_frame_bytes: per-frame size cap for both directions.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_in_flight: int = 64
    queue_depth: int = 2048
    workers: "Optional[int]" = None
    max_frame_bytes: int = MAX_FRAME_BYTES

    def __post_init__(self):
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 (or None)")


class ReproServer:
    """One engine behind one TCP listener — start, serve, stop.

    ``engine`` is anything with the engine query surface (``knn_batch`` +
    ``range_query``): a :class:`repro.index.SeriesDatabase`, a
    :class:`repro.storage.DiskBackedDatabase` or a
    :class:`repro.serving.ShardedEngine`.  The server never mutates it.
    """

    def __init__(self, engine, config: "Optional[ServerConfig]" = None):
        self.engine = engine
        self.config = config if config is not None else ServerConfig()
        self.port: "Optional[int]" = None
        self.peak_in_flight = 0
        self._server: "Optional[asyncio.base_events.Server]" = None
        self._executor: "Optional[ThreadPoolExecutor]" = None
        self._slots: "Optional[asyncio.Semaphore]" = None
        self._waiting = 0
        self._executing = 0

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and create the execution pool."""
        workers = self.config.workers or self.config.max_in_flight
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._slots = asyncio.Semaphore(self.config.max_in_flight)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled (``repro serve`` wraps this)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the listener and shut the execution pool down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    @property
    def in_flight(self) -> int:
        """Accepted queries currently waiting or executing."""
        return self._waiting + self._executing

    # -- connection handling -------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        """Read frames for one connection; each request runs as its own task."""
        if obs.is_enabled():
            obs.count("server.connections")
        write_lock = asyncio.Lock()
        tasks: "set[asyncio.Task]" = set()
        try:
            while True:
                try:
                    frame = await read_frame(reader, self.config.max_frame_bytes)
                except FrameError:
                    break  # protocol violation: drop the connection
                if frame is None:
                    break
                task = asyncio.ensure_future(
                    self._handle_request(frame, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except asyncio.CancelledError:
            pass  # loop teardown: the connection dies with the server
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _reply(self, writer, lock: asyncio.Lock, message: dict) -> None:
        frame = encode_frame(message, self.config.max_frame_bytes)
        async with lock:
            writer.write(frame)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; nothing to deliver to

    def _note_in_flight(self) -> None:
        population = self.in_flight
        if population > self.peak_in_flight:
            self.peak_in_flight = population
        if obs.is_enabled():
            obs.gauge_set("server.in_flight", population)

    async def _handle_request(self, frame: dict, writer, lock: asyncio.Lock) -> None:
        """Dispatch one request frame and write its response."""
        rid = frame.get("id")
        op = frame.get("op")
        if obs.is_enabled():
            obs.count("server.requests")
        if op == "ping":
            await self._reply(writer, lock, ok_response(rid, op, {"pong": True}))
            return
        if op == "stats":
            await self._reply(writer, lock, ok_response(rid, op, self._stats_body()))
            return
        if op not in ("knn", "range"):
            if obs.is_enabled():
                obs.count("server.errors")
            await self._reply(
                writer, lock, error_response(rid, "bad_request", f"unknown op {op!r}")
            )
            return
        # two-stage admission: bounded executing + bounded waiting, then shed
        if self._waiting >= self.config.queue_depth:
            if obs.is_enabled():
                obs.count("server.shed")
            await self._reply(
                writer,
                lock,
                error_response(rid, "overloaded", "admission queue is full; retry later"),
            )
            return
        start = time.perf_counter()
        self._waiting += 1
        self._note_in_flight()
        await self._slots.acquire()
        self._waiting -= 1
        self._executing += 1
        try:
            body = await self._execute(op, frame)
            message = ok_response(rid, op, body)
        except (ValueError, KeyError, TypeError, RuntimeError, FrameError) as exc:
            if obs.is_enabled():
                obs.count("server.errors")
            message = error_response(rid, "bad_request", str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            if obs.is_enabled():
                obs.count("server.errors")
            message = error_response(rid, "internal", str(exc))
        finally:
            self._executing -= 1
            self._slots.release()
            self._note_in_flight()
            if obs.is_enabled():
                obs.observe(
                    "server.request_ms", (time.perf_counter() - start) * 1000.0
                )
        await self._reply(writer, lock, message)

    async def _execute(self, op: str, frame: dict) -> dict:
        """Run one admitted query on the thread pool; returns the reply body."""
        loop = asyncio.get_event_loop()
        if op == "knn":
            request = KnnRequest.from_payload(frame)
            batch = await loop.run_in_executor(
                self._executor,
                self.engine.knn_batch,
                request.queries,
                request.options(),
            )
            return {
                "results": [r.to_payload() for r in QueryResult.from_batch(batch)],
                "elapsed_s": batch.elapsed_s,
            }
        request = RangeRequest.from_payload(frame)
        result = await loop.run_in_executor(
            self._executor, self.engine.range_query, request.query, request.radius
        )
        generation = getattr(self.engine, "generation", None)
        return {
            "result": QueryResult.from_knn(result, generation=generation).to_payload()
        }

    def _stats_body(self) -> dict:
        """The ``stats`` op body: server state + a metrics snapshot."""
        body = {
            "server": {
                "in_flight": self.in_flight,
                "peak_in_flight": self.peak_in_flight,
                "max_in_flight": self.config.max_in_flight,
                "queue_depth": self.config.queue_depth,
                "shards": getattr(self.engine, "n_shards", 1),
            }
        }
        if obs.is_enabled():
            body["stats"] = obs.RunReport.collect(meta={"source": "repro.serving"}).to_dict()
        return body
