"""Stdlib-only asyncio TCP server fronting a (sharded) query engine.

:class:`ReproServer` accepts connections speaking the length-prefixed JSON
protocol of :mod:`repro.serving.protocol`, admits each query under a
two-stage admission controller, executes it on a thread pool (NumPy
verification releases the GIL, so shard scatter and many requests overlap),
and writes the response frame back — responses carry the request's ``id``,
so clients may pipeline arbitrarily many requests per connection.

**Admission control.**  ``max_in_flight`` bounds the queries *executing*
concurrently; arrivals beyond it wait in an admission queue bounded by
``queue_depth``; arrivals beyond *that* are shed immediately with an
``overloaded`` error rather than queued into unbounded memory.  The
accepted in-flight population (waiting + executing) is therefore capped at
``max_in_flight + queue_depth``, and a loopback load test can hold well
over 1000 queries in flight with the defaults.  Mutations and subscription
management (``insert``/``delete``/``subscribe``/``unsubscribe``) pass
through the same two stages.

**Continuous queries.**  A ``subscribe`` request registers a standing
query with a :class:`repro.continuous.ContinuousEvaluator` wrapping the
engine; result deltas are pushed back as ``notify`` frames on the
subscriber's connection.  Each subscription gets a bounded notify queue
(``notify_queue`` frames): when a slow consumer overflows it the delta is
*dropped* (``continuous.dropped``) and, once the queue drains, the server
re-runs the subscription and pushes one ``full`` resync notification —
consumers never see a silently-patched gap, only a replacement snapshot.
Subscriptions are tied to their connection and are torn down when it
closes.  See ``docs/continuous.md`` for the delivery guarantees.

Everything is instrumented through :mod:`repro.obs`: ``server.*`` counters
(requests, sheds, errors, connections), the ``server.in_flight`` gauge and
the ``server.request_ms`` latency histogram, whose p50/p99 render through
``repro stats``, plus the ``continuous.*`` family for the subscription
path.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .. import obs
from ..client.api import KnnRequest, RangeRequest, QueryResult
from ..continuous import ContinuousEvaluator, query_from_payload
from .protocol import (
    MAX_FRAME_BYTES,
    FrameError,
    encode_frame,
    error_response,
    ok_response,
    read_frame,
)

__all__ = ["ServerConfig", "ReproServer"]

#: ops that go through the two-stage admission controller
_ADMITTED_OPS = frozenset(
    {"knn", "range", "insert", "delete", "subscribe", "unsubscribe"}
)


@dataclass(frozen=True)
class ServerConfig:
    """Validated, immutable configuration for one :class:`ReproServer`.

    Args:
        host: interface to bind (loopback by default).
        port: TCP port; 0 picks a free one (read it back from
            :attr:`ReproServer.port` after start).
        max_in_flight: queries executing concurrently on the thread pool.
        queue_depth: admitted queries allowed to *wait* for an execution
            slot; arrivals beyond this are shed with an ``overloaded``
            error.
        workers: thread-pool size for query execution (defaults to
            ``max_in_flight``).
        max_frame_bytes: per-frame size cap for both directions.
        notify_queue: per-subscription buffered push frames; a consumer
            lagging beyond this drops deltas and gets a ``full`` resync
            once it catches up.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_in_flight: int = 64
    queue_depth: int = 2048
    workers: "Optional[int]" = None
    max_frame_bytes: int = MAX_FRAME_BYTES
    notify_queue: int = 256

    def __post_init__(self):
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 (or None)")
        if self.notify_queue < 1:
            raise ValueError("notify_queue must be >= 1")


class _Channel:
    """One subscription's server-side delivery state (per connection)."""

    __slots__ = ("sid", "queue", "lagged", "task")

    def __init__(self, queue: "asyncio.Queue"):
        self.sid: "Optional[str]" = None
        self.queue = queue
        self.lagged = False
        self.task: "Optional[asyncio.Task]" = None


class ReproServer:
    """One engine behind one TCP listener — start, serve, stop.

    ``engine`` is anything with the engine query surface (``knn_batch`` +
    ``range_query``): a :class:`repro.index.SeriesDatabase`, a
    :class:`repro.storage.DiskBackedDatabase`, a
    :class:`repro.serving.ShardedEngine`, or a pre-built
    :class:`repro.continuous.ContinuousEvaluator` wrapping one of those
    (pass the evaluator to serve a durable subscription registry).  Reads
    never mutate the engine; ``insert``/``delete`` requests do, routed
    through the evaluator so standing subscriptions see every change.
    """

    def __init__(self, engine, config: "Optional[ServerConfig]" = None):
        if isinstance(engine, ContinuousEvaluator):
            self._continuous: "Optional[ContinuousEvaluator]" = engine
            engine = engine.target
        else:
            self._continuous = None
        self.engine = engine
        self.config = config if config is not None else ServerConfig()
        self.port: "Optional[int]" = None
        self.peak_in_flight = 0
        self._server: "Optional[asyncio.base_events.Server]" = None
        self._executor: "Optional[ThreadPoolExecutor]" = None
        self._slots: "Optional[asyncio.Semaphore]" = None
        self._waiting = 0
        self._executing = 0

    @property
    def continuous(self) -> ContinuousEvaluator:
        """The evaluator behind mutation and subscription ops (lazy)."""
        if self._continuous is None:
            self._continuous = ContinuousEvaluator(self.engine)
        return self._continuous

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and create the execution pool."""
        workers = self.config.workers or self.config.max_in_flight
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._slots = asyncio.Semaphore(self.config.max_in_flight)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled (``repro serve`` wraps this)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the listener and shut the execution pool down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    @property
    def in_flight(self) -> int:
        """Accepted queries currently waiting or executing."""
        return self._waiting + self._executing

    # -- connection handling -------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        """Read frames for one connection; each request runs as its own task."""
        if obs.is_enabled():
            obs.count("server.connections")
        write_lock = asyncio.Lock()
        tasks: "set[asyncio.Task]" = set()
        channels: "Dict[str, _Channel]" = {}
        try:
            while True:
                try:
                    frame = await read_frame(reader, self.config.max_frame_bytes)
                except FrameError:
                    break  # protocol violation: drop the connection
                if frame is None:
                    break
                task = asyncio.ensure_future(
                    self._handle_request(frame, writer, write_lock, channels)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except asyncio.CancelledError:
            pass  # loop teardown: the connection dies with the server
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            for channel in list(channels.values()):
                await self._close_channel(channel)
            if channels and self._continuous is not None:
                loop = asyncio.get_event_loop()
                for sid in channels:
                    # subscriptions die with their connection
                    await loop.run_in_executor(
                        self._executor, self._continuous.unsubscribe, sid
                    )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- push-frame delivery -----------------------------------------------
    def _enqueue(self, channel: _Channel, note) -> None:
        """Queue one notification for the drainer (event-loop thread only)."""
        try:
            channel.queue.put_nowait(note)
        except asyncio.QueueFull:
            channel.lagged = True
            if obs.is_enabled():
                obs.count("continuous.dropped")

    async def _drain(self, channel: _Channel, writer, lock: asyncio.Lock) -> None:
        """Deliver one subscription's queued notifications in order."""
        loop = asyncio.get_event_loop()
        while True:
            note = await channel.queue.get()
            await self._reply(
                writer,
                lock,
                {
                    "op": "notify",
                    "ok": True,
                    "subscription_id": channel.sid,
                    "notification": note.to_payload(),
                },
            )
            if channel.lagged and channel.queue.empty():
                # consumer caught up after drops: replace its state wholesale
                channel.lagged = False
                await loop.run_in_executor(
                    self._executor, self.continuous.refresh, channel.sid
                )

    async def _close_channel(self, channel: _Channel) -> None:
        if channel.task is not None:
            channel.task.cancel()
            try:
                await channel.task
            except (asyncio.CancelledError, Exception):
                pass

    async def _reply(self, writer, lock: asyncio.Lock, message: dict) -> None:
        frame = encode_frame(message, self.config.max_frame_bytes)
        async with lock:
            writer.write(frame)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; nothing to deliver to

    def _note_in_flight(self) -> None:
        population = self.in_flight
        if population > self.peak_in_flight:
            self.peak_in_flight = population
        if obs.is_enabled():
            obs.gauge_set("server.in_flight", population)

    async def _handle_request(
        self, frame: dict, writer, lock: asyncio.Lock, channels: "Dict[str, _Channel]"
    ) -> None:
        """Dispatch one request frame and write its response."""
        rid = frame.get("id")
        op = frame.get("op")
        if obs.is_enabled():
            obs.count("server.requests")
        if op == "ping":
            await self._reply(writer, lock, ok_response(rid, op, {"pong": True}))
            return
        if op == "stats":
            await self._reply(writer, lock, ok_response(rid, op, self._stats_body()))
            return
        if op not in _ADMITTED_OPS:
            if obs.is_enabled():
                obs.count("server.errors")
            await self._reply(
                writer, lock, error_response(rid, "bad_request", f"unknown op {op!r}")
            )
            return
        # two-stage admission: bounded executing + bounded waiting, then shed
        if self._waiting >= self.config.queue_depth:
            if obs.is_enabled():
                obs.count("server.shed")
            await self._reply(
                writer,
                lock,
                error_response(rid, "overloaded", "admission queue is full; retry later"),
            )
            return
        start = time.perf_counter()
        self._waiting += 1
        self._note_in_flight()
        await self._slots.acquire()
        self._waiting -= 1
        self._executing += 1
        try:
            body = await self._execute(op, frame, writer, lock, channels)
            message = ok_response(rid, op, body)
        except (ValueError, KeyError, TypeError, RuntimeError, FrameError) as exc:
            if obs.is_enabled():
                obs.count("server.errors")
            message = error_response(rid, "bad_request", str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            if obs.is_enabled():
                obs.count("server.errors")
            message = error_response(rid, "internal", str(exc))
        finally:
            self._executing -= 1
            self._slots.release()
            self._note_in_flight()
            if obs.is_enabled():
                obs.observe(
                    "server.request_ms", (time.perf_counter() - start) * 1000.0
                )
        await self._reply(writer, lock, message)

    async def _execute(
        self, op: str, frame: dict, writer, lock: asyncio.Lock, channels
    ) -> dict:
        """Run one admitted request on the thread pool; returns the reply body."""
        loop = asyncio.get_event_loop()
        if op == "knn":
            request = KnnRequest.from_payload(frame)
            batch = await loop.run_in_executor(
                self._executor,
                self.engine.knn_batch,
                request.queries,
                request.options(),
            )
            return {
                "results": [r.to_payload() for r in QueryResult.from_batch(batch)],
                "elapsed_s": batch.elapsed_s,
            }
        if op == "range":
            request = RangeRequest.from_payload(frame)
            result = await loop.run_in_executor(
                self._executor, self.engine.range_query, request.query, request.radius
            )
            generation = getattr(self.engine, "generation", None)
            return {
                "result": QueryResult.from_knn(result, generation=generation).to_payload()
            }
        if op == "insert":
            series = np.asarray(frame["series"], dtype=float)
            gid = await loop.run_in_executor(
                self._executor, self.continuous.insert, series
            )
            return {"series_id": int(gid), "generation": self._generation_body()}
        if op == "delete":
            deleted = await loop.run_in_executor(
                self._executor, self.continuous.delete, int(frame["series_id"])
            )
            return {"deleted": bool(deleted), "generation": self._generation_body()}
        if op == "unsubscribe":
            sid = str(frame["subscription_id"])
            channel = channels.pop(sid, None)
            if channel is not None:
                await self._close_channel(channel)
            dropped = await loop.run_in_executor(
                self._executor, self.continuous.unsubscribe, sid
            )
            return {"unsubscribed": bool(dropped)}
        # subscribe: register the standing query and start its drainer
        query = query_from_payload(frame["query"])
        channel = _Channel(asyncio.Queue(self.config.notify_queue))

        def sink(note):
            loop.call_soon_threadsafe(self._enqueue, channel, note)

        sid = await loop.run_in_executor(
            self._executor, self.continuous.subscribe, query, sink
        )
        channel.sid = sid
        channels[sid] = channel
        channel.task = asyncio.ensure_future(self._drain(channel, writer, lock))
        return {"subscription_id": sid}

    def _generation_body(self):
        generation = getattr(self.engine, "generation", None)
        return list(generation) if isinstance(generation, tuple) else generation

    def _stats_body(self) -> dict:
        """The ``stats`` op body: server state + a metrics snapshot."""
        body = {
            "server": {
                "in_flight": self.in_flight,
                "peak_in_flight": self.peak_in_flight,
                "max_in_flight": self.config.max_in_flight,
                "queue_depth": self.config.queue_depth,
                "shards": getattr(self.engine, "n_shards", 1),
                "subscriptions": (
                    len(self._continuous.registry)
                    if self._continuous is not None
                    else 0
                ),
            }
        }
        if obs.is_enabled():
            body["stats"] = obs.RunReport.collect(meta={"source": "repro.serving"}).to_dict()
        return body
