"""Dataset complexity statistics.

Quantifies the shape properties that decide which reduction method wins
where (the archive_tour example's narrative): plateau-heavy signals favour
constant segments, trending/smooth signals favour lines, and high-entropy
noise defeats every low-budget representation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SeriesProfile", "profile_series", "profile_dataset"]


@dataclass(frozen=True)
class SeriesProfile:
    """Complexity measures of one series."""

    turning_points: float  # fraction of interior points that are local extrema
    plateau_fraction: float  # fraction of near-zero first differences
    trend_strength: float  # |correlation with time|
    spectral_entropy: float  # normalised entropy of the power spectrum (0..1)


def profile_series(series: np.ndarray, plateau_tolerance: float = 0.05) -> SeriesProfile:
    """Compute the complexity profile of a single series."""
    series = np.asarray(series, dtype=float)
    n = series.shape[0]
    if n < 3:
        raise ValueError("profiling needs at least three points")
    diffs = np.diff(series)

    signs = np.sign(diffs)
    interior_turns = np.sum(signs[1:] * signs[:-1] < 0)
    turning_points = float(interior_turns) / max(n - 2, 1)

    scale = np.abs(diffs).mean() + 1e-12
    plateau_fraction = float(np.mean(np.abs(diffs) < plateau_tolerance * scale + 1e-12))

    t = np.arange(n, dtype=float)
    if series.std() < 1e-12:
        trend_strength = 0.0
    else:
        trend_strength = float(abs(np.corrcoef(t, series)[0, 1]))

    spectrum = np.abs(np.fft.rfft(series - series.mean())) ** 2
    total = spectrum.sum()
    if total <= 0 or spectrum.shape[0] < 2:
        spectral_entropy = 0.0
    else:
        p = spectrum / total
        p = p[p > 0]
        spectral_entropy = float(-(p * np.log(p)).sum() / np.log(spectrum.shape[0]))

    return SeriesProfile(
        turning_points=turning_points,
        plateau_fraction=plateau_fraction,
        trend_strength=trend_strength,
        spectral_entropy=spectral_entropy,
    )


def profile_dataset(data: np.ndarray, plateau_tolerance: float = 0.05) -> SeriesProfile:
    """Mean profile over the rows of a ``(count, n)`` dataset."""
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError("profile_dataset expects a (count, n) array")
    profiles = [profile_series(row, plateau_tolerance) for row in data]
    return SeriesProfile(
        turning_points=float(np.mean([p.turning_points for p in profiles])),
        plateau_fraction=float(np.mean([p.plateau_fraction for p in profiles])),
        trend_strength=float(np.mean([p.trend_strength for p in profiles])),
        spectral_entropy=float(np.mean([p.spectral_entropy for p in profiles])),
    )
