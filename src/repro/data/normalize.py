"""Series conditioning shared by the archive and the benches."""

from __future__ import annotations

import numpy as np

__all__ = ["z_normalize", "resample_to_length"]


def z_normalize(series: np.ndarray, epsilon: float = 1e-12) -> np.ndarray:
    """Zero-mean, unit-variance normalisation (the UCR convention)."""
    series = np.asarray(series, dtype=float)
    std = series.std()
    if std < epsilon:
        return series - series.mean()
    return (series - series.mean()) / std


def resample_to_length(series: np.ndarray, length: int) -> np.ndarray:
    """Linear-interpolation resampling to ``length`` points.

    The paper fixes every evaluated series to length 1024; real UCR datasets
    have assorted native lengths, so the archive resamples the same way.
    """
    series = np.asarray(series, dtype=float)
    if length < 1:
        raise ValueError("length must be positive")
    if series.shape[0] == length:
        return series.copy()
    old = np.linspace(0.0, 1.0, series.shape[0])
    new = np.linspace(0.0, 1.0, length)
    return np.interp(new, old, series)
