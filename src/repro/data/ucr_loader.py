"""Loader for real UCR archive files.

This build ships a synthetic archive (the real one is not redistributable),
but adopters who *have* the UCR2018 download can point the library at it:
UCR distributes each dataset as ``<Name>_TRAIN.tsv`` / ``<Name>_TEST.tsv``
with one series per line, the class label first, values tab-separated.
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np

from .archive import Dataset
from .labeled import LabeledDataset
from .normalize import resample_to_length, z_normalize

__all__ = ["load_ucr_tsv", "load_ucr_dataset"]

PathLike = Union[str, pathlib.Path]


def load_ucr_tsv(path: PathLike) -> "tuple[np.ndarray, np.ndarray]":
    """Parse one UCR ``.tsv`` file into ``(labels, series_matrix)``.

    Labels are re-coded to contiguous integers starting at zero, in sorted
    order of the original label values.
    """
    path = pathlib.Path(path)
    raw = np.loadtxt(path, delimiter="\t", ndmin=2)
    if raw.shape[1] < 2:
        raise ValueError(f"{path} does not look like a UCR tsv (label + values)")
    original = raw[:, 0]
    classes = {value: code for code, value in enumerate(sorted(set(original.tolist())))}
    labels = np.array([classes[value] for value in original.tolist()], dtype=int)
    return labels, raw[:, 1:]


def load_ucr_dataset(
    directory: PathLike,
    name: str,
    length: "int | None" = None,
    normalize: bool = True,
) -> LabeledDataset:
    """Load ``<directory>/<name>/<name>_TRAIN.tsv`` (+ ``_TEST.tsv``).

    Args:
        directory: root of the extracted UCR archive.
        name: dataset name (its folder and file prefix).
        length: optional resampling length (the paper uses 1024).
        normalize: z-normalise every series (the UCR convention).
    """
    directory = pathlib.Path(directory)
    train_path = directory / name / f"{name}_TRAIN.tsv"
    test_path = directory / name / f"{name}_TEST.tsv"
    if not train_path.exists():
        raise FileNotFoundError(f"no UCR train file at {train_path}")
    train_labels, train = load_ucr_tsv(train_path)
    if test_path.exists():
        test_labels, test = load_ucr_tsv(test_path)
    else:
        test_labels, test = np.array([], dtype=int), np.empty((0, train.shape[1]))

    def condition(matrix: np.ndarray) -> np.ndarray:
        rows = []
        for row in matrix:
            row = row[np.isfinite(row)]  # UCR marks missing values as NaN
            if length is not None:
                row = resample_to_length(row, length)
            rows.append(z_normalize(row) if normalize else row)
        if not rows:
            return matrix
        if len({row.shape[0] for row in rows}) > 1:
            raise ValueError(
                f"{name} has variable-length series; pass `length=` to resample"
            )
        return np.stack(rows)

    return LabeledDataset(
        name=name,
        family="ucr",
        data=condition(train),
        labels=train_labels,
        queries=condition(test),
        query_labels=test_labels,
    )
