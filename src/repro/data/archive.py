"""A deterministic synthetic stand-in for the UCR2018 archive.

The paper evaluates the 117 equal-length datasets of UCR2018 (the archive
holds 128; eleven are variable-length), fixing each series to length 1024
with 100 series per dataset and 5 query series.  The real archive cannot be
bundled, so this module generates a *synthetic archive with the same
shape*: the same 117 dataset names, each mapped to the shape family that
matches its real-world signal type, with per-dataset parameters and seeds
derived deterministically from the dataset name.  Homogeneity within a
dataset — the property behind the paper's MBR-overlap observation — is
preserved because all series of a dataset share one generator and one
parameter draw.  See DESIGN.md, substitution 1.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterator

import numpy as np

from .generators import generate
from .normalize import resample_to_length, z_normalize

__all__ = ["DATASETS", "Dataset", "UCRLikeArchive"]

_CONTOUR = (
    "Adiac ArrowHead BeetleFly BirdChicken DiatomSizeReduction "
    "DistalPhalanxOutlineAgeGroup DistalPhalanxOutlineCorrect DistalPhalanxTW "
    "FaceAll FaceFour FacesUCR FiftyWords Fish HandOutlines Herring "
    "MedicalImages MiddlePhalanxOutlineAgeGroup MiddlePhalanxOutlineCorrect "
    "MiddlePhalanxTW MixedShapesRegularTrain MixedShapesSmallTrain OSULeaf "
    "PhalangesOutlinesCorrect ProximalPhalanxOutlineAgeGroup "
    "ProximalPhalanxOutlineCorrect ProximalPhalanxTW ShapesAll SwedishLeaf "
    "Symbols WordSynonyms Yoga"
)
_SPIKE = (
    "CinCECGTorso ECG200 ECG5000 ECGFiveDays NonInvasiveFetalECGThorax1 "
    "NonInvasiveFetalECGThorax2 TwoLeadECG Lightning2 Lightning7 "
    "PigAirwayPressure PigArtPressure PigCVP"
)
_STEP = (
    "EOGHorizontalSignal EOGVerticalSignal InsectEPGRegularTrain "
    "InsectEPGSmallTrain HouseTwenty Trace ToeSegmentation1 ToeSegmentation2"
)
_DEVICE = (
    "Computers ElectricDevices LargeKitchenAppliances RefrigerationDevices "
    "ScreenType SmallKitchenAppliances FreezerRegularTrain FreezerSmallTrain ACSF1"
)
_OSCILLATORY = (
    "InsectWingbeatSound Phoneme SemgHandGenderCh2 SemgHandMovementCh2 "
    "SemgHandSubjectCh2 Haptics InlineSkate"
)
_PERIODIC = (
    "ItalyPowerDemand PowerCons Chinatown MelbournePedestrian DodgerLoopDay "
    "DodgerLoopGame DodgerLoopWeekend Crop StarLightCurves"
)
_SPECTRUM = "Beef Coffee EthanolLevel Ham Meat OliveOil Strawberry Wine Fungi Rock"
_PATTERN = (
    "BME CBF Mallat ShapeletSim SmoothSubspace SyntheticControl TwoPatterns "
    "UMD Plane ChlorineConcentration"
)
_WALK = (
    "Car CricketX CricketY CricketZ GunPoint GunPointAgeSpan "
    "GunPointMaleVersusFemale GunPointOldVersusYoung UWaveGestureLibraryAll "
    "UWaveGestureLibraryX UWaveGestureLibraryY UWaveGestureLibraryZ Worms "
    "WormsTwoClass Wafer FordA FordB MoteStrain SonyAIBORobotSurface1 "
    "SonyAIBORobotSurface2 Earthquakes"
)

#: the 117 equal-length UCR2018 dataset names, each tagged with a shape family
DATASETS: "Dict[str, str]" = {}
for _names, _family in (
    (_CONTOUR, "contour"),
    (_SPIKE, "spike"),
    (_STEP, "step"),
    (_DEVICE, "device"),
    (_OSCILLATORY, "oscillatory"),
    (_PERIODIC, "periodic"),
    (_SPECTRUM, "spectrum"),
    (_PATTERN, "pattern"),
    (_WALK, "walk"),
):
    for _name in _names.split():
        DATASETS[_name] = _family


@dataclass(frozen=True)
class Dataset:
    """One loaded dataset: indexed collection plus held-out queries."""

    name: str
    family: str
    data: np.ndarray  # shape (n_series, length)
    queries: np.ndarray  # shape (n_queries, length)

    @property
    def length(self) -> int:
        return int(self.data.shape[1])


class UCRLikeArchive:
    """Deterministic loader for the synthetic archive.

    Args:
        length: series length after resampling (paper: 1024).
        n_series: indexed series per dataset (paper: 100).
        n_queries: held-out query series per dataset (paper: 5).
        base_seed: global seed; combined with a per-name CRC so every
            dataset is reproducible in isolation.
    """

    def __init__(
        self,
        length: int = 1024,
        n_series: int = 100,
        n_queries: int = 5,
        base_seed: int = 2022,
    ):
        if length < 4 or n_series < 1 or n_queries < 0:
            raise ValueError("invalid archive dimensions")
        self.length = length
        self.n_series = n_series
        self.n_queries = n_queries
        self.base_seed = base_seed

    # ------------------------------------------------------------------
    @property
    def names(self) -> "list[str]":
        return sorted(DATASETS)

    def family_of(self, name: str) -> str:
        """Shape family a dataset belongs to."""
        return DATASETS[name]

    def one_per_family(self) -> "list[str]":
        """A stratified subset: the alphabetically-first dataset per family."""
        chosen: "Dict[str, str]" = {}
        for name in self.names:
            chosen.setdefault(DATASETS[name], name)
        return sorted(chosen.values())

    def __iter__(self) -> "Iterator[str]":
        return iter(self.names)

    def __len__(self) -> int:
        return len(DATASETS)

    # ------------------------------------------------------------------
    def load(self, name: str) -> Dataset:
        """Generate the dataset deterministically from its name."""
        if name not in DATASETS:
            raise KeyError(f"unknown dataset {name!r}")
        family = DATASETS[name]
        seed = (self.base_seed * 1_000_003 + zlib.crc32(name.encode())) % (2**32)
        rng = np.random.default_rng(seed)
        # a per-dataset "native" length, resampled to the archive length the
        # way the paper resamples real UCR data to 1024
        native = int(rng.integers(max(self.length // 4, 32), self.length * 2))
        params = {"harmonics": int(rng.integers(3, 9)), "days": int(rng.integers(2, 7))}
        total = self.n_series + self.n_queries
        rows = np.empty((total, self.length))
        for i in range(total):
            raw = generate(family, rng, native, params)
            rows[i] = z_normalize(resample_to_length(raw, self.length))
        return Dataset(
            name=name,
            family=family,
            data=rows[: self.n_series],
            queries=rows[self.n_series :],
        )
