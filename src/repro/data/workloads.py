"""Query workload generators: perturbation models for robustness studies.

The paper queries each dataset with five held-out series.  Real query
workloads are messier: sensors add noise, alignment drifts, readings drop
out.  These perturbations let the benches measure how gracefully each
method/index degrades, at controlled severities.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = ["PERTURBATIONS", "perturb", "query_workload"]


def _noise(series: np.ndarray, rng: np.random.Generator, severity: float) -> np.ndarray:
    """Additive Gaussian noise scaled to the series' own spread."""
    return series + rng.normal(scale=severity * series.std() + 1e-12, size=series.shape)


def _shift(series: np.ndarray, rng: np.random.Generator, severity: float) -> np.ndarray:
    """Circular time shift by up to ``severity`` of the length."""
    n = series.shape[0]
    max_shift = max(int(severity * n), 1)
    return np.roll(series, int(rng.integers(-max_shift, max_shift + 1)))


def _scale(series: np.ndarray, rng: np.random.Generator, severity: float) -> np.ndarray:
    """Amplitude scaling within ``1 +- severity``."""
    return series * float(rng.uniform(1.0 - severity, 1.0 + severity))


def _dropout(series: np.ndarray, rng: np.random.Generator, severity: float) -> np.ndarray:
    """A contiguous stretch replaced by its linear interpolation (sensor gap)."""
    n = series.shape[0]
    gap = max(int(severity * n), 2)
    start = int(rng.integers(1, max(n - gap - 1, 2)))
    out = series.copy()
    out[start : start + gap] = np.linspace(
        series[start - 1], series[min(start + gap, n - 1)], gap
    )
    return out


def _warp(series: np.ndarray, rng: np.random.Generator, severity: float) -> np.ndarray:
    """Smooth local time warping (resampling along a jittered grid)."""
    n = series.shape[0]
    knots = 6
    jitter = rng.normal(scale=severity / knots, size=knots)
    grid = np.linspace(0, 1, knots) + jitter
    grid[0], grid[-1] = 0.0, 1.0
    grid = np.maximum.accumulate(grid)
    warped_positions = np.interp(np.linspace(0, 1, n), np.linspace(0, 1, knots), grid)
    return np.interp(warped_positions, np.linspace(0, 1, n), series)


PERTURBATIONS: "Dict[str, Callable]" = {
    "noise": _noise,
    "shift": _shift,
    "scale": _scale,
    "dropout": _dropout,
    "warp": _warp,
}


def perturb(
    series: np.ndarray, kind: str, severity: float, seed: int = 0
) -> np.ndarray:
    """Apply one named perturbation at the given severity (0 = untouched)."""
    if kind not in PERTURBATIONS:
        raise ValueError(f"unknown perturbation {kind!r}; choose from {sorted(PERTURBATIONS)}")
    if severity < 0:
        raise ValueError("severity must be non-negative")
    series = np.asarray(series, dtype=float)
    if severity == 0:
        return series.copy()
    rng = np.random.default_rng(seed)
    return PERTURBATIONS[kind](series, rng, severity)


def query_workload(
    base_queries: np.ndarray,
    kind: str,
    severity: float,
    seed: int = 0,
) -> np.ndarray:
    """Perturb every row of a query matrix, deterministically per row."""
    base_queries = np.asarray(base_queries, dtype=float)
    return np.stack(
        [
            perturb(row, kind, severity, seed=seed * 10_007 + i)
            for i, row in enumerate(base_queries)
        ]
    )
