"""Shape-family generators for the synthetic UCR-like archive.

Each generator produces one raw series of a given length from a seeded
``numpy.random.Generator`` plus a per-dataset parameter dict.  The families
cover the qualitative regimes that drive the paper's findings:

* smooth, slowly-varying shapes (image contours, spectrographs, motions)
  that adaptive methods compress extremely well;
* bursty / spiky signals (ECG beats, sensor faults) where adaptive segment
  boundaries pay off most;
* regularly changing signals (EOG saccades, device switching) that the paper
  singles out as the worst case for adaptive reduction time;
* oscillatory and periodic loads.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = ["FAMILIES", "generate"]


def _random_walk(rng: np.random.Generator, n: int, params: Dict) -> np.ndarray:
    drift = params.get("drift", 0.0)
    return np.cumsum(rng.normal(loc=drift, scale=1.0, size=n))


def _smooth_contour(rng: np.random.Generator, n: int, params: Dict) -> np.ndarray:
    """Closed-contour style: a handful of low harmonics (Adiac, Fish, Yoga...)."""
    harmonics = params.get("harmonics", 5)
    t = np.linspace(0, 2 * np.pi, n)
    series = np.zeros(n)
    for k in range(1, harmonics + 1):
        amplitude = rng.normal() / k
        phase = rng.uniform(0, 2 * np.pi)
        series += amplitude * np.sin(k * t + phase)
    return series


def _spike_train(rng: np.random.Generator, n: int, params: Dict) -> np.ndarray:
    """ECG-like: baseline with sharp localised beats."""
    n_beats = params.get("beats", max(n // 96, 2))
    width = params.get("width", max(n // 128, 2))
    series = rng.normal(scale=0.05, size=n)
    positions = np.sort(rng.choice(np.arange(width, n - width), size=n_beats, replace=False))
    template = np.exp(-0.5 * (np.linspace(-3, 3, 2 * width + 1)) ** 2)
    for pos in positions:
        amplitude = rng.uniform(2.0, 5.0) * rng.choice([-1.0, 1.0], p=[0.2, 0.8])
        lo, hi = pos - width, pos + width + 1
        series[lo:hi] += amplitude * template
    return series


def _step_drift(rng: np.random.Generator, n: int, params: Dict) -> np.ndarray:
    """EOG-like: piecewise plateaus joined by fast saccades, plus slow drift."""
    n_steps = params.get("steps", max(n // 64, 4))
    boundaries = np.sort(rng.choice(np.arange(1, n), size=n_steps, replace=False))
    levels = np.cumsum(rng.normal(scale=2.0, size=n_steps + 1))
    series = np.empty(n)
    start = 0
    for boundary, level in zip(list(boundaries) + [n], levels):
        series[start:boundary] = level
        start = boundary
    drift = np.linspace(0, rng.normal(scale=1.0), n)
    return series + drift + rng.normal(scale=0.05, size=n)


def _device_pulses(rng: np.random.Generator, n: int, params: Dict) -> np.ndarray:
    """Appliance-style on/off square pulses with varying duty cycles."""
    series = np.zeros(n)
    t = 0
    level = 0.0
    while t < n:
        duration = int(rng.integers(max(n // 48, 2), max(n // 8, 4)))
        level = 0.0 if level else rng.uniform(1.0, 4.0)
        series[t : t + duration] = level
        t += duration
    return series + rng.normal(scale=0.05, size=n)


def _oscillatory(rng: np.random.Generator, n: int, params: Dict) -> np.ndarray:
    """Sound/EMG-style: band-limited oscillation with amplitude modulation."""
    cycles = params.get("cycles", 12)
    t = np.linspace(0, 2 * np.pi * cycles, n)
    envelope = 1.0 + 0.5 * np.sin(np.linspace(0, 2 * np.pi, n) * rng.integers(1, 4))
    return envelope * np.sin(t + rng.uniform(0, 2 * np.pi)) + rng.normal(scale=0.2, size=n)


def _periodic_load(rng: np.random.Generator, n: int, params: Dict) -> np.ndarray:
    """Power/traffic-style daily cycles with weekday variation."""
    days = params.get("days", 4)
    t = np.linspace(0, 2 * np.pi * days, n)
    base = np.sin(t - np.pi / 2) + 0.4 * np.sin(2 * t + rng.uniform(0, np.pi))
    return base * rng.uniform(0.8, 1.2) + rng.normal(scale=0.1, size=n)


def _bump_spectrum(rng: np.random.Generator, n: int, params: Dict) -> np.ndarray:
    """Spectrograph-style: smooth baseline with Gaussian absorption bumps."""
    n_bumps = params.get("bumps", 6)
    x = np.linspace(0, 1, n)
    series = 0.5 * x + rng.normal(scale=0.02, size=n)
    for _ in range(n_bumps):
        center = rng.uniform(0.05, 0.95)
        width = rng.uniform(0.01, 0.06)
        series += rng.uniform(0.5, 2.0) * np.exp(-0.5 * ((x - center) / width) ** 2)
    return series


def _pattern_prototypes(rng: np.random.Generator, n: int, params: Dict) -> np.ndarray:
    """Simulated-benchmark style (CBF/TwoPatterns): ramps, cylinders, bells."""
    kind = rng.integers(3)
    onset, duration = rng.integers(n // 8, n // 3), rng.integers(n // 3, n // 2)
    series = rng.normal(scale=0.2, size=n)
    window = slice(onset, min(onset + duration, n))
    ramp = np.linspace(0, 1, len(range(*window.indices(n))))
    if kind == 0:  # cylinder
        series[window] += 3.0
    elif kind == 1:  # bell
        series[window] += 3.0 * ramp
    else:  # funnel
        series[window] += 3.0 * (1 - ramp)
    return series


FAMILIES: "Dict[str, Callable[[np.random.Generator, int, Dict], np.ndarray]]" = {
    "walk": _random_walk,
    "contour": _smooth_contour,
    "spike": _spike_train,
    "step": _step_drift,
    "device": _device_pulses,
    "oscillatory": _oscillatory,
    "periodic": _periodic_load,
    "spectrum": _bump_spectrum,
    "pattern": _pattern_prototypes,
}


def generate(family: str, rng: np.random.Generator, n: int, params: "Dict | None" = None) -> np.ndarray:
    """Generate one raw series of the given family."""
    if family not in FAMILIES:
        raise ValueError(f"unknown family {family!r}; choose from {sorted(FAMILIES)}")
    return FAMILIES[family](rng, n, params or {})
