"""Class-labeled synthetic datasets for the classification workload.

The paper motivates dimensionality reduction with k-NN classification over
UCR data.  Real UCR datasets carry class labels; the synthetic stand-in
produces them by drawing one *prototype* per class from the dataset's shape
family and deriving every instance from its class prototype through small
amplitude scaling, time jitter, and additive noise — so nearest-neighbour
structure genuinely reflects class membership.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .archive import DATASETS, UCRLikeArchive
from .generators import generate
from .normalize import resample_to_length, z_normalize

__all__ = ["LabeledDataset", "load_labeled"]


@dataclass(frozen=True)
class LabeledDataset:
    """A train/test split with integer class labels."""

    name: str
    family: str
    data: np.ndarray
    labels: np.ndarray
    queries: np.ndarray
    query_labels: np.ndarray

    @property
    def n_classes(self) -> int:
        return int(self.labels.max()) + 1

    @property
    def length(self) -> int:
        return int(self.data.shape[1])


def _instance(prototype: np.ndarray, rng: np.random.Generator, noise: float) -> np.ndarray:
    """One class instance: scaled, time-jittered, noisy copy of the prototype."""
    n = prototype.shape[0]
    scale = rng.uniform(0.9, 1.1)
    shift = int(rng.integers(-n // 50 - 1, n // 50 + 2))
    warped = np.roll(prototype, shift) * scale
    return z_normalize(warped + rng.normal(scale=noise, size=n))


def load_labeled(
    name: str,
    n_classes: int = 3,
    n_per_class: int = 10,
    n_queries_per_class: int = 2,
    length: int = 256,
    noise: float = 0.25,
    base_seed: int = 2022,
) -> LabeledDataset:
    """Build a labeled dataset from one archive entry's shape family."""
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}")
    if n_classes < 2:
        raise ValueError("a classification dataset needs at least two classes")
    family = DATASETS[name]
    archive = UCRLikeArchive(length=length, n_series=1, n_queries=0, base_seed=base_seed)
    seed_rng = np.random.default_rng(
        archive.base_seed * 7_919 + sum(map(ord, name)) * 31 + n_classes
    )

    prototypes = []
    for _ in range(n_classes):
        native = int(seed_rng.integers(max(length // 2, 32), length * 2))
        raw = generate(family, seed_rng, native)
        prototypes.append(z_normalize(resample_to_length(raw, length)))

    train, train_labels, test, test_labels = [], [], [], []
    for label, prototype in enumerate(prototypes):
        for _ in range(n_per_class):
            train.append(_instance(prototype, seed_rng, noise))
            train_labels.append(label)
        for _ in range(n_queries_per_class):
            test.append(_instance(prototype, seed_rng, noise))
            test_labels.append(label)

    order = seed_rng.permutation(len(train))
    return LabeledDataset(
        name=name,
        family=family,
        data=np.asarray(train)[order],
        labels=np.asarray(train_labels)[order],
        queries=np.asarray(test),
        query_labels=np.asarray(test_labels),
    )
