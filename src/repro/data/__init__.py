"""Synthetic UCR2018-like archive, shape-family generators, and normalisation."""

from .archive import DATASETS, Dataset, UCRLikeArchive
from .generators import FAMILIES, generate
from .labeled import LabeledDataset, load_labeled
from .normalize import resample_to_length, z_normalize
from .stats import SeriesProfile, profile_dataset, profile_series
from .ucr_loader import load_ucr_dataset, load_ucr_tsv
from .workloads import PERTURBATIONS, perturb, query_workload

__all__ = [
    "DATASETS",
    "Dataset",
    "UCRLikeArchive",
    "LabeledDataset",
    "load_labeled",
    "FAMILIES",
    "generate",
    "z_normalize",
    "resample_to_length",
    "PERTURBATIONS",
    "perturb",
    "query_workload",
    "SeriesProfile",
    "profile_series",
    "profile_dataset",
    "load_ucr_tsv",
    "load_ucr_dataset",
]
