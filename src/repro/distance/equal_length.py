"""Lower bounds for the equal-length and non-segment methods.

* ``dist_pla`` / ``dist_paa`` — aligned Dist_S sums over identical layouts
  (Chen et al. 2007; Keogh et al. 2001).  Both are unconditional lower bounds
  because both representations are least-squares projections onto the *same*
  block subspace.
* ``dist_cheby`` — triangle-inequality bound for Chebyshev representations.
  Cai & Ng's bound relies on sampling at Gauss-Chebyshev nodes; for fits over
  uniformly sampled series the provable route is

      ||Q - C|| >= ||Q-check - C-check|| - ||Q - Q-check|| - ||C - C-check||,

  using the stored residual norms.  Looser, but never a false dismissal.
* ``triangle_lower_bound`` — the same construction for any method that
  records its reconstruction residual (used for PAALM as well).
"""

from __future__ import annotations

import numpy as np

from ..core.segment import LinearSegmentation
from ..reduction.cheby import CHEBY, ChebyshevRepresentation
from .segmentwise import aligned_distance

__all__ = ["dist_pla", "dist_paa", "dist_cheby", "triangle_lower_bound"]


def dist_pla(rep_q: LinearSegmentation, rep_c: LinearSegmentation) -> float:
    """Dist_PLA (Chen et al. 2007): aligned per-segment distance, a true LB."""
    return aligned_distance(rep_q, rep_c)


def dist_paa(rep_q: LinearSegmentation, rep_c: LinearSegmentation) -> float:
    """Dist_PAA (Keogh et al. 2001): sqrt(sum l_i (mean_q - mean_c)^2)."""
    return aligned_distance(rep_q, rep_c)


def triangle_lower_bound(
    recon_q: np.ndarray,
    recon_c: np.ndarray,
    residual_q: float,
    residual_c: float,
) -> float:
    """``max(0, ||recon_q - recon_c|| - residual_q - residual_c)``."""
    gap = float(np.linalg.norm(np.asarray(recon_q) - np.asarray(recon_c)))
    return max(0.0, gap - float(residual_q) - float(residual_c))


def dist_cheby(
    reducer: CHEBY, rep_q: ChebyshevRepresentation, rep_c: ChebyshevRepresentation
) -> float:
    """Triangle-inequality lower bound between Chebyshev representations."""
    if rep_q.n != rep_c.n:
        raise ValueError("representations cover different series lengths")
    return triangle_lower_bound(
        reducer.reconstruct(rep_q),
        reducer.reconstruct(rep_c),
        rep_q.residual_norm,
        rep_c.residual_norm,
    )
