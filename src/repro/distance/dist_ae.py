"""Dist_AE — APCA's tight approximate distance (no lower-bound guarantee).

The raw query is compared point-by-point against the *reconstruction* of the
stored representation.  It approximates the Euclidean distance closely but
can exceed it (the reconstruction error inflates the gap), so GEMINI search
built on it loses the no-false-dismissal property — the behaviour the paper's
Fig. 10 example illustrates (``Dist_AE = 20 > Dist = 17``).
"""

from __future__ import annotations

import numpy as np

from ..core.segment import LinearSegmentation
from .euclidean import euclidean

__all__ = ["dist_ae"]


def dist_ae(query: np.ndarray, rep_c: LinearSegmentation) -> float:
    """Approximate Euclidean distance between raw query and reconstruction."""
    query = np.asarray(query, dtype=float)
    if query.shape[0] != rep_c.length:
        raise ValueError(
            f"series length {query.shape[0]} does not match representation {rep_c.length}"
        )
    return euclidean(query, rep_c.reconstruct())
