"""Dist_LB — the guaranteed lower bound for adaptive representations.

Generalises APCA's ``Dist_LB`` (Keogh et al. 2001) to linear segments: the
*raw* query is projected (least-squares line fit) onto the data
representation's own segment windows, and the aligned Dist_S sum is taken.

Guarantee: writing ``P`` for the block-diagonal projector onto the span of
``{1, t}`` over each of C's windows, ``C-hat`` satisfies ``P C = C-check``
(the representation *is* the projection), and

    ||Q - C||^2 = ||P(Q - C)||^2 + ||(I-P)(Q - C)||^2 >= ||P Q - P C||^2,

so Dist_LB never exceeds the true Euclidean distance — the no-false-dismissal
property GEMINI requires.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..core.linefit import SeriesStats
from ..core.segment import LinearSegmentation, Segment
from .segmentwise import dist_s

__all__ = ["dist_lb", "project_onto_layout"]


def project_onto_layout(
    series: np.ndarray,
    layout: LinearSegmentation,
    stats: "SeriesStats | None" = None,
) -> LinearSegmentation:
    """Least-squares projection of a raw series onto another rep's windows.

    The projection must target the *same* model class per window as the
    representation, or the Pythagorean argument breaks: a constant-model
    representation (APCA/PAA/PAALM — every slope exactly zero) gets window
    means; a linear-model one gets window line fits.

    ``stats`` may carry the series' precomputed :class:`SeriesStats` so a
    query projected onto many candidate layouts builds its prefix sums
    once; the fit arithmetic is unchanged, so results are identical.
    """
    series = np.asarray(series, dtype=float)
    if series.shape[0] != layout.length:
        raise ValueError(
            f"series length {series.shape[0]} does not match layout length {layout.length}"
        )
    if stats is None:
        stats = SeriesStats(series)
    constant_model = all(seg.a == 0.0 for seg in layout)
    if constant_model:
        pieces = []
        for seg in layout:
            sum_y, _ = stats.window_sums(seg.start, seg.end)
            pieces.append(
                Segment(start=seg.start, end=seg.end, a=0.0, b=sum_y / seg.length)
            )
        return LinearSegmentation(pieces)
    return LinearSegmentation(
        [Segment.fit(stats, seg.start, seg.end) for seg in layout]
    )


def dist_lb(
    query: np.ndarray,
    rep_c: LinearSegmentation,
    stats: "SeriesStats | None" = None,
) -> float:
    """Guaranteed lower bound of ``Dist(Q, C)`` from C's representation only.

    ``stats`` optionally carries the query's precomputed
    :class:`SeriesStats` (see :func:`project_onto_layout`).
    """
    obs.count("dist.lb.calls")
    projected = project_onto_layout(query, rep_c, stats=stats)
    total = sum(dist_s(sq, sc) for sq, sc in zip(projected, rep_c))
    return float(np.sqrt(max(total, 0.0)))
