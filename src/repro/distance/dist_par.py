"""Dist_PAR — the paper's partition-based distance (Definition 5.1).

Both adaptive-length representations are refined onto the union ``R`` of
their right endpoints; after the partition the segments align pairwise and
Dist_PAR is the square root of the summed Dist_S values — equivalently, the
Euclidean distance between the two full reconstructions.

Tightness: Dist_PAR uses both reconstructions at full fidelity, so it is
always at least as tight as Dist_LB (paper Sec. A.6) and far tighter than
APCA-style bounds on heterogeneous layouts.

Lower-bounding caveat (documented deviation from the paper): the proof in
paper Sec. A.5 implicitly treats each partitioned piece as the least-squares
fit of the underlying sub-window, but partitioning only *restricts* the
parent line.  Two very close series reduced with *different* segment layouts
can therefore yield ``Dist_PAR`` marginally above the true Euclidean
distance (take ``Q == C`` with different segmentations: the true distance is
0 while the reconstructions differ).  In practice segmentations of similar
series agree and Dist_PAR behaves as a tight near-lower bound — the property
the DBCH-tree exploits; :func:`repro.distance.dist_lb.dist_lb` is the
measure with the unconditional guarantee.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..core.segment import LinearSegmentation

__all__ = ["dist_par"]


def _segment_arrays(rep: LinearSegmentation):
    """Per-representation ``(ends, starts, a, b)`` arrays, cached on the object.

    The DBCH-tree evaluates Dist_PAR between the same representations many
    times over (hull recomputation, subtree adjustment, query descent), so
    the flat views amortise to one extraction per representation lifetime.
    """
    arrays = getattr(rep, "_par_arrays", None)
    if arrays is None:
        n = rep.n_segments
        ends = np.fromiter((seg.end for seg in rep), dtype=np.int64, count=n)
        starts = np.fromiter((seg.start for seg in rep), dtype=np.int64, count=n)
        slopes = np.fromiter((seg.a for seg in rep), dtype=np.float64, count=n)
        intercepts = np.fromiter((seg.b for seg in rep), dtype=np.float64, count=n)
        arrays = (ends, starts, slopes, intercepts)
        try:
            rep._par_arrays = arrays
        except AttributeError:
            pass
    return arrays


def dist_par(rep_q: LinearSegmentation, rep_c: LinearSegmentation) -> float:
    """Dist_PAR between two adaptive-length representations (Eq. (13)).

    Computed lane-wise over the union partition with every arithmetic step
    in the same order as the scalar ``partition``/``dist_s`` route, so the
    result is bit-identical to refining both representations and summing
    per-segment distances (the property tests assert this).
    """
    obs.count("dist.par.calls")
    if rep_q.length != rep_c.length:
        raise ValueError(
            f"representations cover different lengths: {rep_q.length} vs {rep_c.length}"
        )
    ends_q, starts_q, a_q, b_q = _segment_arrays(rep_q)
    ends_c, starts_c, a_c, b_c = _segment_arrays(rep_c)
    union = np.union1d(ends_q, ends_c)
    piece_starts = np.empty_like(union)
    piece_starts[0] = 0
    piece_starts[1:] = union[:-1] + 1
    # first segment whose end >= piece end == LinearSegmentation.segment_index_at
    jq = np.searchsorted(ends_q, union)
    jc = np.searchsorted(ends_c, union)
    # Segment.restrict: the slope is unchanged, the intercept shifts to the
    # piece start — a * (start - seg.start) + b, in that operation order
    da = a_q[jq] - a_c[jc]
    db = (a_q[jq] * (piece_starts - starts_q[jq]) + b_q[jq]) - (
        a_c[jc] * (piece_starts - starts_c[jc]) + b_c[jc]
    )
    lengths = union - piece_starts + 1
    values = (
        lengths * (lengths - 1) * (2 * lengths - 1) / 6.0 * da * da
        + lengths * (lengths - 1) * da * db
        + lengths * db * db
    )
    total = sum(values.tolist())
    return float(np.sqrt(max(total, 0.0)))
