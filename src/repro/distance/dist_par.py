"""Dist_PAR — the paper's partition-based distance (Definition 5.1).

Both adaptive-length representations are refined onto the union ``R`` of
their right endpoints; after the partition the segments align pairwise and
Dist_PAR is the square root of the summed Dist_S values — equivalently, the
Euclidean distance between the two full reconstructions.

Tightness: Dist_PAR uses both reconstructions at full fidelity, so it is
always at least as tight as Dist_LB (paper Sec. A.6) and far tighter than
APCA-style bounds on heterogeneous layouts.

Lower-bounding caveat (documented deviation from the paper): the proof in
paper Sec. A.5 implicitly treats each partitioned piece as the least-squares
fit of the underlying sub-window, but partitioning only *restricts* the
parent line.  Two very close series reduced with *different* segment layouts
can therefore yield ``Dist_PAR`` marginally above the true Euclidean
distance (take ``Q == C`` with different segmentations: the true distance is
0 while the reconstructions differ).  In practice segmentations of similar
series agree and Dist_PAR behaves as a tight near-lower bound — the property
the DBCH-tree exploits; :func:`repro.distance.dist_lb.dist_lb` is the
measure with the unconditional guarantee.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..core.segment import LinearSegmentation
from .segmentwise import dist_s

__all__ = ["dist_par"]


def dist_par(rep_q: LinearSegmentation, rep_c: LinearSegmentation) -> float:
    """Dist_PAR between two adaptive-length representations (Eq. (13))."""
    obs.count("dist.par.calls")
    if rep_q.length != rep_c.length:
        raise ValueError(
            f"representations cover different lengths: {rep_q.length} vs {rep_c.length}"
        )
    union = sorted(set(rep_q.right_endpoints) | set(rep_c.right_endpoints))
    q_ref = rep_q.partition(union)
    c_ref = rep_c.partition(union)
    total = sum(dist_s(sq, sc) for sq, sc in zip(q_ref, c_ref))
    return float(np.sqrt(max(total, 0.0)))
