"""Per-method distance dispatch used by the k-NN engine and the DBCH-tree.

A :class:`DistanceSuite` packages, for one reduction method, the distances
indexing needs:

* ``query_bound(ctx, rep)`` — a (lower-bounding where the method admits one)
  estimate of ``Dist(Q, C)`` given the query context and a stored
  representation, used to decide whether a candidate's raw series must be
  fetched (this is what pruning power counts).
* ``pairwise(rep_a, rep_b)`` — a representation-to-representation distance,
  used by the DBCH-tree for its hulls, node splitting and branch picking.
* optionally ``stack`` / ``query_bound_batch`` — a vectorised form of
  ``query_bound`` over a whole collection at once, used by
  :class:`repro.engine.QueryEngine` to evaluate every candidate bound of a
  query in one NumPy pass instead of one Python call per entry.  Only the
  aligned equal-length methods (PLA, PAA, PAALM) admit a stacked layout;
  adaptive-length methods fall back to the scalar bound.

``mode`` arguments accept :class:`repro.kinds.DistanceMode` (preferred) or
the legacy strings ``'par'`` / ``'lb'`` / ``'ae'`` with a
``DeprecationWarning``; unknown values raise immediately at suite-build time
rather than deep inside the first query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Union

import numpy as np

from ..kinds import DistanceMode, coerce_distance_mode
from ..reduction.base import Reducer
from .dist_ae import dist_ae
from .dist_lb import dist_lb
from .dist_par import dist_par
from .equal_length import dist_cheby, dist_paa, dist_pla
from .segmentwise import aligned_distance

__all__ = ["QueryContext", "DistanceSuite", "make_suite", "ADAPTIVE_METHODS"]

#: the methods the paper treats as adaptive-length (Dist_PAR family)
ADAPTIVE_METHODS = ("SAPLA", "APLA", "APCA")


@dataclass(frozen=True)
class QueryContext:
    """Everything the distance functions may need about the query."""

    series: np.ndarray
    representation: Any


@dataclass(frozen=True)
class DistanceSuite:
    """Distances for one method (see module docstring)."""

    method: str
    mode: str
    query_bound: Callable[[QueryContext, Any], float]
    pairwise: Callable[[Any, Any], float]
    #: build a stacked layout of many representations for the batch bound
    stack: "Optional[Callable[[Sequence[Any]], Any]]" = None
    #: vectorised ``query_bound`` over a stacked layout; returns one bound
    #: per stacked representation
    query_bound_batch: "Optional[Callable[[QueryContext, Any], np.ndarray]]" = None


# ----------------------------------------------------------------------
# stacked (vectorised) aligned bounds
# ----------------------------------------------------------------------
def _stack_aligned(representations: "Sequence[Any]") -> "tuple":
    """Pack aligned segmentations into ``(ends, A, B, c3, c2, c1)`` arrays.

    All representations must share one segment layout (the aligned methods
    guarantee this for equal-length collections); the per-segment Dist_S
    coefficients ``c3 = l(l-1)(2l-1)/6``, ``c2 = l(l-1)`` and ``c1 = l``
    are precomputed once.
    """
    first = representations[0]
    ends = first.right_endpoints
    for rep in representations:
        if rep.right_endpoints != ends:
            raise ValueError("stacked representations must share one segment layout")
    slopes = np.array([[seg.a for seg in rep] for rep in representations], dtype=float)
    intercepts = np.array(
        [[seg.b for seg in rep] for rep in representations], dtype=float
    )
    lengths = np.array([seg.length for seg in first], dtype=float)
    c3 = lengths * (lengths - 1) * (2 * lengths - 1) / 6.0
    c2 = lengths * (lengths - 1)
    return ends, slopes, intercepts, c3, c2, lengths


def _aligned_bound_batch(ctx: QueryContext, stacked: "tuple") -> np.ndarray:
    """Vectorised Dist_PLA / Dist_PAA against every stacked representation."""
    ends, slopes, intercepts, c3, c2, c1 = stacked
    rep_q = ctx.representation
    if rep_q.right_endpoints != ends:
        raise ValueError("query representation does not match the stacked layout")
    qa = np.array([seg.a for seg in rep_q], dtype=float)
    qb = np.array([seg.b for seg in rep_q], dtype=float)
    da = qa[None, :] - slopes
    db = qb[None, :] - intercepts
    total = (c3 * da * da + c2 * da * db + c1 * db * db).sum(axis=1)
    return np.sqrt(np.maximum(total, 0.0))


def make_suite(
    reducer: Reducer, mode: "Union[DistanceMode, str]" = DistanceMode.PAR
) -> DistanceSuite:
    """Build the distance suite for ``reducer``.

    ``mode`` selects the adaptive-method query bound: :class:`DistanceMode`
    members (``PAR`` — Dist_PAR, the paper's tight measure; ``LB`` —
    Dist_LB, the unconditional lower bound; ``AE`` — Dist_AE, tight but not
    lower-bounding) or their legacy string spellings (deprecated).
    Equal-length and symbolic methods ignore ``mode``.  Validation is eager:
    an unknown mode raises here, never mid-query.
    """
    mode = coerce_distance_mode(mode)
    name = reducer.name
    if name in ADAPTIVE_METHODS:
        if mode is DistanceMode.PAR:
            query = lambda ctx, rep: dist_par(ctx.representation, rep)
        elif mode is DistanceMode.LB:
            query = lambda ctx, rep: dist_lb(ctx.series, rep)
        else:
            query = lambda ctx, rep: dist_ae(ctx.series, rep)
        return DistanceSuite(
            method=name, mode=mode.value, query_bound=query, pairwise=dist_par
        )
    if name == "PLA":
        return DistanceSuite(
            method=name,
            mode="aligned",
            query_bound=lambda ctx, rep: dist_pla(ctx.representation, rep),
            pairwise=dist_pla,
            stack=_stack_aligned,
            query_bound_batch=_aligned_bound_batch,
        )
    if name in ("PAA", "PAALM"):
        return DistanceSuite(
            method=name,
            mode="aligned",
            query_bound=lambda ctx, rep: dist_paa(ctx.representation, rep),
            pairwise=dist_paa,
            stack=_stack_aligned,
            query_bound_batch=_aligned_bound_batch,
        )
    if name == "CHEBY":
        return DistanceSuite(
            method=name,
            mode="triangle",
            query_bound=lambda ctx, rep: dist_cheby(reducer, ctx.representation, rep),
            pairwise=lambda a, b: dist_cheby(reducer, a, b),
        )
    if name == "SAX":
        return DistanceSuite(
            method=name,
            mode="mindist",
            query_bound=lambda ctx, rep: reducer.mindist(ctx.representation, rep),
            pairwise=reducer.mindist,
        )
    raise ValueError(f"no distance suite for method {name!r}")
