"""Per-method distance dispatch used by the k-NN engine and the DBCH-tree.

A :class:`DistanceSuite` packages, for one reduction method, the two
distances indexing needs:

* ``query_bound(ctx, rep)`` — a (lower-bounding where the method admits one)
  estimate of ``Dist(Q, C)`` given the query context and a stored
  representation, used to decide whether a candidate's raw series must be
  fetched (this is what pruning power counts).
* ``pairwise(rep_a, rep_b)`` — a representation-to-representation distance,
  used by the DBCH-tree for its hulls, node splitting and branch picking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..reduction.base import Reducer
from .dist_ae import dist_ae
from .dist_lb import dist_lb
from .dist_par import dist_par
from .equal_length import dist_cheby, dist_paa, dist_pla
from .segmentwise import aligned_distance

__all__ = ["QueryContext", "DistanceSuite", "make_suite", "ADAPTIVE_METHODS"]

#: the methods the paper treats as adaptive-length (Dist_PAR family)
ADAPTIVE_METHODS = ("SAPLA", "APLA", "APCA")


@dataclass(frozen=True)
class QueryContext:
    """Everything the distance functions may need about the query."""

    series: np.ndarray
    representation: Any


@dataclass(frozen=True)
class DistanceSuite:
    """Distances for one method (see module docstring)."""

    method: str
    mode: str
    query_bound: Callable[[QueryContext, Any], float]
    pairwise: Callable[[Any, Any], float]


def make_suite(reducer: Reducer, mode: str = "par") -> DistanceSuite:
    """Build the distance suite for ``reducer``.

    ``mode`` selects the adaptive-method query bound: ``'par'`` (Dist_PAR,
    the paper's tight measure), ``'lb'`` (Dist_LB, the unconditional lower
    bound) or ``'ae'`` (Dist_AE, tight but not lower-bounding).  Equal-length
    and symbolic methods ignore ``mode``.
    """
    name = reducer.name
    if name in ADAPTIVE_METHODS:
        if mode == "par":
            query = lambda ctx, rep: dist_par(ctx.representation, rep)
        elif mode == "lb":
            query = lambda ctx, rep: dist_lb(ctx.series, rep)
        elif mode == "ae":
            query = lambda ctx, rep: dist_ae(ctx.series, rep)
        else:
            raise ValueError(f"unknown adaptive distance mode: {mode!r}")
        return DistanceSuite(method=name, mode=mode, query_bound=query, pairwise=dist_par)
    if name == "PLA":
        return DistanceSuite(
            method=name,
            mode="aligned",
            query_bound=lambda ctx, rep: dist_pla(ctx.representation, rep),
            pairwise=dist_pla,
        )
    if name in ("PAA", "PAALM"):
        return DistanceSuite(
            method=name,
            mode="aligned",
            query_bound=lambda ctx, rep: dist_paa(ctx.representation, rep),
            pairwise=dist_paa,
        )
    if name == "CHEBY":
        return DistanceSuite(
            method=name,
            mode="triangle",
            query_bound=lambda ctx, rep: dist_cheby(reducer, ctx.representation, rep),
            pairwise=lambda a, b: dist_cheby(reducer, a, b),
        )
    if name == "SAX":
        return DistanceSuite(
            method=name,
            mode="mindist",
            query_bound=lambda ctx, rep: reducer.mindist(ctx.representation, rep),
            pairwise=reducer.mindist,
        )
    raise ValueError(f"no distance suite for method {name!r}")
