"""Euclidean distance between raw time series (paper's ground-truth measure)."""

from __future__ import annotations

import numpy as np

__all__ = ["euclidean", "euclidean_squared"]


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """The Euclidean distance ``Dist(Q, C)`` between two equal-length series."""
    return float(np.sqrt(euclidean_squared(a, b)))


def euclidean_squared(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance (avoids the square root in hot loops)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"series lengths differ: {a.shape} vs {b.shape}")
    diff = a - b
    return float(np.dot(diff, diff))
