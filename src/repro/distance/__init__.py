"""Distance measures: Euclidean ground truth, Dist_S/Dist_PAR/Dist_LB/Dist_AE
for adaptive representations, and the equal-length / symbolic lower bounds."""

from .cascade import BoundCascade, PairwiseAccel, QueryCascade, make_pairwise_accel
from .dist_ae import dist_ae
from .dtw import dtw, dtw_envelope, lb_keogh
from .dist_lb import dist_lb, project_onto_layout
from .dist_par import dist_par
from .equal_length import dist_cheby, dist_paa, dist_pla, triangle_lower_bound
from .euclidean import euclidean, euclidean_squared
from .segmentwise import aligned_distance, dist_s
from .suite import ADAPTIVE_METHODS, DistanceSuite, QueryContext, make_suite

__all__ = [
    "euclidean",
    "euclidean_squared",
    "dist_s",
    "aligned_distance",
    "dist_par",
    "dist_lb",
    "project_onto_layout",
    "dist_ae",
    "dist_pla",
    "dist_paa",
    "dist_cheby",
    "triangle_lower_bound",
    "DistanceSuite",
    "QueryContext",
    "make_suite",
    "ADAPTIVE_METHODS",
    "BoundCascade",
    "QueryCascade",
    "PairwiseAccel",
    "make_pairwise_accel",
    "dtw",
    "dtw_envelope",
    "lb_keogh",
]
