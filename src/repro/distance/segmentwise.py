"""Per-segment distance Dist_S (paper Eq. (12)) and its summation.

For two line segments sharing the same window (same start and right
endpoint), the squared Euclidean distance between their reconstructions has
the closed form

    Dist_S = l(l-1)(2l-1)/6 * da^2 + l(l-1) * da*db + l * db^2

with ``da = q_a - c_a`` and ``db = q_b - c_b``.  Constant segments (APCA,
PAA) are the ``a = 0`` special case.
"""

from __future__ import annotations

import numpy as np

from ..core.segment import LinearSegmentation, Segment

__all__ = ["dist_s", "aligned_distance"]


def dist_s(seg_q: Segment, seg_c: Segment) -> float:
    """Squared reconstruction distance of two segments over the same window."""
    if (seg_q.start, seg_q.end) != (seg_c.start, seg_c.end):
        raise ValueError(
            f"segments cover different windows: [{seg_q.start},{seg_q.end}] "
            f"vs [{seg_c.start},{seg_c.end}]"
        )
    l = seg_q.length
    da = seg_q.a - seg_c.a
    db = seg_q.b - seg_c.b
    return l * (l - 1) * (2 * l - 1) / 6.0 * da * da + l * (l - 1) * da * db + l * db * db


def aligned_distance(rep_q: LinearSegmentation, rep_c: LinearSegmentation) -> float:
    """Euclidean distance between two reconstructions with *identical* layouts.

    This is the Dist_PLA / Dist_PAA equal-length lower bound when both
    representations are least-squares fits over the same windows.
    """
    if rep_q.right_endpoints != rep_c.right_endpoints:
        raise ValueError("representations have different segment layouts")
    total = sum(dist_s(sq, sc) for sq, sc in zip(rep_q, rep_c))
    return float(np.sqrt(max(total, 0.0)))
