"""Cascaded bound evaluation — cheap dominated tiers ahead of the exact bound.

The hot cost of every search path is the per-candidate ``query_bound`` call
(Dist_PAR's union partition, Dist_LB's projection, CHEBY's reconstruction).
A :class:`BoundCascade` puts a *cheapest-first* tier in front of it: an O(1)
norm-difference bound that is **dominated** by the method's own bound —
never above the value ``query_bound`` would return — so a candidate whose
cheap tier already exceeds the pruning threshold can be skipped with the
exact same outcome the full evaluation would have had.  Results therefore
stay bit-identical to the uncascaded search: the cascade only ever avoids
work whose conclusion is already forced.

Tier per distance mode (the one cheap tier each mode admits):

====================  ==================================================
mode                  cheap dominated tier (``<=`` the mode's bound)
====================  ==================================================
``par``               ``| ||Q-check|| - ||C-check|| |`` — reverse triangle
                      inequality on the reconstruction distance Dist_PAR
                      computes in closed form.
``lb``                ``max(0, ||C-check|| - ||Q||)`` — projection onto
                      C's windows contracts the query norm, so
                      ``Dist_LB >= ||C-check|| - ||P_C Q|| >= ||C-check|| - ||Q||``.
``ae``                ``| ||Q|| - ||C-check|| |`` — reverse triangle on
                      the raw-vs-reconstruction Euclidean distance.
``aligned``           same as ``par`` (aligned Dist_S sums are exactly the
                      reconstruction distance).
``triangle``          ``max(0, | ||Q-check|| - ||C-check|| | - res_Q - res_C)``.
``mindist``           none — SAX MINDIST has no norm form; the cascade
                      reports itself unsupported and callers fall back.
====================  ==================================================

Floating-point contract: cheap tiers are computed through *different*
arithmetic than the exact bounds, so a mathematical ``cheap <= bound`` could
be violated by rounding.  Every cheap key is therefore **deflated** by
``CANCEL_REL`` of its operand scale (plus ``GUARD_ABS``), a margin four
orders of magnitude above double rounding error; comparisons against
thresholds then stay the search's ordinary strict ``>`` with no special
cases.  Skips only ever happen when the exact bound would certainly have
been above the threshold too.

Reconstruction norms are cached directly on representation objects
(``LinearSegmentation`` is a plain class; ``ChebyshevRepresentation`` is a
frozen dataclass without ``__slots__``), so they are computed once per
stored series across all queries, snapshots and worker forks.

:func:`make_pairwise_accel` packages the same norm tier for the DBCH-tree's
*build-time* distance scans (branch picking, hull recomputation, split
seeding), where the pairwise representation distance is the unit of work.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .. import obs
from ..core.linefit import SeriesStats
from ..core.segment import LinearSegmentation
from .dist_lb import dist_lb

__all__ = [
    "CANCEL_REL",
    "GUARD_ABS",
    "BoundCascade",
    "QueryCascade",
    "PairwiseAccel",
    "make_pairwise_accel",
    "reconstruction_norm",
]

#: relative deflation applied to every cheap key, as a fraction of the
#: operand scale (sum of the norms entering the subtraction).  Double
#: rounding drift across the different arithmetic routes is ~1e-13 of the
#: operand scale; 1e-9 leaves four orders of magnitude of safety.
CANCEL_REL = 1e-9

#: absolute deflation floor, for operands near zero.
GUARD_ABS = 1e-12

#: distance-suite modes that admit a cheap dominated tier.
_SUPPORTED_MODES = ("par", "lb", "ae", "aligned", "triangle")

#: modes whose pairwise distance is the reconstruction L2 distance — a
#: pseudometric, so triangle-inequality *upper* bounds are valid too.
_RECON_PAIRWISE_MODES = ("par", "lb", "ae", "aligned")


def _segmentation_norm(rep: LinearSegmentation) -> float:
    """``||C-check||`` in closed form: sum of per-segment Dist_S against 0."""
    total = 0.0
    for seg in rep:
        l = seg.length
        a = seg.a
        b = seg.b
        total += l * (l - 1) * (2 * l - 1) / 6.0 * a * a + l * (l - 1) * a * b + l * b * b
    return math.sqrt(max(total, 0.0))


def reconstruction_norm(rep, reducer=None) -> float:
    """The L2 norm of ``rep``'s reconstruction, cached on the object.

    Segment representations use the Dist_S closed form; anything else
    (Chebyshev) reconstructs through ``reducer`` once and caches both the
    reconstruction and its norm.
    """
    cached = getattr(rep, "_cascade_norm", None)
    if cached is not None:
        return cached
    if isinstance(rep, LinearSegmentation):
        value = _segmentation_norm(rep)
        rep._cascade_norm = value
        return value
    recon = cached_reconstruction(rep, reducer)
    value = float(np.linalg.norm(recon))
    object.__setattr__(rep, "_cascade_norm", value)
    return value


def cached_reconstruction(rep, reducer) -> np.ndarray:
    """``rep``'s reconstruction through ``reducer``, cached on the object."""
    recon = getattr(rep, "_cascade_recon", None)
    if recon is None:
        recon = np.asarray(reducer.reconstruct(rep), dtype=float)
        object.__setattr__(rep, "_cascade_recon", recon)
    return recon


def _deflate(value: float, scale: float) -> float:
    """A certainly-not-above-the-exact-bound version of ``value``."""
    return max(0.0, value - CANCEL_REL * scale - GUARD_ABS)


class _Collection:
    """Per-collection arrays for the vectorised cheap tier."""

    __slots__ = ("sids", "norms", "residuals")

    def __init__(self, sids, norms, residuals):
        self.sids = sids
        self.norms = norms
        self.residuals = residuals


class BoundCascade:
    """Cheapest-first bound evaluation for one distance suite.

    One instance per database; hand out a :class:`QueryCascade` per query
    via :meth:`for_query`.  ``supported`` is ``False`` for methods with no
    dominated cheap tier (SAX) — callers then keep their uncascaded path.
    """

    def __init__(self, suite, reducer):
        self.suite = suite
        self.reducer = reducer
        self.mode = suite.mode
        self.supported = suite.mode in _SUPPORTED_MODES
        #: ``(cache_key, _Collection)`` for the current entry set
        self._collection = None

    # ------------------------------------------------------------------
    def rep_norm(self, rep) -> float:
        """Cached reconstruction norm of a stored representation."""
        return reconstruction_norm(rep, self.reducer)

    def collection(self, db) -> "Optional[_Collection]":
        """Norm (and residual) arrays over ``db.entries``, cached per version.

        The cache key is the database generation plus the entry count, both
        stable while a snapshot is pinned; per-representation norms are
        additionally cached on the representations themselves, so a rebuild
        after a mutation only pays for the new entries.
        """
        if not self.supported:
            return None
        entries = db.entries
        key = (getattr(db, "generation", None), len(entries))
        cached = self._collection
        if cached is not None and cached[0] == key:
            return cached[1]
        norms = np.empty(len(entries), dtype=float)
        residuals = None
        if self.mode == "triangle":
            residuals = np.empty(len(entries), dtype=float)
            for i, entry in enumerate(entries):
                norms[i] = self.rep_norm(entry.representation)
                residuals[i] = float(entry.representation.residual_norm)
        else:
            for i, entry in enumerate(entries):
                norms[i] = self.rep_norm(entry.representation)
        sids = np.array([e.series_id for e in entries], dtype=np.int64)
        collection = _Collection(sids, norms, residuals)
        self._collection = (key, collection)
        return collection

    def for_query(self, ctx) -> "Optional[QueryCascade]":
        """A per-query cascade, or ``None`` when the method has no tier."""
        if not self.supported:
            return None
        return QueryCascade(self, ctx)


class QueryCascade:
    """One query's cascade: cheap tiers, exact refinement, and counters.

    Invariant (the whole point): every value :meth:`cheap`,
    :meth:`cheap_keys` or :meth:`node_lower` returns is ``<=`` the value the
    corresponding exact evaluation (:meth:`refine` / ``db.node_distance``)
    returns *as floating point*, thanks to the deflation margin.  Search
    code may therefore compare cheap keys against thresholds exactly as it
    compares exact keys.

    Counter increments accumulate in plain ints and flush once per query
    (:meth:`flush`), keeping the hot path free of registry lookups.
    """

    __slots__ = (
        "cascade",
        "ctx",
        "mode",
        "n_cheap",
        "n_refine",
        "n_node_cheap",
        "n_node_refine",
        "_q_norm",
        "_q_residual",
        "_q_stats",
    )

    def __init__(self, cascade: BoundCascade, ctx):
        self.cascade = cascade
        self.ctx = ctx
        self.mode = cascade.mode
        self.n_cheap = 0
        self.n_refine = 0
        self.n_node_cheap = 0
        self.n_node_refine = 0
        self._q_residual = 0.0
        if self.mode in ("lb", "ae"):
            self._q_norm = float(np.linalg.norm(np.asarray(ctx.series, dtype=float)))
        elif self.mode == "triangle":
            self._q_norm = cascade.rep_norm(ctx.representation)
            self._q_residual = float(ctx.representation.residual_norm)
        else:  # par / aligned
            self._q_norm = cascade.rep_norm(ctx.representation)
        #: lazily-built SeriesStats for Dist_LB refinement
        self._q_stats = None

    # -- cheap tier -----------------------------------------------------
    def cheap(self, rep) -> float:
        """Deflated cheap lower tier for one candidate representation."""
        self.n_cheap += 1
        qn = self._q_norm
        cn = self.cascade.rep_norm(rep)
        if self.mode == "lb":
            return _deflate(cn - qn, cn + qn)
        if self.mode == "triangle":
            residuals = self._q_residual + float(rep.residual_norm)
            return _deflate(abs(qn - cn) - residuals, qn + cn + residuals)
        return _deflate(abs(qn - cn), qn + cn)

    def cheap_keys(self, collection: _Collection) -> np.ndarray:
        """Vectorised :meth:`cheap` over a whole collection."""
        self.n_cheap += len(collection.norms)
        qn = self._q_norm
        cn = collection.norms
        if self.mode == "lb":
            raw = cn - qn
            scale = cn + qn
        elif self.mode == "triangle":
            residuals = self._q_residual + collection.residuals
            raw = np.abs(qn - cn) - residuals
            scale = qn + cn + residuals
        else:
            raw = np.abs(qn - cn)
            scale = qn + cn
        return np.maximum(raw - CANCEL_REL * scale - GUARD_ABS, 0.0)

    # -- exact tier -----------------------------------------------------
    def refine(self, rep) -> float:
        """The method's exact ``query_bound``, bit-identical to the suite's.

        Dist_LB reuses the query's :class:`SeriesStats` across candidates —
        the projection arithmetic is unchanged, only the prefix-sum build is
        amortised — every other mode calls the suite's bound directly.
        """
        self.n_refine += 1
        if self.mode == "lb":
            if self._q_stats is None:
                self._q_stats = SeriesStats(np.asarray(self.ctx.series, dtype=float))
            return dist_lb(self.ctx.series, rep, stats=self._q_stats)
        return self.cascade.suite.query_bound(self.ctx, rep)

    # -- DBCH node tier -------------------------------------------------
    def node_lower(self, node) -> float:
        """Deflated lower tier of the DBCH ``node_distance``.

        ``node_distance`` is ``max(0, min(d(q,u), d(q,l)) - volume)`` (or 0
        with the query inside the hull); replacing each pairwise distance by
        its dominated norm tier can only shrink the value, and the
        inside-the-hull case yields 0 here as well.
        """
        self.n_node_cheap += 1
        hull = node.hull
        if hull is None:
            return 0.0
        if self.mode in ("lb", "ae"):
            # pairwise distances act on representations; the node tier uses
            # the query's reconstruction norm even when the entry tier uses
            # the raw norm (reconstruction_norm caches it on the rep).
            qn = self.cascade.rep_norm(self.ctx.representation)
        else:
            qn = self._q_norm
        u, l = hull
        du = self._pair_lower(qn, u)
        dl = self._pair_lower(qn, l)
        return max(0.0, min(du, dl) - node.volume)

    def _pair_lower(self, qn: float, rep) -> float:
        """Deflated lower bound of ``suite.pairwise(ctx.representation, rep)``."""
        cn = self.cascade.rep_norm(rep)
        if self.mode == "triangle":
            residuals = float(self.ctx.representation.residual_norm) + float(
                rep.residual_norm
            )
            return _deflate(abs(qn - cn) - residuals, qn + cn + residuals)
        return _deflate(abs(qn - cn), qn + cn)

    # -- accounting -----------------------------------------------------
    def flush(self) -> None:
        """Record this query's cascade counters (once, at finalisation)."""
        if not obs.is_enabled():
            return
        obs.count("cascade.queries")
        obs.count("cascade.cheap_bounds", self.n_cheap + self.n_node_cheap)
        obs.count("cascade.refines", self.n_refine + self.n_node_refine)
        obs.count("cascade.entries_skipped", max(self.n_cheap - self.n_refine, 0))
        obs.count("cascade.nodes_skipped", max(self.n_node_cheap - self.n_node_refine, 0))


class PairwiseAccel:
    """Norm tier for DBCH build-time pairwise distance scans.

    ``lower(a, b)`` is a deflated lower bound of ``distance(a, b)``;
    ``metric`` marks reconstruction-distance modes where triangle-inequality
    *upper* bounds through a shared anchor are also valid (``d(i, j) <=
    d(i, 0) + d(0, j)``), enabling the max-scan skips in hull recomputation
    and split seeding.
    """

    __slots__ = ("cascade", "metric")

    def __init__(self, cascade: BoundCascade, metric: bool):
        self.cascade = cascade
        self.metric = metric

    def lower(self, rep_a, rep_b) -> float:
        """Deflated lower bound of the suite's pairwise distance."""
        na = self.cascade.rep_norm(rep_a)
        nb = self.cascade.rep_norm(rep_b)
        if self.cascade.mode == "triangle":
            residuals = float(rep_a.residual_norm) + float(rep_b.residual_norm)
            return _deflate(abs(na - nb) - residuals, na + nb + residuals)
        return _deflate(abs(na - nb), na + nb)

    def upper(self, rep_a, rep_b) -> float:
        """Triangle upper bound of the pairwise distance through the zero
        anchor: ``d(a, b) <= d(a, 0) + d(0, b)``, where ``d(x, 0)`` is the
        representation norm (plus the residual slack in triangle mode).
        Valid only when :attr:`metric`; callers must feed it through
        :meth:`certainly_not_above`, which supplies the floating-point
        margin.
        """
        na = self.cascade.rep_norm(rep_a)
        nb = self.cascade.rep_norm(rep_b)
        if self.cascade.mode == "triangle":
            return na + nb + float(rep_a.residual_norm) + float(rep_b.residual_norm)
        return na + nb

    @staticmethod
    def certainly_not_above(upper: float, best: float) -> bool:
        """Whether a triangle upper bound proves ``d <= best`` with margin."""
        return upper * (1.0 + CANCEL_REL) + GUARD_ABS <= best


def make_pairwise_accel(suite, reducer) -> "Optional[PairwiseAccel]":
    """A :class:`PairwiseAccel` for ``suite``, or ``None`` (SAX)."""
    if suite.mode not in _SUPPORTED_MODES:
        return None
    cascade = BoundCascade(suite, reducer)
    return PairwiseAccel(cascade, metric=suite.mode in _RECON_PAIRWISE_MODES)
