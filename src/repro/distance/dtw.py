"""Dynamic Time Warping with the LB_Keogh lower bound (Rakthanmanon 2012).

The paper's evaluation is Euclidean, but its related work leans on the UCR
suite, whose similarity stack is DTW filtered by LB_Keogh — the same
filter-and-refine pattern GEMINI uses.  This module provides:

* ``dtw`` — Sakoe-Chiba banded DTW distance (O(n * band)).
* ``dtw_envelope`` — the running min/max envelope of a query.
* ``lb_keogh`` — the envelope-based lower bound of the banded DTW distance.

``repro.index.SeriesDatabase`` stays Euclidean (as in the paper);
``repro.apps.classification.KNNClassifier`` accepts ``metric='dtw'`` for the
classification workload, where DTW is the UCR convention.
"""

from __future__ import annotations

import numpy as np

__all__ = ["dtw", "dtw_envelope", "lb_keogh"]


def dtw(a: np.ndarray, b: np.ndarray, band: "int | None" = None) -> float:
    """Banded DTW distance (square-root of the summed squared alignment cost).

    Args:
        a, b: equal-length series.
        band: Sakoe-Chiba band radius; ``None`` means 10% of the length
            (the UCR default).  ``band >= n`` is unconstrained DTW.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"series lengths differ: {a.shape} vs {b.shape}")
    n = a.shape[0]
    if n == 0:
        raise ValueError("cannot align empty series")
    if band is None:
        band = max(int(0.1 * n), 1)
    band = max(int(band), 1)

    previous = np.full(n + 1, np.inf)
    previous[0] = 0.0
    current = np.empty(n + 1)
    for i in range(1, n + 1):
        current.fill(np.inf)
        lo = max(1, i - band)
        hi = min(n, i + band)
        for j in range(lo, hi + 1):
            cost = (a[i - 1] - b[j - 1]) ** 2
            current[j] = cost + min(previous[j], previous[j - 1], current[j - 1])
        previous, current = current, previous
    return float(np.sqrt(previous[n]))


def dtw_envelope(series: np.ndarray, band: "int | None" = None) -> "tuple[np.ndarray, np.ndarray]":
    """Running min/max envelope ``(lower, upper)`` over the warping band."""
    series = np.asarray(series, dtype=float)
    n = series.shape[0]
    if band is None:
        band = max(int(0.1 * n), 1)
    band = max(int(band), 1)
    lower = np.empty(n)
    upper = np.empty(n)
    for i in range(n):
        lo = max(0, i - band)
        hi = min(n, i + band + 1)
        window = series[lo:hi]
        lower[i] = window.min()
        upper[i] = window.max()
    return lower, upper


def lb_keogh(
    query: np.ndarray,
    candidate: np.ndarray,
    band: "int | None" = None,
    envelope: "tuple[np.ndarray, np.ndarray] | None" = None,
) -> float:
    """LB_Keogh: lower-bounds the banded DTW distance between the series.

    The candidate is compared against the *query's* envelope; points of the
    candidate outside the envelope must be paid by any warping path.  Pass a
    precomputed ``envelope`` to amortise it over many candidates.
    """
    query = np.asarray(query, dtype=float)
    candidate = np.asarray(candidate, dtype=float)
    if query.shape != candidate.shape:
        raise ValueError(f"series lengths differ: {query.shape} vs {candidate.shape}")
    lower, upper = envelope if envelope is not None else dtw_envelope(query, band)
    above = np.maximum(candidate - upper, 0.0)
    below = np.maximum(lower - candidate, 0.0)
    gap = above + below
    return float(np.sqrt(np.dot(gap, gap)))
