"""Multivariate time series: channel-wise reduction and exact k-NN search."""

from .reduction import MultivariateReducer, MultivariateRepresentation
from .search import MultivariateDatabase, multivariate_euclidean

__all__ = [
    "MultivariateReducer",
    "MultivariateRepresentation",
    "MultivariateDatabase",
    "multivariate_euclidean",
]
