"""Multivariate time series reduction: one base reducer per channel.

UCR's multivariate sibling (the UEA archive) stores series as ``(channels,
length)`` arrays.  Reduction applies the configured univariate method to
every channel independently — the standard construction, and the one that
keeps every per-channel guarantee intact (the multivariate Euclidean
distance is the root of the summed per-channel squares, so per-channel
lower bounds combine into a multivariate lower bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List

import numpy as np

from ..reduction.base import Reducer

__all__ = ["MultivariateRepresentation", "MultivariateReducer"]


@dataclass(frozen=True)
class MultivariateRepresentation:
    """Per-channel representations of one multivariate series."""

    channels: "List[Any]"

    @property
    def n_channels(self) -> int:
        return len(self.channels)


class MultivariateReducer:
    """Channel-wise application of a univariate reducer.

    Args:
        reducer_factory: zero-argument callable building one univariate
            reducer per channel (e.g. ``lambda: SAPLAReducer(12)``); a fresh
            instance per channel keeps stateful reducers safe.
    """

    def __init__(self, reducer_factory: "Callable[[], Reducer]"):
        probe = reducer_factory()
        if not isinstance(probe, Reducer):
            raise TypeError("reducer_factory must build Reducer instances")
        self.name = f"MV-{probe.name}"
        self.n_coefficients_per_channel = probe.n_coefficients
        self._factory = reducer_factory
        self._reducers: "List[Reducer]" = []

    def _reducer_for(self, channel: int) -> Reducer:
        while len(self._reducers) <= channel:
            self._reducers.append(self._factory())
        return self._reducers[channel]

    def transform(self, series: np.ndarray) -> MultivariateRepresentation:
        """Reduce a ``(channels, length)`` series channel by channel."""
        series = np.asarray(series, dtype=float)
        if series.ndim != 2 or series.shape[0] == 0:
            raise ValueError("multivariate series must be a (channels, length) array")
        return MultivariateRepresentation(
            channels=[
                self._reducer_for(c).transform(series[c]) for c in range(series.shape[0])
            ]
        )

    def reconstruct(self, representation: MultivariateRepresentation) -> np.ndarray:
        """Rebuild the ``(channels, length)`` approximation."""
        rows = [
            self._reducer_for(c).reconstruct(channel_rep)
            for c, channel_rep in enumerate(representation.channels)
        ]
        return np.stack(rows)

    def max_deviation(self, series: np.ndarray) -> float:
        """Largest pointwise gap across all channels."""
        series = np.asarray(series, dtype=float)
        recon = self.reconstruct(self.transform(series))
        return float(np.abs(series - recon).max())
