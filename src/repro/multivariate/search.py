"""Multivariate similarity search with per-channel lower bounds.

For ``(channels, length)`` series the Euclidean distance is

    Dist(Q, C)^2 = sum_c Dist(Q_c, C_c)^2,

so any per-channel lower bound combines into a multivariate one:
``sqrt(sum_c lb_c^2) <= Dist``.  The database below filters candidates with
that combined bound and verifies survivors on the raw arrays — GEMINI lifted
to the multivariate case.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Union

import numpy as np

from ..distance.suite import QueryContext, make_suite
from ..index.knn import KNNResult
from ..kinds import DistanceMode
from .reduction import MultivariateReducer, MultivariateRepresentation

__all__ = ["MultivariateDatabase", "multivariate_euclidean"]


def multivariate_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two ``(channels, length)`` series."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"series shapes differ: {a.shape} vs {b.shape}")
    return float(np.sqrt(((a - b) ** 2).sum()))


class MultivariateDatabase:
    """Filter-and-refine k-NN over a multivariate collection.

    Args:
        reducer: a :class:`MultivariateReducer`.
        distance_mode: per-channel query-bound mode (see
            :func:`repro.distance.make_suite`); :attr:`repro.DistanceMode.LB`
            keeps the search exact for adaptive methods.
    """

    def __init__(
        self,
        reducer: MultivariateReducer,
        distance_mode: "Union[DistanceMode, str]" = DistanceMode.LB,
    ):
        self.reducer = reducer
        self.distance_mode = distance_mode
        self.data: Optional[np.ndarray] = None
        self.representations: "List[MultivariateRepresentation]" = []
        self._suites = None

    def ingest(self, data: np.ndarray) -> None:
        """Reduce and store every series of ``data`` (count, channels, n)."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 3:
            raise ValueError("ingest expects a (count, channels, n) array")
        self.data = data
        self.representations = [self.reducer.transform(series) for series in data]
        self._suites = [
            make_suite(self.reducer._reducer_for(c), self.distance_mode)
            for c in range(data.shape[1])
        ]

    def _combined_bound(
        self, contexts: "List[QueryContext]", representation: MultivariateRepresentation
    ) -> float:
        total = 0.0
        for suite, ctx, channel_rep in zip(self._suites, contexts, representation.channels):
            bound = suite.query_bound(ctx, channel_rep)
            total += bound * bound
        return float(np.sqrt(total))

    def knn(self, query: np.ndarray, k: int) -> KNNResult:
        """k-NN with combined per-channel bounds; exact under true bounds."""
        if self.data is None:
            raise RuntimeError("ingest data before searching")
        query = np.asarray(query, dtype=float)
        if query.shape != self.data.shape[1:]:
            raise ValueError(
                f"query shape {query.shape} does not match stored {self.data.shape[1:]}"
            )
        query_rep = self.reducer.transform(query)
        contexts = [
            QueryContext(series=query[c], representation=query_rep.channels[c])
            for c in range(query.shape[0])
        ]
        bounds = sorted(
            (self._combined_bound(contexts, rep), i)
            for i, rep in enumerate(self.representations)
        )
        best: "List[tuple[float, int]]" = []
        verified = 0
        for bound, i in bounds:
            if len(best) == k and bound >= -best[0][0]:
                break
            true = multivariate_euclidean(query, self.data[i])
            verified += 1
            heapq.heappush(best, (-true, i))
            if len(best) > k:
                heapq.heappop(best)
        ranked = sorted((-d, i) for d, i in best)
        return KNNResult(
            ids=[i for _, i in ranked],
            distances=[d for d, _ in ranked],
            n_verified=verified,
            n_total=len(self.representations),
        )

    def ground_truth(self, query: np.ndarray, k: int) -> KNNResult:
        """Exact k-NN by scanning every raw multivariate series."""
        distances = [multivariate_euclidean(query, row) for row in self.data]
        order = np.argsort(distances, kind="stable")[:k]
        return KNNResult(
            ids=[int(i) for i in order],
            distances=[float(distances[i]) for i in order],
            n_verified=len(self.data),
            n_total=len(self.data),
        )
