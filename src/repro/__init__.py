"""repro — reproduction of SAPLA (EDBT 2022).

Self Adaptive Piecewise Linear Approximation, lower-bounding distance
measures for adaptive-length representations, and the DBCH-tree index for
time series similarity search, together with every baseline the paper
evaluates against (APLA, APCA, PLA, PAA, PAALM, CHEBY, SAX), the R-tree /
GEMINI k-NN substrate, a synthetic UCR2018-like archive, and the task suite
the paper's introduction motivates.

The most-used entry points are re-exported here::

    from repro import SAPLA, SeriesDatabase, UCRLikeArchive
    from repro import IndexKind, DistanceMode, QueryEngine, QueryOptions
    from repro import DurabilityOptions, FsyncPolicy

Query access goes through the :mod:`repro.client` facade —
``connect(path_or_url_or_db)`` returns one typed client for the in-process
engine, a sharded home or a running ``repro serve`` endpoint.  The free
:func:`knn` function remains as a deprecated single-query shim over it.
"""

from .core import SAPLA, LinearSegmentation, Segment, StreamingSAPLA, sapla_transform
from .data import UCRLikeArchive
from .engine import BatchResult, ExecutionMode, QueryEngine, QueryOptions
from .index import SeriesDatabase
from .kinds import DistanceMode, IndexKind
from .lifecycle.wal import DurabilityOptions, FsyncPolicy

__version__ = "1.0.0"


def knn(database, query, k: int = 1):
    """Deprecated free-function k-NN — the original pre-engine entry point.

    Routes through the :mod:`repro.client` facade and returns one
    :class:`repro.client.QueryResult`.  Use
    ``connect(database).knn(KnnRequest(query, k=k))`` directly instead.
    """
    from ._deprecations import warn_once
    from .client import KnnRequest, connect

    warn_once(
        "knn",
        "repro.knn(...) is deprecated; use "
        "repro.client.connect(database).knn(KnnRequest(query, k=k)) instead",
    )
    return connect(database).knn(KnnRequest(queries=query, k=k))[0]


__all__ = [
    "SAPLA",
    "StreamingSAPLA",
    "sapla_transform",
    "Segment",
    "LinearSegmentation",
    "SeriesDatabase",
    "UCRLikeArchive",
    "IndexKind",
    "DistanceMode",
    "DurabilityOptions",
    "FsyncPolicy",
    "QueryEngine",
    "QueryOptions",
    "BatchResult",
    "ExecutionMode",
    "knn",
    "__version__",
]
