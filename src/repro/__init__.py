"""repro — reproduction of SAPLA (EDBT 2022).

Self Adaptive Piecewise Linear Approximation, lower-bounding distance
measures for adaptive-length representations, and the DBCH-tree index for
time series similarity search, together with every baseline the paper
evaluates against (APLA, APCA, PLA, PAA, PAALM, CHEBY, SAX), the R-tree /
GEMINI k-NN substrate, a synthetic UCR2018-like archive, and the task suite
the paper's introduction motivates.

The most-used entry points are re-exported here::

    from repro import SAPLA, SeriesDatabase, UCRLikeArchive
    from repro import IndexKind, DistanceMode, QueryEngine, QueryOptions
    from repro import DurabilityOptions, FsyncPolicy
"""

from .core import SAPLA, LinearSegmentation, Segment, StreamingSAPLA, sapla_transform
from .data import UCRLikeArchive
from .engine import BatchResult, ExecutionMode, QueryEngine, QueryOptions
from .index import SeriesDatabase
from .kinds import DistanceMode, IndexKind
from .lifecycle.wal import DurabilityOptions, FsyncPolicy

__version__ = "1.0.0"

__all__ = [
    "SAPLA",
    "StreamingSAPLA",
    "sapla_transform",
    "Segment",
    "LinearSegmentation",
    "SeriesDatabase",
    "UCRLikeArchive",
    "IndexKind",
    "DistanceMode",
    "DurabilityOptions",
    "FsyncPolicy",
    "QueryEngine",
    "QueryOptions",
    "BatchResult",
    "ExecutionMode",
    "__version__",
]
