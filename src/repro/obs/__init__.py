"""repro.obs — zero-dependency observability: metrics, spans, run reports.

The paper's headline claims are measured claims (pruning power, node
accesses, CPU time), so the hot paths are instrumented with named counters,
gauges, histograms (:mod:`repro.obs.registry`) and nesting wall+CPU tracing
spans (:mod:`repro.obs.spans`), exported as schema-versioned JSON
(:mod:`repro.obs.report`).  All names live in the canonical catalogue
(:mod:`repro.obs.catalog`); ``scripts/check_metric_names.py`` enforces it.

Everything is **off by default** and costs one flag check per call site when
off.  Typical use::

    from repro import obs

    with obs.capture() as session:
        db.ingest(data)
        db.knn(query, k)
    report = session.report(meta={"dataset": "Adiac"})
    report.save("out.json")
"""

from __future__ import annotations

from typing import Dict, Optional

from .catalog import CATALOG, PRUNED_METRICS, describe, kind_of
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    count,
    gauge_set,
    observe,
    registry,
    set_registry,
)
from .report import COMPATIBLE_SCHEMAS, SCHEMA_VERSION, RunReport
from .spans import Span, SpanRecorder, recorder, set_recorder, span

__all__ = [
    "CATALOG",
    "COMPATIBLE_SCHEMAS",
    "PRUNED_METRICS",
    "SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunReport",
    "Span",
    "SpanRecorder",
    "capture",
    "count",
    "describe",
    "disable",
    "enable",
    "gauge_set",
    "is_enabled",
    "kind_of",
    "observe",
    "recorder",
    "registry",
    "reset",
    "set_recorder",
    "set_registry",
    "span",
]


def enable() -> None:
    """Turn on metric collection and span recording process-wide."""
    registry().enabled = True
    recorder().enabled = True


def disable() -> None:
    """Turn off collection; instrumented call sites become near-free."""
    registry().enabled = False
    recorder().enabled = False


def is_enabled() -> bool:
    """Whether the default registry is currently collecting."""
    return registry().enabled


def reset() -> None:
    """Drop every collected metric and span (the enabled flag is kept)."""
    registry().reset()
    recorder().reset()


class capture:
    """Context manager: reset + enable on entry, restore the flag on exit.

    The collected data stays readable after exit via :meth:`report`, so the
    caller can serialise once the timed region is over.
    """

    def __init__(self):
        self._was_enabled = False

    def __enter__(self) -> "capture":
        self._was_enabled = is_enabled()
        reset()
        enable()
        return self

    def __exit__(self, *exc) -> bool:
        if not self._was_enabled:
            disable()
        return False

    def report(self, meta: "Optional[Dict[str, object]]" = None) -> RunReport:
        """Snapshot what was collected inside the ``with`` block."""
        return RunReport.collect(meta=meta)
