"""Process-local metrics registry: counters, gauges, histograms.

Design constraints (ISSUE 1):

* **Cheap when disabled.**  Instrumented hot paths call the module-level
  helpers (:func:`count`, :func:`gauge_set`, :func:`observe`); with the
  registry disabled each call is one attribute read and a ``return`` —
  no instrument lookup, no allocation.
* **Strict names.**  Metric names must be declared in
  :mod:`repro.obs.catalog`; an undeclared name raises ``KeyError`` so typos
  die in tests rather than silently forking a new time series.
* **Plain data out.**  :meth:`MetricsRegistry.snapshot` returns nothing but
  dicts and numbers, ready for :class:`repro.obs.report.RunReport`.
"""

from __future__ import annotations

from typing import Dict, Optional

from .catalog import CATALOG, COUNTER, GAUGE, HISTOGRAM, kind_of

__all__ = [
    "SAMPLE_CAP",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "set_registry",
    "count",
    "gauge_set",
    "observe",
]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` events (``n`` must be non-negative)."""
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self.value += n


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


#: retained observations per histogram before deterministic decimation
SAMPLE_CAP = 4096


class Histogram:
    """Count / sum / min / max plus percentile summaries over observed values.

    Deliberately bucketless: count/sum/min/max stay exact, and percentiles
    come from a bounded sample of the raw observations.  Up to
    :data:`SAMPLE_CAP` observations are kept verbatim; past the cap every
    other retained sample is dropped and the keep-stride doubles, so the
    reduction is deterministic (no RNG) and evenly spread over the run.
    """

    __slots__ = ("name", "count", "total", "min", "max", "samples", "_stride")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples: "list[float]" = []
        self._stride = 1

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if (self.count - 1) % self._stride == 0:
            self.samples.append(value)
            if len(self.samples) >= SAMPLE_CAP:
                del self.samples[1::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile ``q`` (0..100) over the retained samples."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(int(-(-q * len(ordered) // 100)), 1)  # ceil(q/100 * n), >= 1
        return ordered[min(rank, len(ordered)) - 1]


_KIND_CLASSES = {COUNTER: Counter, GAUGE: Gauge, HISTOGRAM: Histogram}


class MetricsRegistry:
    """Named instruments, lazily created against the canonical catalogue."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._instruments: "Dict[str, object]" = {}

    # ------------------------------------------------------------------
    def _instrument(self, name: str, kind: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            declared = kind_of(name)  # KeyError on undeclared names
            if declared != kind:
                raise KeyError(f"{name} is declared as a {declared}, not a {kind}")
            instrument = _KIND_CLASSES[kind](name)
            self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._instrument(name, COUNTER)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._instrument(name, GAUGE)

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        return self._instrument(name, HISTOGRAM)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop every instrument (values restart from zero)."""
        self._instruments.clear()

    def snapshot(self) -> "Dict[str, Dict]":
        """Plain-data view: ``{'counters': {...}, 'gauges': {...}, 'histograms': {...}}``."""
        counters: "Dict[str, int]" = {}
        gauges: "Dict[str, float]" = {}
        histograms: "Dict[str, Dict[str, float]]" = {}
        for name, instrument in sorted(self._instruments.items()):
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = {
                    "count": instrument.count,
                    "sum": instrument.total,
                    "min": instrument.min if instrument.count else 0.0,
                    "max": instrument.max if instrument.count else 0.0,
                    "mean": instrument.mean,
                    "p50": instrument.percentile(50.0),
                    "p90": instrument.percentile(90.0),
                    "p99": instrument.percentile(99.0),
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge_snapshot(self, snap: "Dict[str, Dict]", exclude=()) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters add, gauges take the incoming value (last-writer-wins, the
        same rule a single registry applies), histograms merge their exact
        aggregates; incoming percentiles cannot be merged exactly, so the
        incoming mean stands in for the missing raw samples, weighted by the
        incoming count.  ``exclude`` names (or dotted prefixes ending in
        ``.``) are skipped — the engine uses this to avoid double-counting
        metrics it re-records itself from worker results.
        """

        def skipped(name: str) -> bool:
            return any(
                name == entry or (entry.endswith(".") and name.startswith(entry))
                for entry in exclude
            )

        for name, value in snap.get("counters", {}).items():
            if not skipped(name):
                self.counter(name).inc(int(value))
        for name, value in snap.get("gauges", {}).items():
            if not skipped(name):
                self.gauge(name).set(value)
        for name, incoming in snap.get("histograms", {}).items():
            if skipped(name) or not incoming.get("count"):
                continue
            h = self.histogram(name)
            n = int(incoming["count"])
            h.count += n
            h.total += float(incoming["sum"])
            h.min = min(h.min, float(incoming["min"]))
            h.max = max(h.max, float(incoming["max"]))
            mean = float(incoming["sum"]) / n
            h.samples.extend([mean] * min(n, SAMPLE_CAP - 1))
            while len(h.samples) >= SAMPLE_CAP:
                del h.samples[1::2]
                h._stride *= 2


#: the process-local default registry all instrumentation writes to
_REGISTRY = MetricsRegistry(enabled=False)


def registry() -> MetricsRegistry:
    """The process-local default registry."""
    return _REGISTRY


def set_registry(new: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests); returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = new
    return previous


# ----------------------------------------------------------------------
# hot-path helpers: one flag check, then straight back to the caller
# ----------------------------------------------------------------------
def count(name: str, n: int = 1) -> None:
    """Increment counter ``name`` by ``n`` if observability is enabled."""
    reg = _REGISTRY
    if not reg.enabled:
        return
    reg.counter(name).inc(n)


def gauge_set(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` if observability is enabled."""
    reg = _REGISTRY
    if not reg.enabled:
        return
    reg.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Record ``value`` in histogram ``name`` if observability is enabled."""
    reg = _REGISTRY
    if not reg.enabled:
        return
    reg.histogram(name).observe(value)
