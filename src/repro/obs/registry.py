"""Process-local metrics registry: counters, gauges, histograms.

Design constraints (ISSUE 1):

* **Cheap when disabled.**  Instrumented hot paths call the module-level
  helpers (:func:`count`, :func:`gauge_set`, :func:`observe`); with the
  registry disabled each call is one attribute read and a ``return`` —
  no instrument lookup, no allocation.
* **Strict names.**  Metric names must be declared in
  :mod:`repro.obs.catalog`; an undeclared name raises ``KeyError`` so typos
  die in tests rather than silently forking a new time series.
* **Plain data out.**  :meth:`MetricsRegistry.snapshot` returns nothing but
  dicts and numbers, ready for :class:`repro.obs.report.RunReport`.
"""

from __future__ import annotations

from typing import Dict, Optional

from .catalog import CATALOG, COUNTER, GAUGE, HISTOGRAM, kind_of

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "set_registry",
    "count",
    "gauge_set",
    "observe",
]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` events (``n`` must be non-negative)."""
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self.value += n


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """Count / sum / min / max over observed values.

    Deliberately bucketless: the reproduction's reports want per-run
    aggregates, not latency percentiles, and four numbers serialise cleanly.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


_KIND_CLASSES = {COUNTER: Counter, GAUGE: Gauge, HISTOGRAM: Histogram}


class MetricsRegistry:
    """Named instruments, lazily created against the canonical catalogue."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._instruments: "Dict[str, object]" = {}

    # ------------------------------------------------------------------
    def _instrument(self, name: str, kind: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            declared = kind_of(name)  # KeyError on undeclared names
            if declared != kind:
                raise KeyError(f"{name} is declared as a {declared}, not a {kind}")
            instrument = _KIND_CLASSES[kind](name)
            self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._instrument(name, COUNTER)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._instrument(name, GAUGE)

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        return self._instrument(name, HISTOGRAM)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop every instrument (values restart from zero)."""
        self._instruments.clear()

    def snapshot(self) -> "Dict[str, Dict]":
        """Plain-data view: ``{'counters': {...}, 'gauges': {...}, 'histograms': {...}}``."""
        counters: "Dict[str, int]" = {}
        gauges: "Dict[str, float]" = {}
        histograms: "Dict[str, Dict[str, float]]" = {}
        for name, instrument in sorted(self._instruments.items()):
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = {
                    "count": instrument.count,
                    "sum": instrument.total,
                    "min": instrument.min if instrument.count else 0.0,
                    "max": instrument.max if instrument.count else 0.0,
                    "mean": instrument.mean,
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


#: the process-local default registry all instrumentation writes to
_REGISTRY = MetricsRegistry(enabled=False)


def registry() -> MetricsRegistry:
    """The process-local default registry."""
    return _REGISTRY


def set_registry(new: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests); returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = new
    return previous


# ----------------------------------------------------------------------
# hot-path helpers: one flag check, then straight back to the caller
# ----------------------------------------------------------------------
def count(name: str, n: int = 1) -> None:
    """Increment counter ``name`` by ``n`` if observability is enabled."""
    reg = _REGISTRY
    if not reg.enabled:
        return
    reg.counter(name).inc(n)


def gauge_set(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` if observability is enabled."""
    reg = _REGISTRY
    if not reg.enabled:
        return
    reg.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Record ``value`` in histogram ``name`` if observability is enabled."""
    reg = _REGISTRY
    if not reg.enabled:
        return
    reg.histogram(name).observe(value)
