"""Lightweight tracing spans with wall + CPU time and a nesting tree.

``with span("knn.search"):`` opens a span under the currently active one;
repeated spans with the same name under the same parent *aggregate* (call
count plus accumulated wall and CPU seconds) instead of appending, so a
10k-query run exports a tree of a dozen nodes, not 10k.

Disabled mode returns a shared no-op context manager — ``span(...)``
allocates nothing per call, matching the registry's hot-path contract.
Span names must be declared with kind ``span`` in :mod:`repro.obs.catalog`.

The active-span stack is **thread-local**: spans opened on a worker thread
(the serving layer runs queries on a pool) nest under that thread's own
spans and root at the top level, never under whatever another thread
happens to have open — a shared stack would chain thousands of concurrent
queries into one pathologically deep tree.  Node creation is locked so
concurrent first-use of a name cannot drop a subtree; the float
accumulations themselves stay lock-free (best-effort, like the registry).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from .catalog import SPAN, kind_of

__all__ = ["Span", "SpanRecorder", "recorder", "set_recorder", "span"]


class Span:
    """One aggregated node of the span tree."""

    __slots__ = ("name", "calls", "wall_s", "cpu_s", "children")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.children: "Dict[str, Span]" = {}

    def child(self, name: str) -> "Span":
        """The child span called ``name``, created on first use."""
        node = self.children.get(name)
        if node is None:
            node = Span(name)
            self.children[name] = node
        return node

    def child_wall_s(self) -> float:
        """Summed wall time of the direct children."""
        return sum(c.wall_s for c in self.children.values())

    def to_dict(self) -> dict:
        """Plain-data tree: name, calls, wall/cpu seconds, children."""
        return {
            "name": self.name,
            "calls": self.calls,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "children": [c.to_dict() for c in self.children.values()],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Inverse of :meth:`to_dict`."""
        node = cls(payload["name"])
        node.calls = int(payload["calls"])
        node.wall_s = float(payload["wall_s"])
        node.cpu_s = float(payload["cpu_s"])
        for child in payload.get("children", ()):
            node.children[child["name"]] = cls.from_dict(child)
        return node


class _NoopSpan:
    """Shared do-nothing context manager for disabled-mode ``span()`` calls."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class _LiveSpan:
    """Context manager that times one region and folds it into the tree."""

    __slots__ = ("_recorder", "_name", "_node", "_wall0", "_cpu0")

    def __init__(self, rec: "SpanRecorder", name: str):
        self._recorder = rec
        self._name = name

    def __enter__(self) -> Span:
        rec = self._recorder
        stack = rec._stack
        with rec._child_lock:
            self._node = stack[-1].child(self._name)
        stack.append(self._node)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self._node

    def __exit__(self, *exc) -> bool:
        node = self._node
        node.wall_s += time.perf_counter() - self._wall0
        node.cpu_s += time.process_time() - self._cpu0
        node.calls += 1
        stack = self._recorder._stack
        if len(stack) > 1 and stack[-1] is node:
            stack.pop()
        return False


class SpanRecorder:
    """Owns one span tree plus the per-thread active-span stacks."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.root = Span("root")
        self._local = threading.local()
        self._child_lock = threading.Lock()

    @property
    def _stack(self) -> "List[Span]":
        """This thread's active-span stack, rooted at the current tree.

        A stack built before :meth:`reset` points at the old root and is
        discarded on next touch, so stale threads cannot resurrect a
        dropped tree.
        """
        stack = getattr(self._local, "stack", None)
        if stack is None or stack[0] is not self.root:
            stack = [self.root]
            self._local.stack = stack
        return stack

    def reset(self) -> None:
        """Drop the collected tree and any dangling stack state."""
        self.root = Span("root")
        self._local = threading.local()

    def span(self, name: str) -> "_LiveSpan | _NoopSpan":
        """A context manager timing ``name`` under the active span."""
        if not self.enabled:
            return _NOOP
        if kind_of(name) != SPAN:  # KeyError on undeclared names
            raise KeyError(f"{name} is not declared as a span in the catalogue")
        return _LiveSpan(self, name)

    def tree(self) -> "List[dict]":
        """The collected top-level spans as plain data."""
        return [c.to_dict() for c in self.root.children.values()]


#: the process-local default recorder all instrumentation writes to
_RECORDER = SpanRecorder(enabled=False)


def recorder() -> SpanRecorder:
    """The process-local default span recorder."""
    return _RECORDER


def set_recorder(new: SpanRecorder) -> SpanRecorder:
    """Swap the default recorder (tests); returns the previous one."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = new
    return previous


def span(name: str) -> "_LiveSpan | _NoopSpan":
    """Open (on ``with``) a span named ``name`` on the default recorder."""
    rec = _RECORDER
    if not rec.enabled:
        return _NOOP
    return rec.span(name)
