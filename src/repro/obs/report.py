"""Schema-versioned run reports: registry snapshot + span tree as JSON.

A :class:`RunReport` is the machine-readable artefact one benchmark or CLI
run leaves behind (the ``BENCH_*.json`` trajectory format).  The schema is
versioned so downstream tooling can evolve without guessing: bump
``SCHEMA_VERSION`` whenever a field changes meaning, never silently.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from .registry import MetricsRegistry, registry
from .spans import SpanRecorder, recorder

__all__ = ["SCHEMA_VERSION", "COMPATIBLE_SCHEMAS", "RunReport"]

#: current schema: ``/2`` added p50/p90/p99 keys to every histogram summary.
SCHEMA_VERSION = "repro.obs/2"

#: schemas :meth:`RunReport.from_dict` still accepts.  ``/1`` reports lack
#: the percentile keys; readers must treat them as optional (``.get``).
COMPATIBLE_SCHEMAS = frozenset({"repro.obs/1", SCHEMA_VERSION})

PathLike = Union[str, pathlib.Path]


def _ms_display(name: str) -> "tuple[str, float]":
    """``(display name, scale)`` normalizing seconds-valued names to ms.

    ``*_s``-suffixed duration names render as ``*_ms`` with values scaled
    by 1000 so every duration in human-facing tables shares one unit;
    ``*_per_s`` names are rates, not durations, and pass through.  Used by
    :meth:`RunReport.summary_rows` and the experiment diff renderer —
    stored metric names never change.
    """
    if name.endswith("_s") and not name.endswith("_per_s"):
        return name[:-2] + "_ms", 1000.0
    return name, 1.0


@dataclass
class RunReport:
    """One run's metrics, spans and free-form metadata."""

    schema: str = SCHEMA_VERSION
    created_unix: float = 0.0
    meta: "Dict[str, object]" = field(default_factory=dict)
    counters: "Dict[str, int]" = field(default_factory=dict)
    gauges: "Dict[str, float]" = field(default_factory=dict)
    histograms: "Dict[str, Dict[str, float]]" = field(default_factory=dict)
    spans: "List[dict]" = field(default_factory=list)

    # ------------------------------------------------------------------
    @classmethod
    def collect(
        cls,
        meta: "Optional[Dict[str, object]]" = None,
        metrics: "Optional[MetricsRegistry]" = None,
        spans: "Optional[SpanRecorder]" = None,
    ) -> "RunReport":
        """Snapshot the (default) registry and recorder into a report."""
        snap = (metrics or registry()).snapshot()
        return cls(
            created_unix=time.time(),
            meta=dict(meta or {}),
            counters=snap["counters"],
            gauges=snap["gauges"],
            histograms=snap["histograms"],
            spans=(spans or recorder()).tree(),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data view of the report (inverse of :meth:`from_dict`)."""
        return {
            "schema": self.schema,
            "created_unix": self.created_unix,
            "meta": self.meta,
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
            "spans": self.spans,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output; checks the schema."""
        schema = payload.get("schema")
        if schema not in COMPATIBLE_SCHEMAS:
            raise ValueError(
                f"unsupported report schema {schema!r} "
                f"(expected one of {sorted(COMPATIBLE_SCHEMAS)})"
            )
        return cls(
            schema=schema,
            created_unix=float(payload.get("created_unix", 0.0)),
            meta=dict(payload.get("meta", {})),
            counters={k: int(v) for k, v in payload.get("counters", {}).items()},
            gauges={k: float(v) for k, v in payload.get("gauges", {}).items()},
            histograms=dict(payload.get("histograms", {})),
            spans=list(payload.get("spans", ())),
        )

    def to_json(self, indent: "Optional[int]" = 2) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        """Parse a report from a JSON string; checks the schema."""
        return cls.from_dict(json.loads(text))

    def save(self, path: PathLike) -> pathlib.Path:
        """Write the report to ``path`` and return it."""
        path = pathlib.Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: PathLike) -> "RunReport":
        """Read a report back from ``path``."""
        return cls.from_json(pathlib.Path(path).read_text())

    # ------------------------------------------------------------------
    def summary_rows(self) -> "List[Dict[str, object]]":
        """Flat name/kind/value rows (the `repro stats` table), name-sorted.

        Histogram *display* is unit-normalized: seconds-valued histograms
        (``*_s`` names, excluding ``*_per_s`` rates) render in milliseconds
        under a ``*_ms`` metric name, so every duration percentile in the
        table reads in the same unit.  Stored names and values (and the
        :meth:`trial_metrics` ingest contract) are untouched.
        """
        rows: "List[Dict[str, object]]" = []
        for name, value in sorted(self.counters.items()):
            rows.append({"metric": name, "kind": "counter", "value": value})
        for name, value in sorted(self.gauges.items()):
            rows.append({"metric": name, "kind": "gauge", "value": round(value, 6)})
        for name, h in sorted(self.histograms.items()):
            shown, scale = _ms_display(name)
            text = (
                f"n={h['count']} mean={h['mean'] * scale:.4g} "
                f"min={h['min'] * scale:.4g} max={h['max'] * scale:.4g}"
            )
            if "p50" in h:  # schema /1 reports predate the percentile keys
                text += (
                    f" p50={h['p50'] * scale:.4g} p90={h['p90'] * scale:.4g}"
                    f" p99={h['p99'] * scale:.4g}"
                )
            rows.append({"metric": shown, "kind": "histogram", "value": text})
        return rows

    # ------------------------------------------------------------------
    # trial-ingest API (stable contract for repro.experiments.store)
    # ------------------------------------------------------------------
    #: histogram summary fields flattened by :meth:`trial_metrics`, in order
    HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean", "p50", "p90", "p99")

    def trial_metrics(self) -> "List[Dict[str, object]]":
        """Every metric of this report as flat scalar rows, deterministically
        ordered — the stable ingest contract for the experiment results store.

        Each row is ``{"name", "kind", "value"}``:

        * counters/gauges keep their catalogued name and kind;
        * histograms flatten to ``<name>/<field>`` rows (``kind="histogram"``)
          for every :data:`HISTOGRAM_FIELDS` entry present in the report;
        * spans flatten the tree to ``<path>/wall_s|cpu_s|calls`` rows
          (``kind="span"``) where ``path`` joins nested span names with ``.``.

        Rows are sorted by kind then name, so identical reports always ingest
        into identical table contents regardless of collection order.
        """
        rows: "List[Dict[str, object]]" = []
        for name, value in self.counters.items():
            rows.append({"name": name, "kind": "counter", "value": float(value)})
        for name, value in self.gauges.items():
            rows.append({"name": name, "kind": "gauge", "value": float(value)})
        for name, h in self.histograms.items():
            for fld in self.HISTOGRAM_FIELDS:
                if fld in h:
                    rows.append(
                        {"name": f"{name}/{fld}", "kind": "histogram", "value": float(h[fld])}
                    )

        def walk(nodes, prefix: str) -> None:
            for node in nodes:
                path = f"{prefix}{node['name']}"
                for fld in ("wall_s", "cpu_s", "calls"):
                    rows.append(
                        {"name": f"{path}/{fld}", "kind": "span", "value": float(node[fld])}
                    )
                walk(node.get("children", ()), f"{path}.")

        walk(self.spans, "")
        rows.sort(key=lambda r: (r["kind"], r["name"]))
        return rows
