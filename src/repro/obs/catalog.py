"""Canonical catalogue of every metric and span name the codebase emits.

Instrumented call sites must use names declared here — the
``scripts/check_metric_names.py`` lint walks ``src/repro`` and fails on any
literal metric name that is missing from this catalogue.  Keeping the
catalogue in one flat module gives three things: a single place to read what
a number means, a machine-checkable contract between instrumentation and
reports, and stable names for downstream trajectory files (``BENCH_*.json``).

Naming convention: dotted lowercase paths, ``<subsystem>.<event>`` or
``<subsystem>.<stage>.<event>``.  Counters count events, gauges hold a last
value, histograms record per-observation distributions (count/sum/min/max),
and spans time regions of code.
"""

from __future__ import annotations

__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "SPAN",
    "CATALOG",
    "PRUNED_METRICS",
    "kind_of",
    "describe",
]

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"
SPAN = "span"

#: name -> (kind, one-line description); the single source of truth.
CATALOG: "dict[str, tuple[str, str]]" = {
    # ------------------------------------------------------------------ k-NN
    "knn.queries": (COUNTER, "k-NN queries answered"),
    "knn.nodes_visited": (COUNTER, "index nodes expanded during best-first search"),
    "knn.nodes_pruned": (COUNTER, "index nodes enqueued but never expanded"),
    "knn.entries_refined": (COUNTER, "leaf entries verified against raw data"),
    "knn.heap_pushes": (COUNTER, "frontier priority-queue pushes"),
    "knn.pruned.dist_par": (COUNTER, "candidates pruned by the Dist_PAR bound"),
    "knn.pruned.dist_lb": (COUNTER, "candidates pruned by the Dist_LB bound"),
    "knn.pruned.dist_ae": (COUNTER, "candidates pruned by the Dist_AE bound"),
    "knn.pruned.aligned": (COUNTER, "candidates pruned by an aligned equal-length bound"),
    "knn.pruned.triangle": (COUNTER, "candidates pruned by the CHEBY triangle bound"),
    "knn.pruned.mindist": (COUNTER, "candidates pruned by the SAX MINDIST bound"),
    "knn.verified_per_query": (HISTOGRAM, "raw verifications needed by one query"),
    # ------------------------------------------------------------- engine
    "engine.batches": (COUNTER, "knn_batch invocations"),
    "engine.rounds": (COUNTER, "vectorised verification rounds executed"),
    "engine.pairs_verified": (COUNTER, "(query, candidate) pairs resolved in batched verification"),
    "engine.timeouts": (COUNTER, "queries finalised early by a batch deadline"),
    "engine.batch_size": (HISTOGRAM, "queries per knn_batch call"),
    "engine.parallelism": (GAUGE, "worker processes used by the last batch"),
    # ----------------------------------------------------------- DBCH-tree
    "dbch.inserts": (COUNTER, "entries inserted into a DBCH-tree"),
    "dbch.deletes": (COUNTER, "entries deleted from a DBCH-tree"),
    "dbch.splits": (COUNTER, "DBCH node splits on overflow"),
    "dbch.hull_recomputations": (COUNTER, "covering-pair (hull) recomputations"),
    "dbch.leaf_fill": (GAUGE, "mean entries per DBCH leaf after the last build"),
    # -------------------------------------------------------------- R-tree
    "rtree.inserts": (COUNTER, "entries inserted into an R-tree"),
    "rtree.deletes": (COUNTER, "entries deleted from an R-tree"),
    "rtree.splits": (COUNTER, "R-tree node splits on overflow"),
    "rtree.mbr_recomputations": (COUNTER, "bounding-box recomputations"),
    "rtree.leaf_fill": (GAUGE, "mean entries per R-tree leaf after the last build"),
    # --------------------------------------------------------------- SAPLA
    "sapla.transforms": (COUNTER, "series reduced by the SAPLA pipeline"),
    "sapla.split_merge.rounds": (COUNTER, "split&merge probe rounds executed"),
    "sapla.split_merge.merges": (COUNTER, "adjacent-pair merges applied"),
    "sapla.split_merge.splits": (COUNTER, "segment splits applied"),
    "sapla.endpoint.moves": (COUNTER, "endpoint moves accepted in stage 3"),
    "sapla.area_evaluations": (COUNTER, "Reconstruction Area evaluations"),
    "sapla.segment_count": (HISTOGRAM, "segments per reduced series"),
    # ----------------------------------------------------------- reduction
    "reduce.batch_calls": (COUNTER, "transform_batch invocations"),
    "reduce.batch_rows": (COUNTER, "series reduced through the batch path"),
    "reduce.scalar_fallback": (COUNTER, "batch rows reduced by the per-row fallback loop"),
    # ----------------------------------------------------------- distances
    "dist.par.calls": (COUNTER, "Dist_PAR invocations"),
    "dist.lb.calls": (COUNTER, "Dist_LB invocations"),
    "dist.euclidean.exact": (COUNTER, "exact raw-series Euclidean fallbacks"),
    # -------------------------------------------------------- bound cascade
    "cascade.queries": (COUNTER, "queries answered through the bound cascade"),
    "cascade.cheap_bounds": (COUNTER, "cheap dominated-tier bound evaluations"),
    "cascade.refines": (COUNTER, "cascade items refined to their exact bound"),
    "cascade.entries_skipped": (COUNTER, "entry bounds never refined past the cheap tier"),
    "cascade.nodes_skipped": (COUNTER, "node distances never refined past the cheap tier"),
    "cascade.pairwise_skipped": (COUNTER, "DBCH build pairwise evaluations skipped by the accelerator"),
    # --------------------------------------------------------- verification
    "verify.filter_rounds": (COUNTER, "verification rounds run through the early-abandoning filter"),
    "verify.abandoned": (COUNTER, "(query, candidate) pairs abandoned before full distance accumulation"),
    # ------------------------------------------------------------- storage
    "storage.page_reads": (COUNTER, "physical page reads from the backing file"),
    "storage.page_writes": (COUNTER, "physical page writes to the backing file"),
    "storage.cache_hits": (COUNTER, "page reads served by the LRU cache"),
    "pages.batch_reads": (COUNTER, "batched multi-row reads through the page cache"),
    "columns.builds": (COUNTER, "packed column blocks constructed (cache or memmap)"),
    "columns.gathers": (COUNTER, "bulk row gathers served by a packed column block"),
    # ----------------------------------------------------------- lifecycle
    "db.inserts": (COUNTER, "series inserted into a mutable database"),
    "db.deletes": (COUNTER, "series tombstoned in a mutable database"),
    "wal.appends": (COUNTER, "records appended to a write-ahead log"),
    "wal.bytes_written": (COUNTER, "bytes appended to a write-ahead log"),
    "wal.fsyncs": (COUNTER, "fsync calls issued by the write-ahead log"),
    "wal.checkpoints": (COUNTER, "checkpoint markers appended to a WAL"),
    "wal.records_replayed": (COUNTER, "committed WAL records decoded during replay"),
    "wal.torn_bytes": (COUNTER, "bytes dropped from torn WAL tails"),
    "recovery.runs": (COUNTER, "crash-recovery passes executed on open"),
    "recovery.replayed_inserts": (COUNTER, "insert records re-applied by recovery"),
    "recovery.replayed_deletes": (COUNTER, "delete records re-applied by recovery"),
    "recovery.skipped_records": (COUNTER, "WAL records recovery skipped as already folded"),
    "compaction.runs": (COUNTER, "compaction passes executed"),
    "compaction.rows_dropped": (COUNTER, "tombstoned rows dropped by compaction"),
    "compaction.reclaimed_bytes": (COUNTER, "raw data bytes reclaimed by compaction"),
    # ------------------------------------------------------------- serving
    "server.requests": (COUNTER, "request frames dispatched by the TCP server"),
    "server.shed": (COUNTER, "queries shed by admission control (queue full)"),
    "server.errors": (COUNTER, "requests answered with an error envelope"),
    "server.connections": (COUNTER, "TCP connections accepted by the server"),
    "server.in_flight": (GAUGE, "accepted queries currently waiting or executing"),
    "server.request_ms": (HISTOGRAM, "milliseconds from admission to response per query request"),
    "shard.batches": (COUNTER, "scatter-gather batches executed by a sharded engine"),
    "shard.queries": (COUNTER, "per-shard query executions (queries x shards searched)"),
    "shard.count": (GAUGE, "shards behind the last scatter-gather batch"),
    "shard.merge_ms": (HISTOGRAM, "milliseconds merging per-shard answers per batch"),
    # ---------------------------------------------------------- continuous
    "continuous.subscriptions": (GAUGE, "standing subscriptions currently registered"),
    "continuous.notifications": (COUNTER, "notification deltas delivered to subscription sinks"),
    "continuous.delta_evals": (COUNTER, "subscription re-evaluations answered incrementally"),
    "continuous.full_reruns": (COUNTER, "subscription re-evaluations that fell back to a full re-run"),
    "continuous.alerts": (COUNTER, "anomaly alerts raised by online discord scoring"),
    "continuous.dropped": (COUNTER, "notifications dropped by per-subscription backpressure"),
    "continuous.notify_ms": (HISTOGRAM, "milliseconds from mutation arrival to notification delivery"),
    # --------------------------------------------------------- experiments
    "experiments.trials": (COUNTER, "experiment trials executed by the runner"),
    "experiments.trials_skipped": (COUNTER, "matrix cells skipped as unsupported by their workload"),
    "experiments.trial_failures": (COUNTER, "experiment trials that raised and were recorded failed"),
    "experiments.gate_violations": (COUNTER, "threshold rules violated by the last experiment diff"),
    "experiments.trial_wall_s": (HISTOGRAM, "wall seconds per recorded experiment trial"),
    # --------------------------------------------------------------- spans
    "continuous.evaluate": (SPAN, "re-evaluate every standing subscription after one mutation"),
    "continuous.replay": (SPAN, "replay a subscription log into registry state"),
    "cli.knn": (SPAN, "whole `repro knn` command"),
    "cli.subscribe": (SPAN, "whole `repro subscribe` command"),
    "cli.watch": (SPAN, "whole `repro watch` command"),
    "cli.serve": (SPAN, "whole `repro serve` command (bind to shutdown)"),
    "cli.shard": (SPAN, "whole `repro shard` command"),
    "cli.experiment": (SPAN, "whole `repro experiment` command"),
    "cli.ingest": (SPAN, "whole `repro ingest` command"),
    "cli.checkpoint": (SPAN, "whole `repro checkpoint` command"),
    "cli.compact": (SPAN, "whole `repro compact` command"),
    "wal.replay": (SPAN, "decode every committed record of a WAL file"),
    "lifecycle.recover": (SPAN, "replay committed WAL records into a reopened database"),
    "lifecycle.checkpoint": (SPAN, "persist state and truncate the WAL"),
    "lifecycle.compact": (SPAN, "rewrite rows dropping tombstones and rebuild the index"),
    "bench.run": (SPAN, "whole instrumented benchmark pass"),
    "experiments.run": (SPAN, "whole experiment-matrix execution"),
    "experiments.trial": (SPAN, "one recorded trial of an experiment matrix"),
    "db.ingest": (SPAN, "reduce + index every row of a collection"),
    "knn.search": (SPAN, "one filter-and-refine k-NN query"),
    "engine.knn_batch": (SPAN, "one batched k-NN execution"),
    "knn.ground_truth": (SPAN, "one exact linear-scan reference query"),
    "reduce.batch": (SPAN, "batch-reduce every row of one matrix"),
    "sapla.transform": (SPAN, "full three-stage SAPLA reduction of one series"),
    "sapla.initialize": (SPAN, "SAPLA stage 1 — single-scan initialization"),
    "sapla.split_merge": (SPAN, "SAPLA stage 2 — split & merge iteration"),
    "sapla.endpoint_movement": (SPAN, "SAPLA stage 3 — endpoint movement"),
}

#: distance-suite mode -> the pruning counter that mode's bound feeds
#: (keeps dynamically-selected names inside the catalogue contract).
PRUNED_METRICS: "dict[str, str]" = {
    "par": "knn.pruned.dist_par",
    "lb": "knn.pruned.dist_lb",
    "ae": "knn.pruned.dist_ae",
    "aligned": "knn.pruned.aligned",
    "triangle": "knn.pruned.triangle",
    "mindist": "knn.pruned.mindist",
}


def kind_of(name: str) -> str:
    """The declared kind of ``name``; raises ``KeyError`` when undeclared."""
    return CATALOG[name][0]


def describe(name: str) -> str:
    """The declared one-line description of ``name``."""
    return CATALOG[name][1]
