"""The client base class and the in-process backend.

:class:`Client` is the one query surface :func:`repro.client.connect`
returns, whatever the backend; :class:`LocalClient` implements it directly
over anything with the engine surface (``knn_batch`` / ``range_query``):
a :class:`repro.index.SeriesDatabase`, a
:class:`repro.storage.DiskBackedDatabase` or a
:class:`repro.serving.ShardedEngine`.
"""

from __future__ import annotations

import queue as _queue
from typing import List

import numpy as np

from .. import obs
from ..continuous import ContinuousEvaluator, Notification, StandingQuery
from .api import KnnRequest, QueryResult, RangeRequest
from .subscription import Subscription

__all__ = ["Client", "LocalClient"]


class Client:
    """Abstract query surface shared by every backend.

    One :class:`~repro.client.KnnRequest` / :class:`~repro.client.RangeRequest`
    works against all implementations and always yields
    :class:`~repro.client.QueryResult` objects with identical semantics —
    the point of the facade.  The mutation surface (``insert``/``delete``)
    and the continuous surface (``subscribe``/``unsubscribe``) behave
    identically too: a standing query registered through any backend emits
    the same :class:`repro.continuous.Notification` deltas.  Clients are
    context managers; ``close()`` is idempotent.
    """

    def knn(self, request: KnnRequest) -> "List[QueryResult]":
        """Answer a batch k-NN request, one result per query row."""
        raise NotImplementedError

    def range(self, request: RangeRequest) -> QueryResult:
        """Answer a radius query (ids/distances hold every hit in range)."""
        raise NotImplementedError

    def insert(self, series) -> int:
        """Insert one series; returns its (global) id.

        Standing subscriptions observe the insert and push their deltas.
        """
        raise NotImplementedError

    def delete(self, series_id: int) -> bool:
        """Tombstone one series id; ``False`` when it isn't live."""
        raise NotImplementedError

    def subscribe(self, query: StandingQuery) -> Subscription:
        """Register a standing query; returns its notification stream."""
        raise NotImplementedError

    def unsubscribe(self, subscription_id: str) -> bool:
        """Drop a standing query by id (``Subscription.close`` calls this)."""
        raise NotImplementedError

    def stats(self) -> dict:
        """Backend and metrics information (shape varies by backend)."""
        raise NotImplementedError

    def ping(self) -> bool:
        """Cheap liveness check."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the backend connection/resources (idempotent)."""
        raise NotImplementedError

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class LocalClient(Client):
    """In-process backend: requests run straight through the engine.

    ``target`` is kept as :attr:`database` for callers that need
    engine-level access (mutation, lifecycle); the client itself never
    mutates it.
    """

    def __init__(self, target, owns: bool = False):
        if isinstance(target, ContinuousEvaluator):
            self._continuous: "ContinuousEvaluator | None" = target
            target = target.target
        else:
            self._continuous = None
        self.database = target
        #: whether close() should tear the backend down (True when connect()
        #: opened the backend itself from a path; False for caller-owned objects)
        self._owns = owns

    def knn(self, request: KnnRequest) -> "List[QueryResult]":
        """Run the batch through the target's ``knn_batch``."""
        batch = self.database.knn_batch(request.queries, request.options())
        return QueryResult.from_batch(batch)

    def range(self, request: RangeRequest) -> QueryResult:
        """Run the radius query through the target's ``range_query``."""
        result = self.database.range_query(request.query, request.radius)
        return QueryResult.from_knn(
            result, generation=getattr(self.database, "generation", None)
        )

    # -- mutation + continuous surface -----------------------------------
    def _evaluator(self) -> ContinuousEvaluator:
        """The evaluator behind mutation/subscription calls (lazy)."""
        if self._continuous is None:
            self._continuous = ContinuousEvaluator(self.database)
        return self._continuous

    def insert(self, series) -> int:
        """Insert through the evaluator so subscriptions see the delta."""
        return self._evaluator().insert(np.asarray(series, dtype=float))

    def delete(self, series_id: int) -> bool:
        """Delete through the evaluator so subscriptions see the delta."""
        return self._evaluator().delete(int(series_id))

    def subscribe(self, query: StandingQuery) -> Subscription:
        """Register a standing query fed by an in-process queue."""
        inbox: "_queue.Queue[Notification]" = _queue.Queue()
        sid = self._evaluator().subscribe(query, sink=inbox.put)

        def fetch(timeout):
            try:
                return inbox.get(timeout=timeout)
            except _queue.Empty:
                raise TimeoutError(
                    f"no notification for {sid} within {timeout}s"
                ) from None

        return Subscription(sid, self, fetch)

    def unsubscribe(self, subscription_id: str) -> bool:
        """Drop a standing query by id."""
        return self._evaluator().unsubscribe(subscription_id)

    def stats(self) -> dict:
        """Backend info plus a metrics snapshot when collection is enabled."""
        body = {
            "server": {
                "backend": "local",
                "shards": getattr(self.database, "n_shards", 1),
                "subscriptions": (
                    len(self._continuous.registry)
                    if self._continuous is not None
                    else 0
                ),
            }
        }
        if obs.is_enabled():
            body["stats"] = obs.RunReport.collect(meta={"source": "repro.client"}).to_dict()
        return body

    def ping(self) -> bool:
        """Always reachable — the backend lives in this process."""
        return True

    def close(self) -> None:
        """Tear the backend down if this client opened it (else a no-op)."""
        if not self._owns:
            return
        if self._continuous is not None:
            self._continuous.close()
        closer = getattr(self.database, "close", None)
        if callable(closer):
            closer()
