"""The client base class and the in-process backend.

:class:`Client` is the one query surface :func:`repro.client.connect`
returns, whatever the backend; :class:`LocalClient` implements it directly
over anything with the engine surface (``knn_batch`` / ``range_query``):
a :class:`repro.index.SeriesDatabase`, a
:class:`repro.storage.DiskBackedDatabase` or a
:class:`repro.serving.ShardedEngine`.
"""

from __future__ import annotations

from typing import List

from .. import obs
from .api import KnnRequest, QueryResult, RangeRequest

__all__ = ["Client", "LocalClient"]


class Client:
    """Abstract query surface shared by every backend.

    One :class:`~repro.client.KnnRequest` / :class:`~repro.client.RangeRequest`
    works against all implementations and always yields
    :class:`~repro.client.QueryResult` objects with identical semantics —
    the point of the facade.  Clients are context managers; ``close()`` is
    idempotent.
    """

    def knn(self, request: KnnRequest) -> "List[QueryResult]":
        """Answer a batch k-NN request, one result per query row."""
        raise NotImplementedError

    def range(self, request: RangeRequest) -> QueryResult:
        """Answer a radius query (ids/distances hold every hit in range)."""
        raise NotImplementedError

    def stats(self) -> dict:
        """Backend and metrics information (shape varies by backend)."""
        raise NotImplementedError

    def ping(self) -> bool:
        """Cheap liveness check."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the backend connection/resources (idempotent)."""
        raise NotImplementedError

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class LocalClient(Client):
    """In-process backend: requests run straight through the engine.

    ``target`` is kept as :attr:`database` for callers that need
    engine-level access (mutation, lifecycle); the client itself never
    mutates it.
    """

    def __init__(self, target, owns: bool = False):
        self.database = target
        #: whether close() should tear the backend down (True when connect()
        #: opened the backend itself from a path; False for caller-owned objects)
        self._owns = owns

    def knn(self, request: KnnRequest) -> "List[QueryResult]":
        """Run the batch through the target's ``knn_batch``."""
        batch = self.database.knn_batch(request.queries, request.options())
        return QueryResult.from_batch(batch)

    def range(self, request: RangeRequest) -> QueryResult:
        """Run the radius query through the target's ``range_query``."""
        result = self.database.range_query(request.query, request.radius)
        return QueryResult.from_knn(
            result, generation=getattr(self.database, "generation", None)
        )

    def stats(self) -> dict:
        """Backend info plus a metrics snapshot when collection is enabled."""
        body = {
            "server": {
                "backend": "local",
                "shards": getattr(self.database, "n_shards", 1),
            }
        }
        if obs.is_enabled():
            body["stats"] = obs.RunReport.collect(meta={"source": "repro.client"}).to_dict()
        return body

    def ping(self) -> bool:
        """Always reachable — the backend lives in this process."""
        return True

    def close(self) -> None:
        """Tear the backend down if this client opened it (else a no-op)."""
        if not self._owns:
            return
        closer = getattr(self.database, "close", None)
        if callable(closer):
            closer()
