"""The one query facade: ``connect(anything) -> Client``.

Three generations of entry points (the free ``knn`` function, direct
``QueryEngine`` construction, the ``save_database``/``load_database``
aliases) collapse into this package: :func:`connect` resolves *any* target
— a database object, a saved database directory, a sharded home, or a
``tcp://host:port`` URL — into a :class:`Client` whose typed
:class:`KnnRequest`/:class:`RangeRequest`/:class:`QueryResult` vocabulary
is shared verbatim by the in-process engine, the
:class:`repro.serving.ShardedEngine` and the TCP server.

    from repro.client import connect, KnnRequest

    with connect("runs/my_database") as client:       # or tcp://host:port
        results = client.knn(KnnRequest(queries, k=5))

Legacy entry points keep working, each emitting a single-shot
``DeprecationWarning`` — see the migration table in
``docs/api_reference.md``.
"""

from __future__ import annotations

import pathlib
from typing import Union

from .api import KnnRequest, QueryResult, RangeRequest
from .local import Client, LocalClient
from .subscription import Subscription
from .tcp import ServerError, TcpClient

__all__ = [
    "Client",
    "KnnRequest",
    "LocalClient",
    "QueryResult",
    "RangeRequest",
    "ServerError",
    "Subscription",
    "TcpClient",
    "connect",
]


def _parse_tcp_url(url: str) -> "tuple[str, int]":
    """Split ``tcp://host:port`` into its parts (IPv6 hosts in brackets)."""
    rest = url[len("tcp://"):]
    host, sep, port = rest.rpartition(":")
    if not sep or not port.isdigit() or not host:
        raise ValueError(f"expected tcp://host:port, got {url!r}")
    return host.strip("[]"), int(port)


def connect(target: "Union[str, pathlib.Path, object]", durability=None) -> Client:
    """Resolve ``target`` into a connected :class:`Client`.

    Accepts, in resolution order:

    * a ``tcp://host:port`` URL — a :class:`TcpClient` for a running
      ``repro serve`` endpoint;
    * a directory containing ``sharding.json`` — the sharded home is opened
      (per-shard WAL recovery included) behind a :class:`LocalClient`;
    * a directory containing ``config.json`` — a single database directory,
      opened via :func:`repro.io.open_database`;
    * any object with the engine surface (``knn_batch``/``range_query``) —
      served in process as-is.

    ``durability`` (a :class:`repro.lifecycle.DurabilityOptions`) is
    forwarded when a path is opened.  Clients opened from a path own their
    backend: ``close()`` tears it down (WALs, pools); object targets stay
    caller-owned.
    """
    if isinstance(target, (str, pathlib.Path)):
        text = str(target)
        if text.startswith("tcp://"):
            host, port = _parse_tcp_url(text)
            return TcpClient(host, port)
        path = pathlib.Path(text)
        from ..serving.sharding import MANIFEST_FILENAME, ShardedEngine

        if (path / MANIFEST_FILENAME).exists():
            return LocalClient(ShardedEngine.open(path, durability=durability), owns=True)
        if (path / "config.json").exists():
            from ..io.database import open_database

            return LocalClient(open_database(path, durability=durability), owns=True)
        raise ValueError(
            f"{path} is neither a saved database directory (config.json) "
            "nor a sharded home (sharding.json)"
        )
    if hasattr(target, "knn_batch"):
        return LocalClient(target)
    raise TypeError(
        "connect() accepts a tcp:// URL, a database directory, a sharded home, "
        f"or a database/engine object — got {type(target).__name__}"
    )
