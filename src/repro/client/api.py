"""Typed request/result vocabulary shared by every query surface.

One request object works against all three backends: the in-process
:class:`repro.engine.QueryEngine` (through :class:`~repro.client.LocalClient`),
the in-process :class:`repro.serving.ShardedEngine`, and the TCP server
behind ``repro serve``.  The dataclasses here are therefore the *wire
schema* too — :meth:`KnnRequest.to_payload` / :meth:`QueryResult.from_payload`
are exactly what :mod:`repro.serving.protocol` frames carry, so a request
answered locally and one answered over a socket are the same object shape
end to end.

Floats survive the JSON round trip bit-for-bit (``json`` serialises doubles
via their shortest round-trip repr), which is what lets the serving tests
assert *bit-identical* distances across process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from ..engine.options import BatchResult, ExecutionMode, QueryOptions
from ..index.knn import KNNResult

__all__ = ["KnnRequest", "RangeRequest", "QueryResult"]


@dataclass(frozen=True, eq=False)
class KnnRequest:
    """A batch k-NN request — the one argument of ``Client.knn``.

    Args:
        queries: one query series (1-D) or a ``(Q, n)`` batch of them.
        k: neighbours per query (>= 1).
        mode: engine execution mode (see :class:`repro.engine.ExecutionMode`).
        deadline_s: optional wall-clock budget for the whole batch.
        lookahead: candidates verified per query per round.
        cascade: route representation bounds through the bound cascade.
        early_abandon: allow early-abandoning batched verification.
    """

    queries: np.ndarray
    k: int = 1
    mode: "Union[ExecutionMode, str]" = ExecutionMode.AUTO
    deadline_s: Optional[float] = None
    lookahead: int = 1
    cascade: bool = True
    early_abandon: bool = True

    def __post_init__(self):
        matrix = np.atleast_2d(np.asarray(self.queries, dtype=float))
        if matrix.ndim != 2:
            raise ValueError("queries must be a series or a (Q, n) batch")
        object.__setattr__(self, "queries", matrix)
        self.options()  # validate the engine-facing fields eagerly

    def options(self) -> QueryOptions:
        """The equivalent validated :class:`repro.engine.QueryOptions`."""
        return QueryOptions(
            k=self.k,
            mode=self.mode,
            deadline_s=self.deadline_s,
            lookahead=self.lookahead,
            cascade=self.cascade,
            early_abandon=self.early_abandon,
        )

    def to_payload(self) -> dict:
        """JSON-safe dict for the wire protocol (see :mod:`repro.serving.protocol`)."""
        return {
            "queries": self.queries.tolist(),
            "k": self.k,
            "mode": str(ExecutionMode(self.mode)),
            "deadline_s": self.deadline_s,
            "lookahead": self.lookahead,
            "cascade": self.cascade,
            "early_abandon": self.early_abandon,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "KnnRequest":
        """Rebuild a request from its :meth:`to_payload` dict."""
        return cls(
            queries=np.asarray(payload["queries"], dtype=float),
            k=int(payload.get("k", 1)),
            mode=payload.get("mode", "auto"),
            deadline_s=payload.get("deadline_s"),
            lookahead=int(payload.get("lookahead", 1)),
            cascade=bool(payload.get("cascade", True)),
            early_abandon=bool(payload.get("early_abandon", True)),
        )


@dataclass(frozen=True, eq=False)
class RangeRequest:
    """A radius query — all series within Euclidean ``radius`` of ``query``."""

    query: np.ndarray
    radius: float

    def __post_init__(self):
        series = np.asarray(self.query, dtype=float)
        if series.ndim != 1:
            raise ValueError("query must be a single 1-D series")
        if self.radius < 0:
            raise ValueError("radius must be non-negative")
        object.__setattr__(self, "query", series)

    def to_payload(self) -> dict:
        """JSON-safe dict for the wire protocol."""
        return {"query": self.query.tolist(), "radius": float(self.radius)}

    @classmethod
    def from_payload(cls, payload: dict) -> "RangeRequest":
        """Rebuild a request from its :meth:`to_payload` dict."""
        return cls(
            query=np.asarray(payload["query"], dtype=float),
            radius=float(payload["radius"]),
        )


@dataclass
class QueryResult:
    """One query's answer, identical across all three backends.

    ``ids``/``distances`` follow the engine's stable ``(distance, id)``
    tie-break; ``timed_out`` marks a partial answer cut short by the batch
    deadline; ``generation`` is the database version the query was served
    at (a tuple of per-shard generations when answered by a
    :class:`repro.serving.ShardedEngine`).
    """

    ids: "List[int]"
    distances: "List[float]"
    n_verified: int = 0
    n_total: int = 0
    timed_out: bool = False
    generation: object = None

    @property
    def pruning_power(self) -> float:
        """Paper Eq. (14): fraction of raw series that had to be measured."""
        return self.n_verified / self.n_total if self.n_total else 0.0

    @classmethod
    def from_knn(
        cls, result: KNNResult, timed_out: bool = False, generation: object = None
    ) -> "QueryResult":
        """Wrap one engine-level :class:`repro.index.KNNResult`."""
        return cls(
            ids=[int(i) for i in result.ids],
            distances=[float(d) for d in result.distances],
            n_verified=int(result.n_verified),
            n_total=int(result.n_total),
            timed_out=timed_out,
            generation=generation,
        )

    @classmethod
    def from_batch(cls, batch: BatchResult) -> "List[QueryResult]":
        """Unpack a :class:`repro.engine.BatchResult` into per-query results."""
        timed_out = set(batch.timed_out)
        return [
            cls.from_knn(result, timed_out=i in timed_out, generation=batch.generation)
            for i, result in enumerate(batch.results)
        ]

    def to_payload(self) -> dict:
        """JSON-safe dict for the wire protocol."""
        generation = self.generation
        if isinstance(generation, tuple):
            generation = list(generation)
        return {
            "ids": self.ids,
            "distances": self.distances,
            "n_verified": self.n_verified,
            "n_total": self.n_total,
            "timed_out": self.timed_out,
            "generation": generation,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "QueryResult":
        """Rebuild a result from its :meth:`to_payload` dict."""
        generation = payload.get("generation")
        if isinstance(generation, list):
            generation = tuple(generation)
        return cls(
            ids=[int(i) for i in payload["ids"]],
            distances=[float(d) for d in payload["distances"]],
            n_verified=int(payload.get("n_verified", 0)),
            n_total=int(payload.get("n_total", 0)),
            timed_out=bool(payload.get("timed_out", False)),
            generation=generation,
        )
