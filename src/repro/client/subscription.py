"""The subscription handle ``Client.subscribe`` returns.

A :class:`Subscription` is a blocking iterator (and, via :meth:`aiter`, an
async iterator) of typed :class:`repro.continuous.Notification` deltas for
one standing query.  The handle is backend-agnostic: a
:class:`~repro.client.LocalClient` feeds it from an in-process queue, a
:class:`~repro.client.TcpClient` from ``notify`` push frames read off the
socket.  Consumers that care about exactly-once semantics track the last
``seq`` they processed and skip re-deliveries at or below it (see
``docs/continuous.md``).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..continuous import Notification

__all__ = ["Subscription"]

Fetch = Callable[[Optional[float]], Notification]


class Subscription:
    """One standing query's notification stream.

    Iterate it (``for note in sub``) to block for deltas forever, call
    :meth:`next` with a timeout to poll, or ``async for note in
    sub.aiter()`` from a coroutine.  ``close()`` unsubscribes on the
    backend; closing is idempotent and ends any iteration with
    ``StopIteration``.
    """

    def __init__(self, sid: str, client, fetch: Fetch):
        #: the backend subscription id (``sub-000001``-style)
        self.id = sid
        self._client = client
        self._fetch = fetch
        self._closed = False

    def next(self, timeout: "Optional[float]" = None) -> Notification:
        """Block for the next notification.

        Raises ``TimeoutError`` when ``timeout`` seconds pass without one,
        and ``StopIteration`` once the subscription is closed.
        """
        if self._closed:
            raise StopIteration
        return self._fetch(timeout)

    def __iter__(self) -> "Subscription":
        return self

    def __next__(self) -> Notification:
        return self.next()

    def aiter(self):
        """An async-iterator view (fetches on a worker thread)."""
        return _AsyncView(self)

    def close(self) -> None:
        """Unsubscribe on the backend (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._client.unsubscribe(self.id)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Subscription(id={self.id!r}, {state})"


class _AsyncView:
    """Async iteration over a blocking subscription."""

    def __init__(self, subscription: Subscription):
        self._subscription = subscription

    def __aiter__(self) -> "_AsyncView":
        return self

    async def __anext__(self) -> Notification:
        import asyncio

        if self._subscription._closed:
            raise StopAsyncIteration
        loop = asyncio.get_event_loop()
        try:
            return await loop.run_in_executor(
                None, self._subscription._fetch, None
            )
        except StopIteration as exc:  # pragma: no cover - defensive
            raise StopAsyncIteration from exc
