"""The TCP backend: a blocking client for ``repro serve``.

Speaks the length-prefixed JSON frame protocol of
:mod:`repro.serving.protocol` over one socket.  The client is synchronous
and issues one request at a time (the server supports pipelining; the
asyncio load-test harness in ``scripts/serve_loadtest.py`` exercises that
path); responses are matched by the echoed request id.

Unsolicited ``notify`` push frames — standing-subscription deltas — may
arrive interleaved with responses at any time, so every frame read first
routes by ``op``: notify frames land in their subscription's inbox (a
:class:`repro.client.Subscription` drains it), everything else matches
the pending request id.
"""

from __future__ import annotations

import json
import socket
import struct
from collections import deque
from typing import Deque, Dict, List, Optional

from ..continuous import Notification, StandingQuery
from ..serving.protocol import (
    MAX_FRAME_BYTES,
    FrameError,
    encode_frame,
)
from .api import KnnRequest, QueryResult, RangeRequest
from .local import Client
from .subscription import Subscription

__all__ = ["TcpClient", "ServerError"]


class ServerError(RuntimeError):
    """The server answered with an error envelope.

    ``code`` is the machine-readable cause: ``"overloaded"`` (shed by
    admission control — retry later), ``"bad_request"`` or ``"internal"``.
    """

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code


class TcpClient(Client):
    """A connected client for one ``repro serve`` endpoint."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: "Optional[float]" = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self._max_frame_bytes = max_frame_bytes
        self._sock = socket.create_connection((host, port), timeout)
        # frames are parsed out of an owned buffer (never socket.makefile):
        # a recv that times out mid-frame leaves the partial bytes here, so
        # the next read resumes with framing intact instead of a poisoned
        # buffered reader
        self._buffer = bytearray()
        self._next_id = 0
        self._closed = False
        self._inboxes: "Dict[str, Deque[Notification]]" = {}

    def _read_frame(self) -> "Optional[dict]":
        """One frame off the socket, honouring its current timeout setting."""
        while True:
            if len(self._buffer) >= 4:
                (length,) = struct.unpack(">I", bytes(self._buffer[:4]))
                if length > self._max_frame_bytes:
                    raise FrameError(
                        f"frame of {length} bytes exceeds the "
                        f"{self._max_frame_bytes} cap"
                    )
                if len(self._buffer) >= 4 + length:
                    body = bytes(self._buffer[4 : 4 + length])
                    del self._buffer[: 4 + length]
                    return json.loads(body.decode("utf-8"))
            chunk = self._sock.recv(1 << 16)
            if not chunk:
                if self._buffer:
                    raise FrameError("connection closed mid-frame")
                return None  # clean close between frames
            self._buffer.extend(chunk)

    def _route_notify(self, frame: dict) -> "Optional[str]":
        """File one push frame into its subscription inbox; returns the sid."""
        sid = frame.get("subscription_id")
        inbox = self._inboxes.get(sid)
        if inbox is None:
            return None  # already unsubscribed: drop the straggler
        inbox.append(Notification.from_payload(frame["notification"]))
        return sid

    def _call(self, op: str, payload: "Optional[dict]" = None) -> dict:
        """One request/response round trip; raises :class:`ServerError` on failure."""
        if self._closed:
            raise RuntimeError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        message = {"id": request_id, "op": op}
        if payload:
            message.update(payload)
        self._sock.sendall(encode_frame(message, self._max_frame_bytes))
        while True:
            response = self._read_frame()
            if response is None:
                raise ConnectionError("server closed the connection mid-request")
            if response.get("op") == "notify":
                self._route_notify(response)
                continue
            if response.get("id") == request_id:
                break
        if not response.get("ok"):
            raise ServerError(
                response.get("code", "internal"), response.get("error", "unknown error")
            )
        return response

    def knn(self, request: KnnRequest) -> "List[QueryResult]":
        """Answer a batch k-NN request over the wire."""
        response = self._call("knn", request.to_payload())
        return [QueryResult.from_payload(item) for item in response["results"]]

    def range(self, request: RangeRequest) -> QueryResult:
        """Answer a radius query over the wire."""
        response = self._call("range", request.to_payload())
        return QueryResult.from_payload(response["result"])

    # -- mutation + continuous surface -----------------------------------
    def insert(self, series) -> int:
        """Insert one series over the wire; returns its global id."""
        payload = {"series": [float(v) for v in series]}
        return int(self._call("insert", payload)["series_id"])

    def delete(self, series_id: int) -> bool:
        """Tombstone one series id over the wire."""
        return bool(self._call("delete", {"series_id": int(series_id)})["deleted"])

    def subscribe(self, query: StandingQuery) -> Subscription:
        """Register a standing query; deltas arrive as push frames."""
        response = self._call("subscribe", {"query": query.to_payload()})
        sid = str(response["subscription_id"])
        self._inboxes[sid] = deque()
        return Subscription(sid, self, lambda timeout: self._fetch_notify(sid, timeout))

    def unsubscribe(self, subscription_id: str) -> bool:
        """Drop a standing query; its inbox is discarded."""
        response = self._call("unsubscribe", {"subscription_id": subscription_id})
        self._inboxes.pop(subscription_id, None)
        return bool(response["unsubscribed"])

    def _fetch_notify(self, sid: str, timeout: "Optional[float]") -> Notification:
        """Next notification for ``sid`` — drain the inbox, then the socket.

        Only safe from the thread using this client (the client is
        single-threaded by contract); other subscriptions' frames read
        here land in their own inboxes.
        """
        inbox = self._inboxes.get(sid)
        if inbox is None:
            raise StopIteration  # unsubscribed while iterating
        if inbox:
            return inbox.popleft()
        previous = self._sock.gettimeout()
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            while True:
                try:
                    frame = self._read_frame()
                except socket.timeout:
                    raise TimeoutError(
                        f"no notification for {sid} within {timeout}s"
                    ) from None
                if frame is None:
                    raise ConnectionError("server closed the connection")
                if frame.get("op") == "notify" and self._route_notify(frame) == sid:
                    return inbox.popleft()
        finally:
            if timeout is not None:
                self._sock.settimeout(previous)

    def stats(self) -> dict:
        """Server state (in-flight, peaks, shards) plus its metrics snapshot."""
        response = self._call("stats")
        return {key: response[key] for key in ("server", "stats") if key in response}

    def ping(self) -> bool:
        """Round-trip liveness check."""
        return bool(self._call("ping").get("pong"))

    def close(self) -> None:
        """Close the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._sock.close()
