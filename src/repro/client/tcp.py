"""The TCP backend: a blocking client for ``repro serve``.

Speaks the length-prefixed JSON frame protocol of
:mod:`repro.serving.protocol` over one socket.  The client is synchronous
and issues one request at a time (the server supports pipelining; the
asyncio load-test harness in ``scripts/serve_loadtest.py`` exercises that
path); responses are matched by the echoed request id.
"""

from __future__ import annotations

import socket
from typing import List, Optional

from ..serving.protocol import (
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame_blocking,
)
from .api import KnnRequest, QueryResult, RangeRequest
from .local import Client

__all__ = ["TcpClient", "ServerError"]


class ServerError(RuntimeError):
    """The server answered with an error envelope.

    ``code`` is the machine-readable cause: ``"overloaded"`` (shed by
    admission control — retry later), ``"bad_request"`` or ``"internal"``.
    """

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code


class TcpClient(Client):
    """A connected client for one ``repro serve`` endpoint."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: "Optional[float]" = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self._max_frame_bytes = max_frame_bytes
        self._sock = socket.create_connection((host, port), timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        self._closed = False

    def _call(self, op: str, payload: "Optional[dict]" = None) -> dict:
        """One request/response round trip; raises :class:`ServerError` on failure."""
        if self._closed:
            raise RuntimeError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        message = {"id": request_id, "op": op}
        if payload:
            message.update(payload)
        self._sock.sendall(encode_frame(message, self._max_frame_bytes))
        while True:
            response = read_frame_blocking(self._file, self._max_frame_bytes)
            if response is None:
                raise ConnectionError("server closed the connection mid-request")
            if response.get("id") == request_id:
                break
        if not response.get("ok"):
            raise ServerError(
                response.get("code", "internal"), response.get("error", "unknown error")
            )
        return response

    def knn(self, request: KnnRequest) -> "List[QueryResult]":
        """Answer a batch k-NN request over the wire."""
        response = self._call("knn", request.to_payload())
        return [QueryResult.from_payload(item) for item in response["results"]]

    def range(self, request: RangeRequest) -> QueryResult:
        """Answer a radius query over the wire."""
        response = self._call("range", request.to_payload())
        return QueryResult.from_payload(response["result"])

    def stats(self) -> dict:
        """Server state (in-flight, peaks, shards) plus its metrics snapshot."""
        response = self._call("stats")
        return {key: response[key] for key in ("server", "stats") if key in response}

    def ping(self) -> bool:
        """Round-trip liveness check."""
        return bool(self._call("ping").get("pong"))

    def close(self) -> None:
        """Close the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        finally:
            self._sock.close()
