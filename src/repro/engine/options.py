"""Typed options and results for the batched query engine.

The engine's public vocabulary: :class:`ExecutionMode` names the execution
strategies, :class:`QueryOptions` is the validated, immutable per-batch
configuration, and :class:`BatchResult` carries every per-query
:class:`repro.index.KNNResult` plus batch-level accounting.  All validation
is eager — a bad option raises here, never mid-round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Union

from ..index.knn import KNNResult

__all__ = ["ExecutionMode", "QueryOptions", "BatchResult"]


class ExecutionMode(str, Enum):
    """How :meth:`repro.engine.QueryEngine.knn_batch` executes a batch.

    ``AUTO`` lets the engine choose (currently: vectorised, fanned across a
    worker pool when ``parallelism > 1``).  ``VECTORIZED`` forces the batched
    path: stacked representation bounds where the method supports them and
    one NumPy verification pass per round across all pending (query,
    candidate) pairs.  ``SEQUENTIAL`` runs each query to completion on its
    own with scalar bounds — the classic per-query loop, kept as the
    benchmark baseline.  All modes return identical ids and distances.
    """

    AUTO = "auto"
    SEQUENTIAL = "sequential"
    VECTORIZED = "vectorized"

    def __str__(self) -> str:  # keep f-strings printing 'auto', not the member
        return self.value


@dataclass(frozen=True)
class QueryOptions:
    """Validated, immutable configuration for one ``knn_batch`` call.

    Args:
        k: neighbours per query (>= 1).
        mode: an :class:`ExecutionMode` (or its string value).
        deadline_s: optional wall-clock budget for the whole batch; queries
            unfinished at the deadline return their best-so-far neighbours
            and are listed in :attr:`BatchResult.timed_out`.
        parallelism: worker processes for the frontier walks (1 = in
            process).  Honoured in ``AUTO``/``VECTORIZED`` mode when the raw
            data can be shared; silently sequential otherwise.
        lookahead: candidates verified per query per round after the initial
            ``k`` (1 reproduces the classic one-at-a-time refinement and is
            required for verification counts to match the sequential path).
        cascade: evaluate representation bounds through the
            :mod:`bound cascade <repro.distance.cascade>` — cheap dominated
            tiers ahead of the exact bound.  Results, verification counts
            and all search accounting are identical either way; ``False``
            forces every bound to evaluate eagerly (the pre-cascade paths,
            kept for benchmarking and equivalence testing).
        early_abandon: allow large verification rounds to drop (query,
            candidate) pairs whose accumulating squared distance certainly
            exceeds the query's current k-th-best distance.  Survivors are
            re-measured exactly, so results are identical; only engages for
            rounds above ``EARLY_ABANDON_MIN_ELEMENTS`` pair-elements.
    """

    k: int = 1
    mode: "Union[ExecutionMode, str]" = ExecutionMode.AUTO
    deadline_s: Optional[float] = None
    parallelism: int = 1
    lookahead: int = 1
    cascade: bool = True
    early_abandon: bool = True

    def __post_init__(self):
        object.__setattr__(self, "mode", ExecutionMode(self.mode))
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")


@dataclass
class BatchResult:
    """Outcome of one ``knn_batch`` call.

    ``results[i]`` answers ``queries[i]``; ``timed_out`` lists the query
    indices whose results are partial because the batch deadline fired.
    """

    results: "List[KNNResult]"
    timed_out: "List[int]" = field(default_factory=list)
    elapsed_s: float = 0.0
    rounds: int = 0
    parallelism: int = 1
    #: database generation the batch was served at (``None`` when the
    #: database has no lifecycle tracking) — the whole batch saw exactly
    #: this version, regardless of concurrent inserts/deletes.
    generation: "Optional[int]" = None

    @property
    def n_queries(self) -> int:
        """Number of queries answered."""
        return len(self.results)

    @property
    def total_verified(self) -> int:
        """Raw-series verifications summed over the batch."""
        return sum(r.n_verified for r in self.results)

    @property
    def pruning_power(self) -> float:
        """Aggregate paper Eq. (14): batch verifications over batch candidates."""
        total = sum(r.n_total for r in self.results)
        return self.total_verified / total if total else 0.0
