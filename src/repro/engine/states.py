"""Per-query search state machines, stepped in vectorised rounds.

Each query owns one state object — :class:`ScanState` for the tree-less
GEMINI filtered scan, :class:`TreeState` for the best-first DBCH/R-tree
walk.  A state alternates between :meth:`~_QueryState.advance` (emit the
series ids it needs verified next, or finish) and :meth:`~_QueryState.feed`
(absorb their exact distances).  The engine drives many states in lockstep
and resolves all pending (query, candidate) pairs of a round in one NumPy
call; because every decision a state makes depends only on its own
accumulated state, a batch member answers exactly as the same query would
alone.

The verification budget is ``k`` on the first advance (the first ``k``
survivors are always verified — the result heap is not full yet, so no
stop rule can fire between them) and ``lookahead`` (default 1) afterwards,
which reproduces the classic one-candidate-at-a-time refinement loop and
its verification counts exactly.
"""

from __future__ import annotations

import heapq
from typing import List

import numpy as np

from ..index.knn import KNNResult, TopK, _Frontier
from ..kinds import IndexKind

__all__ = ["ScanState", "TreeState", "make_state", "gather_rows"]


def gather_rows(data, series_ids: "List[int]") -> np.ndarray:
    """Stack the raw rows for ``series_ids`` into a ``(len, n)`` matrix.

    In-memory arrays fancy-index in one shot.  Disk-backed views exposing
    ``gather`` resolve the whole batch in one call (memory-mapped column
    slice, or a page-sequential batched read) with the physical I/O still
    charged per row; anything supporting only integer ``data[i]`` falls
    back to row-by-row reads.
    """
    if isinstance(data, np.ndarray):
        return data[np.asarray(series_ids, dtype=np.intp)]
    gather = getattr(data, "gather", None)
    if gather is not None:
        return gather(series_ids)
    return np.stack([np.asarray(data[int(sid)], dtype=float) for sid in series_ids])


def _query_cascade(db, ctx):
    """The database's per-query cascade, or ``None`` when unavailable."""
    cascade_of = getattr(db, "cascade", None)
    if not callable(cascade_of):
        return None
    return cascade_of().for_query(ctx)


class _QueryState:
    """Common machinery: the result heap, budget schedule and accounting."""

    def __init__(self, db, query: np.ndarray, k: int, lookahead: int):
        self.db = db
        self.query = query
        self.ctx = db.query_context(query)
        self.topk = TopK(k)
        self.k = k
        self.lookahead = lookahead
        self.verified = 0
        self.done = False
        self._advances = 0

    def advance(self) -> "List[int]":
        """Series ids to verify this round (may set :attr:`done`)."""
        if self.done:
            return []
        budget = self.k if self._advances == 0 else self.lookahead
        self._advances += 1
        return self._collect(budget)

    def feed(self, series_ids: "List[int]", distances: np.ndarray) -> None:
        """Absorb the exact distances for the ids the last advance emitted."""
        for sid, dist in zip(series_ids, distances):
            self.topk.offer(float(dist), int(sid))
        self.verified += len(series_ids)

    def _collect(self, budget: int) -> "List[int]":
        raise NotImplementedError

    def finalize(self) -> KNNResult:
        """The query's result from whatever has been verified so far."""
        raise NotImplementedError

    def _ranked(self) -> "tuple[List[int], List[float]]":
        ranked = self.topk.ranked()
        return [sid for _, sid in ranked], [d for d, _ in ranked]


class ScanState(_QueryState):
    """GEMINI without a tree: bound every entry, verify in bound order.

    Bounds come from the suite's stacked batch bound when available (one
    NumPy pass over all entries) and otherwise from the scalar
    ``query_bound`` loop; candidates are ordered by ``(bound, series id)``
    and consumed until the next bound strictly exceeds the k-th best true
    distance.

    Without a stacked layout (adaptive representations, or the sequential
    baseline) the scalar loop is the dominant query cost, so that case runs
    the :mod:`bound cascade <repro.distance.cascade>` lazily instead: a heap
    of ``(cheap key, series id)`` pairs whose front is refined to the exact
    bound on demand.  Dominated cheap keys make both the stop rule and the
    ``(bound, id)`` emission order provably identical to the eager loop, so
    candidates, verifications and results do not change — only how many
    exact ``query_bound`` evaluations were needed to produce them.
    """

    def __init__(
        self,
        db,
        query,
        k: int,
        lookahead: int,
        use_batch_bounds: bool,
        cascade: bool = True,
    ):
        super().__init__(db, query, k, lookahead)
        self._lazy = None
        self._qc = None
        stacked = db.stacked_entries() if use_batch_bounds else None
        if stacked is None and cascade:
            qc = _query_cascade(db, self.ctx)
            if qc is not None:
                collection = qc.cascade.collection(db)
                keys = qc.cheap_keys(collection)
                heap = [
                    (key, sid, False, entry.representation)
                    for key, sid, entry in zip(
                        keys.tolist(), collection.sids.tolist(), db.entries
                    )
                ]
                heapq.heapify(heap)
                self._lazy = heap
                self._qc = qc
                self.n_candidates = len(heap)
                return
        if stacked is not None:
            sids, packed = stacked
            bounds = db.suite.query_bound_batch(self.ctx, packed)
        else:
            sids = np.array([e.series_id for e in db.entries], dtype=np.int64)
            bounds = np.array(
                [db.suite.query_bound(self.ctx, e.representation) for e in db.entries],
                dtype=float,
            )
        if len(sids):
            order = np.lexsort((sids, bounds))
            sids, bounds = sids[order], bounds[order]
        self._sids = sids
        self._bounds = bounds
        self._pos = 0
        self.n_candidates = len(sids)

    def _collect(self, budget: int) -> "List[int]":
        if self._lazy is not None:
            return self._collect_lazy(budget)
        pending: "List[int]" = []
        while len(pending) < budget and self._pos < len(self._sids):
            if self.topk.full and self._bounds[self._pos] > self.topk.threshold:
                self.done = True
                return pending
            pending.append(int(self._sids[self._pos]))
            self._pos += 1
        if self._pos >= len(self._sids):
            self.done = True
        return pending

    def _collect_lazy(self, budget: int) -> "List[int]":
        pending: "List[int]" = []
        heap, qc = self._lazy, self._qc
        while len(pending) < budget and heap:
            key, sid, refined, rep = heap[0]
            if self.topk.full and key > self.topk.threshold:
                # Cheap keys are dominated: the heap minimum already above
                # the threshold means every exact bound still queued is too
                # — exactly when the eager loop's next bound would stop it.
                self.done = True
                return pending
            if refined:
                heapq.heappop(heap)
                pending.append(sid)
            else:
                heapq.heapreplace(heap, (qc.refine(rep), sid, True, rep))
        if not heap:
            self.done = True
        return pending

    def finalize(self) -> KNNResult:
        if self._qc is not None:
            self._qc.flush()
        ids, distances = self._ranked()
        return KNNResult(
            ids=ids,
            distances=distances,
            n_verified=self.verified,
            n_total=len(self.db.entries),
            nodes_visited=0,
            n_candidates=self.n_candidates,
            node_pushes=0,
            heap_pushes=0,
        )


class TreeState(_QueryState):
    """Best-first multi-step search (Hjaltason & Samet / Seidl & Kriegel).

    The priority queue mixes *nodes* (keyed by index-structure distance)
    and *entries* (keyed by the method's representation bound); an entry
    reaching the queue front is emitted for verification only while its
    bound does not strictly exceed the k-th best true distance.  Pruning
    power then reflects exactly the tightness of the method's bound plus
    the index's navigation quality.

    With a :mod:`bound cascade <repro.distance.cascade>` available, leaf
    entries (and, on the DBCH-tree, node children) enter the queue keyed by
    their cheap dominated tier and are refined to the exact key only on
    reaching the front; tick-preserving reinsertion keeps the pop sequence
    of refined items — and hence results, verifications and all counters —
    identical to the single-bound walk.
    """

    def __init__(self, db, query, k: int, lookahead: int, cascade: bool = True):
        super().__init__(db, query, k, lookahead)
        self.frontier = _Frontier()
        self.visited = 0
        self._qc = _query_cascade(db, self.ctx) if cascade else None
        self._node_tier = self._qc is not None and db.index_kind == IndexKind.DBCH
        #: node keys that are navigation hints, not bounds (adaptive R-tree):
        #: they order the walk but may never stop it or skip a subtree.
        self._hint_nodes = not db.node_bounds_exact
        self.frontier.push_node(db.node_distance(self.ctx, db.tree.root), db.tree.root)

    def _collect(self, budget: int) -> "List[int]":
        pending: "List[int]" = []
        db, frontier, qc = self.db, self.frontier, self._qc
        while len(pending) < budget and frontier:
            dist, tick, kind, payload = frontier.pop()
            if self.topk.full and dist > self.topk.threshold:
                if not self._hint_nodes:
                    self.done = True
                    return pending
                if kind in ("entry", "uentry"):
                    continue  # entry bounds stay exact; node keys are hints
            if kind == "uentry":
                frontier.reinsert(qc.refine(payload.representation), tick, "entry", payload)
                continue
            if kind == "unode":
                qc.n_node_refine += 1
                frontier.reinsert(db.node_distance(self.ctx, payload), tick, "node", payload)
                continue
            if kind == "entry":
                pending.append(payload.series_id)
                continue
            self.visited += 1
            if payload.is_leaf:
                if qc is not None:
                    for entry in payload.entries:
                        frontier.push_entry(
                            qc.cheap(entry.representation), entry, refined=False
                        )
                else:
                    for entry in payload.entries:
                        frontier.push_entry(
                            db.suite.query_bound(self.ctx, entry.representation), entry
                        )
            elif self._node_tier:
                for child in payload.children:
                    frontier.push_node(qc.node_lower(child), child, refined=False)
            else:
                for child in payload.children:
                    frontier.push_node(db.node_distance(self.ctx, child), child)
        if not frontier:
            self.done = True
        return pending

    def finalize(self) -> KNNResult:
        if self._qc is not None:
            self._qc.flush()
        ids, distances = self._ranked()
        return KNNResult(
            ids=ids,
            distances=distances,
            n_verified=self.verified,
            n_total=len(self.db.entries),
            nodes_visited=self.visited,
            n_candidates=self.frontier.entry_pushes,
            node_pushes=self.frontier.node_pushes,
            heap_pushes=self.frontier.pushes,
        )


def make_state(
    db,
    query: np.ndarray,
    k: int,
    lookahead: int,
    use_batch_bounds: bool,
    cascade: bool = True,
):
    """The right state machine for ``db``'s index configuration."""
    if db.tree is None:
        return ScanState(db, query, k, lookahead, use_batch_bounds, cascade)
    return TreeState(db, query, k, lookahead, cascade)
