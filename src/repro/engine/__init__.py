"""repro.engine — batched k-NN query execution with a typed surface.

The engine answers many queries per call: per-query index frontiers advance
in lockstep while candidate verification is vectorised across the whole
batch (one NumPy matrix operation per round), optionally fanning the
frontier walks across a worker pool with the raw data in shared memory.
:meth:`repro.index.SeriesDatabase.knn` is a batch-of-one wrapper over the
same code path, so single and batched answers are byte-identical.  See
``docs/query_engine.md`` for semantics and caveats.
"""

from .engine import QueryEngine
from .options import BatchResult, ExecutionMode, QueryOptions

__all__ = ["BatchResult", "ExecutionMode", "QueryEngine", "QueryOptions"]
