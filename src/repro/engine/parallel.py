"""Worker-pool fan-out for the batched engine.

``run_parallel`` splits a batch's frontier walks across a ``fork`` process
pool.  The raw data matrix is copied once into POSIX shared memory
(:mod:`multiprocessing.shared_memory`); the forked workers inherit the
mapping, so no per-task pickling or per-worker copy of the collection ever
happens — each worker swaps the shared view in as its database's ``data``
and runs the ordinary vectorised engine on its slice of the queries.

Workers return plain :class:`repro.index.KNNResult` lists plus a metrics
snapshot.  Each worker records into a fresh enabled registry (when the
parent was collecting) and the parent folds the snapshots back in with
:meth:`repro.obs.MetricsRegistry.merge_snapshot`, *excluding* the names the
engine re-records itself from the returned results (``knn.*`` search
accounting, ``dist.euclidean.exact``, ``engine.*``) so nothing is counted
twice.  Merged metrics therefore match an in-process run exactly; the one
documented loss is the workers' *span trees* — wall/CPU tracing is
per-process, and the parent's enclosing ``engine.knn_batch`` span already
covers the fan-out wall time.  Fan-out degrades gracefully: on platforms
without ``fork``, or when the raw data lives behind a paged store rather
than an in-memory array, ``run_parallel`` returns ``None`` and the caller
stays sequential.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import replace
from multiprocessing import shared_memory
from typing import List, Optional

import numpy as np

__all__ = ["run_parallel", "RERECORDED_METRICS"]

#: metric names (or dotted prefixes ending in ``.``) the parent re-records
#: from worker results via ``record_search`` and the engine's own batch
#: accounting — excluded from worker-snapshot merging to avoid double counts.
RERECORDED_METRICS = (
    "knn.queries",
    "knn.nodes_visited",
    "knn.nodes_pruned",
    "knn.entries_refined",
    "knn.heap_pushes",
    "knn.verified_per_query",
    "knn.pruned.",
    "dist.euclidean.exact",
    "engine.",
)

#: set by the parent just before the pool forks; inherited by workers.
_WORKER_DB = None
_WORKER_DATA = None


def run_parallel(db, queries: np.ndarray, options):
    """Fan ``queries`` across ``options.parallelism`` worker processes.

    Returns ``(results, timed_out, rounds, workers)`` with results in query
    order, or ``None`` when fan-out is unavailable (no ``fork`` start
    method, paged/non-array raw data, or a batch too small to split).
    """
    data = db.data
    if not isinstance(data, np.ndarray):
        return None  # paged stores hold file handles; keep those in-process
    workers = min(options.parallelism, len(queries))
    if workers < 2:
        return None
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        return None
    chunks = [c for c in np.array_split(np.arange(len(queries)), workers) if len(c)]
    block = shared_memory.SharedMemory(create=True, size=max(data.nbytes, 1))
    shared = np.ndarray(data.shape, dtype=data.dtype, buffer=block.buf)
    shared[:] = data
    per_worker = replace(options, parallelism=1)
    global _WORKER_DB, _WORKER_DATA
    _WORKER_DB, _WORKER_DATA = db, shared
    try:
        with context.Pool(processes=len(chunks)) as pool:
            outputs = pool.map(
                _run_chunk, [(queries[chunk], per_worker) for chunk in chunks]
            )
    except OSError:
        return None
    finally:
        _WORKER_DB = _WORKER_DATA = None
        del shared
        block.close()
        block.unlink()
    from .. import obs

    results: "List" = []
    timed_out: "List[int]" = []
    rounds = 0
    for chunk, (chunk_results, chunk_timed_out, chunk_rounds, snap) in zip(
        chunks, outputs
    ):
        results.extend(chunk_results)
        timed_out.extend(int(chunk[i]) for i in chunk_timed_out)
        rounds = max(rounds, chunk_rounds)
        if snap is not None and obs.is_enabled():
            obs.registry().merge_snapshot(snap, exclude=RERECORDED_METRICS)
    return results, timed_out, rounds, len(chunks)


def _run_chunk(payload):
    """Worker body: answer one slice of the batch against the shared data."""
    chunk_queries, options = payload
    from .. import obs
    from .engine import QueryEngine

    # this mutates the forked copy only; the parent's database is untouched
    db = _WORKER_DB
    db.data = _WORKER_DATA
    db._engine = None
    # With the parent collecting, record into a fresh registry and ship its
    # snapshot back; spans stay off (per-process trees cannot merge).  The
    # parent still re-records the knn.*/engine.* accounting itself, so those
    # names are excluded from the merge (RERECORDED_METRICS).
    collecting = obs.is_enabled()
    obs.disable()
    if collecting:
        obs.set_registry(obs.MetricsRegistry(enabled=True))
    batch = QueryEngine(db, _internal=True).knn_batch(chunk_queries, options)
    snap = obs.registry().snapshot() if collecting else None
    return batch.results, batch.timed_out, batch.rounds, snap
