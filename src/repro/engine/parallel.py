"""Worker-pool fan-out for the batched engine.

``run_parallel`` splits a batch's frontier walks across a ``fork`` process
pool.  The raw data matrix is copied once into POSIX shared memory
(:mod:`multiprocessing.shared_memory`); the forked workers inherit the
mapping, so no per-task pickling or per-worker copy of the collection ever
happens — each worker swaps the shared view in as its database's ``data``
and runs the ordinary vectorised engine on its slice of the queries.

Workers return plain :class:`repro.index.KNNResult` lists; the parent
re-records their accounting into the metrics registry (child registries are
disabled — they would die with the process).  Fan-out degrades gracefully:
on platforms without ``fork``, or when the raw data lives behind a paged
store rather than an in-memory array, ``run_parallel`` returns ``None`` and
the caller stays sequential.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import replace
from multiprocessing import shared_memory
from typing import List, Optional

import numpy as np

__all__ = ["run_parallel"]

#: set by the parent just before the pool forks; inherited by workers.
_WORKER_DB = None
_WORKER_DATA = None


def run_parallel(db, queries: np.ndarray, options):
    """Fan ``queries`` across ``options.parallelism`` worker processes.

    Returns ``(results, timed_out, rounds, workers)`` with results in query
    order, or ``None`` when fan-out is unavailable (no ``fork`` start
    method, paged/non-array raw data, or a batch too small to split).
    """
    data = db.data
    if not isinstance(data, np.ndarray):
        return None  # paged stores hold file handles; keep those in-process
    workers = min(options.parallelism, len(queries))
    if workers < 2:
        return None
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        return None
    chunks = [c for c in np.array_split(np.arange(len(queries)), workers) if len(c)]
    block = shared_memory.SharedMemory(create=True, size=max(data.nbytes, 1))
    shared = np.ndarray(data.shape, dtype=data.dtype, buffer=block.buf)
    shared[:] = data
    per_worker = replace(options, parallelism=1)
    global _WORKER_DB, _WORKER_DATA
    _WORKER_DB, _WORKER_DATA = db, shared
    try:
        with context.Pool(processes=len(chunks)) as pool:
            outputs = pool.map(
                _run_chunk, [(queries[chunk], per_worker) for chunk in chunks]
            )
    except OSError:
        return None
    finally:
        _WORKER_DB = _WORKER_DATA = None
        del shared
        block.close()
        block.unlink()
    results: "List" = []
    timed_out: "List[int]" = []
    rounds = 0
    for chunk, (chunk_results, chunk_timed_out, chunk_rounds) in zip(chunks, outputs):
        results.extend(chunk_results)
        timed_out.extend(int(chunk[i]) for i in chunk_timed_out)
        rounds = max(rounds, chunk_rounds)
    return results, timed_out, rounds, len(chunks)


def _run_chunk(payload):
    """Worker body: answer one slice of the batch against the shared data."""
    chunk_queries, options = payload
    from .. import obs
    from .engine import QueryEngine

    # this mutates the forked copy only; the parent's database is untouched
    db = _WORKER_DB
    db.data = _WORKER_DATA
    db._engine = None
    obs.disable()  # the parent re-records accounting from the returned results
    batch = QueryEngine(db).knn_batch(chunk_queries, options)
    return batch.results, batch.timed_out, batch.rounds
