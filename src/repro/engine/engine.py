"""The batched k-NN query engine.

:class:`QueryEngine.knn_batch` plans every query of a batch up front (one
:mod:`state machine <repro.engine.states>` each), then advances all of them
in rounds: each round gathers every pending (query, candidate) pair across
the batch and resolves their exact Euclidean distances in a single
``np.linalg.norm(rows - query_rows, axis=1)`` matrix operation — the same
row-wise primitive :func:`repro.index.linear_scan` uses, so distances agree
bit-for-bit.  Because each state's decisions depend only on its own history,
a query answers identically whether it runs alone (``SeriesDatabase.knn``),
inside a batch, or inside a worker process (``parallelism > 1``).

Deadlines are checked between rounds: when the batch's ``deadline_s``
expires, the remaining queries finalise with their best-so-far neighbours
and are reported in :attr:`BatchResult.timed_out`.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from .. import obs
from ..index.knn import record_search
from .options import BatchResult, ExecutionMode, QueryOptions
from .parallel import run_parallel
from .states import gather_rows, make_state

__all__ = ["QueryEngine"]

#: minimum (pairs × series length) for a round to engage the early-abandoning
#: filter — below this the plain matrix norm is faster than filtering.
EARLY_ABANDON_MIN_ELEMENTS = 32768


class QueryEngine:
    """Batched query execution over one :class:`repro.index.SeriesDatabase`.

    The engine is stateless between calls; it reads the database's entries,
    tree and distance suite at call time, so ingest/insert/delete between
    batches are picked up automatically.

    Constructing an engine directly is deprecated: reach one through the
    :mod:`repro.client` facade (``connect(database)``), or via
    ``database.engine()`` / ``snapshot.engine()`` for engine-level access.
    Direct construction still works but emits a single-shot
    ``DeprecationWarning`` per process.
    """

    def __init__(self, database, *, _internal: bool = False):
        if not _internal:
            from .._deprecations import warn_once

            warn_once(
                "QueryEngine",
                "constructing QueryEngine(database) directly is deprecated; use "
                "repro.client.connect(database) or database.engine() instead",
            )
        self.database = database

    def knn_batch(
        self, queries: np.ndarray, options: "Optional[QueryOptions]" = None
    ) -> BatchResult:
        """Answer every row of ``queries`` (shape ``(Q, n)``) at ``options.k``.

        Returns a :class:`BatchResult` whose ``results[i]`` corresponds to
        ``queries[i]``, with ids and distances byte-identical to running
        each query alone.
        """
        options = options if options is not None else QueryOptions()
        if self.database.data is None:
            raise RuntimeError("ingest data before searching")
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2:
            raise ValueError("knn_batch expects a (Q, n) array of queries")
        # Pin a snapshot so concurrent inserts/deletes never shift the
        # entry list or tree under a batch mid-flight; plain databases
        # (no lifecycle mixin) run unpinned as before.
        snapshot_fn = getattr(self.database, "snapshot", None)
        db = snapshot_fn() if callable(snapshot_fn) else self.database
        pinned = db is not self.database
        start = time.perf_counter()
        try:
            with obs.span("engine.knn_batch"):
                results, timed_out, rounds, used_workers = self._dispatch(
                    db, queries, options
                )
                for result in results:
                    record_search(result, db.suite.mode)
                if obs.is_enabled():
                    obs.count("engine.batches")
                    obs.count("engine.rounds", rounds)
                    obs.count("engine.pairs_verified", sum(r.n_verified for r in results))
                    obs.observe("engine.batch_size", len(queries))
                    obs.gauge_set("engine.parallelism", used_workers)
                    if timed_out:
                        obs.count("engine.timeouts", len(timed_out))
            return BatchResult(
                results=results,
                timed_out=sorted(timed_out),
                elapsed_s=time.perf_counter() - start,
                rounds=rounds,
                parallelism=used_workers,
                generation=getattr(db, "generation", None),
            )
        finally:
            if pinned:
                db.release()

    # ------------------------------------------------------------------
    def _dispatch(self, db, queries: np.ndarray, options: QueryOptions):
        """Choose and run an execution strategy over the pinned view ``db``;
        returns ``(results, timed_out, rounds, workers_used)``."""
        if options.parallelism > 1 and options.mode is not ExecutionMode.SEQUENTIAL:
            fanned = run_parallel(db, queries, options)
            if fanned is not None:
                results, timed_out, rounds, workers = fanned
                return results, timed_out, rounds, workers
        if options.mode is ExecutionMode.SEQUENTIAL:
            return self._run_sequential(db, queries, options) + (1,)
        return self._run_vectorized(db, queries, options) + (1,)

    def _run_vectorized(self, db, queries: np.ndarray, options: QueryOptions):
        """All queries advance in lockstep; one distance call per round."""
        deadline = _absolute_deadline(options)
        states = [
            make_state(
                db,
                query,
                options.k,
                options.lookahead,
                use_batch_bounds=True,
                cascade=options.cascade,
            )
            for query in queries
        ]
        rounds, timed_out = self._execute(db, states, queries, deadline, options)
        return [state.finalize() for state in states], timed_out, rounds

    def _run_sequential(self, db, queries: np.ndarray, options: QueryOptions):
        """Classic baseline: each query runs to completion with scalar bounds."""
        deadline = _absolute_deadline(options)
        results, timed_out, rounds = [], [], 0
        for index in range(len(queries)):
            state = make_state(
                db,
                queries[index],
                options.k,
                options.lookahead,
                use_batch_bounds=False,
                cascade=options.cascade,
            )
            done_rounds, late = self._execute(
                db, [state], queries[index][None, :], deadline, options
            )
            rounds += done_rounds
            if late:
                timed_out.append(index)
            results.append(state.finalize())
        return results, timed_out, rounds

    def _execute(
        self,
        db,
        states: list,
        queries: np.ndarray,
        deadline: "Optional[float]",
        options: "Optional[QueryOptions]" = None,
    ):
        """Drive ``states`` to completion; returns ``(rounds, timed_out)``.

        ``timed_out`` holds the indices (into ``states``) still unfinished
        when the deadline fired; their partial heaps remain valid.
        """
        data = db.data
        active = list(range(len(states)))
        rounds = 0
        timed_out: "List[int]" = []
        while active:
            if deadline is not None and time.monotonic() >= deadline:
                timed_out = list(active)
                break
            pending: "list[tuple[int, List[int]]]" = []
            for index in active:
                series_ids = states[index].advance()
                if series_ids:
                    pending.append((index, series_ids))
            if pending:
                all_sids = [sid for _, sids in pending for sid in sids]
                owners = [index for index, sids in pending for _ in sids]
                distances = self._round_distances(
                    db, data, queries, states, all_sids, owners, options
                )
                cursor = 0
                for index, series_ids in pending:
                    states[index].feed(
                        series_ids, distances[cursor : cursor + len(series_ids)]
                    )
                    cursor += len(series_ids)
                rounds += 1
            active = [index for index in active if not states[index].done]
        return rounds, timed_out

    # ------------------------------------------------------------------
    def _round_distances(
        self, db, data, queries, states, all_sids, owners, options
    ) -> np.ndarray:
        """Exact distances for one round's (query, candidate) pairs.

        Rounds large enough to clear :data:`EARLY_ABANDON_MIN_ELEMENTS` go
        through the early-abandoning blocked filter when the caller allows
        it; every other round (including every round of a small batch) is
        the plain one-shot matrix norm.
        """
        owner_idx = np.asarray(owners, dtype=np.intp)
        if (
            options is not None
            and options.early_abandon
            and len(all_sids) * queries.shape[1] >= EARLY_ABANDON_MIN_ELEMENTS
        ):
            thresholds = np.array(
                [states[index].topk.threshold for index in owners], dtype=float
            )
            if np.isfinite(thresholds).any():
                filtered = self._abandoning_distances(
                    db, data, queries, all_sids, owner_idx, thresholds
                )
                if filtered is not None:
                    return filtered
        rows = gather_rows(data, all_sids)
        query_rows = queries[owner_idx]
        return np.linalg.norm(rows - query_rows, axis=1)

    def _abandoning_distances(
        self, db, data, queries, all_sids, owner_idx, thresholds
    ) -> "Optional[np.ndarray]":
        """Early-abandoning verification of one round, or ``None`` to fall back.

        Squared distances accumulate over column chunks; a (query, candidate)
        pair is dropped as soon as its partial sum certainly exceeds the
        query's k-th-best distance sampled at round start.  Survivors are
        re-measured with the exact full-row ``np.linalg.norm`` on the
        ``float64`` rows — row distances are independent, so the values fed
        onward are bit-identical to the unfiltered round.  Dropped pairs
        feed ``inf``: their true distance strictly exceeds a full heap's
        threshold, so, exactly like the true value, ``inf`` self-evicts
        without touching the heap.  The float32 filter block only ever
        decides *which* rows get the exact treatment, with a margin covering
        its cast and accumulation error; thresholds of ``inf`` (heap not
        full yet) disable abandoning for their pairs naturally.
        """
        columns_of = getattr(db, "columns", None)
        block = columns_of() if callable(columns_of) else None
        if block is None:
            return None
        m = len(all_sids)
        n = queries.shape[1]
        finite = np.isfinite(thresholds)
        qrows = queries[owner_idx]
        if block.dtype == np.float32:
            # in-memory float32 filter cache: margin covers the cast error
            cand = block.gather(all_sids)
            filt_q = qrows.astype(np.float32)
            cnorm = block.row_norms[np.asarray(all_sids, dtype=np.intp)]
            qnorm = np.linalg.norm(qrows, axis=1)
            limit = (
                thresholds * (1.0 + 1e-9)
                + 1e-12
                + 1e-5 * (qnorm + cnorm)
                + 1e-9
            )
            exact_rows = None
        else:
            # float64 memmap rows: gather once (this charges the physical
            # I/O for every candidate), filter and re-measure the same rows
            cand = gather_rows(data, all_sids)
            filt_q = qrows
            limit = thresholds * (1.0 + 1e-9) + 1e-12
            exact_rows = cand
        limit_sq = np.where(finite, limit * limit, np.inf)
        partial = np.zeros(m, dtype=np.float64)
        alive = np.ones(m, dtype=bool)
        chunk = max(32, n // 8)
        for start in range(0, n, chunk):
            live = np.flatnonzero(alive)
            if live.size == 0:
                break
            diff = cand[live, start : start + chunk] - filt_q[live, start : start + chunk]
            partial[live] += np.einsum("ij,ij->i", diff, diff, dtype=np.float64)
            alive[live] = partial[live] <= limit_sq[live]
        survivors = np.flatnonzero(alive)
        distances = np.full(m, np.inf, dtype=float)
        if survivors.size:
            if exact_rows is None:
                rows = gather_rows(data, [all_sids[i] for i in survivors])
            else:
                rows = exact_rows[survivors]
            distances[survivors] = np.linalg.norm(rows - qrows[survivors], axis=1)
        if obs.is_enabled():
            obs.count("verify.filter_rounds")
            dropped = m - int(survivors.size)
            if dropped:
                obs.count("verify.abandoned", dropped)
        return distances


def _absolute_deadline(options: QueryOptions) -> "Optional[float]":
    """Translate ``deadline_s`` into an absolute monotonic instant."""
    if options.deadline_s is None:
        return None
    return time.monotonic() + options.deadline_s
