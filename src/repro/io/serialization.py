"""Serialisation of representations and datasets.

Representations are tiny by construction (that is the point of
dimensionality reduction), so they serialise to JSON: portable, diffable,
and independent of numpy's pickle format.  Raw datasets are dense arrays and
go to ``.npz``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, List, Union

import numpy as np

from ..core.segment import LinearSegmentation, Segment
from ..data.archive import Dataset
from ..reduction.cheby import ChebyshevRepresentation
from ..reduction.sax import SAXRepresentation

__all__ = [
    "to_jsonable",
    "from_jsonable",
    "save_representations",
    "load_representations",
    "save_dataset",
    "load_dataset",
]

PathLike = Union[str, pathlib.Path]


def to_jsonable(representation: Any) -> dict:
    """Convert any supported representation into a JSON-serialisable dict."""
    if isinstance(representation, LinearSegmentation):
        return {
            "type": "segmentation",
            "segments": [
                {"start": seg.start, "end": seg.end, "a": seg.a, "b": seg.b}
                for seg in representation
            ],
        }
    if isinstance(representation, ChebyshevRepresentation):
        return {
            "type": "chebyshev",
            "coefficients": representation.coefficients.tolist(),
            "n": representation.n,
            "residual_norm": representation.residual_norm,
        }
    if isinstance(representation, SAXRepresentation):
        return {
            "type": "sax",
            "symbols": representation.symbols.tolist(),
            "bounds": [list(b) for b in representation.bounds],
            "alphabet_size": representation.alphabet_size,
            "n": representation.n,
        }
    raise TypeError(f"cannot serialise {type(representation).__name__}")


def from_jsonable(payload: dict) -> Any:
    """Inverse of :func:`to_jsonable`."""
    kind = payload.get("type")
    if kind == "segmentation":
        return LinearSegmentation(
            [
                Segment(start=s["start"], end=s["end"], a=s["a"], b=s["b"])
                for s in payload["segments"]
            ]
        )
    if kind == "chebyshev":
        return ChebyshevRepresentation(
            coefficients=np.asarray(payload["coefficients"], dtype=float),
            n=int(payload["n"]),
            residual_norm=float(payload["residual_norm"]),
        )
    if kind == "sax":
        return SAXRepresentation(
            symbols=np.asarray(payload["symbols"], dtype=int),
            bounds=tuple(tuple(b) for b in payload["bounds"]),
            alphabet_size=int(payload["alphabet_size"]),
            n=int(payload["n"]),
        )
    raise ValueError(f"unknown representation type: {kind!r}")


def save_representations(path: PathLike, representations: "List[Any]") -> None:
    """Write a list of representations to a JSON file."""
    payload = {"representations": [to_jsonable(rep) for rep in representations]}
    pathlib.Path(path).write_text(json.dumps(payload))


def load_representations(path: PathLike) -> "List[Any]":
    """Read back a list written by :func:`save_representations`."""
    payload = json.loads(pathlib.Path(path).read_text())
    return [from_jsonable(item) for item in payload["representations"]]


def save_dataset(path: PathLike, dataset: Dataset) -> None:
    """Write a :class:`repro.data.Dataset` to a compressed ``.npz``."""
    np.savez_compressed(
        path,
        data=dataset.data,
        queries=dataset.queries,
        name=np.array(dataset.name),
        family=np.array(dataset.family),
    )


def load_dataset(path: PathLike) -> Dataset:
    """Read back a dataset written by :func:`save_dataset`."""
    with np.load(path, allow_pickle=False) as archive:
        return Dataset(
            name=str(archive["name"]),
            family=str(archive["family"]),
            data=archive["data"],
            queries=archive["queries"],
        )
