"""Persistence for whole similarity databases.

A :class:`repro.index.SeriesDatabase` persists as a directory: the raw data
as ``data.npz``, the representations as ``representations.json``, and the
configuration as ``config.json``.  Loading rebuilds the reducer from the
registry and re-indexes from the stored representations (tree structures
rebuild deterministically and cheaply relative to the reduction pass they
skip).
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

import numpy as np

from ..index.knn import SeriesDatabase
from ..reduction import REDUCERS
from .serialization import from_jsonable, to_jsonable

__all__ = ["save_database", "load_database"]

PathLike = Union[str, pathlib.Path]


def save_database(database: SeriesDatabase, directory: PathLike) -> None:
    """Persist a fitted database (raw data + representations + config)."""
    if database.data is None:
        raise ValueError("cannot save a database before ingest")
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(directory / "data.npz", data=database.data)
    payload = {
        "representations": [to_jsonable(e.representation) for e in database.entries]
    }
    (directory / "representations.json").write_text(json.dumps(payload))
    config = {
        "reducer": database.reducer.name,
        "n_coefficients": database.reducer.n_coefficients,
        "index": database.index_kind,
        "distance_mode": database.suite.mode,
        "max_entries": database.max_entries,
        "min_entries": database.min_entries,
    }
    (directory / "config.json").write_text(json.dumps(config, indent=2))


def load_database(directory: PathLike) -> SeriesDatabase:
    """Rebuild a database saved by :func:`save_database`."""
    directory = pathlib.Path(directory)
    config = json.loads((directory / "config.json").read_text())
    reducer = REDUCERS[config["reducer"]](n_coefficients=config["n_coefficients"])
    mode = config["distance_mode"]
    database = SeriesDatabase(
        reducer,
        index=config["index"],
        distance_mode=mode if mode in ("par", "lb", "ae") else "par",
        max_entries=config["max_entries"],
        min_entries=config["min_entries"],
    )
    with np.load(directory / "data.npz", allow_pickle=False) as archive:
        data = archive["data"]
    payload = json.loads((directory / "representations.json").read_text())
    representations = [from_jsonable(item) for item in payload["representations"]]
    database.ingest(data, representations=representations)
    return database
