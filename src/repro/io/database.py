"""Persistence for whole similarity databases.

One documented surface for both database flavours: ``database.save(path)``
persists a fitted :class:`repro.index.SeriesDatabase` *or*
:class:`repro.storage.DiskBackedDatabase` as a directory, and
:func:`open_database` reopens either — the directory's ``config.json``
records which flavour (``kind``) it holds.  An in-memory database stores its
raw data as ``data.npz``; a disk-backed database keeps its paged store file
next to the config instead.  Both store the representations as
``representations.json`` so loading re-indexes without re-reducing (tree
structures rebuild deterministically and cheaply relative to the reduction
pass they skip).

The pre-engine entry points :func:`save_database` / :func:`load_database`
remain as thin deprecated aliases.
"""

from __future__ import annotations

import json
import pathlib
import shutil
from typing import Union

import numpy as np

from .._deprecations import warn_once
from ..index.knn import SeriesDatabase
from ..kinds import DistanceMode, IndexKind
from ..reduction import REDUCERS
from .serialization import from_jsonable, to_jsonable

__all__ = ["open_database", "save_database", "load_database"]

PathLike = Union[str, pathlib.Path]

#: filename of the paged store inside a disk-backed database directory
STORE_FILENAME = "series.bin"


def _write_common(database, directory: pathlib.Path, config: dict) -> None:
    """Write the representations and config shared by both flavours.

    Entries are sorted by id and only *live* series are saved; the config
    records the total row count (tombstones included) and, when the two
    disagree, the surviving ids — so a save after deletes reopens with the
    same logical contents.
    """
    entries = sorted(database.entries, key=lambda e: e.series_id)
    payload = {"representations": [to_jsonable(e.representation) for e in entries]}
    (directory / "representations.json").write_text(json.dumps(payload))
    row_count = database._count
    config.update(
        {
            "reducer": database.reducer.name,
            "n_coefficients": database.reducer.n_coefficients,
            "index": database.index_kind,
            "distance_mode": database.suite.mode,
            "max_entries": database.max_entries,
            "min_entries": database.min_entries,
            "row_count": row_count,
        }
    )
    if len(entries) != row_count:
        config["live_ids"] = [e.series_id for e in entries]
    (directory / "config.json").write_text(json.dumps(config, indent=2))


def save_series_database(database: SeriesDatabase, directory: PathLike) -> None:
    """Persist a fitted in-memory database (raw data + representations + config).

    Prefer the method form ``database.save(directory)``.
    """
    if database.data is None:
        raise ValueError("cannot save a database before ingest")
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(directory / "data.npz", data=np.asarray(database.data))
    _write_common(database, directory, {"kind": "memory"})
    database._home = directory


def save_disk_database(database, directory: PathLike) -> None:
    """Persist a fitted :class:`repro.storage.DiskBackedDatabase` directory.

    The paged store file is copied in as ``series.bin``; raw series keep
    living on pages after a reopen.  Prefer ``database.save(directory)``.
    """
    if database.store is None:
        raise ValueError("cannot save a database before ingest")
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    store_path = directory / STORE_FILENAME
    if store_path.resolve() != database.store.path.resolve():
        shutil.copyfile(database.store.path, store_path)
    _write_common(
        database._inner,
        directory,
        {
            "kind": "disk",
            "page_size": database.store.page_size,
            "cache_pages": database.store.cache_pages,
        },
    )
    database._home = directory


def open_database(directory: PathLike, durability=None):
    """Reopen a database directory saved by ``database.save(directory)``.

    Returns a :class:`repro.index.SeriesDatabase` or a
    :class:`repro.storage.DiskBackedDatabase` according to the directory's
    recorded ``kind`` (directories written before the kind field default to
    the in-memory flavour).

    If the directory contains a write-ahead log, its committed records past
    the last checkpoint are replayed before the database is returned —
    inserts are re-transformed through the reducer and re-indexed, deletes
    re-applied — so a crash mid-ingest reopens to exactly the acknowledged
    state.  Passing a :class:`repro.lifecycle.DurabilityOptions` (or
    ``DurabilityOptions()`` by leaving a WAL in place) keeps the database
    durable: subsequent ``insert``/``delete`` calls append to the log.
    """
    directory = pathlib.Path(directory)
    config = json.loads((directory / "config.json").read_text())
    reducer = REDUCERS[config["reducer"]](n_coefficients=config["n_coefficients"])
    raw_index = config.get("index")
    index = None if raw_index is None else IndexKind(raw_index)
    raw_mode = config.get("distance_mode")
    try:
        mode = DistanceMode(raw_mode)
    except ValueError:
        mode = DistanceMode.PAR  # non-adaptive suites store 'aligned' etc.
    payload = json.loads((directory / "representations.json").read_text())
    representations = [from_jsonable(item) for item in payload["representations"]]
    live_ids = config.get("live_ids")
    row_count = config.get("row_count")
    if config.get("kind", "memory") == "disk":
        from ..storage.database import DiskBackedDatabase

        database = DiskBackedDatabase(
            reducer,
            directory / STORE_FILENAME,
            index=index,
            distance_mode=mode,
            page_size=config["page_size"],
            cache_pages=config["cache_pages"],
        )
        database.reopen(representations, live_ids=live_ids, row_count=row_count)
        base_count = row_count if row_count is not None else len(representations)
    else:
        database = SeriesDatabase(
            reducer,
            index=index,
            distance_mode=mode,
            max_entries=config["max_entries"],
            min_entries=config["min_entries"],
        )
        with np.load(directory / "data.npz", allow_pickle=False) as archive:
            data = archive["data"]
        database.ingest(data, representations=representations, live_ids=live_ids)
        base_count = len(data)
    database._home = directory
    from ..lifecycle.wal import WAL_FILENAME, DurabilityOptions, WriteAheadLog
    wal_path = directory / WAL_FILENAME
    had_wal = wal_path.exists()
    if had_wal:
        from ..lifecycle.recovery import recover_database

        recover_database(database, wal_path, base_count)
    wants_wal = durability.wal if durability is not None else had_wal
    if wants_wal:
        database.attach_wal(
            WriteAheadLog.open(wal_path, durability or DurabilityOptions())
        )
    return database


def save_database(database: SeriesDatabase, directory: PathLike) -> None:
    """Deprecated alias — use ``database.save(directory)``.

    Warns once per process (see :mod:`repro._deprecations`).
    """
    warn_once(
        "save_database",
        "save_database is deprecated; use database.save(directory)",
    )
    database.save(directory)


def load_database(directory: PathLike) -> SeriesDatabase:
    """Deprecated alias — use :func:`repro.client.connect` or :func:`open_database`.

    Routes through the :mod:`repro.client` facade (so sharded homes resolve
    too) and returns the backing database object.  Warns once per process.
    """
    from ..client import connect

    warn_once(
        "load_database",
        "load_database is deprecated; use repro.client.connect(directory) "
        "(or repro.io.open_database for engine-level access)",
    )
    return connect(directory).database
