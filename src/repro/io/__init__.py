"""Persistence: JSON codecs for representations, npz for datasets, and
directory-based round trips for whole similarity databases.

The documented database surface is ``database.save(directory)`` plus
:func:`open_database`; ``save_database``/``load_database`` are deprecated
aliases kept for pre-engine callers."""

from .database import load_database, open_database, save_database
from .serialization import (
    from_jsonable,
    load_dataset,
    load_representations,
    save_dataset,
    save_representations,
    to_jsonable,
)

__all__ = [
    "to_jsonable",
    "from_jsonable",
    "save_representations",
    "load_representations",
    "save_dataset",
    "load_dataset",
    "open_database",
    "save_database",
    "load_database",
]
