"""Persistence: JSON codecs for representations, npz for datasets, and
directory-based round trips for whole similarity databases."""

from .database import load_database, save_database
from .serialization import (
    from_jsonable,
    load_dataset,
    load_representations,
    save_dataset,
    save_representations,
    to_jsonable,
)

__all__ = [
    "to_jsonable",
    "from_jsonable",
    "save_representations",
    "load_representations",
    "save_dataset",
    "load_dataset",
    "save_database",
    "load_database",
]
