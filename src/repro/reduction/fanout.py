"""Fork fan-out for large batch reductions.

``transform_rows_parallel`` splits a batch's rows across a ``fork`` process
pool, reusing the engine's worker-pool idiom (:mod:`repro.engine.parallel`):
the matrix is copied once into POSIX shared memory, forked workers inherit
the mapping and reduce their row slice with the ordinary sequential batch
path, and results come back in row order.  Each worker records into a fresh
enabled registry (when the parent is collecting) and the parent folds the
snapshots back in, excluding the ``reduce.*`` batch accounting the parent
records itself — merged counters therefore match a sequential run exactly.
As with the engine pool, the workers' span trees are the one documented
loss; the parent's enclosing ``reduce.batch`` span covers the fan-out wall
time.  Degrades gracefully: no ``fork`` start method or a batch too small
to split returns ``None`` and the caller stays sequential.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import shared_memory
from typing import List, Optional

import numpy as np

__all__ = ["transform_rows_parallel", "RERECORDED_METRICS"]

#: names the parent records itself around the fan-out — excluded from
#: worker-snapshot merging to avoid double counts.
RERECORDED_METRICS = ("reduce.batch_calls", "reduce.batch_rows")

#: set by the parent just before the pool forks; inherited by workers.
_WORKER_REDUCER = None
_WORKER_MATRIX = None


def transform_rows_parallel(reducer, matrix: np.ndarray, parallelism: int) -> "Optional[List]":
    """Fan the rows of ``matrix`` across ``parallelism`` worker processes.

    Returns representations in row order, or ``None`` when fan-out is
    unavailable and the caller should reduce sequentially.
    """
    workers = min(parallelism, matrix.shape[0])
    if workers < 2:
        return None
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        return None
    chunks = [c for c in np.array_split(np.arange(matrix.shape[0]), workers) if len(c)]
    block = shared_memory.SharedMemory(create=True, size=max(matrix.nbytes, 1))
    shared = np.ndarray(matrix.shape, dtype=matrix.dtype, buffer=block.buf)
    shared[:] = matrix
    global _WORKER_REDUCER, _WORKER_MATRIX
    _WORKER_REDUCER, _WORKER_MATRIX = reducer, shared
    try:
        with context.Pool(processes=len(chunks)) as pool:
            outputs = pool.map(
                _reduce_chunk, [(int(chunk[0]), int(chunk[-1]) + 1) for chunk in chunks]
            )
    except OSError:
        return None
    finally:
        _WORKER_REDUCER = _WORKER_MATRIX = None
        del shared
        block.close()
        block.unlink()
    from .. import obs

    results: "List" = []
    for chunk_results, snap in outputs:
        results.extend(chunk_results)
        if snap is not None and obs.is_enabled():
            obs.registry().merge_snapshot(snap, exclude=RERECORDED_METRICS)
    return results


def _reduce_chunk(payload):
    """Worker body: reduce one contiguous row slice of the shared matrix."""
    lo, hi = payload
    from .. import obs

    collecting = obs.is_enabled()
    obs.disable()
    if collecting:
        obs.set_registry(obs.MetricsRegistry(enabled=True))
    rows = _WORKER_MATRIX[lo:hi]
    results = _WORKER_REDUCER._transform_batch_rows(np.array(rows))
    snap = obs.registry().snapshot() if collecting else None
    return results, snap
