"""PAA — Piecewise Aggregate Approximation (Keogh 2001; Yi & Faloutsos 2000).

Each of the ``N = M`` equal-length segments stores its mean value.  O(n)
reduction time; the simplest baseline in the paper's comparison.
"""

from __future__ import annotations

import numpy as np

from ..core.segment import LinearSegmentation, Segment
from .base import SegmentReducer, equal_length_bounds

__all__ = ["PAA"]


class PAA(SegmentReducer):
    """Equal-length piecewise constant (segment mean) approximation."""

    name = "PAA"
    coefficients_per_segment = 1

    def transform(self, series: np.ndarray) -> LinearSegmentation:
        series = self._validated(series)
        segments = [
            Segment(start=start, end=end, a=0.0, b=float(series[start : end + 1].mean()))
            for start, end in equal_length_bounds(len(series), self.n_segments)
        ]
        return LinearSegmentation(segments)
