"""PAA — Piecewise Aggregate Approximation (Keogh 2001; Yi & Faloutsos 2000).

Each of the ``N = M`` equal-length segments stores its mean value.  O(n)
reduction time; the simplest baseline in the paper's comparison.
"""

from __future__ import annotations

import numpy as np

from ..core.segment import LinearSegmentation, Segment
from .base import SegmentReducer, equal_length_bounds

__all__ = ["PAA"]


class PAA(SegmentReducer):
    """Equal-length piecewise constant (segment mean) approximation."""

    name = "PAA"
    coefficients_per_segment = 1

    def transform(self, series: np.ndarray) -> LinearSegmentation:
        series = self._validated(series)
        segments = [
            Segment(start=start, end=end, a=0.0, b=float(series[start : end + 1].mean()))
            for start, end in equal_length_bounds(len(series), self.n_segments)
        ]
        return LinearSegmentation(segments)

    def _transform_batch_rows(self, matrix: np.ndarray) -> "list[LinearSegmentation]":
        # row slices of a 2-D mean(axis=1) equal the per-row window means
        bounds = equal_length_bounds(matrix.shape[1], self.n_segments)
        means = [matrix[:, start : end + 1].mean(axis=1) for start, end in bounds]
        return [
            LinearSegmentation(
                [
                    Segment(start=start, end=end, a=0.0, b=float(col[i]))
                    for (start, end), col in zip(bounds, means)
                ]
            )
            for i in range(matrix.shape[0])
        ]
