"""Automatic method selection for a given collection.

Different shape families favour different methods (see
``examples/archive_tour.py``); this helper evaluates candidate reducers on
a sample of the collection and picks the best under a chosen criterion:

* ``'max_deviation'`` — mean max deviation (Fig. 12a's measure);
* ``'tightness'`` — how closely reconstruction distances track true
  distances between sampled pairs (a pruning-power proxy);
* ``'time'`` — mean reduction CPU time at acceptable quality.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..distance.euclidean import euclidean
from .base import Reducer

__all__ = ["SelectionReport", "select_method"]

#: methods whose representations reconstruct numerically (SAX excluded,
#: mirroring the paper's max-deviation comparison)
_DEFAULT_CANDIDATES = ("SAPLA", "APCA", "PLA", "PAA", "CHEBY")


@dataclass(frozen=True)
class SelectionReport:
    """Outcome of a method selection run."""

    best: str
    criterion: str
    scores: "Dict[str, float]"  # lower is better for every criterion

    def reducer(self, n_coefficients: int) -> Reducer:
        """Instantiate the winning method at a coefficient budget."""
        return _registry()[self.best](n_coefficients=n_coefficients)


def _registry():
    """The reducer registry, imported lazily to avoid a package cycle."""
    from . import REDUCERS

    return REDUCERS


def select_method(
    data: np.ndarray,
    n_coefficients: int = 12,
    criterion: str = "max_deviation",
    candidates: "Sequence[str]" = _DEFAULT_CANDIDATES,
    sample_size: int = 10,
    seed: int = 0,
) -> SelectionReport:
    """Evaluate ``candidates`` on a sample of ``data`` and pick the best."""
    if criterion not in ("max_deviation", "tightness", "time"):
        raise ValueError(f"unknown criterion: {criterion!r}")
    data = np.asarray(data, dtype=float)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ValueError("select_method expects a non-empty (count, n) array")
    registry = _registry()
    unknown = [name for name in candidates if name not in registry]
    if unknown:
        raise ValueError(f"unknown candidate methods: {unknown}")

    rng = np.random.default_rng(seed)
    sample_ids = rng.choice(
        data.shape[0], size=min(sample_size, data.shape[0]), replace=False
    )
    sample = data[sample_ids]

    scores: "Dict[str, float]" = {}
    for name in candidates:
        reducer = registry[name](n_coefficients=n_coefficients)
        if criterion == "time":
            started = time.process_time()
            for series in sample:
                reducer.transform(series)
            scores[name] = time.process_time() - started
        elif criterion == "max_deviation":
            scores[name] = float(
                np.mean([reducer.max_deviation(series) for series in sample])
            )
        else:  # tightness
            recons = [reducer.reconstruct(reducer.transform(s)) for s in sample]
            gaps: "List[float]" = []
            for i in range(len(sample)):
                for j in range(i + 1, len(sample)):
                    true = euclidean(sample[i], sample[j])
                    approx = euclidean(recons[i], recons[j])
                    gaps.append(abs(true - approx) / (true + 1e-12))
            scores[name] = float(np.mean(gaps)) if gaps else 0.0

    best = min(scores, key=scores.get)
    return SelectionReport(best=best, criterion=criterion, scores=scores)
