"""Adapter exposing the core SAPLA pipeline behind the Reducer interface."""

from __future__ import annotations

import numpy as np

from ..core.sapla import SAPLA as _CoreSAPLA
from ..core.segment import LinearSegmentation
from .base import SegmentReducer

__all__ = ["SAPLAReducer"]


class SAPLAReducer(SegmentReducer):
    """SAPLA as a drop-in member of the reducer family (``N = M/3``)."""

    name = "SAPLA"
    coefficients_per_segment = 3

    def __init__(self, n_coefficients: int, bound_mode: str = "paper", refine_endpoints: bool = True):
        super().__init__(n_coefficients)
        self._pipeline = _CoreSAPLA(
            n_segments=self.n_segments,
            bound_mode=bound_mode,
            refine_endpoints=refine_endpoints,
        )

    def transform(self, series: np.ndarray) -> LinearSegmentation:
        return self._pipeline.transform(self._validated(series))

    def _transform_batch_rows(self, matrix: np.ndarray) -> "list[LinearSegmentation]":
        # the matrix is validated once; each row then runs the adaptive
        # pipeline, whose stages are already prefix-kernel vectorised
        # (initialisation runs, split scans, pair areas, bound orderings)
        return [self._pipeline.transform(row) for row in matrix]
