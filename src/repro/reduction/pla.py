"""PLA — Piecewise Linear Approximation over equal-length segments (Chen 2007).

Each of the ``N = M/2`` equal-length segments stores the slope and intercept
of its least-squares line (paper Eq. (1)).  O(n) reduction time.
"""

from __future__ import annotations

import numpy as np

from ..core.linefit import SeriesStats
from ..core.segment import LinearSegmentation, Segment
from .base import SegmentReducer, equal_length_bounds

__all__ = ["PLA"]


class PLA(SegmentReducer):
    """Equal-length piecewise linear approximation."""

    name = "PLA"
    coefficients_per_segment = 2

    def transform(self, series: np.ndarray) -> LinearSegmentation:
        series = self._validated(series)
        stats = SeriesStats(series)
        segments = [
            Segment.fit(stats, start, end)
            for start, end in equal_length_bounds(len(series), self.n_segments)
        ]
        return LinearSegmentation(segments)
