"""PLA — Piecewise Linear Approximation over equal-length segments (Chen 2007).

Each of the ``N = M/2`` equal-length segments stores the slope and intercept
of its least-squares line (paper Eq. (1)).  O(n) reduction time.
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import line_coefficients
from ..core.linefit import SeriesStats
from ..core.segment import LinearSegmentation, Segment
from .base import SegmentReducer, equal_length_bounds

__all__ = ["PLA"]


class PLA(SegmentReducer):
    """Equal-length piecewise linear approximation."""

    name = "PLA"
    coefficients_per_segment = 2

    def transform(self, series: np.ndarray) -> LinearSegmentation:
        series = self._validated(series)
        stats = SeriesStats(series)
        segments = [
            Segment.fit(stats, start, end)
            for start, end in equal_length_bounds(len(series), self.n_segments)
        ]
        return LinearSegmentation(segments)

    def _transform_batch_rows(self, matrix: np.ndarray) -> "list[LinearSegmentation]":
        # per-row prefix sums (cumsum along axis=1 equals each row's own
        # cumsum) feed the same window-fit closed form as Segment.fit
        count, n = matrix.shape
        t = np.arange(n, dtype=float)
        zeros = np.zeros((count, 1))
        prefix_y = np.concatenate([zeros, np.cumsum(matrix, axis=1)], axis=1)
        prefix_ty = np.concatenate([zeros, np.cumsum(t * matrix, axis=1)], axis=1)
        bounds = equal_length_bounds(n, self.n_segments)
        lines = []
        for start, end in bounds:
            sum_y = prefix_y[:, end + 1] - prefix_y[:, start]
            sum_ty = (prefix_ty[:, end + 1] - prefix_ty[:, start]) - start * sum_y
            lines.append(line_coefficients(end - start + 1, sum_y, sum_ty))
        return [
            LinearSegmentation(
                [
                    Segment(start=start, end=end, a=a[i], b=b[i])
                    for (start, end), (a, b) in zip(bounds, lines)
                ]
            )
            for i in range(count)
        ]
