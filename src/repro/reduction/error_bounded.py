"""Error-bounded piecewise linear compression (Eichinger et al. 2015 style).

The paper's related work cites a "high compression ratio method" that takes
a *user-defined max deviation* and produces however many segments that
budget needs — the dual of SAPLA's fixed-N formulation.  The paper excludes
it from its comparison for exactly that reason; implementing it closes the
loop: :class:`ErrorBoundedPLA` guarantees ``max deviation <= bound`` with a
variable segment count, so the compression-ratio-at-matched-quality
comparison against SAPLA becomes possible
(``benchmarks/bench_error_bounded.py``).

Greedy segmentation with doubling + binary search: each segment grows by
doubled strides while the exact max deviation of its least-squares line
stays within the bound, then binary-searches the furthest feasible end —
O(log l) feasibility checks per segment, each O(l).
"""

from __future__ import annotations

import numpy as np

from ..core.linefit import SeriesStats
from ..core.segment import LinearSegmentation, Segment

__all__ = ["ErrorBoundedPLA"]


class ErrorBoundedPLA:
    """Adaptive piecewise polynomial fit with a guaranteed per-point error bound.

    Unlike the :class:`~repro.reduction.base.Reducer` family (fixed
    coefficient budget, best-effort error), this takes ``max_deviation`` and
    spends as many segments as needed — never more than one point per
    segment in the worst case.

    Args:
        max_deviation: hard cap on ``|c_t - c_check_t|`` for every point.
        degree: maximum polynomial degree per segment (the reference method's
            user-defined degree).  ``degree=1`` (default) yields linear
            segments representable as :class:`LinearSegmentation`; higher
            degrees compress curvature harder but return the polynomial
            segmentation via :meth:`transform_poly`.
    """

    name = "ErrorBoundedPLA"

    def __init__(self, max_deviation: float, degree: int = 1):
        if max_deviation < 0:
            raise ValueError("max_deviation must be non-negative")
        if not 1 <= degree <= 5:
            raise ValueError("degree must be in [1, 5]")
        self.max_deviation = float(max_deviation)
        self.degree = int(degree)

    # ------------------------------------------------------------------
    def transform(self, series: np.ndarray) -> LinearSegmentation:
        """Segment ``series`` greedily under the error bound (degree 1)."""
        if self.degree != 1:
            raise ValueError(
                "transform() returns a LinearSegmentation and needs degree=1; "
                "use transform_poly() for higher degrees"
            )
        series = self._validated(series)
        stats = SeriesStats(series)
        n = series.shape[0]
        segments = []
        start = 0
        while start < n:
            end = self._furthest_feasible_end(stats, series, start)
            segments.append(Segment.fit(stats, start, end))
            start = end + 1
        return LinearSegmentation(segments)

    def transform_poly(self, series: np.ndarray) -> "list[tuple[int, int, np.ndarray]]":
        """Degree-``d`` greedy segmentation: ``(start, end, coefficients)``.

        Coefficients are local-coordinate polynomial coefficients (lowest
        degree first, ``numpy.polynomial`` convention).
        """
        series = self._validated(series)
        stats = SeriesStats(series)
        n = series.shape[0]
        pieces: "list[tuple[int, int, np.ndarray]]" = []
        start = 0
        while start < n:
            end = self._furthest_feasible_end(stats, series, start)
            pieces.append((start, end, self._poly_fit(series, start, end)))
            start = end + 1
        return pieces

    def reconstruct_poly(
        self, pieces: "list[tuple[int, int, np.ndarray]]"
    ) -> np.ndarray:
        """Rebuild a series from :meth:`transform_poly` output."""
        total = pieces[-1][1] + 1
        out = np.empty(total)
        for start, end, coefficients in pieces:
            t = np.arange(end - start + 1, dtype=float)
            out[start : end + 1] = np.polynomial.polynomial.polyval(t, coefficients)
        return out

    def _validated(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=float)
        if series.ndim != 1 or series.shape[0] == 0:
            raise ValueError("ErrorBoundedPLA reduces non-empty one-dimensional series")
        if not np.isfinite(series).all():
            raise ValueError("ErrorBoundedPLA input contains NaN or infinite values")
        return series

    def _poly_fit(self, series: np.ndarray, start: int, end: int) -> np.ndarray:
        window = series[start : end + 1]
        length = window.shape[0]
        degree = min(self.degree, length - 1)
        t = np.arange(length, dtype=float)
        return np.polynomial.polynomial.polyfit(t, window, degree)

    def reconstruct(self, representation: LinearSegmentation) -> np.ndarray:
        """Rebuild the approximate series (bounded error per point)."""
        return representation.reconstruct()

    def compression_ratio(self, series: np.ndarray) -> float:
        """Stored coefficients over raw points (3 per segment, as SAPLA)."""
        series = np.asarray(series, dtype=float)
        representation = self.transform(series)
        return representation.n_coefficients / series.shape[0]

    # ------------------------------------------------------------------
    def _feasible(self, stats: SeriesStats, series: np.ndarray, start: int, end: int) -> bool:
        window = series[start : end + 1]
        if self.degree == 1:
            segment = Segment.fit(stats, start, end)
            fitted = segment.reconstruct()
        else:
            coefficients = self._poly_fit(series, start, end)
            t = np.arange(window.shape[0], dtype=float)
            fitted = np.polynomial.polynomial.polyval(t, coefficients)
        return bool(np.abs(window - fitted).max() <= self.max_deviation + 1e-12)

    def _furthest_feasible_end(
        self, stats: SeriesStats, series: np.ndarray, start: int
    ) -> int:
        n = series.shape[0]
        last = n - 1
        # two points always fit a line exactly; grow by doubling from there
        end = min(start + 1, last)
        if end == last or not self._feasible(stats, series, start, end):
            return end if end == start else (end if self._feasible(stats, series, start, end) else start)
        step = 2
        feasible_end = end
        while True:
            probe = min(feasible_end + step, last)
            if self._feasible(stats, series, start, probe):
                feasible_end = probe
                if probe == last:
                    return last
                step *= 2
            else:
                break
        # binary search in (feasible_end, probe)
        lo, hi = feasible_end, probe - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._feasible(stats, series, start, mid):
                lo = mid
            else:
                hi = mid - 1
        return lo

    def __repr__(self) -> str:
        return f"ErrorBoundedPLA(max_deviation={self.max_deviation})"
