"""Common interface for every dimensionality reduction method (Table 1).

All methods are configured by the *coefficient budget* ``M`` so comparisons
are fair the way the paper frames them: SAPLA/APLA store three coefficients
per segment (``N = M/3``), APCA/PLA two (``N = M/2``), PAA/PAALM/CHEBY/SAX
one (``N = M``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, ClassVar, List

import numpy as np

from .. import obs
from ..core.segment import LinearSegmentation

__all__ = ["Reducer", "SegmentReducer", "equal_length_bounds", "reduce_rows"]


def reduce_rows(reducer, matrix: np.ndarray) -> "List[Any]":
    """Reduce every row of ``matrix`` through ``reducer``'s batch path.

    Uses :meth:`Reducer.transform_batch` when the reducer provides it (every
    built-in does; rows are bit-identical to per-row ``transform``), falling
    back to the per-row loop for duck-typed reducers outside the protocol.
    """
    if len(matrix) == 0:
        return []
    transform_batch = getattr(reducer, "transform_batch", None)
    if transform_batch is not None:
        return transform_batch(matrix)
    return [reducer.transform(row) for row in matrix]


class Reducer(ABC):
    """A dimensionality reduction method with a coefficient budget ``M``."""

    #: method name as used in the paper's tables and figures
    name: ClassVar[str] = "?"
    #: how many stored coefficients one segment costs (Table 1's "Coeffici.")
    coefficients_per_segment: ClassVar[int] = 1

    def __init__(self, n_coefficients: int):
        if n_coefficients < self.coefficients_per_segment:
            raise ValueError(
                f"{self.name} needs at least {self.coefficients_per_segment} coefficients"
            )
        self.n_coefficients = int(n_coefficients)

    @property
    def n_segments(self) -> int:
        """Segment count ``N`` afforded by the coefficient budget (Table 1)."""
        return max(self.n_coefficients // self.coefficients_per_segment, 1)

    @abstractmethod
    def transform(self, series: np.ndarray) -> Any:
        """Reduce ``series`` to this method's representation."""

    @abstractmethod
    def reconstruct(self, representation: Any) -> np.ndarray:
        """Rebuild the approximate series from a representation."""

    # ------------------------------------------------------------------
    # batch path
    # ------------------------------------------------------------------
    def transform_batch(self, data: np.ndarray, parallelism: int = 1) -> "List[Any]":
        """Reduce every row of a ``(count, n)`` matrix.

        Bit-identical to ``[self.transform(row) for row in data]`` for every
        reducer: subclasses with a vectorised kernel override
        :meth:`_transform_batch_rows` with array-at-a-time arithmetic that
        replicates the scalar operation order exactly; the base fallback runs
        the per-row loop (counted as ``reduce.scalar_fallback``).

        ``parallelism > 1`` opts large batches into a ``fork`` fan-out that
        reuses the engine's shared-memory worker-pool idiom; it degrades to
        the sequential path when unavailable.
        """
        matrix = self._validated_matrix(data)
        with obs.span("reduce.batch"):
            obs.count("reduce.batch_calls")
            obs.count("reduce.batch_rows", matrix.shape[0])
            if parallelism > 1:
                from .fanout import transform_rows_parallel

                results = transform_rows_parallel(self, matrix, parallelism)
                if results is not None:
                    return results
            return self._transform_batch_rows(matrix)

    def _transform_batch_rows(self, matrix: np.ndarray) -> "List[Any]":
        """Per-row fallback; vectorised reducers override this hook."""
        obs.count("reduce.scalar_fallback", matrix.shape[0])
        return [self.transform(row) for row in matrix]

    def _validated_matrix(self, data: np.ndarray) -> np.ndarray:
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise ValueError(f"{self.name} batch-reduces a non-empty (count, n) matrix")
        if not np.isfinite(matrix).all():
            raise ValueError(f"{self.name} input contains NaN or infinite values")
        return matrix

    # ------------------------------------------------------------------
    def max_deviation(self, series: np.ndarray) -> float:
        """Max deviation (Definition 3.4) of reducing then reconstructing."""
        series = np.asarray(series, dtype=float)
        recon = self.reconstruct(self.transform(series))
        return float(np.abs(series - recon).max())

    def _validated(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=float)
        if series.ndim != 1 or series.shape[0] == 0:
            raise ValueError(f"{self.name} reduces non-empty one-dimensional series")
        if not np.isfinite(series).all():
            raise ValueError(f"{self.name} input contains NaN or infinite values")
        return series

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_coefficients={self.n_coefficients})"


class SegmentReducer(Reducer):
    """A reducer whose representation is a :class:`LinearSegmentation`.

    SAPLA, APLA, APCA, PLA, PAA and PAALM all fall in this family (constant
    segments are lines with slope zero), which lets one distance and indexing
    stack serve them all.
    """

    def reconstruct(self, representation: LinearSegmentation) -> np.ndarray:
        return representation.reconstruct()


def equal_length_bounds(n: int, n_segments: int) -> "list[tuple[int, int]]":
    """Split ``[0, n)`` into ``n_segments`` near-equal inclusive windows.

    The first ``n % n_segments`` windows get the extra point, matching the
    usual PAA convention.  Fewer windows are returned when ``n`` is small.
    """
    n_segments = min(max(n_segments, 1), n)
    base, extra = divmod(n, n_segments)
    bounds = []
    start = 0
    for i in range(n_segments):
        length = base + (1 if i < extra else 0)
        bounds.append((start, start + length - 1))
        start += length
    return bounds
