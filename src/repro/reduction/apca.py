"""APCA — Adaptive Piecewise Constant Approximation (Keogh/Chakrabarti 2001).

Adaptive-length segments, each storing its mean value and right endpoint
(``N = M/2`` segments).  The original paper derives the segmentation from the
largest Haar-wavelet coefficients followed by repair passes; the standard
equivalent implemented here is a bottom-up greedy merge that starts from unit
segments and repeatedly merges the adjacent pair whose union has the smallest
constant-fit SSE increase — O(n log n), the complexity the paper cites.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.linefit import SeriesStats
from ..core.segment import LinearSegmentation, Segment
from .base import SegmentReducer

__all__ = ["APCA"]


class APCA(SegmentReducer):
    """Adaptive-length piecewise constant approximation."""

    name = "APCA"
    coefficients_per_segment = 2

    def transform(self, series: np.ndarray) -> LinearSegmentation:
        series = self._validated(series)
        return self._transform_validated(series)

    def _transform_batch_rows(self, matrix: np.ndarray) -> "list[LinearSegmentation]":
        # one shared validation pass; each row runs the prefix-statistics
        # merge with its unit-pair heap seeded from a vectorised cost kernel
        return [self._transform_validated(row) for row in matrix]

    def _transform_validated(self, series: np.ndarray) -> LinearSegmentation:
        stats = SeriesStats(series)
        n = len(series)
        target = min(self.n_segments, n)

        # bottom-up merge over a doubly linked list with a lazy cost heap
        bounds: "dict[int, tuple[int, int]]" = {i: (i, i) for i in range(n)}
        nxt = {i: i + 1 for i in range(n - 1)}
        prv = {i + 1: i for i in range(n - 1)}
        next_id = n

        def merge_cost(left_id: int, right_id: int) -> float:
            ls, le = bounds[left_id]
            rs, re = bounds[right_id]
            merged = stats.window_constant_sse(ls, re)
            return merged - stats.window_constant_sse(ls, le) - stats.window_constant_sse(rs, re)

        # seed the heap from prefix arrays: the SSE of every unit window and
        # unit pair in two slice subtractions instead of 3(n-1) scalar calls
        # (heap pop order only depends on the (cost, i, j) keys)
        prefix_y, prefix_yy = stats._prefix_y, stats._prefix_yy
        unit_y = prefix_y[1:] - prefix_y[:-1]
        unit_sse = np.maximum((prefix_yy[1:] - prefix_yy[:-1]) - unit_y * unit_y / 1, 0.0)
        pair_y = prefix_y[2:] - prefix_y[:-2]
        pair_sse = np.maximum((prefix_yy[2:] - prefix_yy[:-2]) - pair_y * pair_y / 2, 0.0)
        costs = pair_sse - unit_sse[:-1] - unit_sse[1:]
        heap = [(costs[i], i, i + 1) for i in range(n - 1)]
        heapq.heapify(heap)

        count = n
        while count > target and heap:
            _, li, ri = heapq.heappop(heap)
            if li not in bounds or ri not in bounds or nxt.get(li) != ri:
                continue
            merged_bounds = (bounds[li][0], bounds[ri][1])
            mid = next_id
            next_id += 1
            bounds[mid] = merged_bounds
            left_of = prv.get(li)
            right_of = nxt.get(ri)
            del bounds[li], bounds[ri]
            for mapping, key in ((nxt, li), (nxt, ri), (prv, li), (prv, ri)):
                mapping.pop(key, None)
            if left_of is not None:
                nxt[left_of] = mid
                prv[mid] = left_of
                heapq.heappush(heap, (merge_cost(left_of, mid), left_of, mid))
            if right_of is not None:
                nxt[mid] = right_of
                prv[right_of] = mid
                heapq.heappush(heap, (merge_cost(mid, right_of), mid, right_of))
            count -= 1

        segments = [
            Segment(start=s, end=e, a=0.0, b=float(series[s : e + 1].mean()))
            for s, e in sorted(bounds.values())
        ]
        return LinearSegmentation(segments)
