"""Dimensionality reduction methods: SAPLA and the seven paper baselines."""

from .apca import APCA
from .apla import APLA, error_matrix
from .auto import SelectionReport, select_method
from .base import Reducer, SegmentReducer, equal_length_bounds, reduce_rows
from .batch import batch_paa, batch_pla
from .cheby import CHEBY, ChebyshevRepresentation
from .error_bounded import ErrorBoundedPLA
from .one_d_sax import OneDSAX, OneDSAXRepresentation
from .paa import PAA
from .paalm import PAALM, lagrangian_smooth
from .pla import PLA
from .sapla_reducer import SAPLAReducer
from .sax import SAX, SAXRepresentation, gaussian_breakpoints

#: every reducer class keyed by its paper name
REDUCERS = {
    cls.name: cls
    for cls in (SAPLAReducer, APLA, APCA, PLA, PAA, PAALM, CHEBY, SAX)
}

__all__ = [
    "Reducer",
    "SegmentReducer",
    "equal_length_bounds",
    "reduce_rows",
    "SAPLAReducer",
    "APLA",
    "error_matrix",
    "APCA",
    "PLA",
    "PAA",
    "PAALM",
    "lagrangian_smooth",
    "CHEBY",
    "ChebyshevRepresentation",
    "SAX",
    "SAXRepresentation",
    "OneDSAX",
    "OneDSAXRepresentation",
    "gaussian_breakpoints",
    "batch_paa",
    "batch_pla",
    "ErrorBoundedPLA",
    "SelectionReport",
    "select_method",
    "REDUCERS",
]
