"""1d-SAX — symbolic representation of segment means *and* slopes.

A natural relative of SAPLA from the symbolic side (Malinowski et al. 2013):
each equal-length segment is least-squares line-fitted, then the mean value
and the slope are quantised against their own Gaussian alphabets.  The
combined symbol keeps the trend information plain SAX throws away, at the
same storage cost per segment pair of bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from ..core.linefit import SeriesStats
from ..core.segment import LinearSegmentation, Segment
from .base import Reducer, equal_length_bounds
from .sax import gaussian_breakpoints

__all__ = ["OneDSAX", "OneDSAXRepresentation"]


@dataclass(frozen=True)
class OneDSAXRepresentation:
    """Mean symbols + slope symbols per segment, plus the layout."""

    mean_symbols: np.ndarray
    slope_symbols: np.ndarray
    bounds: tuple
    n: int


class OneDSAX(Reducer):
    """Symbolic mean+slope representation over equal-length segments.

    Args:
        n_coefficients: segment count ``N`` (one mean+slope symbol pair per
            segment).
        mean_alphabet: cells of the mean alphabet.
        slope_alphabet: cells of the slope alphabet.
        slope_scale: the slope quantiser's Gaussian is scaled by
            ``slope_scale / mean_segment_length`` — slopes of z-normalised
            series shrink with segment length (the 1d-SAX recipe).
    """

    name = "1dSAX"
    coefficients_per_segment = 1

    def __init__(
        self,
        n_coefficients: int,
        mean_alphabet: int = 8,
        slope_alphabet: int = 4,
        slope_scale: float = 3.0,
    ):
        super().__init__(n_coefficients)
        if mean_alphabet < 2 or slope_alphabet < 2:
            raise ValueError("alphabets need at least two symbols")
        self.mean_alphabet = int(mean_alphabet)
        self.slope_alphabet = int(slope_alphabet)
        self.slope_scale = float(slope_scale)
        self._mean_breakpoints = gaussian_breakpoints(self.mean_alphabet)

    # ------------------------------------------------------------------
    def _slope_breakpoints(self, segment_length: float) -> np.ndarray:
        sigma = self.slope_scale / max(segment_length, 1.0)
        quantiles = np.arange(1, self.slope_alphabet) / self.slope_alphabet
        return norm.ppf(quantiles, scale=sigma)

    def transform(self, series: np.ndarray) -> OneDSAXRepresentation:
        series = self._validated(series)
        stats = SeriesStats(series)
        bounds = tuple(equal_length_bounds(len(series), self.n_segments))
        mean_symbols = np.empty(len(bounds), dtype=int)
        slope_symbols = np.empty(len(bounds), dtype=int)
        mean_length = np.mean([e - s + 1 for s, e in bounds])
        slope_breakpoints = self._slope_breakpoints(mean_length)
        for i, (s, e) in enumerate(bounds):
            fit = stats.window_fit(s, e)
            a, b = fit.coefficients
            mean = b + a * (fit.length - 1) / 2.0
            mean_symbols[i] = int(np.searchsorted(self._mean_breakpoints, mean))
            slope_symbols[i] = int(np.searchsorted(slope_breakpoints, a))
        return OneDSAXRepresentation(
            mean_symbols=mean_symbols,
            slope_symbols=slope_symbols,
            bounds=bounds,
            n=len(series),
        )

    def reconstruct(self, representation: OneDSAXRepresentation) -> np.ndarray:
        """Numeric reconstruction: per segment, the cell-median line."""
        mean_centers = self._cell_centers(self.mean_alphabet, 1.0)
        mean_length = np.mean([e - s + 1 for s, e in representation.bounds])
        slope_centers = self._cell_centers(
            self.slope_alphabet, self.slope_scale / max(mean_length, 1.0)
        )
        segments = []
        for (s, e), mean_sym, slope_sym in zip(
            representation.bounds,
            representation.mean_symbols,
            representation.slope_symbols,
        ):
            length = e - s + 1
            a = float(slope_centers[slope_sym])
            mean = float(mean_centers[mean_sym])
            b = mean - a * (length - 1) / 2.0
            segments.append(Segment(start=s, end=e, a=a, b=b))
        return LinearSegmentation(segments).reconstruct()

    def mindist(self, rep_a: OneDSAXRepresentation, rep_b: OneDSAXRepresentation) -> float:
        """Mean-alphabet MINDIST (the SAX bound; slope symbols only refine)."""
        if rep_a.bounds != rep_b.bounds:
            raise ValueError("MINDIST requires identical segment layouts")
        total = 0.0
        for sym_a, sym_b, (s, e) in zip(
            rep_a.mean_symbols, rep_b.mean_symbols, rep_a.bounds
        ):
            if abs(int(sym_a) - int(sym_b)) <= 1:
                continue
            hi, lo = max(sym_a, sym_b), min(sym_a, sym_b)
            gap = float(self._mean_breakpoints[hi - 1] - self._mean_breakpoints[lo])
            total += (e - s + 1) * gap * gap
        return float(np.sqrt(total))

    @staticmethod
    def _cell_centers(alphabet: int, sigma: float) -> np.ndarray:
        qs = (np.arange(alphabet) + 0.5) / alphabet
        return norm.ppf(qs, scale=sigma)
