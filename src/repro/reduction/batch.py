"""Vectorised batch transforms for equal-length methods.

These predate the first-class :meth:`repro.reduction.Reducer.transform_batch`
protocol and now delegate to it: each call builds the reducer and runs its
vectorised batch kernel, whose rows are bit-identical to the per-row
``transform`` path (tested).  Callers can hand the results straight to
``SeriesDatabase.ingest(..., representations=...)``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.segment import LinearSegmentation
from .paa import PAA
from .pla import PLA

__all__ = ["batch_paa", "batch_pla"]


def batch_paa(data: np.ndarray, n_coefficients: int) -> "List[LinearSegmentation]":
    """PAA representations of every row of ``data`` in one vectorised pass."""
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError("batch_paa expects a (count, n) array")
    return PAA(n_coefficients).transform_batch(data)


def batch_pla(data: np.ndarray, n_coefficients: int) -> "List[LinearSegmentation]":
    """PLA representations of every row of ``data`` in one vectorised pass."""
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError("batch_pla expects a (count, n) array")
    return PLA(n_coefficients).transform_batch(data)
