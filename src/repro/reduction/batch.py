"""Vectorised batch transforms for equal-length methods.

Ingesting a collection calls ``transform`` per row; for the equal-length
methods the whole collection reduces in a handful of numpy operations
instead.  Results are bit-identical to the per-row path (tested), so
callers can hand them straight to ``SeriesDatabase.ingest(...,
representations=...)``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.segment import LinearSegmentation, Segment
from .base import equal_length_bounds
from .paa import PAA
from .pla import PLA

__all__ = ["batch_paa", "batch_pla"]


def _window_matrix(data: np.ndarray, bounds) -> "List[np.ndarray]":
    return [data[:, start : end + 1] for start, end in bounds]


def batch_paa(data: np.ndarray, n_coefficients: int) -> "List[LinearSegmentation]":
    """PAA representations of every row of ``data`` in one vectorised pass."""
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError("batch_paa expects a (count, n) array")
    reducer = PAA(n_coefficients)
    bounds = equal_length_bounds(data.shape[1], reducer.n_segments)
    means = np.column_stack([w.mean(axis=1) for w in _window_matrix(data, bounds)])
    out = []
    for row_means in means:
        out.append(
            LinearSegmentation(
                [
                    Segment(start=s, end=e, a=0.0, b=float(m))
                    for (s, e), m in zip(bounds, row_means)
                ]
            )
        )
    return out


def batch_pla(data: np.ndarray, n_coefficients: int) -> "List[LinearSegmentation]":
    """PLA representations of every row of ``data`` in one vectorised pass."""
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError("batch_pla expects a (count, n) array")
    reducer = PLA(n_coefficients)
    bounds = equal_length_bounds(data.shape[1], reducer.n_segments)
    slopes, intercepts = [], []
    for window in _window_matrix(data, bounds):
        l = window.shape[1]
        if l == 1:
            slopes.append(np.zeros(window.shape[0]))
            intercepts.append(window[:, 0])
            continue
        t = np.arange(l, dtype=float)
        sum_y = window.sum(axis=1)
        sum_ty = window @ t
        s1 = l * (l - 1) / 2.0
        s2 = l * (l - 1) * (2 * l - 1) / 6.0
        det = l * s2 - s1 * s1
        a = (l * sum_ty - s1 * sum_y) / det
        slopes.append(a)
        intercepts.append((sum_y - a * s1) / l)
    slopes = np.column_stack(slopes)
    intercepts = np.column_stack(intercepts)
    out = []
    for row_a, row_b in zip(slopes, intercepts):
        out.append(
            LinearSegmentation(
                [
                    Segment(start=s, end=e, a=float(a), b=float(b))
                    for (s, e), a, b in zip(bounds, row_a, row_b)
                ]
            )
        )
    return out
