"""CHEBY — Chebyshev polynomial representation (Cai & Ng 2004).

The whole series is approximated by the first ``M`` Chebyshev coefficients of
its least-squares polynomial fit over the domain mapped to ``[-1, 1]``.  The
original authors recommend at most 25 coefficients; beyond that the paper's
evaluation shows the method hitting the dimensionality curse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.polynomial import chebyshev

__all__ = ["CHEBY", "ChebyshevRepresentation"]

from .base import Reducer


@dataclass(frozen=True)
class ChebyshevRepresentation:
    """Chebyshev coefficients plus what is needed to reconstruct and bound.

    Attributes:
        coefficients: the ``M`` fitted Chebyshev coefficients.
        n: original series length.
        residual_norm: L2 norm of the approximation residual — used by the
            triangle-inequality lower bound (see repro.distance).
    """

    coefficients: np.ndarray
    n: int
    residual_norm: float


class CHEBY(Reducer):
    """Chebyshev-coefficient dimensionality reduction."""

    name = "CHEBY"
    coefficients_per_segment = 1

    def transform(self, series: np.ndarray) -> ChebyshevRepresentation:
        series = self._validated(series)
        n = len(series)
        degree = min(self.n_coefficients - 1, n - 1)
        x = _domain(n)
        coefficients = chebyshev.chebfit(x, series, degree)
        residual = series - chebyshev.chebval(x, coefficients)
        return ChebyshevRepresentation(
            coefficients=np.asarray(coefficients, dtype=float),
            n=n,
            residual_norm=float(np.linalg.norm(residual)),
        )

    def reconstruct(self, representation: ChebyshevRepresentation) -> np.ndarray:
        x = _domain(representation.n)
        return chebyshev.chebval(x, representation.coefficients)


def _domain(n: int) -> np.ndarray:
    """Map sample positions to the Chebyshev domain ``[-1, 1]``."""
    if n == 1:
        return np.zeros(1)
    return np.linspace(-1.0, 1.0, n)
