"""PAALM — PAA with Lagrangian Multipliers (Rezvani, Barnaghi, Enshaeifar 2019).

The original method represents continuous data as a series of patterns by
solving a Lagrangian-regularised approximation problem; it does not aim to
minimise max deviation, which is exactly why the paper includes it (the
"worst max deviation" strawman in the k-NN evaluation).

Reference code is closed; the faithful-in-role substitute implemented here
(DESIGN.md substitution 2) solves the Lagrangian smoothing problem

    min_v  ||c - v||^2 + lam * ||D v||^2       (D = first difference)

via its banded normal equations and then takes PAA segment means of the
smoothed series.  The smoothing deliberately trades max deviation for
pattern stability, reproducing PAALM's qualitative behaviour.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solveh_banded

from ..core.segment import LinearSegmentation, Segment
from .base import SegmentReducer, equal_length_bounds

__all__ = ["PAALM", "lagrangian_smooth", "lagrangian_smooth_batch"]


def _smoothing_bands(n: int, lam: float) -> np.ndarray:
    """Banded form of ``I + lam * D'D`` for :func:`scipy.linalg.solveh_banded`."""
    # D'D is tridiagonal: diag (1, 2, ..., 2, 1), off-diagonal -1
    upper = np.full(n, -lam)
    upper[0] = 0.0  # solveh_banded ignores the first superdiagonal slot
    diag = np.full(n, 1.0 + 2.0 * lam)
    diag[0] = diag[-1] = 1.0 + lam
    return np.vstack([upper, diag])


def lagrangian_smooth(series: np.ndarray, lam: float) -> np.ndarray:
    """Solve ``(I + lam * D'D) v = c`` with a symmetric banded solver."""
    n = series.shape[0]
    if n == 1 or lam == 0.0:
        return series.astype(float)
    return solveh_banded(_smoothing_bands(n, lam), series.astype(float))


def lagrangian_smooth_batch(matrix: np.ndarray, lam: float) -> np.ndarray:
    """Smooth every row of ``matrix`` through one multi-RHS banded solve.

    ``solveh_banded`` factors the band once and back-substitutes each
    right-hand-side column independently, so row ``i`` of the result is
    bit-identical to ``lagrangian_smooth(matrix[i], lam)``.
    """
    n = matrix.shape[1]
    if n == 1 or lam == 0.0:
        return matrix.astype(float)
    return solveh_banded(_smoothing_bands(n, lam), matrix.astype(float).T).T


class PAALM(SegmentReducer):
    """Lagrangian-regularised PAA (pattern-oriented baseline)."""

    name = "PAALM"
    coefficients_per_segment = 1

    def __init__(self, n_coefficients: int, lam: float = 5.0):
        super().__init__(n_coefficients)
        if lam < 0:
            raise ValueError("the Lagrangian multiplier must be non-negative")
        self.lam = float(lam)

    def transform(self, series: np.ndarray) -> LinearSegmentation:
        series = self._validated(series)
        smoothed = lagrangian_smooth(series, self.lam)
        segments = [
            Segment(start=start, end=end, a=0.0, b=float(smoothed[start : end + 1].mean()))
            for start, end in equal_length_bounds(len(series), self.n_segments)
        ]
        return LinearSegmentation(segments)

    def _transform_batch_rows(self, matrix: np.ndarray) -> "list[LinearSegmentation]":
        smoothed = lagrangian_smooth_batch(matrix, self.lam)
        bounds = equal_length_bounds(matrix.shape[1], self.n_segments)
        means = [smoothed[:, start : end + 1].mean(axis=1) for start, end in bounds]
        return [
            LinearSegmentation(
                [
                    Segment(start=start, end=end, a=0.0, b=float(col[i]))
                    for (start, end), col in zip(bounds, means)
                ]
            )
            for i in range(matrix.shape[0])
        ]
