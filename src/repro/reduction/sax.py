"""SAX — Symbolic Aggregate approXimation (Lin, Keogh et al. 2003/2007).

PAA followed by symbolisation against equiprobable Gaussian breakpoints.
SAX's MINDIST lower-bounds the Euclidean distance between the original
(z-normalised) series; its numeric reconstruction is lossier than PAA's
(symbol -> number), which is why the paper excludes it from the max-deviation
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from .base import Reducer, equal_length_bounds

__all__ = ["SAX", "SAXRepresentation", "gaussian_breakpoints"]


def gaussian_breakpoints(alphabet_size: int) -> np.ndarray:
    """The ``alphabet_size - 1`` breakpoints splitting N(0,1) into equal-mass cells."""
    if alphabet_size < 2:
        raise ValueError("the SAX alphabet needs at least two symbols")
    quantiles = np.arange(1, alphabet_size) / alphabet_size
    return norm.ppf(quantiles)


@dataclass(frozen=True)
class SAXRepresentation:
    """Symbol string plus the segment layout needed for MINDIST/reconstruction."""

    symbols: np.ndarray  # integer symbol per segment
    bounds: tuple  # ((start, end), ...) inclusive windows
    alphabet_size: int
    n: int


class SAX(Reducer):
    """Symbolic aggregate approximation with a Gaussian-breakpoint alphabet."""

    name = "SAX"
    coefficients_per_segment = 1

    def __init__(self, n_coefficients: int, alphabet_size: int = 8):
        super().__init__(n_coefficients)
        self.alphabet_size = int(alphabet_size)
        self.breakpoints = gaussian_breakpoints(self.alphabet_size)

    def transform(self, series: np.ndarray) -> SAXRepresentation:
        series = self._validated(series)
        bounds = tuple(equal_length_bounds(len(series), self.n_segments))
        means = np.array([series[s : e + 1].mean() for s, e in bounds])
        symbols = np.searchsorted(self.breakpoints, means)
        return SAXRepresentation(
            symbols=symbols, bounds=bounds, alphabet_size=self.alphabet_size, n=len(series)
        )

    def reconstruct(self, representation: SAXRepresentation) -> np.ndarray:
        """Numeric reconstruction: each symbol maps to its cell's Gaussian median."""
        centers = self._cell_centers()
        out = np.empty(representation.n)
        for symbol, (start, end) in zip(representation.symbols, representation.bounds):
            out[start : end + 1] = centers[symbol]
        return out

    def mindist(self, rep_a: SAXRepresentation, rep_b: SAXRepresentation) -> float:
        """The SAX MINDIST lower bound between two symbolised series."""
        if rep_a.bounds != rep_b.bounds:
            raise ValueError("MINDIST requires identical segment layouts")
        total = 0.0
        for sym_a, sym_b, (start, end) in zip(rep_a.symbols, rep_b.symbols, rep_a.bounds):
            gap = self._symbol_gap(int(sym_a), int(sym_b))
            total += (end - start + 1) * gap * gap
        return float(np.sqrt(total))

    # ------------------------------------------------------------------
    def _symbol_gap(self, sym_a: int, sym_b: int) -> float:
        """dist() cell gap of the SAX lookup table (0 for adjacent symbols)."""
        if abs(sym_a - sym_b) <= 1:
            return 0.0
        hi, lo = max(sym_a, sym_b), min(sym_a, sym_b)
        return float(self.breakpoints[hi - 1] - self.breakpoints[lo])

    def _cell_centers(self) -> np.ndarray:
        """Median of each Gaussian cell, for numeric reconstruction."""
        qs = (np.arange(self.alphabet_size) + 0.5) / self.alphabet_size
        return norm.ppf(qs)
