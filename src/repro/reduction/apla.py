"""APLA — Adaptive Piecewise Linear Approximation baseline (Ljosa & Singh 2007).

The paper's strongest-quality / slowest baseline: dynamic programming over a
max-deviation matrix.  ``varpi[m][t]`` is the best achievable *sum of segment
max deviations* representing points ``0..m`` with ``t`` segments, computed by

    varpi[m][t] = min_alpha( varpi[alpha][t-1] + eps(alpha+1, m) )

where ``eps(i, j)`` is the max deviation of the least-squares line over
``[i, j]``.  Guaranteed error bounds, O(N n^2) DP transitions — and the error
matrix itself costs O(n^2) windows, each needing a residual scan, so building
it dominates (the reason the paper's Fig. 12b shows APLA orders of magnitude
slower than everything else).  The computation below vectorises one window
start at a time with numpy; benches therefore run APLA on shorter series (see
DESIGN.md substitution 3).
"""

from __future__ import annotations

import numpy as np

from ..core.linefit import SeriesStats
from ..core.segment import LinearSegmentation, Segment
from .base import SegmentReducer

__all__ = ["APLA", "error_matrix"]


def error_matrix(series: np.ndarray) -> np.ndarray:
    """``E[i, j]`` = max deviation of the least-squares line over ``[i, j]``.

    Vectorised per window start: for a fixed ``i`` the fits of every window
    ``[i, j]`` come from prefix sums, and the residual matrix over ``(j, t)``
    is evaluated in one broadcast.  O(n^2) memory per start is avoided by
    only materialising the lower-triangular part row by row.
    """
    series = np.asarray(series, dtype=float)
    n = series.shape[0]
    t = np.arange(n, dtype=float)
    prefix_y = np.concatenate(([0.0], np.cumsum(series)))
    prefix_ty = np.concatenate(([0.0], np.cumsum(t * series)))
    matrix = np.zeros((n, n))
    for i in range(n):
        lengths = np.arange(1, n - i + 1, dtype=float)  # window lengths for j = i..n-1
        sum_y = prefix_y[i + 1 :] - prefix_y[i]
        sum_ty = (prefix_ty[i + 1 :] - prefix_ty[i]) - i * sum_y
        s1 = lengths * (lengths - 1) / 2.0
        s2 = lengths * (lengths - 1) * (2 * lengths - 1) / 6.0
        det = lengths * s2 - s1 * s1
        with np.errstate(divide="ignore", invalid="ignore"):
            a = np.where(det > 0, (lengths * sum_ty - s1 * sum_y) / np.where(det > 0, det, 1), 0.0)
        b = (sum_y - a * s1) / lengths
        # residuals: rows are window ends j, columns are local offsets
        local = np.arange(n - i, dtype=float)
        fitted = a[:, None] * local[None, :] + b[:, None]
        residual = np.abs(series[i:][None, :] - fitted)
        # max over t <= j: running max along the lower triangle
        mask = local[None, :] <= np.arange(n - i, dtype=float)[:, None]
        residual = np.where(mask, residual, 0.0)
        matrix[i, i:] = residual.max(axis=1)
    return matrix


class APLA(SegmentReducer):
    """Optimal (sum of segment max deviations) adaptive linear segmentation."""

    name = "APLA"
    coefficients_per_segment = 3

    def transform(self, series: np.ndarray) -> LinearSegmentation:
        series = self._validated(series)
        return self._transform_validated(series)

    def _transform_batch_rows(self, matrix: np.ndarray) -> "list[LinearSegmentation]":
        # one shared validation pass; each row runs the (already vectorised
        # per window start) error-matrix build and the DP over it
        return [self._transform_validated(row) for row in matrix]

    def _transform_validated(self, series: np.ndarray) -> LinearSegmentation:
        n = len(series)
        target = min(self.n_segments, n)
        errors = error_matrix(series)

        # varpi[t][m]: best cost covering 0..m with t+1 segments
        cost = np.full((target, n), np.inf)
        choice = np.zeros((target, n), dtype=int)
        cost[0] = errors[0]
        for seg in range(1, target):
            for m in range(seg, n):
                # previous segment ends at alpha, new segment is [alpha+1, m]
                alphas = np.arange(seg - 1, m)
                totals = cost[seg - 1, alphas] + errors[alphas + 1, m]
                best = int(np.argmin(totals))
                cost[seg, m] = totals[best]
                choice[seg, m] = alphas[best]

        # pick the segment count achieving the best cost at full coverage
        # (fewer segments can win when the series is simpler than the budget)
        best_t = int(np.argmin(cost[:, n - 1]))
        boundaries = []
        m = n - 1
        for seg in range(best_t, 0, -1):
            alpha = choice[seg, m]
            boundaries.append(alpha)
            m = alpha
        boundaries = sorted(boundaries)

        stats = SeriesStats(series)
        segments = []
        start = 0
        for boundary in boundaries:
            segments.append(Segment.fit(stats, start, boundary))
            start = boundary + 1
        segments.append(Segment.fit(stats, start, n - 1))
        return LinearSegmentation(segments)
