"""Checksummed, length-prefixed write-ahead log for mutable databases.

Every ``insert``/``delete`` against a durably-opened database appends one
record here *before* the in-memory (or paged) state changes, so a crash at
any instant loses at most the un-fsynced tail.  The format is deliberately
boring — the property that matters is that replay can always tell a
committed record from a torn one:

``file  = magic (8 bytes) ·  record*``
``record = length u32 LE · crc32(payload) u32 LE · payload``
``payload = op u8 · lsn u64 LE · op-specific body``

Bodies: ``insert`` carries ``series_id u64 · n u32 · n float64`` raw values,
``delete`` carries ``series_id u64``, ``checkpoint`` carries the folded row
count ``u64``.  LSNs increase monotonically and survive :meth:`~WriteAheadLog.reset`
(truncation after a checkpoint), so record ordering is globally unambiguous.

Replay (:func:`read_wal`) is torn-tail tolerant: it stops at the first
record whose length prefix, payload or CRC is incomplete or wrong and
reports the dropped byte count; opening the log for append truncates that
tail so new records never interleave with garbage.
"""

from __future__ import annotations

import enum
import os
import pathlib
import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from .. import obs

__all__ = [
    "DurabilityOptions",
    "FsyncPolicy",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "read_wal",
]

PathLike = Union[str, pathlib.Path]

#: identifies a WAL file and its format version.
MAGIC = b"RPWAL\x00\x01\n"

#: default WAL filename inside a database directory.
WAL_FILENAME = "wal.log"

_PREFIX = struct.Struct("<II")  # payload length, crc32(payload)
_HEAD = struct.Struct("<BQ")  # op, lsn
_INSERT_HEAD = struct.Struct("<QI")  # series_id, n
_U64 = struct.Struct("<Q")

#: guards replay against a corrupt length prefix claiming gigabytes.
_MAX_PAYLOAD = 64 * 1024 * 1024

OP_INSERT, OP_DELETE, OP_CHECKPOINT = 1, 2, 3
_OP_NAMES = {OP_INSERT: "insert", OP_DELETE: "delete", OP_CHECKPOINT: "checkpoint"}


class WalError(ValueError):
    """A structurally invalid WAL file (bad magic, impossible record)."""


class FsyncPolicy(str, enum.Enum):
    """When appended records are forced to stable storage.

    ``ALWAYS`` fsyncs after every append — every acknowledged mutation is
    committed.  ``BATCH`` fsyncs every :attr:`DurabilityOptions.batch_records`
    appends (and on checkpoint/close) — bounded loss, much higher
    throughput.  ``NEVER`` leaves flushing to the OS — durability only at
    checkpoints.
    """

    ALWAYS = "always"
    BATCH = "batch"
    NEVER = "never"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class DurabilityOptions:
    """Typed durability configuration for a mutable database.

    Args:
        wal: write a WAL at all; ``False`` trades crash safety for raw
            ingest throughput (recoverable state is then the last
            checkpoint only).
        fsync: a :class:`FsyncPolicy` (or its string value).
        batch_records: under ``FsyncPolicy.BATCH``, fsync once per this
            many appended records.
    """

    wal: bool = True
    fsync: "Union[FsyncPolicy, str]" = FsyncPolicy.BATCH
    batch_records: int = 64

    def __post_init__(self):
        object.__setattr__(self, "fsync", FsyncPolicy(self.fsync))
        if self.batch_records < 1:
            raise ValueError("batch_records must be >= 1")


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    lsn: int
    op: str
    series_id: int = -1
    series: "Optional[np.ndarray]" = None
    row_count: int = -1  # checkpoint records: rows folded into the save


def _decode(payload: bytes) -> WalRecord:
    op, lsn = _HEAD.unpack_from(payload, 0)
    body = payload[_HEAD.size :]
    if op == OP_INSERT:
        series_id, n = _INSERT_HEAD.unpack_from(body, 0)
        values = np.frombuffer(body, dtype="<f8", count=n, offset=_INSERT_HEAD.size)
        if len(values) != n:
            raise WalError("insert record body shorter than its declared length")
        return WalRecord(lsn=lsn, op="insert", series_id=int(series_id), series=values.copy())
    if op == OP_DELETE:
        (series_id,) = _U64.unpack_from(body, 0)
        return WalRecord(lsn=lsn, op="delete", series_id=int(series_id))
    if op == OP_CHECKPOINT:
        (row_count,) = _U64.unpack_from(body, 0)
        return WalRecord(lsn=lsn, op="checkpoint", row_count=int(row_count))
    raise WalError(f"unknown WAL op {op}")


def _scan(raw: bytes) -> "Tuple[List[WalRecord], int]":
    """Decode records from ``raw`` (past the magic); returns
    ``(records, valid_end)`` where ``valid_end`` is the offset of the first
    torn/invalid byte (== ``len(raw)`` for a clean log)."""
    records: "List[WalRecord]" = []
    offset = 0
    while True:
        if offset + _PREFIX.size > len(raw):
            break
        length, crc = _PREFIX.unpack_from(raw, offset)
        if length < _HEAD.size or length > _MAX_PAYLOAD:
            break
        start = offset + _PREFIX.size
        payload = raw[start : start + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            break
        try:
            records.append(_decode(payload))
        except (WalError, struct.error):
            break
        offset = start + length
    return records, offset


def read_wal(path: PathLike) -> "Tuple[List[WalRecord], int]":
    """Read every committed record of ``path``; torn tails are dropped.

    Returns ``(records, torn_bytes)``.  A missing file reads as an empty
    log; a file that exists but does not start with the WAL magic raises
    :class:`WalError` (it is not a log at all — replaying it would be
    worse than failing).
    """
    path = pathlib.Path(path)
    if not path.exists():
        return [], 0
    blob = path.read_bytes()
    if len(blob) < len(MAGIC):
        return [], len(blob)  # torn before the header finished
    if blob[: len(MAGIC)] != MAGIC:
        raise WalError(f"{path} does not start with the WAL magic")
    with obs.span("wal.replay"):
        records, valid_end = _scan(blob[len(MAGIC) :])
    torn = len(blob) - len(MAGIC) - valid_end
    if obs.is_enabled():
        obs.count("wal.records_replayed", len(records))
        if torn:
            obs.count("wal.torn_bytes", torn)
    return records, torn


class WriteAheadLog:
    """Append-only log handle with a configurable fsync policy.

    Open with :meth:`open` (which truncates any torn tail and resumes the
    LSN sequence), append with :meth:`append_insert` /
    :meth:`append_delete` / :meth:`append_checkpoint`, and fold with
    :meth:`reset` after a checkpoint has persisted the state elsewhere.
    """

    def __init__(self, path: PathLike, options: "Optional[DurabilityOptions]" = None):
        self.path = pathlib.Path(path)
        self.options = options if options is not None else DurabilityOptions()
        self.last_lsn = 0
        self._handle = None
        self._unsynced = 0

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls, path: PathLike, options: "Optional[DurabilityOptions]" = None
    ) -> "WriteAheadLog":
        """Open ``path`` for appending, creating it or trimming a torn tail."""
        wal = cls(path, options)
        if wal.path.exists() and wal.path.stat().st_size >= len(MAGIC):
            records, torn = read_wal(wal.path)
            wal.last_lsn = records[-1].lsn if records else 0
            valid_size = wal.path.stat().st_size - torn
            wal._handle = open(wal.path, "r+b")
            if torn:
                wal._handle.truncate(valid_size)
            wal._handle.seek(valid_size)
        else:
            wal._handle = open(wal.path, "wb")
            wal._handle.write(MAGIC)
            wal._handle.flush()
        return wal

    # ------------------------------------------------------------------
    def append_insert(self, series_id: int, series: np.ndarray) -> int:
        """Log one insert; returns its LSN."""
        values = np.ascontiguousarray(np.asarray(series, dtype="<f8")).ravel()
        body = _INSERT_HEAD.pack(series_id, len(values)) + values.tobytes()
        return self._append(OP_INSERT, body)

    def append_delete(self, series_id: int) -> int:
        """Log one delete; returns its LSN."""
        return self._append(OP_DELETE, _U64.pack(series_id))

    def append_checkpoint(self, row_count: int) -> int:
        """Log a checkpoint marker (``row_count`` rows folded); fsyncs."""
        lsn = self._append(OP_CHECKPOINT, _U64.pack(row_count))
        self.sync()
        obs.count("wal.checkpoints")
        return lsn

    def _append(self, op: int, body: bytes) -> int:
        if self._handle is None:
            raise WalError("write-ahead log is closed")
        self.last_lsn += 1
        payload = _HEAD.pack(op, self.last_lsn) + body
        record = _PREFIX.pack(len(payload), zlib.crc32(payload)) + payload
        self._handle.write(record)
        self._unsynced += 1
        policy = self.options.fsync
        if policy is FsyncPolicy.ALWAYS:
            self.sync()
        elif policy is FsyncPolicy.BATCH and self._unsynced >= self.options.batch_records:
            self.sync()
        else:
            self._handle.flush()
        if obs.is_enabled():
            obs.count("wal.appends")
            obs.count("wal.bytes_written", len(record))
        return self.last_lsn

    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Flush buffered records and fsync the file."""
        if self._handle is None:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        if self._unsynced:
            self._unsynced = 0
            obs.count("wal.fsyncs")

    def reset(self) -> None:
        """Truncate to an empty log (after a checkpoint folded the records).

        The LSN sequence continues — ordering stays unambiguous across
        truncations.
        """
        if self._handle is None:
            raise WalError("write-ahead log is closed")
        self._handle.truncate(len(MAGIC))
        self._handle.seek(len(MAGIC))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._unsynced = 0

    def size_bytes(self) -> int:
        """Current log size (records only, excluding the magic)."""
        if self._handle is not None:
            self._handle.flush()
        return max(self.path.stat().st_size - len(MAGIC), 0)

    def close(self) -> None:
        """Flush, fsync and release the file handle."""
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
