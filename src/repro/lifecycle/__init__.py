"""repro.lifecycle — durable ingestion and maintenance for mutable databases.

The paper's databases are disk-resident and long-lived; this package is the
layer that lets them *stay* long-lived under a continuous stream of inserts
and deletes:

* :mod:`~repro.lifecycle.wal` — checksummed, length-prefixed write-ahead
  log with a typed :class:`DurabilityOptions` fsync policy;
* :mod:`~repro.lifecycle.recovery` — torn-tail-tolerant, idempotent replay
  on :func:`repro.io.open_database`;
* :mod:`~repro.lifecycle.maintenance` — :func:`checkpoint` folds the log
  into the saved state, :func:`compact` rewrites pages to drop tombstones;
* :mod:`~repro.lifecycle.snapshot` — the generation counter and
  copy-on-write pinning that give ``knn_batch`` a stable read view while
  mutations land.

Attribute access is lazy so that low-level modules (``repro.index.knn``
imports :mod:`~repro.lifecycle.snapshot`) never drag the whole package —
and with it ``repro.io`` — into their import graph.
"""

from __future__ import annotations

__all__ = [
    "CheckpointReport",
    "CompactionReport",
    "DurabilityOptions",
    "FsyncPolicy",
    "MutableDatabase",
    "RecoveryError",
    "RecoveryReport",
    "Snapshot",
    "WAL_FILENAME",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "checkpoint",
    "compact",
    "read_wal",
    "recover_database",
]

#: export name -> defining submodule (resolved lazily via PEP 562)
_LOCATIONS = {
    "DurabilityOptions": "wal",
    "FsyncPolicy": "wal",
    "WAL_FILENAME": "wal",
    "WalError": "wal",
    "WalRecord": "wal",
    "WriteAheadLog": "wal",
    "read_wal": "wal",
    "RecoveryError": "recovery",
    "RecoveryReport": "recovery",
    "recover_database": "recovery",
    "CheckpointReport": "maintenance",
    "CompactionReport": "maintenance",
    "checkpoint": "maintenance",
    "compact": "maintenance",
    "MutableDatabase": "snapshot",
    "Snapshot": "snapshot",
}


def __getattr__(name: str):
    try:
        module_name = _LOCATIONS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.lifecycle' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(__all__)
