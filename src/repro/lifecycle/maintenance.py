"""Checkpointing and compaction for durably-opened databases.

A write-ahead log bounds what a crash can lose, but it grows without bound
and replay cost grows with it; deletes leave tombstoned rows behind that
every ``ground_truth`` scan and every page of a disk store still pays for.
The two maintenance operations here close that loop:

* :func:`checkpoint` folds the current state into the saved directory
  (``data.npz``/``series.bin`` + ``representations.json`` + ``config.json``)
  and truncates the WAL — recovery afterwards starts from the new base.
* :func:`compact` additionally rewrites the raw rows to drop tombstones,
  renumbering the surviving series to contiguous ids ``0..m-1`` (ids are
  append-only *between* compactions; a compaction is the explicit point
  where they are re-packed).  The paged store is rewritten through a
  temporary file and atomically replaced, the index is rebuilt from the
  surviving representations (no re-reduction), and the report says how many
  data bytes came back.

Both refuse to run while snapshots are pinned — the physical state must
match the logical one before it is persisted.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from .. import obs
from .wal import WAL_FILENAME, WriteAheadLog

__all__ = ["CheckpointReport", "CompactionReport", "checkpoint", "compact"]

PathLike = Union[str, pathlib.Path]


@dataclass(frozen=True)
class CheckpointReport:
    """Outcome of one :func:`checkpoint`."""

    directory: str
    row_count: int
    live_count: int
    wal_bytes_folded: int


@dataclass(frozen=True)
class CompactionReport:
    """Outcome of one :func:`compact`."""

    directory: "Optional[str]"
    rows_before: int
    rows_live: int
    reclaimed_bytes: int
    data_bytes_before: int

    @property
    def rows_dropped(self) -> int:
        return self.rows_before - self.rows_live

    @property
    def reclaimed_fraction(self) -> float:
        """Share of pre-compaction data bytes reclaimed."""
        if not self.data_bytes_before:
            return 0.0
        return self.reclaimed_bytes / self.data_bytes_before


def _parts(db):
    """``(inner SeriesDatabase, store or None)`` for either database kind."""
    inner = getattr(db, "_inner", db)
    store = getattr(db, "store", None)
    return inner, store


def _resolve_home(db, directory: "Optional[PathLike]") -> pathlib.Path:
    home = directory if directory is not None else getattr(db, "_home", None)
    if home is None:
        raise ValueError(
            "database has no known directory; pass directory= explicitly"
        )
    return pathlib.Path(home)


def _fold_wal(db, home: pathlib.Path, row_count: int) -> int:
    """Truncate the database's WAL (attached or on disk); returns bytes folded."""
    wal = getattr(db, "wal", None)
    if wal is not None:
        folded = wal.size_bytes()
        wal.append_checkpoint(row_count)
        wal.reset()
        return folded
    wal_path = home / WAL_FILENAME
    if wal_path.exists():
        with WriteAheadLog.open(wal_path) as log:
            folded = log.size_bytes()
            log.reset()
        return folded
    return 0


def checkpoint(db, directory: "Optional[PathLike]" = None) -> CheckpointReport:
    """Persist ``db``'s current state and truncate its write-ahead log.

    Works for both database kinds.  ``directory`` defaults to the directory
    the database was opened from.
    """
    home = _resolve_home(db, directory)
    inner, _ = _parts(db)
    inner._flush_pending()
    with obs.span("lifecycle.checkpoint"):
        db.save(home)
        row_count = inner._count
        folded = _fold_wal(db, home, row_count)
    db._home = home
    return CheckpointReport(
        directory=str(home),
        row_count=row_count,
        live_count=len(inner.entries),
        wal_bytes_folded=folded,
    )


def compact(db, directory: "Optional[PathLike]" = None) -> CompactionReport:
    """Drop tombstoned rows, renumber survivors, and persist the result.

    Returns a :class:`CompactionReport` with the reclaimed byte count.  The
    surviving series keep their relative order but get new contiguous ids;
    any attached WAL is folded (its records name pre-compaction ids).  A
    database that was never saved to a directory is compacted in place
    without persisting.
    """
    inner, store = _parts(db)
    inner._flush_pending()
    if not inner.entries:
        raise ValueError("cannot compact a database with no live series")
    pairs = sorted((e.series_id, e.representation) for e in inner.entries)
    live = [sid for sid, _ in pairs]
    representations = [rep for _, rep in pairs]
    rows_before = inner._count
    with obs.span("lifecycle.compact"):
        if store is not None:
            row_bytes = store.length * 8
            data_bytes_before = rows_before * row_bytes
            rows = np.stack([store.read(sid) for sid in live])
            tmp = store.path.with_suffix(store.path.suffix + ".compact")
            from ..storage.pages import PagedSeriesStore

            PagedSeriesStore.write(
                tmp, rows, page_size=store.page_size, cache_pages=store.cache_pages
            )
            os.replace(tmp, store.path)
            db.store = PagedSeriesStore.open(
                store.path, page_size=store.page_size, cache_pages=store.cache_pages
            )
            db._reindex(rows, representations)
        else:
            row_bytes = inner.data.shape[1] * 8
            data_bytes_before = rows_before * row_bytes
            rows = np.asarray(inner.data)[np.asarray(live, dtype=np.intp)].copy()
            inner.ingest(rows, representations=representations)
        reclaimed = (rows_before - len(live)) * row_bytes
        home = getattr(db, "_home", None) if directory is None else pathlib.Path(directory)
        if home is not None:
            db.save(home)
            _fold_wal(db, pathlib.Path(home), len(live))
            db._home = pathlib.Path(home)
    if obs.is_enabled():
        obs.count("compaction.runs")
        obs.count("compaction.rows_dropped", rows_before - len(live))
        obs.count("compaction.reclaimed_bytes", reclaimed)
    return CompactionReport(
        directory=str(home) if home is not None else None,
        rows_before=rows_before,
        rows_live=len(live),
        reclaimed_bytes=reclaimed,
        data_bytes_before=data_bytes_before,
    )
