"""Snapshot-consistent serving for mutable databases.

A similarity database that accepts inserts and deletes while answering
``knn_batch`` traffic needs a stable read view: a query planned against one
entry set must not see half of a concurrent insert (a raw row without its
index entry, or a tree mid-split).  The mechanism here is deliberately
small — single-version copy-on-write rather than full MVCC:

* every database carries a monotonically increasing **generation** counter,
  bumped once per *visible* mutation;
* :meth:`MutableDatabase.snapshot` pins the current version and returns a
  :class:`Snapshot` — a lightweight read view over the pinned entry list,
  raw-data view and tree;
* while at least one snapshot is pinned, mutations are **deferred**: the
  raw row (and WAL record) land immediately, but the entry-list and tree
  updates queue as pending operations and apply in order when the last
  snapshot releases.  Readers therefore always see a generation boundary,
  never a partial mutation.

The engine pins a snapshot for the duration of each batch, so a pinned
window is short; a snapshot must not be used after :meth:`Snapshot.release`.
"""

from __future__ import annotations

import threading
from typing import List, Optional

__all__ = ["MutableDatabase", "Snapshot"]


class Snapshot:
    """A pinned, immutable read view of a :class:`MutableDatabase`.

    Exposes exactly the surface the query engine and search states consume
    (``data`` / ``entries`` / ``tree`` / ``suite`` plus the helper methods),
    with the entry list and raw-data view frozen at pin time.  Use as a
    context manager, or call :meth:`release` explicitly; the view is
    invalid after release.
    """

    __slots__ = ("_db", "generation", "entries", "data", "tree", "_released", "_engine")

    def __init__(self, db):
        self._db = db
        self.generation: int = db.generation
        self.entries: "List" = db.entries
        self.data = db.data
        self.tree = db.tree
        self._released = False
        self._engine = None  # worker forks may stash a QueryEngine here

    # -- delegation to the owning database ------------------------------
    @property
    def suite(self):
        return self._db.suite

    @property
    def reducer(self):
        return self._db.reducer

    @property
    def index_kind(self):
        return self._db.index_kind

    @property
    def node_bounds_exact(self):
        return self._db.node_bounds_exact

    def query_context(self, query):
        """Reduce ``query`` for the distance suite (stateless; delegated)."""
        return self._db.query_context(query)

    def node_distance(self, ctx, node):
        """Index-structure distance against the pinned tree."""
        return self._db.node_distance(ctx, node)

    def stacked_entries(self):
        """The stacked representation cache (stable while pinned)."""
        return self._db.stacked_entries()

    def cascade(self):
        """The owning database's bound cascade (suite-scoped; delegated)."""
        return self._db.cascade()

    def columns(self):
        """The owning database's packed column block.

        Row ids are append-only and existing rows never mutate in place, so
        a block built over the live data answers the pinned view's ids with
        identical bytes.
        """
        return self._db.columns()

    def engine(self):
        """A :class:`repro.engine.QueryEngine` over this pinned view.

        Cached on the snapshot for its lifetime; the engine reads the
        pinned entry list/tree, so batches through it are stable even
        while the owning database mutates.
        """
        if self._engine is None:
            from ..engine import QueryEngine

            self._engine = QueryEngine(self, _internal=True)
        return self._engine

    # -- lifetime --------------------------------------------------------
    def release(self) -> None:
        """Unpin; pending mutations flush once the last snapshot releases."""
        if not self._released:
            self._released = True
            self._db._release_snapshot()

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False


class MutableDatabase:
    """Mixin: the shared mutable-serving contract of both database kinds.

    Concrete classes (:class:`repro.index.SeriesDatabase`,
    :class:`repro.storage.DiskBackedDatabase`) provide ``insert`` /
    ``delete`` and the internal apply hooks; this mixin owns the generation
    counter, the snapshot pin count and the pending-operation queue that
    defers index visibility while snapshots are live.
    """

    def _init_lifecycle(self) -> None:
        """Initialise mutation-tracking state (call from ``__init__``)."""
        self._generation = 0
        self._pins = 0
        self._pending: "List[tuple]" = []
        self._mutate_lock = threading.RLock()
        self._wal = None
        self._home = None

    # -- snapshot API ----------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotonic version counter; bumps once per visible mutation."""
        return self._generation

    @property
    def wal(self):
        """The attached :class:`repro.lifecycle.WriteAheadLog`, if any."""
        return self._wal

    def attach_wal(self, wal) -> None:
        """Route subsequent ``insert``/``delete`` calls through ``wal``."""
        self._wal = wal

    def snapshot(self) -> Snapshot:
        """Pin the current version and return a stable read view."""
        with self._mutate_lock:
            self._pins += 1
            return Snapshot(self)

    def freeze(self) -> Snapshot:
        """Alias of :meth:`snapshot` — the context-manager spelling.

        ``with db.freeze() as view: ...`` serves a stable view for the
        duration of the block while concurrent mutations queue.
        """
        return self.snapshot()

    # -- deferred-application machinery ---------------------------------
    def _release_snapshot(self) -> None:
        with self._mutate_lock:
            self._pins -= 1
            if self._pins == 0 and self._pending:
                ops, self._pending = self._pending, []
                for op, payload in ops:
                    self._apply_op(op, payload)

    def _stage(self, op: str, payload) -> None:
        """Apply a mutation now, or queue it while snapshots are pinned."""
        with self._mutate_lock:
            if self._pins:
                self._pending.append((op, payload))
            else:
                self._apply_op(op, payload)

    def _apply_op(self, op: str, payload) -> None:
        """Make one mutation visible (entry list + tree).  Lock held."""
        raise NotImplementedError

    def _flush_pending(self) -> None:
        """Force-apply queued mutations; raises while snapshots are pinned.

        Maintenance operations (checkpoint, compaction) need the physical
        state to match the logical one before persisting it.
        """
        with self._mutate_lock:
            if not self._pending:
                return
            if self._pins:
                raise RuntimeError(
                    "cannot flush pending mutations while snapshots are pinned"
                )
            ops, self._pending = self._pending, []
            for op, payload in ops:
                self._apply_op(op, payload)
