"""Crash recovery: fold a write-ahead log back into a reopened database.

:func:`repro.io.open_database` calls :func:`recover_database` whenever the
directory it is opening contains a WAL.  Replay is **idempotent** by
construction, so a crash during recovery itself (or a save that raced a
truncation) never corrupts state:

* insert records whose ``series_id`` precedes the checkpointed row count
  are already folded into the saved state and are skipped;
* the remaining inserts are re-applied in LSN order — the raw row lands in
  the data buffer (memory kind) or is rewritten onto its page (disk kind,
  which also heals torn page writes), and the series is re-transformed
  through the database's reducer and re-inserted into the DBCH/R-tree;
* delete records are best-effort: deleting an id that is already gone is a
  no-op.

The torn tail of the log (records whose CRC or length check fails) is
reported, never replayed; under ``FsyncPolicy.ALWAYS`` the tail can only
contain the single record that was mid-write when the process died, so no
acknowledged mutation is ever lost.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Union

from .. import obs
from .wal import read_wal

__all__ = ["RecoveryError", "RecoveryReport", "recover_database"]

PathLike = Union[str, pathlib.Path]


class RecoveryError(RuntimeError):
    """The WAL and the saved state disagree in a non-recoverable way."""


@dataclass(frozen=True)
class RecoveryReport:
    """What one recovery pass did."""

    replayed_inserts: int
    replayed_deletes: int
    skipped_records: int
    torn_bytes: int
    last_lsn: int

    @property
    def replayed(self) -> int:
        """Total records re-applied."""
        return self.replayed_inserts + self.replayed_deletes


def recover_database(db, wal_path: PathLike, base_count: int) -> RecoveryReport:
    """Replay the committed WAL records of ``wal_path`` into ``db``.

    Args:
        db: a freshly reopened database (either kind); must expose the
            ``_replay_insert`` / ``_replay_delete`` hooks.
        wal_path: the log file (missing/empty is a clean no-op).
        base_count: rows already folded into the saved state the database
            was reopened from — insert records below this id are skipped.
    """
    records, torn_bytes = read_wal(wal_path)
    replayed_inserts = replayed_deletes = skipped = 0
    replay_batch = getattr(db, "_replay_insert_batch", None)
    pending_inserts: "list[tuple]" = []

    def flush_inserts() -> None:
        nonlocal replayed_inserts
        if not pending_inserts:
            return
        if replay_batch is not None:
            replay_batch(pending_inserts)
        else:
            for series_id, series in pending_inserts:
                db._replay_insert(series_id, series)
        replayed_inserts += len(pending_inserts)
        pending_inserts.clear()

    with obs.span("lifecycle.recover"):
        for record in records:
            if record.op == "insert":
                if record.series_id < base_count:
                    skipped += 1
                    continue
                # runs of consecutive inserts replay as one batch reduction
                pending_inserts.append((record.series_id, record.series))
            elif record.op == "delete":
                flush_inserts()
                if db._replay_delete(record.series_id):
                    replayed_deletes += 1
                else:
                    skipped += 1
            else:  # checkpoint markers carry no state
                skipped += 1
        flush_inserts()
    if obs.is_enabled():
        obs.count("recovery.runs")
        obs.count("recovery.replayed_inserts", replayed_inserts)
        obs.count("recovery.replayed_deletes", replayed_deletes)
        obs.count("recovery.skipped_records", skipped)
    return RecoveryReport(
        replayed_inserts=replayed_inserts,
        replayed_deletes=replayed_deletes,
        skipped_records=skipped,
        torn_bytes=torn_bytes,
        last_lsn=records[-1].lsn if records else 0,
    )
