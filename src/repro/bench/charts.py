"""ASCII bar charts: terminal renderings of the paper's bar figures.

The paper's Figs. 12-16 are grouped bar charts; ``bar_chart`` renders the
same rows the tables report as horizontal bars so the orderings are visible
at a glance in a terminal or a text log.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["bar_chart", "grouped_bar_chart"]

_BAR = "█"
_HALF = "▌"


def _render_bar(value: float, scale: float, width: int) -> str:
    if scale <= 0:
        return ""
    units = value / scale * width
    whole = int(units)
    return _BAR * whole + (_HALF if units - whole >= 0.5 else "")


def bar_chart(
    title: str,
    rows: "Sequence[Mapping]",
    label_key: str,
    value_key: str,
    width: int = 40,
) -> str:
    """Render one horizontal bar per row, scaled to the maximum value."""
    if not rows:
        return f"{title}\n(no rows)"
    values = [float(row[value_key]) for row in rows]
    labels = [str(row[label_key]) for row in rows]
    scale = max(values) if max(values) > 0 else 1.0
    label_width = max(len(label) for label in labels)
    lines = [title, "-" * (label_width + width + 14)]
    for label, value in zip(labels, values):
        bar = _render_bar(value, scale, width)
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.4g}")
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    rows: "Sequence[Mapping]",
    group_key: str,
    label_key: str,
    value_key: str,
    width: int = 40,
) -> str:
    """Render bars grouped by ``group_key`` (e.g. one block per method).

    This is the shape of the paper's Figs. 13-16: per method, one bar for
    the R-tree and one for the DBCH-tree.
    """
    if not rows:
        return f"{title}\n(no rows)"
    values = [float(row[value_key]) for row in rows]
    scale = max(values) if max(values) > 0 else 1.0
    groups: "dict[str, list]" = {}
    for row in rows:
        groups.setdefault(str(row[group_key]), []).append(row)
    label_width = max(len(str(row[label_key])) for row in rows)
    lines = [title, "=" * (label_width + width + 16)]
    for group, members in groups.items():
        lines.append(group)
        for row in members:
            bar = _render_bar(float(row[value_key]), scale, width)
            lines.append(
                f"  {str(row[label_key]).ljust(label_width)}  {bar} "
                f"{float(row[value_key]):.4g}"
            )
    return "\n".join(lines)
