"""Experiment configuration and shared plumbing for the benchmark harness.

The paper's full grid (117 datasets x M in {12,18,24} x K in {4..64} x eight
methods x two indexes, series length 1024, 100 series per dataset) takes
hours in pure Python, so the default configuration is a stratified CI-sized
slice: one dataset per shape family, shorter series, fewer series.  The full
grid is reachable through environment knobs:

    REPRO_LENGTH=1024 REPRO_SERIES=100 REPRO_QUERIES=5 REPRO_DATASETS=all \
        pytest benchmarks/ --benchmark-only

``REPRO_DATASETS`` accepts ``all``, ``family`` (default) or a comma-separated
list of dataset names.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Sequence

from ..data.archive import UCRLikeArchive

__all__ = ["ExperimentConfig", "config_from_env", "DEFAULT_METHODS"]

#: figure order used throughout the paper's bar charts
DEFAULT_METHODS = ("SAPLA", "APLA", "APCA", "PLA", "PAA", "PAALM", "CHEBY", "SAX")


@dataclass
class ExperimentConfig:
    """Scales every experiment; defaults are CI-sized (see module docstring)."""

    dataset_names: "Sequence[str]" = ()
    length: int = 256
    n_series: int = 24
    n_queries: int = 3
    coefficients: "Sequence[int]" = (12,)
    ks: "Sequence[int]" = (4, 8)
    methods: "Sequence[str]" = DEFAULT_METHODS
    #: APLA's error matrix is O(n^3)-ish in Python; series longer than this
    #: are resampled for APLA only (recorded in the output)
    apla_max_length: int = 256
    max_entries: int = 5
    min_entries: int = 2

    archive: UCRLikeArchive = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.archive = UCRLikeArchive(
            length=self.length, n_series=self.n_series, n_queries=self.n_queries
        )
        if not self.dataset_names:
            self.dataset_names = tuple(self.archive.one_per_family())

    def datasets(self):
        """Yield each configured dataset, loaded from the archive."""
        for name in self.dataset_names:
            yield self.archive.load(name)


def config_from_env() -> ExperimentConfig:
    """Build a configuration from ``REPRO_*`` environment variables."""
    length = int(os.environ.get("REPRO_LENGTH", "256"))
    n_series = int(os.environ.get("REPRO_SERIES", "24"))
    n_queries = int(os.environ.get("REPRO_QUERIES", "3"))
    selector = os.environ.get("REPRO_DATASETS", "family")
    coefficients = tuple(
        int(m) for m in os.environ.get("REPRO_COEFFICIENTS", "12").split(",")
    )
    ks = tuple(int(k) for k in os.environ.get("REPRO_KS", "4,8").split(","))

    archive = UCRLikeArchive(length=length, n_series=n_series, n_queries=n_queries)
    if selector == "all":
        names: "tuple[str, ...]" = tuple(archive.names)
    elif selector == "family":
        names = ()
    else:
        names = tuple(s.strip() for s in selector.split(",") if s.strip())
    return ExperimentConfig(
        dataset_names=names,
        length=length,
        n_series=n_series,
        n_queries=n_queries,
        coefficients=coefficients,
        ks=ks,
        apla_max_length=int(os.environ.get("REPRO_APLA_MAX_LENGTH", "256")),
    )
