"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_table", "print_table"]


def _format(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(title: str, rows: "Sequence[Mapping]") -> str:
    """Render a list of row dicts as an aligned monospace table."""
    if not rows:
        return f"{title}\n(no rows)"
    columns = list(rows[0].keys())
    cells = [[_format(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "-" * len(header)
    body = "\n".join("  ".join(c.ljust(w) for c, w in zip(line, widths)) for line in cells)
    return f"\n{title}\n{rule}\n{header}\n{rule}\n{body}\n{rule}"


def print_table(title: str, rows: "Sequence[Mapping]") -> None:
    """Print a rendered table to stdout."""
    print(render_table(title, rows))
