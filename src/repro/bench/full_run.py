"""One-shot orchestration: run every experiment and persist the results.

``run_all`` executes the complete evaluation (worked example, Table 1,
Figs. 12-16, both ablations) for a given configuration, writes each
experiment's raw rows as JSON plus a rendered table, and returns the
summary.  Per-experiment JSON makes the full-grid reproduction resumable:
existing result files are skipped unless ``overwrite=True``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Callable, Dict, List, Union

from .experiments import (
    run_bound_ablation,
    run_dbch_ablation,
    run_index_grid,
    run_maxdev_and_time,
    run_scaling,
    run_worked_example,
    summarise_ingest_knn,
    summarise_pruning_accuracy,
    summarise_tree_shape,
)
from .harness import ExperimentConfig
from .reporting import render_table

__all__ = ["run_all", "EXPERIMENT_TITLES"]

PathLike = Union[str, pathlib.Path]

EXPERIMENT_TITLES = {
    "fig1_worked_example": "Fig 1 — worked example (M=12)",
    "table1_scaling": "Table 1 — reduction time vs series length",
    "fig12_maxdev_and_time": "Fig 12 — max deviation & reduction time",
    "fig13_pruning_accuracy": "Fig 13 — pruning power & accuracy",
    "fig14_ingest_knn": "Fig 14 — ingest & k-NN CPU time",
    "fig15_16_tree_shape": "Figs 15/16 — node counts & height",
    "ablation_bounds": "Ablation — SAPLA bound modes & stages",
    "ablation_dbch": "Ablation — DBCH query bound",
}


def run_all(
    config: ExperimentConfig,
    output_dir: PathLike,
    overwrite: bool = False,
    progress: "Callable[[str], None] | None" = None,
) -> "Dict[str, List[dict]]":
    """Run every experiment, persisting ``<name>.json`` and ``<name>.txt``.

    Returns a mapping from experiment name to its rows.  Experiments whose
    JSON already exists are loaded instead of re-run unless ``overwrite``.
    """
    output_dir = pathlib.Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    say = progress or (lambda message: None)
    results: "Dict[str, List[dict]]" = {}

    def produce(name: str, compute: "Callable[[], List[dict]]") -> "List[dict]":
        json_path = output_dir / f"{name}.json"
        if json_path.exists() and not overwrite:
            say(f"{name}: cached")
            rows = json.loads(json_path.read_text())
        else:
            say(f"{name}: running")
            rows = compute()
            json_path.write_text(json.dumps(rows, indent=1))
            (output_dir / f"{name}.txt").write_text(
                render_table(EXPERIMENT_TITLES[name], rows) + "\n"
            )
        results[name] = rows
        return rows

    produce("fig1_worked_example", run_worked_example)
    produce(
        "table1_scaling",
        lambda: run_scaling(lengths=(64, 128, min(config.length, 256))),
    )
    produce("fig12_maxdev_and_time", lambda: run_maxdev_and_time(config))

    grid_path = output_dir / "index_grid.json"
    if grid_path.exists() and not overwrite:
        say("index_grid: cached")
        grid = json.loads(grid_path.read_text())
    else:
        say("index_grid: running")
        grid = run_index_grid(config)
        grid_path.write_text(json.dumps(grid, indent=1))
    produce("fig13_pruning_accuracy", lambda: summarise_pruning_accuracy(grid))
    produce("fig14_ingest_knn", lambda: summarise_ingest_knn(grid))
    produce("fig15_16_tree_shape", lambda: summarise_tree_shape(grid))

    produce("ablation_bounds", lambda: run_bound_ablation(config))
    produce("ablation_dbch", lambda: run_dbch_ablation(config))
    return results
