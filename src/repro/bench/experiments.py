"""Experiment drivers: one function per paper table / figure.

Every function returns a list of row dicts that
:func:`repro.bench.reporting.print_table` renders as the same rows/series
the paper reports.  EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

from ..core.sapla import SAPLA
from ..data.normalize import resample_to_length
from ..index.knn import SeriesDatabase, linear_scan
from ..kinds import DistanceMode, IndexKind
from ..metrics.deviation import max_deviation, sum_of_segment_deviations
from ..reduction import REDUCERS
from ..reduction.base import Reducer
from .harness import ExperimentConfig

__all__ = [
    "make_reducer",
    "run_maxdev_and_time",
    "run_index_grid",
    "summarise_pruning_accuracy",
    "summarise_ingest_knn",
    "summarise_tree_shape",
    "run_scaling",
    "run_worked_example",
    "run_bound_ablation",
    "run_dbch_ablation",
]

#: the worked series of paper Figs. 1, 5, 6, 8
WORKED_SERIES = np.array(
    [7, 8, 20, 15, 18, 8, 8, 15, 10, 1, 4, 3, 3, 5, 4, 9, 2, 9, 10, 10], dtype=float
)


def make_reducer(method: str, n_coefficients: int, **kwargs) -> Reducer:
    """Instantiate a reducer by its paper name."""
    return REDUCERS[method](n_coefficients=n_coefficients, **kwargs)


def _series_for(method: str, series: np.ndarray, config: ExperimentConfig) -> np.ndarray:
    """Apply the documented APLA length cap (DESIGN.md substitution 3)."""
    if method == "APLA" and series.shape[0] > config.apla_max_length:
        return resample_to_length(series, config.apla_max_length)
    return series


# ----------------------------------------------------------------------
# Fig. 12: max deviation and dimensionality reduction time
# ----------------------------------------------------------------------
def run_maxdev_and_time(config: ExperimentConfig) -> "List[Dict]":
    """Rows of Fig. 12a (max deviation) and Fig. 12b (reduction CPU time).

    SAX is timed but excluded from max deviation, matching the paper.
    """
    rows: "List[Dict]" = []
    for m in config.coefficients:
        per_method: "Dict[str, Dict[str, list]]" = {
            name: {"dev": [], "time": []} for name in config.methods
        }
        for dataset in config.datasets():
            for method in config.methods:
                reducer = make_reducer(method, m)
                for series in dataset.data:
                    series = _series_for(method, series, config)
                    started = time.process_time()
                    representation = reducer.transform(series)
                    per_method[method]["time"].append(time.process_time() - started)
                    if method != "SAX":
                        recon = reducer.reconstruct(representation)
                        per_method[method]["dev"].append(max_deviation(series, recon))
        for method in config.methods:
            stats = per_method[method]
            rows.append(
                {
                    "M": m,
                    "method": method,
                    "max_deviation": float(np.mean(stats["dev"])) if stats["dev"] else float("nan"),
                    "reduction_time_s": float(np.mean(stats["time"])),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figs. 13-16: one pass over (dataset, method, M, index) producing the
# pruning power, accuracy, ingest time, k-NN time, and tree shape records
# ----------------------------------------------------------------------
def run_index_grid(config: ExperimentConfig) -> "List[Dict]":
    """Detailed records; the ``summarise_*`` helpers aggregate per figure."""
    records: "List[Dict]" = []
    for m in config.coefficients:
        for dataset in config.datasets():
            scan_data = dataset.data
            # linear-scan reference timing (Fig. 14b's last bar)
            for query in dataset.queries:
                started = time.process_time()
                linear_scan(scan_data, query, max(config.ks))
                records.append(
                    {
                        "M": m,
                        "dataset": dataset.name,
                        "method": "LinearScan",
                        "index": "none",
                        "kind": "knn",
                        "k": max(config.ks),
                        "knn_time_s": time.process_time() - started,
                        "pruning_power": 1.0,
                        "accuracy": 1.0,
                    }
                )
            for method in config.methods:
                reducer = make_reducer(method, m)
                data = np.array(
                    [_series_for(method, s, config) for s in dataset.data]
                )
                queries = np.array(
                    [_series_for(method, q, config) for q in dataset.queries]
                )
                started = time.process_time()
                representations = [reducer.transform(s) for s in data]
                reduction_time = time.process_time() - started
                for index_kind in (IndexKind.RTREE, IndexKind.DBCH):
                    db = SeriesDatabase(
                        reducer,
                        index=index_kind,
                        max_entries=config.max_entries,
                        min_entries=config.min_entries,
                    )
                    started = time.process_time()
                    db.ingest(data, representations=representations)
                    # ingest = reduce + insert (Fig. 14a); the reduction pass
                    # is shared between the two indexes, so it is added back
                    ingest_time = reduction_time + (time.process_time() - started)
                    counts = db.tree.node_counts()
                    records.append(
                        {
                            "M": m,
                            "dataset": dataset.name,
                            "method": method,
                            "index": index_kind,
                            "kind": "tree",
                            "ingest_time_s": ingest_time,
                            "internal_nodes": counts["internal"],
                            "leaf_nodes": counts["leaf"],
                            "total_nodes": counts["total"],
                            "height": db.tree.height,
                        }
                    )
                    for k in config.ks:
                        for query in queries:
                            truth = db.ground_truth(query, k)
                            started = time.process_time()
                            result = db.knn(query, k)
                            elapsed = time.process_time() - started
                            records.append(
                                {
                                    "M": m,
                                    "dataset": dataset.name,
                                    "method": method,
                                    "index": index_kind,
                                    "kind": "knn",
                                    "k": k,
                                    "knn_time_s": elapsed,
                                    "pruning_power": result.pruning_power,
                                    "accuracy": result.accuracy_against(truth),
                                }
                            )
    return records


def _mean_over(records: "List[Dict]", keys: "Sequence[str]", value: str) -> "List[Dict]":
    groups: "Dict[tuple, list]" = {}
    for rec in records:
        if value not in rec:
            continue
        groups.setdefault(tuple(rec[k] for k in keys), []).append(rec[value])
    return [
        {**dict(zip(keys, group)), value: float(np.mean(vals))}
        for group, vals in sorted(groups.items(), key=lambda kv: tuple(map(str, kv[0])))
    ]


def summarise_pruning_accuracy(records: "List[Dict]") -> "List[Dict]":
    """Fig. 13: mean pruning power and accuracy per method and index."""
    knn = [r for r in records if r["kind"] == "knn" and r["method"] != "LinearScan"]
    pruning = _mean_over(knn, ("method", "index"), "pruning_power")
    accuracy = {(_r["method"], _r["index"]): _r["accuracy"] for _r in _mean_over(knn, ("method", "index"), "accuracy")}
    for row in pruning:
        row["accuracy"] = accuracy[(row["method"], row["index"])]
    return pruning


def summarise_ingest_knn(records: "List[Dict]") -> "List[Dict]":
    """Fig. 14: mean ingest time per method/index, k-NN time incl. linear scan."""
    trees = [r for r in records if r["kind"] == "tree"]
    ingest = _mean_over(trees, ("method", "index"), "ingest_time_s")
    knn = [r for r in records if r["kind"] == "knn"]
    knn_time = {
        (r["method"], r["index"]): r["knn_time_s"]
        for r in _mean_over(knn, ("method", "index"), "knn_time_s")
    }
    rows = []
    for row in ingest:
        rows.append({**row, "knn_time_s": knn_time[(row["method"], row["index"])]})
    rows.append(
        {
            "method": "LinearScan",
            "index": "none",
            "ingest_time_s": 0.0,
            "knn_time_s": knn_time[("LinearScan", "none")],
        }
    )
    return rows


def summarise_tree_shape(records: "List[Dict]") -> "List[Dict]":
    """Figs. 15, 16: average node counts and height per method and index."""
    trees = [r for r in records if r["kind"] == "tree"]
    rows = _mean_over(trees, ("method", "index"), "internal_nodes")
    for value in ("leaf_nodes", "total_nodes", "height"):
        merged = {
            (r["method"], r["index"]): r[value]
            for r in _mean_over(trees, ("method", "index"), value)
        }
        for row in rows:
            row[value] = merged[(row["method"], row["index"])]
    return rows


# ----------------------------------------------------------------------
# Table 1: empirical reduction-time scaling against series length
# ----------------------------------------------------------------------
def run_scaling(
    lengths: "Sequence[int]" = (64, 128, 256),
    methods: "Sequence[str]" = ("SAPLA", "APLA", "APCA", "PLA", "PAA"),
    n_coefficients: int = 12,
    repeats: int = 3,
    seed: int = 0,
) -> "List[Dict]":
    """Reduction CPU time per method across series lengths (Table 1's shape).

    The expected ordering: PAA/PLA (O(n)) fastest, APCA (O(n log n)) close,
    SAPLA (O(n(N + log n))) moderate, APLA (matrix-dominated) slowest and
    growing fastest with n.
    """
    rows: "List[Dict]" = []
    rng = np.random.default_rng(seed)
    for n in lengths:
        series_pool = [rng.normal(size=n).cumsum() for _ in range(repeats)]
        for method in methods:
            reducer = make_reducer(method, n_coefficients)
            started = time.process_time()
            for series in series_pool:
                reducer.transform(series)
            elapsed = (time.process_time() - started) / repeats
            rows.append({"n": n, "method": method, "reduction_time_s": elapsed})
    return rows


# ----------------------------------------------------------------------
# Fig. 1 / Figs. 5, 6, 8: the worked 20-point example
# ----------------------------------------------------------------------
def run_worked_example() -> "List[Dict]":
    """Max deviation of each method on the paper's 20-point series (M = 12).

    Paper values: SAPLA 9.27273 (after all stages; 10.6061 after split &
    merge), APCA 18.4167, PLA 19.3999, with SAPLA/APLA at N = 4 and
    APCA/PLA at N = 6.
    """
    rows = []
    for method in ("SAPLA", "APLA", "APCA", "PLA"):
        reducer = make_reducer(method, 12)
        representation = reducer.transform(WORKED_SERIES)
        recon = reducer.reconstruct(representation)
        rows.append(
            {
                "method": method,
                "N": representation.n_segments,
                "max_deviation": max_deviation(WORKED_SERIES, recon),
                "sum_segment_deviation": sum_of_segment_deviations(
                    WORKED_SERIES, representation
                ),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Ablations (DESIGN.md design-choice benches)
# ----------------------------------------------------------------------
def run_bound_ablation(config: ExperimentConfig, n_coefficients: int = 12) -> "List[Dict]":
    """SAPLA variants: paper bounds vs exact deviations; endpoint stage on/off."""
    variants = {
        "paper-bounds": dict(bound_mode="paper", refine_endpoints=True),
        "exact-bounds": dict(bound_mode="exact", refine_endpoints=True),
        "no-endpoint-stage": dict(bound_mode="paper", refine_endpoints=False),
        "peak-split": dict(bound_mode="paper", refine_endpoints=True, split_mode="peak"),
    }
    rows = []
    n_segments = max(n_coefficients // 3, 1)
    for label, kwargs in variants.items():
        devs, times = [], []
        for dataset in config.datasets():
            pipeline = SAPLA(n_segments=n_segments, **kwargs)
            for series in dataset.data:
                started = time.process_time()
                rep = pipeline.transform(series)
                times.append(time.process_time() - started)
                devs.append(max_deviation(series, rep.reconstruct()))
        rows.append(
            {
                "variant": label,
                "max_deviation": float(np.mean(devs)),
                "reduction_time_s": float(np.mean(times)),
            }
        )
    return rows


def run_dbch_ablation(config: ExperimentConfig, n_coefficients: int = 12) -> "List[Dict]":
    """DBCH geometry driven by Dist_PAR vs Dist_LB-style query bounds."""
    rows = []
    for mode in (DistanceMode.PAR, DistanceMode.LB):
        prunes, accs = [], []
        for dataset in config.datasets():
            reducer = make_reducer("SAPLA", n_coefficients)
            db = SeriesDatabase(reducer, index=IndexKind.DBCH, distance_mode=mode)
            db.ingest(dataset.data)
            for query in dataset.queries:
                for k in config.ks:
                    truth = db.ground_truth(query, k)
                    result = db.knn(query, k)
                    prunes.append(result.pruning_power)
                    accs.append(result.accuracy_against(truth))
        rows.append(
            {
                "query_bound": f"Dist_{mode.upper()}",
                "pruning_power": float(np.mean(prunes)),
                "accuracy": float(np.mean(accs)),
            }
        )
    return rows
