"""Benchmark harness: configuration, experiment drivers, table rendering."""

from .experiments import (
    make_reducer,
    run_bound_ablation,
    run_dbch_ablation,
    run_index_grid,
    run_maxdev_and_time,
    run_scaling,
    run_worked_example,
    summarise_ingest_knn,
    summarise_pruning_accuracy,
    summarise_tree_shape,
)
from .charts import bar_chart, grouped_bar_chart
from .full_run import EXPERIMENT_TITLES, run_all
from .report import generate_report
from .harness import DEFAULT_METHODS, ExperimentConfig, config_from_env
from .reporting import print_table, render_table

__all__ = [
    "ExperimentConfig",
    "config_from_env",
    "DEFAULT_METHODS",
    "make_reducer",
    "run_maxdev_and_time",
    "run_index_grid",
    "summarise_pruning_accuracy",
    "summarise_ingest_knn",
    "summarise_tree_shape",
    "run_scaling",
    "run_worked_example",
    "run_bound_ablation",
    "run_dbch_ablation",
    "print_table",
    "render_table",
    "run_all",
    "EXPERIMENT_TITLES",
    "bar_chart",
    "grouped_bar_chart",
    "generate_report",
]
