"""Index diagnostics: quantifying the overlap problem (paper Sec. 5.2).

The paper's argument for the DBCH-tree is that APCA-style MBRs of
*homogeneous* adaptive-length representations overlap heavily, so R-tree
navigation keeps descending into the wrong subtrees.  These diagnostics turn
that claim into numbers:

* ``rtree_overlap`` — for every internal node, the fraction of sibling
  pairs whose boxes intersect, averaged over the tree.  1.0 means every
  sibling pair overlaps (navigation carries no information).
* ``dbch_overlap`` — the hull analogue: sibling hulls are treated as balls
  of radius ``volume/2`` around their members; a pair overlaps when the
  distance between hull anchors is below the sum of their radii.
* ``leaf_fill`` — mean entries per leaf (Fig. 15's space-efficiency view).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .dbch import DBCHTree
from .rtree import RTree

__all__ = ["rtree_overlap", "dbch_overlap", "leaf_fill"]


def _boxes_intersect(a, b) -> bool:
    return bool((a.mins <= b.maxs + 1e-12).all() and (b.mins <= a.maxs + 1e-12).all())


def rtree_overlap(tree: RTree) -> float:
    """Mean fraction of overlapping sibling-box pairs over internal nodes."""
    fractions = []
    for node in tree.iter_nodes():
        if node.is_leaf or len(node.children) < 2:
            continue
        children = node.children
        pairs = overlapping = 0
        for i in range(len(children)):
            for j in range(i + 1, len(children)):
                pairs += 1
                overlapping += _boxes_intersect(children[i].box, children[j].box)
        fractions.append(overlapping / pairs)
    return float(np.mean(fractions)) if fractions else 0.0


def dbch_overlap(tree: DBCHTree, distance: "Callable | None" = None) -> float:
    """Mean fraction of overlapping sibling-hull pairs over internal nodes."""
    distance = distance or tree.distance
    fractions = []
    for node in tree.iter_nodes():
        if node.is_leaf or len(node.children) < 2:
            continue
        children = [c for c in node.children if c.hull is not None]
        if len(children) < 2:
            continue
        pairs = overlapping = 0
        for i in range(len(children)):
            for j in range(i + 1, len(children)):
                pairs += 1
                gap = distance(children[i].hull[0], children[j].hull[0])
                radius = (children[i].volume + children[j].volume) / 2.0
                overlapping += gap <= radius
        fractions.append(overlapping / pairs)
    return float(np.mean(fractions)) if fractions else 0.0


def leaf_fill(tree) -> float:
    """Average entries per leaf node (either tree type)."""
    counts = [len(n.entries) for n in tree.iter_nodes() if n.is_leaf]
    return float(np.mean(counts)) if counts else 0.0
