"""The leaf entry shared by both index structures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

__all__ = ["Entry"]


@dataclass
class Entry:
    """One indexed time series: its id, representation, and feature point."""

    series_id: int
    representation: Any
    feature: Optional[np.ndarray] = None
