"""GEMINI k-NN search over an indexed collection of time series.

The classic filter-and-refine loop (Faloutsos et al. 1994): navigate the
index best-first by node distance, filter leaf candidates with the method's
representation-level bound, and *verify* survivors against the raw series
with the true Euclidean distance.  Verification count over collection size
is the paper's pruning power (Eq. (14)); comparing returned neighbours with
a linear scan gives the accuracy (Eq. (15)).

Query execution itself lives in :mod:`repro.engine`; :meth:`SeriesDatabase.knn`
is a thin single-query wrapper over :meth:`repro.engine.QueryEngine.knn_batch`,
so sequential and batched answers are identical by construction.  This module
keeps the shared building blocks: the :class:`_Frontier` priority queue, the
:class:`TopK` result heap whose ``(distance, series id)`` tie-break makes the
tree search agree with :func:`linear_scan` on equal distances, and the
:func:`record_search` accounting shared by every execution path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from .. import obs
from ..distance.euclidean import euclidean
from ..distance.suite import ADAPTIVE_METHODS, QueryContext, make_suite
from ..kinds import DistanceMode, IndexKind, coerce_index_kind
from ..lifecycle.snapshot import MutableDatabase
from ..reduction.base import Reducer
from .bulk import bulk_load_dbch, bulk_load_rtree
from .dbch import DBCHTree
from .entries import Entry
from .mbr import feature_vector, feature_weights
from .rtree import RTree

__all__ = ["KNNResult", "SeriesDatabase", "TopK", "linear_scan", "record_search"]

_INF = float("inf")

#: cache sentinel: stacking was attempted and is not applicable
_STACK_UNAVAILABLE = object()

#: rows per block when a ground-truth scan streams a disk-resident view
_SCAN_BLOCK_ROWS = 512


class _Frontier:
    """Best-first priority queue mixing index nodes and leaf entries.

    Items sort by distance with a monotonically increasing tick as the
    tie-break, so equal-distance items pop in insertion order and payloads
    never need to be comparable.  Push counts per kind feed the search
    accounting (heap pushes, nodes/candidates pruned).

    Cascaded searches push items *unrefined* (kinds ``"uentry"`` /
    ``"unode"``) keyed by a cheap dominated bound, then :meth:`reinsert`
    them with the exact key **and the original tick** once they reach the
    front.  Reinsertion advances neither the tick nor the push counters, so
    the pop sequence of refined items — and every counter — is identical to
    a search that pushed exact keys from the start.
    """

    __slots__ = ("_heap", "_tick", "node_pushes", "entry_pushes")

    def __init__(self):
        self._heap: list = []
        self._tick = 0
        self.node_pushes = 0
        self.entry_pushes = 0

    def push_node(self, distance: float, node, refined: bool = True) -> None:
        self.node_pushes += 1
        self._push(distance, "node" if refined else "unode", node)

    def push_entry(self, bound: float, entry: Entry, refined: bool = True) -> None:
        self.entry_pushes += 1
        self._push(bound, "entry" if refined else "uentry", entry)

    def _push(self, key: float, kind: str, payload) -> None:
        self._tick += 1
        heapq.heappush(self._heap, (key, self._tick, kind, payload))

    def pop(self) -> "tuple[float, int, str, object]":
        return heapq.heappop(self._heap)

    def reinsert(self, key: float, tick: int, kind: str, payload) -> None:
        """Re-queue a popped item at its exact key, keeping its tick."""
        heapq.heappush(self._heap, (key, tick, kind, payload))

    @property
    def pushes(self) -> int:
        return self.node_pushes + self.entry_pushes

    def __bool__(self) -> bool:
        return bool(self._heap)


class TopK:
    """Fixed-capacity best-``k`` set with a stable ``(distance, id)`` tie-break.

    The heap holds ``(-distance, -series_id)`` so eviction always removes the
    lexicographically largest ``(distance, series_id)`` pair: among equal
    distances the *larger* id goes first, which keeps exactly the ``k``
    smallest ``(distance, id)`` pairs.  That matches the order
    :func:`linear_scan` produces with its stable argsort, so the tree search
    and the ground truth agree on ties by construction.
    """

    __slots__ = ("k", "_heap")

    def __init__(self, k: int):
        self.k = k
        self._heap: "list[tuple[float, int]]" = []

    def offer(self, distance: float, series_id: int) -> None:
        """Consider one verified candidate."""
        heapq.heappush(self._heap, (-distance, -series_id))
        if len(self._heap) > self.k:
            heapq.heappop(self._heap)

    @property
    def full(self) -> bool:
        """Whether ``k`` candidates have been retained."""
        return len(self._heap) >= self.k

    @property
    def threshold(self) -> float:
        """Current k-th best true distance (``inf`` until full).

        The search may stop once the next bound strictly exceeds this; on
        equality the candidate is still verified so ties resolve by id.
        """
        return -self._heap[0][0] if len(self._heap) >= self.k else _INF

    def ranked(self) -> "list[tuple[float, int]]":
        """Retained ``(distance, series_id)`` pairs, best first."""
        return sorted((-neg_d, -neg_sid) for neg_d, neg_sid in self._heap)


@dataclass
class KNNResult:
    """k-NN outcome plus the accounting the paper's figures need."""

    ids: "List[int]"
    distances: "List[float]"
    n_verified: int
    n_total: int
    nodes_visited: int = 0
    n_candidates: int = 0
    node_pushes: int = 0
    heap_pushes: int = 0

    @property
    def pruning_power(self) -> float:
        """Paper Eq. (14): fraction of raw series that had to be measured."""
        return self.n_verified / self.n_total if self.n_total else 0.0

    def accuracy_against(self, truth: "KNNResult") -> float:
        """Paper Eq. (15): |found true neighbours| / K."""
        if not truth.ids:
            return 1.0
        return len(set(self.ids) & set(truth.ids)) / len(truth.ids)


def linear_scan(data, query: np.ndarray, k: int) -> KNNResult:
    """Exact k-NN by scanning every raw series — the ground truth.

    Uses the same row-wise ``np.linalg.norm(..., axis=1)`` primitive as the
    engine's batched verification, so distances agree bit-for-bit, and a
    stable argsort so equal distances rank by ascending series id.

    ``data`` may be an in-memory ``(count, n)`` array (scanned as one
    matrix, no copy when it is already a float ndarray) or a disk-resident
    row view exposing ``gather``: that case streams through the view in
    blocks of :data:`_SCAN_BLOCK_ROWS` rows, charging the full collection
    as physical I/O without ever materialising it whole.  Row distances are
    independent, so blocking cannot change any reported value.
    """
    query = np.asarray(query, dtype=float)
    gather = getattr(data, "gather", None)
    if isinstance(data, np.ndarray) or gather is None:
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[1] != query.shape[0]:
            raise ValueError("linear_scan expects (count, n) data and a length-n query")
        distances = np.linalg.norm(data - query[None, :], axis=1)
    else:
        count, length = data.shape
        if length != query.shape[0]:
            raise ValueError("linear_scan expects (count, n) data and a length-n query")
        blocks = []
        for start in range(0, count, _SCAN_BLOCK_ROWS):
            rows = gather(range(start, min(start + _SCAN_BLOCK_ROWS, count)))
            blocks.append(np.linalg.norm(rows - query[None, :], axis=1))
        distances = np.concatenate(blocks) if blocks else np.empty(0, dtype=float)
    order = np.argsort(distances, kind="stable")[:k]
    return KNNResult(
        ids=[int(i) for i in order],
        distances=[float(distances[i]) for i in order],
        n_verified=len(distances),
        n_total=len(distances),
    )


def record_search(result: KNNResult, mode: str) -> None:
    """Flush one query's accounting into the metrics registry.

    ``result.n_candidates`` is how many entries met the representation-bound
    stage; those never verified were pruned by the active bound, so the
    per-bound pruning counters plus ``knn.entries_refined`` reconstruct the
    paper's pruning power from a report alone.  Shared by the batched engine
    and (in worker-pool mode) by the parent re-recording worker results.
    """
    if not obs.is_enabled():
        return
    obs.count("knn.queries")
    obs.count("knn.nodes_visited", result.nodes_visited)
    obs.count("knn.nodes_pruned", max(result.node_pushes - result.nodes_visited, 0))
    obs.count("knn.entries_refined", result.n_verified)
    obs.count("knn.heap_pushes", result.heap_pushes)
    obs.count("dist.euclidean.exact", result.n_verified)
    obs.count(obs.PRUNED_METRICS[mode], max(result.n_candidates - result.n_verified, 0))
    obs.observe("knn.verified_per_query", result.n_verified)


class SeriesDatabase(MutableDatabase):
    """A collection of raw series, their representations, and an index.

    Args:
        reducer: the dimensionality reduction method for this database.
        index: an :class:`repro.IndexKind` — ``DBCH`` (the paper's
            structure), ``RTREE`` (baseline) or ``NONE``/``None`` (filter
            every representation linearly, no tree).  The legacy strings
            ``'dbch'`` / ``'rtree'`` / ``'none'`` still work but emit a
            ``DeprecationWarning``.
        distance_mode: adaptive-method query-bound mode, a
            :class:`repro.DistanceMode` (see :func:`repro.distance.make_suite`);
            legacy strings are coerced with a ``DeprecationWarning``.
        max_entries / min_entries: node fill factors (paper uses 5 / 2).

    The database is mutable and snapshot-consistent: ``insert``/``delete``
    may interleave with serving, ``snapshot()``/``freeze()`` pin a stable
    read view (see :class:`repro.lifecycle.MutableDatabase`), and attaching
    a :class:`repro.lifecycle.WriteAheadLog` makes mutations durable.
    """

    def __init__(
        self,
        reducer: Reducer,
        index: "Union[IndexKind, str, None]" = IndexKind.DBCH,
        distance_mode: "Union[DistanceMode, str]" = DistanceMode.PAR,
        max_entries: int = 5,
        min_entries: int = 2,
    ):
        self.reducer = reducer
        self.index_kind: "Optional[IndexKind]" = coerce_index_kind(index)
        self.suite = make_suite(reducer, distance_mode)
        self.max_entries = max_entries
        self.min_entries = min_entries
        self.data: Optional[np.ndarray] = None
        self.entries: "List[Entry]" = []
        self.tree = None
        self._weights: Optional[np.ndarray] = None
        self._rep_cache = None
        self._engine = None
        #: amortised-doubling row buffer; ``data`` is always ``_buf[:_count]``
        #: when the raw rows live in memory (disk-backed views set it None).
        self._buf: Optional[np.ndarray] = None
        self._count = 0
        self._live_ids: "set[int]" = set()
        #: lazily-built BoundCascade (suite/reducer are immutable, so it
        #: lives for the database's lifetime; its per-collection cache keys
        #: on the generation counter and self-invalidates on mutation).
        self._cascade = None
        #: ``(data_ref, ColumnBlockStore)`` packed-block cache; see columns()
        self._columns = None
        self._init_lifecycle()

    # ------------------------------------------------------------------
    def ingest(
        self,
        data: np.ndarray,
        representations: "Optional[list]" = None,
        bulk: bool = False,
        live_ids: "Optional[List[int]]" = None,
    ) -> None:
        """Reduce and index every row of ``data`` (shape ``(count, n)``).

        ``representations`` may carry precomputed transforms of the rows so
        several index structures can be built from one reduction pass.
        ``bulk=True`` packs the tree bottom-up (STR for the R-tree,
        distance-ordered packing for the DBCH-tree) instead of inserting
        incrementally.  ``live_ids`` restricts indexing to those row ids —
        the persistence layer uses it to reopen a database whose other rows
        are tombstoned.
        """
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError("ingest expects a (count, n) array of series")
        if live_ids is None:
            ids = list(range(len(data)))
        else:
            ids = [int(i) for i in live_ids]
            if any(b <= a for a, b in zip(ids, ids[1:])):
                raise ValueError("live_ids must be strictly increasing")
            if ids and (ids[0] < 0 or ids[-1] >= len(data)):
                raise ValueError("live_ids out of range for the data rows")
        if representations is not None and len(representations) != len(ids):
            raise ValueError(
                "one representation per data row is required"
                if live_ids is None
                else "one representation per live series is required"
            )
        with obs.span("db.ingest"):
            budget = getattr(self.reducer, "n_segments", None)
            if representations is None:
                representations = self._reduce_rows(
                    data if live_ids is None else data[np.array(ids, dtype=int)]
                )
            entries = [
                Entry(
                    series_id=series_id,
                    representation=representation,
                    feature=feature_vector(representation, budget),
                )
                for series_id, representation in zip(ids, representations)
            ]
            self._install(data, entries, bulk)

    def _reduce_rows(self, rows: np.ndarray) -> "List":
        """Reduce a ``(count, n)`` matrix through the batch protocol.

        Rows are bit-identical to per-row ``transform`` calls (the
        ``transform_batch`` contract); reducers outside the protocol fall
        back to the per-row loop.
        """
        from ..reduction.base import reduce_rows

        return reduce_rows(self.reducer, rows)

    def _install(self, data, entries: "List[Entry]", bulk: bool = False) -> None:
        """Adopt ``data`` + ``entries`` wholesale and (re)build the index.

        ``data`` is either an in-memory ``(count, n)`` array or an
        array-like row view over a paged store.  Shared by ``ingest``, the
        disk-backed reopen path and compaction.
        """
        self.data = data
        if isinstance(data, np.ndarray):
            self._buf = data
            self._count = int(data.shape[0])
        else:
            self._buf = None
            self._count = len(data)
        self.entries = entries
        self._live_ids = {e.series_id for e in entries}
        self._rep_cache = None
        self._columns = None
        with self._mutate_lock:
            self._pending = []
            self._generation += 1
        if not self.entries:
            self.tree = None  # nothing to index; searches fall back to a scan
        elif self.index_kind == IndexKind.RTREE:
            budget = getattr(self.reducer, "n_segments", None)
            self._weights = feature_weights(self.entries[0].representation, budget)
            if bulk:
                self.tree = bulk_load_rtree(self.entries, self.max_entries, self.min_entries)
            else:
                self.tree = RTree(self.max_entries, self.min_entries)
                for entry in self.entries:
                    self.tree.insert(entry)
        elif self.index_kind == IndexKind.DBCH:
            from ..distance.cascade import make_pairwise_accel

            accel = make_pairwise_accel(self.suite, self.reducer)
            if bulk:
                self.tree = bulk_load_dbch(
                    self.entries,
                    self.suite.pairwise,
                    self.max_entries,
                    self.min_entries,
                    accel=accel,
                )
            else:
                self.tree = DBCHTree(
                    self.suite.pairwise, self.max_entries, self.min_entries, accel=accel
                )
                for entry in self.entries:
                    self.tree.insert(entry)
        if self.tree is not None and obs.is_enabled():
            from .stats import leaf_fill

            gauge = (
                "dbch.leaf_fill" if self.index_kind == IndexKind.DBCH else "rtree.leaf_fill"
            )
            obs.gauge_set(gauge, leaf_fill(self.tree))

    # ------------------------------------------------------------------
    def knn(self, query: np.ndarray, k: int) -> KNNResult:
        """Filter-and-refine k-NN through the configured index.

        A thin wrapper over the batched engine with a batch of one, so a
        single query and a batch member take the same code path and return
        byte-identical ids and distances.
        """
        if self.data is None:
            raise RuntimeError("ingest data before searching")
        if k < 1:
            raise ValueError("k must be >= 1")
        from ..engine import QueryOptions

        query = np.asarray(query, dtype=float)
        with obs.span("knn.search"):
            batch = self.engine().knn_batch(query[None, :], QueryOptions(k=k))
        return batch.results[0]

    def knn_batch(self, queries: np.ndarray, options=None):
        """Answer many queries at once — see :meth:`repro.engine.QueryEngine.knn_batch`."""
        return self.engine().knn_batch(queries, options)

    def engine(self):
        """The database's lazily-built :class:`repro.engine.QueryEngine`."""
        if self._engine is None:
            from ..engine import QueryEngine

            self._engine = QueryEngine(self, _internal=True)
        return self._engine

    def cascade(self):
        """The database's :class:`repro.distance.BoundCascade` (lazily built).

        Shared across queries; per-collection norm caches inside it key on
        the generation counter, so mutation invalidates them automatically.
        """
        if self._cascade is None:
            from ..distance.cascade import BoundCascade

            self._cascade = BoundCascade(self.suite, self.reducer)
        return self._cascade

    def columns(self):
        """A packed :class:`~repro.storage.columns.ColumnBlockStore` over the
        raw rows, or ``None`` when unavailable.

        In-memory rows get a float32 filter cache (rebuilt whenever the row
        view object changes, i.e. after appends or reinstall); disk-backed
        views delegate to the store's float64 memmap block.
        """
        data = self.data
        if data is None:
            return None
        if isinstance(data, np.ndarray):
            cached = self._columns
            if cached is not None and cached[0] is data:
                return cached[1]
            from ..storage.columns import ColumnBlockStore

            block = ColumnBlockStore.from_array(data)
            self._columns = (data, block)
            return block
        cols = getattr(data, "columns", None)
        return cols() if cols is not None else None

    def save(self, directory) -> None:
        """Persist this fitted database as a directory (see :mod:`repro.io`)."""
        from ..io.database import save_series_database

        save_series_database(self, directory)

    def stacked_entries(self):
        """``(series_ids, stacked)`` for the suite's vectorised bound, or ``None``.

        Built lazily and cached until the entry set changes; ``None`` when the
        method has no stacked layout (adaptive-length representations) or the
        stored layouts disagree.
        """
        if self.suite.stack is None or self.suite.query_bound_batch is None:
            return None
        if not self.entries:
            return None
        if self._rep_cache is None:
            try:
                stacked = self.suite.stack([e.representation for e in self.entries])
                sids = np.array([e.series_id for e in self.entries], dtype=np.int64)
                self._rep_cache = (sids, stacked)
            except ValueError:
                self._rep_cache = _STACK_UNAVAILABLE
        if self._rep_cache is _STACK_UNAVAILABLE:
            return None
        return self._rep_cache

    def ground_truth(self, query: np.ndarray, k: int) -> KNNResult:
        """Exact k-NN by linear scan over the ingested raw data."""
        if self.data is None:
            raise RuntimeError("ingest data before searching")
        return self._ground_truth_from(self.data, query, k)

    def _ground_truth_from(self, data, query: np.ndarray, k: int) -> KNNResult:
        """Tombstone-aware exact scan over ``data`` (rows indexed by id).

        With no deletes the scan runs at exactly ``k`` (fast path); under
        churn the over-fetch is capped at the tombstone count, so the scan
        never requests more than ``min(k + tombstones, rows)`` neighbours.
        """
        tombstones = self._count - len(self._live_ids)
        with obs.span("knn.ground_truth"):
            if tombstones == 0:
                return linear_scan(data, query, k)
            overfetch = min(k + tombstones, self._count)
            result = linear_scan(data, query, overfetch)
        kept = [
            (i, d) for i, d in zip(result.ids, result.distances) if i in self._live_ids
        ][:k]
        return KNNResult(
            ids=[i for i, _ in kept],
            distances=[d for _, d in kept],
            n_verified=len(self._live_ids),
            n_total=len(self._live_ids),
        )

    # ------------------------------------------------------------------
    def insert(self, series: np.ndarray) -> int:
        """Add one series to the database and its index; returns its id.

        Ids are append-only: a new series always gets the next row id even
        after deletions, so existing ids stay stable (until an explicit
        :func:`repro.lifecycle.compact` re-packs them).  Appends land in an
        amortised-doubling row buffer, so a stream of N inserts costs
        O(N·n) instead of the O(N²·n) of re-stacking the matrix each call.
        With a WAL attached the record is logged (and fsynced per policy)
        before any state changes.
        """
        series = np.asarray(series, dtype=float)
        if self.data is None:
            if series.ndim != 1:
                raise ValueError("insert expects a single series (1-D array)")
            if self._wal is not None:
                self._wal.append_insert(0, series)
            self.ingest(series[None, :])
            return 0
        if not isinstance(self.data, np.ndarray):
            raise RuntimeError(
                "raw rows live behind a paged store; insert through the owning "
                "DiskBackedDatabase"
            )
        if series.ndim != 1 or series.shape[0] != self.data.shape[1]:
            raise ValueError(
                f"series length {series.shape} does not match stored {self.data.shape[1]}"
            )
        series_id = self._count
        if self._wal is not None:
            self._wal.append_insert(series_id, series)
        self._append_row(series)
        self._register(series_id, series)
        return series_id

    def insert_batch(self, data: np.ndarray) -> "List[int]":
        """Append many series in one batched reduction; returns their ids.

        Equivalent to calling :meth:`insert` per row — same ids, same WAL
        record order, and bit-identical entries (the ``transform_batch``
        contract) — but the reduction runs array-at-a-time.  WAL records for
        the whole batch are logged before any state changes; a crash
        mid-batch therefore replays cleanly (replay re-applies the logged
        prefix row by row).
        """
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("insert_batch expects a (count, n) array of series")
        if matrix.shape[0] == 0:
            return []
        if self.data is None:
            ids = list(range(matrix.shape[0]))
            if self._wal is not None:
                for series_id, row in zip(ids, matrix):
                    self._wal.append_insert(series_id, row)
            self.ingest(matrix)
            return ids
        if not isinstance(self.data, np.ndarray):
            raise RuntimeError(
                "raw rows live behind a paged store; insert through the owning "
                "DiskBackedDatabase"
            )
        if matrix.shape[1] != self.data.shape[1]:
            raise ValueError(
                f"series length {matrix.shape[1]} does not match stored {self.data.shape[1]}"
            )
        ids = list(range(self._count, self._count + matrix.shape[0]))
        if self._wal is not None:
            for series_id, row in zip(ids, matrix):
                self._wal.append_insert(series_id, row)
        for row in matrix:
            self._append_row(row)
        self._register_batch(ids, matrix)
        return ids

    def _append_row(self, series: np.ndarray) -> None:
        """Append one raw row to the capacity-doubling buffer.

        Existing snapshots keep views into the old buffer, so growing never
        moves rows out from under a pinned reader.
        """
        if self._buf is None or self._count == self._buf.shape[0]:
            capacity = max(4, 2 * self._count)
            grown = np.empty((capacity, series.shape[0]), dtype=float)
            if self._count:
                grown[: self._count] = np.asarray(self.data)
            self._buf = grown
        self._buf[self._count] = series
        self._count += 1
        self.data = self._buf[: self._count]

    def _register(self, series_id: int, series: np.ndarray) -> None:
        """Transform ``series`` and make its entry (eventually) visible."""
        representation = self.reducer.transform(series)
        budget = getattr(self.reducer, "n_segments", None)
        entry = Entry(
            series_id=series_id,
            representation=representation,
            feature=feature_vector(representation, budget),
        )
        self._count = max(self._count, series_id + 1)
        self._live_ids.add(series_id)
        obs.count("db.inserts")
        self._stage("insert", entry)

    def _register_batch(self, series_ids: "List[int]", rows: np.ndarray) -> None:
        """Batched :meth:`_register`: one reduction pass, entries staged in order."""
        representations = self._reduce_rows(np.asarray(rows, dtype=float))
        budget = getattr(self.reducer, "n_segments", None)
        for series_id, representation in zip(series_ids, representations):
            entry = Entry(
                series_id=series_id,
                representation=representation,
                feature=feature_vector(representation, budget),
            )
            self._count = max(self._count, series_id + 1)
            self._live_ids.add(series_id)
            obs.count("db.inserts")
            self._stage("insert", entry)

    def delete(self, series_id: int) -> bool:
        """Remove one series from the database and its index.

        The raw row stays behind as a tombstone (ids are stable); the entry
        leaves the candidate set and the tree, so searches never return it
        again.  :func:`repro.lifecycle.compact` reclaims the row bytes.
        """
        series_id = int(series_id)
        if series_id not in self._live_ids:
            return False
        if self._wal is not None:
            self._wal.append_delete(series_id)
        return self._delete_unlogged(series_id)

    def _delete_unlogged(self, series_id: int) -> bool:
        if series_id not in self._live_ids:
            return False
        self._live_ids.discard(series_id)
        obs.count("db.deletes")
        self._stage("delete", series_id)
        return True

    # -- lifecycle hooks ------------------------------------------------
    def _apply_op(self, op: str, payload) -> None:
        """Make one staged mutation visible in the entry list and tree."""
        if op == "insert":
            self.entries.append(payload)
            if self.tree is not None:
                self.tree.insert(payload)
        else:
            self.entries = [e for e in self.entries if e.series_id != payload]
            if self.tree is not None:
                self.tree.delete(payload)
        self._rep_cache = None
        self._generation += 1

    def _replay_insert(self, series_id: int, series: np.ndarray) -> None:
        """Recovery hook: re-apply one WAL insert without re-logging it."""
        from ..lifecycle.recovery import RecoveryError

        series = np.asarray(series, dtype=float)
        if self.data is None:
            if series_id != 0:
                raise RecoveryError(
                    f"WAL insert for id {series_id} into an empty database"
                )
            self.ingest(series[None, :])
            return
        if series_id != self._count:
            raise RecoveryError(
                f"WAL insert for id {series_id} but the next row id is {self._count}"
            )
        self._append_row(series)
        self._register(series_id, series)

    def _replay_insert_batch(self, records: "List[tuple]") -> None:
        """Recovery hook: re-apply a run of consecutive WAL inserts.

        Validates the same invariants as per-record :meth:`_replay_insert`
        (a violation is fatal to recovery either way), appends every row,
        then reduces the whole run in one batch pass.
        """
        from ..lifecycle.recovery import RecoveryError

        pending = [(int(sid), np.asarray(series, dtype=float)) for sid, series in records]
        if not pending:
            return
        if self.data is None:
            series_id, series = pending[0]
            if series_id != 0:
                raise RecoveryError(
                    f"WAL insert for id {series_id} into an empty database"
                )
            self.ingest(series[None, :])
            pending = pending[1:]
            if not pending:
                return
        expected = self._count
        for series_id, _ in pending:
            if series_id != expected:
                raise RecoveryError(
                    f"WAL insert for id {series_id} but the next row id is {expected}"
                )
            expected += 1
        for _, series in pending:
            self._append_row(series)
        self._register_batch([sid for sid, _ in pending], np.vstack([s for _, s in pending]))

    def _replay_delete(self, series_id: int) -> bool:
        """Recovery hook: re-apply one WAL delete (idempotent)."""
        return self._delete_unlogged(series_id)

    # ------------------------------------------------------------------
    def range_query(self, query: np.ndarray, radius: float) -> KNNResult:
        """All series within Euclidean ``radius`` of ``query`` (filter-and-refine).

        Candidates whose representation bound exceeds ``radius`` are pruned;
        survivors are verified on raw data.  With a tree index the search
        runs through the same best-first frontier as :meth:`knn` — whole
        subtrees whose node distance exceeds ``radius`` are never expanded,
        and the accounting (nodes visited, heap pushes, candidates) feeds
        the same pruning statistics.  With a guaranteed lower bound
        (``DistanceMode.LB`` for adaptive methods, or any equal-length
        method) the result is exact.

        When the method has a :class:`repro.distance.BoundCascade` tier the
        search evaluates the cheap dominated bound first and only refines
        to the exact bound on demand; dominated keys plus tick-preserving
        reinsertion keep the hits, the verified set and every counter
        identical to the single-bound search (see :mod:`repro.distance.cascade`).
        """
        if self.data is None:
            raise RuntimeError("ingest data before searching")
        if radius < 0:
            raise ValueError("radius must be non-negative")
        query = np.asarray(query, dtype=float)
        ctx = self.query_context(query)
        qc = self.cascade().for_query(ctx)
        hits: "List[tuple[float, int]]" = []
        verified = 0
        nodes_visited = 0
        if self.tree is None:
            node_pushes = heap_pushes = 0
            n_candidates = len(self.entries)
            for entry in self.entries:
                if qc is not None:
                    if qc.cheap(entry.representation) > radius:
                        continue  # cheap key ≤ exact bound, so the exact bound prunes too
                    if qc.refine(entry.representation) > radius:
                        continue
                elif self.suite.query_bound(ctx, entry.representation) > radius:
                    continue
                true = euclidean(query, self.data[entry.series_id])
                verified += 1
                if true <= radius:
                    hits.append((true, entry.series_id))
        else:
            use_node_tier = qc is not None and self.index_kind == IndexKind.DBCH
            exact_nodes = self.node_bounds_exact
            frontier = _Frontier()
            frontier.push_node(self.node_distance(ctx, self.tree.root), self.tree.root)
            while frontier:
                key, tick, kind, payload = frontier.pop()
                if key > radius:
                    if exact_nodes:
                        break  # best-first: everything still queued is further out
                    if kind in ("entry", "uentry"):
                        continue  # entry bounds stay exact; node keys are hints
                if kind == "uentry":
                    frontier.reinsert(qc.refine(payload.representation), tick, "entry", payload)
                    continue
                if kind == "unode":
                    qc.n_node_refine += 1
                    frontier.reinsert(self.node_distance(ctx, payload), tick, "node", payload)
                    continue
                if kind == "entry":
                    true = euclidean(query, self.data[payload.series_id])
                    verified += 1
                    if true <= radius:
                        hits.append((true, payload.series_id))
                    continue
                nodes_visited += 1
                if payload.is_leaf:
                    for entry in payload.entries:
                        if qc is not None:
                            frontier.push_entry(
                                qc.cheap(entry.representation), entry, refined=False
                            )
                        else:
                            frontier.push_entry(
                                self.suite.query_bound(ctx, entry.representation), entry
                            )
                else:
                    for child in payload.children:
                        if use_node_tier:
                            frontier.push_node(qc.node_lower(child), child, refined=False)
                        else:
                            frontier.push_node(self.node_distance(ctx, child), child)
            n_candidates = frontier.entry_pushes
            node_pushes = frontier.node_pushes
            heap_pushes = frontier.pushes
        if qc is not None:
            qc.flush()
        hits.sort()
        return KNNResult(
            ids=[sid for _, sid in hits],
            distances=[d for d, _ in hits],
            n_verified=verified,
            n_total=len(self.entries),
            nodes_visited=nodes_visited,
            n_candidates=n_candidates,
            node_pushes=node_pushes,
            heap_pushes=heap_pushes,
        )

    # ------------------------------------------------------------------
    def query_context(self, query: np.ndarray) -> QueryContext:
        """Reduce ``query`` and package it for the distance suite."""
        return QueryContext(series=query, representation=self.reducer.transform(query))

    def node_distance(self, ctx: QueryContext, node) -> float:
        """Index-structure distance from the query to a tree node."""
        if self.index_kind == IndexKind.RTREE:
            q_feature = feature_vector(
                ctx.representation, getattr(self.reducer, "n_segments", None)
            )
            return self.tree.node_distance(q_feature, self._weights, node)
        return self.tree.node_distance(ctx.representation, node)

    @property
    def node_bounds_exact(self) -> bool:
        """Whether :meth:`node_distance` may *prune* subtrees, not just order them.

        The R-tree's weighted feature MINDIST assumes every series shares the
        query's segment layout; adaptive methods break that, so their node
        distances are navigation hints only — pruning on them falsely
        dismisses true neighbours (entry-level bounds stay exact and carry
        all pruning instead).  See :mod:`repro.index.mbr`.
        """
        return not (
            self.index_kind == IndexKind.RTREE and self.suite.method in ADAPTIVE_METHODS
        )
