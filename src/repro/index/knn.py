"""GEMINI k-NN search over an indexed collection of time series.

The classic filter-and-refine loop (Faloutsos et al. 1994): navigate the
index best-first by node distance, filter leaf candidates with the method's
representation-level bound, and *verify* survivors against the raw series
with the true Euclidean distance.  Verification count over collection size
is the paper's pruning power (Eq. (14)); comparing returned neighbours with
a linear scan gives the accuracy (Eq. (15)).

Query execution itself lives in :mod:`repro.engine`; :meth:`SeriesDatabase.knn`
is a thin single-query wrapper over :meth:`repro.engine.QueryEngine.knn_batch`,
so sequential and batched answers are identical by construction.  This module
keeps the shared building blocks: the :class:`_Frontier` priority queue, the
:class:`TopK` result heap whose ``(distance, series id)`` tie-break makes the
tree search agree with :func:`linear_scan` on equal distances, and the
:func:`record_search` accounting shared by every execution path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from .. import obs
from ..distance.euclidean import euclidean
from ..distance.suite import QueryContext, make_suite
from ..kinds import DistanceMode, IndexKind, coerce_index_kind
from ..reduction.base import Reducer
from .bulk import bulk_load_dbch, bulk_load_rtree
from .dbch import DBCHTree
from .entries import Entry
from .mbr import feature_vector, feature_weights
from .rtree import RTree

__all__ = ["KNNResult", "SeriesDatabase", "TopK", "linear_scan", "record_search"]

_INF = float("inf")

#: cache sentinel: stacking was attempted and is not applicable
_STACK_UNAVAILABLE = object()


class _Frontier:
    """Best-first priority queue mixing index nodes and leaf entries.

    Items sort by distance with a monotonically increasing tick as the
    tie-break, so equal-distance items pop in insertion order and payloads
    never need to be comparable.  Push counts per kind feed the search
    accounting (heap pushes, nodes/candidates pruned).
    """

    __slots__ = ("_heap", "_tick", "node_pushes", "entry_pushes")

    def __init__(self):
        self._heap: list = []
        self._tick = 0
        self.node_pushes = 0
        self.entry_pushes = 0

    def push_node(self, distance: float, node) -> None:
        self.node_pushes += 1
        self._push(distance, "node", node)

    def push_entry(self, bound: float, entry: Entry) -> None:
        self.entry_pushes += 1
        self._push(bound, "entry", entry)

    def _push(self, key: float, kind: str, payload) -> None:
        self._tick += 1
        heapq.heappush(self._heap, (key, self._tick, kind, payload))

    def pop(self) -> "tuple[float, str, object]":
        key, _, kind, payload = heapq.heappop(self._heap)
        return key, kind, payload

    @property
    def pushes(self) -> int:
        return self.node_pushes + self.entry_pushes

    def __bool__(self) -> bool:
        return bool(self._heap)


class TopK:
    """Fixed-capacity best-``k`` set with a stable ``(distance, id)`` tie-break.

    The heap holds ``(-distance, -series_id)`` so eviction always removes the
    lexicographically largest ``(distance, series_id)`` pair: among equal
    distances the *larger* id goes first, which keeps exactly the ``k``
    smallest ``(distance, id)`` pairs.  That matches the order
    :func:`linear_scan` produces with its stable argsort, so the tree search
    and the ground truth agree on ties by construction.
    """

    __slots__ = ("k", "_heap")

    def __init__(self, k: int):
        self.k = k
        self._heap: "list[tuple[float, int]]" = []

    def offer(self, distance: float, series_id: int) -> None:
        """Consider one verified candidate."""
        heapq.heappush(self._heap, (-distance, -series_id))
        if len(self._heap) > self.k:
            heapq.heappop(self._heap)

    @property
    def full(self) -> bool:
        """Whether ``k`` candidates have been retained."""
        return len(self._heap) >= self.k

    @property
    def threshold(self) -> float:
        """Current k-th best true distance (``inf`` until full).

        The search may stop once the next bound strictly exceeds this; on
        equality the candidate is still verified so ties resolve by id.
        """
        return -self._heap[0][0] if len(self._heap) >= self.k else _INF

    def ranked(self) -> "list[tuple[float, int]]":
        """Retained ``(distance, series_id)`` pairs, best first."""
        return sorted((-neg_d, -neg_sid) for neg_d, neg_sid in self._heap)


@dataclass
class KNNResult:
    """k-NN outcome plus the accounting the paper's figures need."""

    ids: "List[int]"
    distances: "List[float]"
    n_verified: int
    n_total: int
    nodes_visited: int = 0
    n_candidates: int = 0
    node_pushes: int = 0
    heap_pushes: int = 0

    @property
    def pruning_power(self) -> float:
        """Paper Eq. (14): fraction of raw series that had to be measured."""
        return self.n_verified / self.n_total if self.n_total else 0.0

    def accuracy_against(self, truth: "KNNResult") -> float:
        """Paper Eq. (15): |found true neighbours| / K."""
        if not truth.ids:
            return 1.0
        return len(set(self.ids) & set(truth.ids)) / len(truth.ids)


def linear_scan(data: np.ndarray, query: np.ndarray, k: int) -> KNNResult:
    """Exact k-NN by scanning every raw series — the ground truth.

    Uses the same row-wise ``np.linalg.norm(..., axis=1)`` primitive as the
    engine's batched verification, so distances agree bit-for-bit, and a
    stable argsort so equal distances rank by ascending series id.
    """
    data = np.asarray(data, dtype=float)
    query = np.asarray(query, dtype=float)
    if data.ndim != 2 or data.shape[1] != query.shape[0]:
        raise ValueError("linear_scan expects (count, n) data and a length-n query")
    distances = np.linalg.norm(data - query[None, :], axis=1)
    order = np.argsort(distances, kind="stable")[:k]
    return KNNResult(
        ids=[int(i) for i in order],
        distances=[float(distances[i]) for i in order],
        n_verified=len(data),
        n_total=len(data),
    )


def record_search(result: KNNResult, mode: str) -> None:
    """Flush one query's accounting into the metrics registry.

    ``result.n_candidates`` is how many entries met the representation-bound
    stage; those never verified were pruned by the active bound, so the
    per-bound pruning counters plus ``knn.entries_refined`` reconstruct the
    paper's pruning power from a report alone.  Shared by the batched engine
    and (in worker-pool mode) by the parent re-recording worker results.
    """
    if not obs.is_enabled():
        return
    obs.count("knn.queries")
    obs.count("knn.nodes_visited", result.nodes_visited)
    obs.count("knn.nodes_pruned", max(result.node_pushes - result.nodes_visited, 0))
    obs.count("knn.entries_refined", result.n_verified)
    obs.count("knn.heap_pushes", result.heap_pushes)
    obs.count("dist.euclidean.exact", result.n_verified)
    obs.count(obs.PRUNED_METRICS[mode], max(result.n_candidates - result.n_verified, 0))
    obs.observe("knn.verified_per_query", result.n_verified)


class SeriesDatabase:
    """A collection of raw series, their representations, and an index.

    Args:
        reducer: the dimensionality reduction method for this database.
        index: an :class:`repro.IndexKind` — ``DBCH`` (the paper's
            structure), ``RTREE`` (baseline) or ``NONE``/``None`` (filter
            every representation linearly, no tree).  The legacy strings
            ``'dbch'`` / ``'rtree'`` / ``'none'`` still work but emit a
            ``DeprecationWarning``.
        distance_mode: adaptive-method query-bound mode, a
            :class:`repro.DistanceMode` (see :func:`repro.distance.make_suite`);
            legacy strings are coerced with a ``DeprecationWarning``.
        max_entries / min_entries: node fill factors (paper uses 5 / 2).
    """

    def __init__(
        self,
        reducer: Reducer,
        index: "Union[IndexKind, str, None]" = IndexKind.DBCH,
        distance_mode: "Union[DistanceMode, str]" = DistanceMode.PAR,
        max_entries: int = 5,
        min_entries: int = 2,
    ):
        self.reducer = reducer
        self.index_kind: "Optional[IndexKind]" = coerce_index_kind(index)
        self.suite = make_suite(reducer, distance_mode)
        self.max_entries = max_entries
        self.min_entries = min_entries
        self.data: Optional[np.ndarray] = None
        self.entries: "List[Entry]" = []
        self.tree = None
        self._weights: Optional[np.ndarray] = None
        self._rep_cache = None
        self._engine = None

    # ------------------------------------------------------------------
    def ingest(
        self,
        data: np.ndarray,
        representations: "Optional[list]" = None,
        bulk: bool = False,
    ) -> None:
        """Reduce and index every row of ``data`` (shape ``(count, n)``).

        ``representations`` may carry precomputed transforms of the rows so
        several index structures can be built from one reduction pass.
        ``bulk=True`` packs the tree bottom-up (STR for the R-tree,
        distance-ordered packing for the DBCH-tree) instead of inserting
        incrementally.
        """
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError("ingest expects a (count, n) array of series")
        if representations is not None and len(representations) != len(data):
            raise ValueError("one representation per data row is required")
        with obs.span("db.ingest"):
            self.data = data
            self.entries = []
            self._rep_cache = None
            budget = getattr(self.reducer, "n_segments", None)
            for series_id, series in enumerate(data):
                representation = (
                    representations[series_id]
                    if representations is not None
                    else self.reducer.transform(series)
                )
                feature = feature_vector(representation, budget)
                self.entries.append(
                    Entry(series_id=series_id, representation=representation, feature=feature)
                )
            if self.index_kind == IndexKind.RTREE:
                self._weights = feature_weights(self.entries[0].representation, budget)
                if bulk:
                    self.tree = bulk_load_rtree(self.entries, self.max_entries, self.min_entries)
                else:
                    self.tree = RTree(self.max_entries, self.min_entries)
                    for entry in self.entries:
                        self.tree.insert(entry)
            elif self.index_kind == IndexKind.DBCH:
                if bulk:
                    self.tree = bulk_load_dbch(
                        self.entries, self.suite.pairwise, self.max_entries, self.min_entries
                    )
                else:
                    self.tree = DBCHTree(self.suite.pairwise, self.max_entries, self.min_entries)
                    for entry in self.entries:
                        self.tree.insert(entry)
            if self.tree is not None and obs.is_enabled():
                from .stats import leaf_fill

                gauge = (
                    "dbch.leaf_fill" if self.index_kind == IndexKind.DBCH else "rtree.leaf_fill"
                )
                obs.gauge_set(gauge, leaf_fill(self.tree))

    # ------------------------------------------------------------------
    def knn(self, query: np.ndarray, k: int) -> KNNResult:
        """Filter-and-refine k-NN through the configured index.

        A thin wrapper over the batched engine with a batch of one, so a
        single query and a batch member take the same code path and return
        byte-identical ids and distances.
        """
        if self.data is None:
            raise RuntimeError("ingest data before searching")
        if k < 1:
            raise ValueError("k must be >= 1")
        from ..engine import QueryOptions

        query = np.asarray(query, dtype=float)
        with obs.span("knn.search"):
            batch = self.engine().knn_batch(query[None, :], QueryOptions(k=k))
        return batch.results[0]

    def knn_batch(self, queries: np.ndarray, options=None):
        """Answer many queries at once — see :meth:`repro.engine.QueryEngine.knn_batch`."""
        return self.engine().knn_batch(queries, options)

    def engine(self):
        """The database's lazily-built :class:`repro.engine.QueryEngine`."""
        if self._engine is None:
            from ..engine import QueryEngine

            self._engine = QueryEngine(self)
        return self._engine

    def save(self, directory) -> None:
        """Persist this fitted database as a directory (see :mod:`repro.io`)."""
        from ..io.database import save_series_database

        save_series_database(self, directory)

    def stacked_entries(self):
        """``(series_ids, stacked)`` for the suite's vectorised bound, or ``None``.

        Built lazily and cached until the entry set changes; ``None`` when the
        method has no stacked layout (adaptive-length representations) or the
        stored layouts disagree.
        """
        if self.suite.stack is None or self.suite.query_bound_batch is None:
            return None
        if not self.entries:
            return None
        if self._rep_cache is None:
            try:
                stacked = self.suite.stack([e.representation for e in self.entries])
                sids = np.array([e.series_id for e in self.entries], dtype=np.int64)
                self._rep_cache = (sids, stacked)
            except ValueError:
                self._rep_cache = _STACK_UNAVAILABLE
        if self._rep_cache is _STACK_UNAVAILABLE:
            return None
        return self._rep_cache

    def ground_truth(self, query: np.ndarray, k: int) -> KNNResult:
        """Exact k-NN by linear scan over the ingested raw data."""
        data = self.data
        live = {e.series_id for e in self.entries}
        with obs.span("knn.ground_truth"):
            result = linear_scan(data, query, k + (len(data) - len(live)))
        kept = [
            (i, d) for i, d in zip(result.ids, result.distances) if i in live
        ][:k]
        return KNNResult(
            ids=[i for i, _ in kept],
            distances=[d for _, d in kept],
            n_verified=len(live),
            n_total=len(live),
        )

    def insert(self, series: np.ndarray) -> int:
        """Add one series to the database and its index; returns its id.

        Ids are append-only: a new series always gets ``len(data)`` even
        after deletions, so existing ids stay stable.
        """
        if self.data is None:
            self.ingest(np.asarray(series, dtype=float)[None, :])
            return 0
        series = np.asarray(series, dtype=float)
        if series.ndim != 1 or series.shape[0] != self.data.shape[1]:
            raise ValueError(
                f"series length {series.shape} does not match stored {self.data.shape[1]}"
            )
        series_id = int(self.data.shape[0])
        self.data = np.vstack([self.data, series[None, :]])
        representation = self.reducer.transform(series)
        budget = getattr(self.reducer, "n_segments", None)
        entry = Entry(
            series_id=series_id,
            representation=representation,
            feature=feature_vector(representation, budget),
        )
        self.entries.append(entry)
        self._rep_cache = None
        if self.tree is not None:
            self.tree.insert(entry)
        return series_id

    def delete(self, series_id: int) -> bool:
        """Remove one series from the database and its index.

        The raw row stays in ``data`` (ids are stable); the entry leaves the
        candidate set and the tree, so searches never return it again.
        """
        before = len(self.entries)
        self.entries = [e for e in self.entries if e.series_id != series_id]
        if len(self.entries) == before:
            return False
        self._rep_cache = None
        if self.tree is not None:
            self.tree.delete(series_id)
        return True

    def range_query(self, query: np.ndarray, radius: float) -> KNNResult:
        """All series within Euclidean ``radius`` of ``query`` (filter-and-refine).

        Candidates whose representation bound exceeds ``radius`` are pruned;
        survivors are verified on raw data.  With a guaranteed lower bound
        (``DistanceMode.LB`` for adaptive methods, or any equal-length
        method) the result is exact.
        """
        if self.data is None:
            raise RuntimeError("ingest data before searching")
        if radius < 0:
            raise ValueError("radius must be non-negative")
        query = np.asarray(query, dtype=float)
        ctx = QueryContext(series=query, representation=self.reducer.transform(query))
        hits: "List[tuple[float, int]]" = []
        verified = 0
        for entry in self.entries:
            if self.suite.query_bound(ctx, entry.representation) > radius:
                continue
            true = euclidean(query, self.data[entry.series_id])
            verified += 1
            if true <= radius:
                hits.append((true, entry.series_id))
        hits.sort()
        return KNNResult(
            ids=[sid for _, sid in hits],
            distances=[d for d, _ in hits],
            n_verified=verified,
            n_total=len(self.entries),
        )

    # ------------------------------------------------------------------
    def query_context(self, query: np.ndarray) -> QueryContext:
        """Reduce ``query`` and package it for the distance suite."""
        return QueryContext(series=query, representation=self.reducer.transform(query))

    def node_distance(self, ctx: QueryContext, node) -> float:
        """Index-structure distance from the query to a tree node."""
        if self.index_kind == IndexKind.RTREE:
            q_feature = feature_vector(
                ctx.representation, getattr(self.reducer, "n_segments", None)
            )
            return self.tree.node_distance(q_feature, self._weights, node)
        return self.tree.node_distance(ctx.representation, node)
