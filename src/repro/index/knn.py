"""GEMINI k-NN search over an indexed collection of time series.

The classic filter-and-refine loop (Faloutsos et al. 1994): navigate the
index best-first by node distance, filter leaf candidates with the method's
representation-level bound, and *verify* survivors against the raw series
with the true Euclidean distance.  Verification count over collection size
is the paper's pruning power (Eq. (14)); comparing returned neighbours with
a linear scan gives the accuracy (Eq. (15)).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .. import obs
from ..distance.euclidean import euclidean
from ..distance.suite import QueryContext, make_suite
from ..reduction.base import Reducer
from .bulk import bulk_load_dbch, bulk_load_rtree
from .dbch import DBCHTree
from .entries import Entry
from .mbr import feature_vector, feature_weights
from .rtree import RTree

__all__ = ["KNNResult", "SeriesDatabase", "linear_scan"]


class _Frontier:
    """Best-first priority queue mixing index nodes and leaf entries.

    Items sort by distance with a monotonically increasing tick as the
    tie-break, so equal-distance items pop in insertion order and payloads
    never need to be comparable.  Push counts per kind feed the search
    accounting (heap pushes, nodes/candidates pruned).
    """

    __slots__ = ("_heap", "_tick", "node_pushes", "entry_pushes")

    def __init__(self):
        self._heap: list = []
        self._tick = 0
        self.node_pushes = 0
        self.entry_pushes = 0

    def push_node(self, distance: float, node) -> None:
        self.node_pushes += 1
        self._push(distance, "node", node)

    def push_entry(self, bound: float, entry: Entry) -> None:
        self.entry_pushes += 1
        self._push(bound, "entry", entry)

    def _push(self, key: float, kind: str, payload) -> None:
        self._tick += 1
        heapq.heappush(self._heap, (key, self._tick, kind, payload))

    def pop(self) -> "tuple[float, str, object]":
        key, _, kind, payload = heapq.heappop(self._heap)
        return key, kind, payload

    @property
    def pushes(self) -> int:
        return self.node_pushes + self.entry_pushes

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass
class KNNResult:
    """k-NN outcome plus the accounting the paper's figures need."""

    ids: "List[int]"
    distances: "List[float]"
    n_verified: int
    n_total: int
    nodes_visited: int = 0

    @property
    def pruning_power(self) -> float:
        """Paper Eq. (14): fraction of raw series that had to be measured."""
        return self.n_verified / self.n_total if self.n_total else 0.0

    def accuracy_against(self, truth: "KNNResult") -> float:
        """Paper Eq. (15): |found true neighbours| / K."""
        if not truth.ids:
            return 1.0
        return len(set(self.ids) & set(truth.ids)) / len(truth.ids)


def linear_scan(data: np.ndarray, query: np.ndarray, k: int) -> KNNResult:
    """Exact k-NN by scanning every raw series — the ground truth."""
    data = np.asarray(data, dtype=float)
    query = np.asarray(query, dtype=float)
    if data.ndim != 2 or data.shape[1] != query.shape[0]:
        raise ValueError("linear_scan expects (count, n) data and a length-n query")
    distances = np.linalg.norm(data - query[None, :], axis=1)
    order = np.argsort(distances, kind="stable")[:k]
    return KNNResult(
        ids=[int(i) for i in order],
        distances=[float(distances[i]) for i in order],
        n_verified=len(data),
        n_total=len(data),
    )


class SeriesDatabase:
    """A collection of raw series, their representations, and an index.

    Args:
        reducer: the dimensionality reduction method for this database.
        index: ``'dbch'`` (the paper's structure), ``'rtree'`` (baseline) or
            ``None`` (filter every representation linearly, no tree).
        distance_mode: adaptive-method query-bound mode (see
            :func:`repro.distance.make_suite`).
        max_entries / min_entries: node fill factors (paper uses 5 / 2).
    """

    def __init__(
        self,
        reducer: Reducer,
        index: Optional[str] = "dbch",
        distance_mode: str = "par",
        max_entries: int = 5,
        min_entries: int = 2,
    ):
        if index not in ("dbch", "rtree", None):
            raise ValueError(f"unknown index kind: {index!r}")
        self.reducer = reducer
        self.index_kind = index
        self.suite = make_suite(reducer, distance_mode)
        self.max_entries = max_entries
        self.min_entries = min_entries
        self.data: Optional[np.ndarray] = None
        self.entries: "List[Entry]" = []
        self.tree = None
        self._weights: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def ingest(
        self,
        data: np.ndarray,
        representations: "Optional[list]" = None,
        bulk: bool = False,
    ) -> None:
        """Reduce and index every row of ``data`` (shape ``(count, n)``).

        ``representations`` may carry precomputed transforms of the rows so
        several index structures can be built from one reduction pass.
        ``bulk=True`` packs the tree bottom-up (STR for the R-tree,
        distance-ordered packing for the DBCH-tree) instead of inserting
        incrementally.
        """
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError("ingest expects a (count, n) array of series")
        if representations is not None and len(representations) != len(data):
            raise ValueError("one representation per data row is required")
        with obs.span("db.ingest"):
            self.data = data
            self.entries = []
            budget = getattr(self.reducer, "n_segments", None)
            for series_id, series in enumerate(data):
                representation = (
                    representations[series_id]
                    if representations is not None
                    else self.reducer.transform(series)
                )
                feature = feature_vector(representation, budget)
                self.entries.append(
                    Entry(series_id=series_id, representation=representation, feature=feature)
                )
            if self.index_kind == "rtree":
                self._weights = feature_weights(self.entries[0].representation, budget)
                if bulk:
                    self.tree = bulk_load_rtree(self.entries, self.max_entries, self.min_entries)
                else:
                    self.tree = RTree(self.max_entries, self.min_entries)
                    for entry in self.entries:
                        self.tree.insert(entry)
            elif self.index_kind == "dbch":
                if bulk:
                    self.tree = bulk_load_dbch(
                        self.entries, self.suite.pairwise, self.max_entries, self.min_entries
                    )
                else:
                    self.tree = DBCHTree(self.suite.pairwise, self.max_entries, self.min_entries)
                    for entry in self.entries:
                        self.tree.insert(entry)
            if self.tree is not None and obs.is_enabled():
                from .stats import leaf_fill

                gauge = "dbch.leaf_fill" if self.index_kind == "dbch" else "rtree.leaf_fill"
                obs.gauge_set(gauge, leaf_fill(self.tree))

    # ------------------------------------------------------------------
    def knn(self, query: np.ndarray, k: int) -> KNNResult:
        """Filter-and-refine k-NN through the configured index."""
        if self.data is None:
            raise RuntimeError("ingest data before searching")
        if k < 1:
            raise ValueError("k must be >= 1")
        query = np.asarray(query, dtype=float)
        with obs.span("knn.search"):
            obs.count("knn.queries")
            ctx = QueryContext(series=query, representation=self.reducer.transform(query))
            if self.tree is None:
                return self._filtered_scan(ctx, query, k)
            return self._tree_search(ctx, query, k)

    def ground_truth(self, query: np.ndarray, k: int) -> KNNResult:
        """Exact k-NN by linear scan over the ingested raw data."""
        data = self.data
        live = {e.series_id for e in self.entries}
        with obs.span("knn.ground_truth"):
            result = linear_scan(data, query, k + (len(data) - len(live)))
        kept = [
            (i, d) for i, d in zip(result.ids, result.distances) if i in live
        ][:k]
        return KNNResult(
            ids=[i for i, _ in kept],
            distances=[d for _, d in kept],
            n_verified=len(live),
            n_total=len(live),
        )

    def insert(self, series: np.ndarray) -> int:
        """Add one series to the database and its index; returns its id.

        Ids are append-only: a new series always gets ``len(data)`` even
        after deletions, so existing ids stay stable.
        """
        if self.data is None:
            self.ingest(np.asarray(series, dtype=float)[None, :])
            return 0
        series = np.asarray(series, dtype=float)
        if series.ndim != 1 or series.shape[0] != self.data.shape[1]:
            raise ValueError(
                f"series length {series.shape} does not match stored {self.data.shape[1]}"
            )
        series_id = int(self.data.shape[0])
        self.data = np.vstack([self.data, series[None, :]])
        representation = self.reducer.transform(series)
        budget = getattr(self.reducer, "n_segments", None)
        entry = Entry(
            series_id=series_id,
            representation=representation,
            feature=feature_vector(representation, budget),
        )
        self.entries.append(entry)
        if self.tree is not None:
            self.tree.insert(entry)
        return series_id

    def delete(self, series_id: int) -> bool:
        """Remove one series from the database and its index.

        The raw row stays in ``data`` (ids are stable); the entry leaves the
        candidate set and the tree, so searches never return it again.
        """
        before = len(self.entries)
        self.entries = [e for e in self.entries if e.series_id != series_id]
        if len(self.entries) == before:
            return False
        if self.tree is not None:
            self.tree.delete(series_id)
        return True

    def range_query(self, query: np.ndarray, radius: float) -> KNNResult:
        """All series within Euclidean ``radius`` of ``query`` (filter-and-refine).

        Candidates whose representation bound exceeds ``radius`` are pruned;
        survivors are verified on raw data.  With a guaranteed lower bound
        (``distance_mode='lb'`` for adaptive methods, or any equal-length
        method) the result is exact.
        """
        if self.data is None:
            raise RuntimeError("ingest data before searching")
        if radius < 0:
            raise ValueError("radius must be non-negative")
        query = np.asarray(query, dtype=float)
        ctx = QueryContext(series=query, representation=self.reducer.transform(query))
        hits: "List[tuple[float, int]]" = []
        verified = 0
        for entry in self.entries:
            if self.suite.query_bound(ctx, entry.representation) > radius:
                continue
            true = euclidean(query, self.data[entry.series_id])
            verified += 1
            if true <= radius:
                hits.append((true, entry.series_id))
        hits.sort()
        return KNNResult(
            ids=[sid for _, sid in hits],
            distances=[d for d, _ in hits],
            n_verified=verified,
            n_total=len(self.entries),
        )

    # ------------------------------------------------------------------
    def _filtered_scan(self, ctx: QueryContext, query: np.ndarray, k: int) -> KNNResult:
        """GEMINI without a tree: order candidates by the representation
        bound, verify until the bound exceeds the kth best true distance."""
        bounds = [
            (self.suite.query_bound(ctx, e.representation), e.series_id) for e in self.entries
        ]
        bounds.sort()
        best: "List[tuple[float, int]]" = []  # max-heap via negation
        verified = 0
        for bound, series_id in bounds:
            if len(best) == k and bound >= -best[0][0]:
                break
            true = euclidean(query, self.data[series_id])
            verified += 1
            heapq.heappush(best, (-true, series_id))
            if len(best) > k:
                heapq.heappop(best)
        self._record_search(verified, 0, candidates=len(bounds), node_pushes=0, heap_pushes=0)
        return self._result(best, verified, 0)

    def _tree_search(self, ctx: QueryContext, query: np.ndarray, k: int) -> KNNResult:
        """Best-first multi-step search (Hjaltason & Samet / Seidl & Kriegel).

        The priority queue mixes *nodes* (keyed by index-structure distance)
        and *entries* (keyed by the method's representation bound); raw
        verification happens only when an entry reaches the queue front and
        its bound still beats the kth-best true distance.  Pruning power then
        reflects exactly the tightness of the method's bound plus the
        index's navigation quality.
        """
        root = self.tree.root
        frontier = _Frontier()
        frontier.push_node(self._node_distance(ctx, root), root)
        best: "List[tuple[float, int]]" = []
        verified = 0
        visited = 0
        while frontier:
            dist, kind, payload = frontier.pop()
            if len(best) == k and dist >= -best[0][0]:
                break
            if kind == "entry":
                true = euclidean(query, self.data[payload.series_id])
                verified += 1
                heapq.heappush(best, (-true, payload.series_id))
                if len(best) > k:
                    heapq.heappop(best)
                continue
            visited += 1
            if payload.is_leaf:
                for entry in payload.entries:
                    bound = self.suite.query_bound(ctx, entry.representation)
                    frontier.push_entry(bound, entry)
            else:
                for child in payload.children:
                    frontier.push_node(self._node_distance(ctx, child), child)
        self._record_search(
            verified,
            visited,
            candidates=frontier.entry_pushes,
            node_pushes=frontier.node_pushes,
            heap_pushes=frontier.pushes,
        )
        return self._result(best, verified, visited)

    def _record_search(
        self, verified: int, visited: int, candidates: int, node_pushes: int, heap_pushes: int
    ) -> None:
        """Flush one query's accounting into the metrics registry.

        ``candidates`` is how many entries met the representation bound
        stage; those never verified were pruned by the active bound, so the
        per-bound pruning counters plus ``knn.entries_refined`` reconstruct
        the paper's pruning power from a report alone.
        """
        if not obs.is_enabled():
            return
        obs.count("knn.nodes_visited", visited)
        obs.count("knn.nodes_pruned", max(node_pushes - visited, 0))
        obs.count("knn.entries_refined", verified)
        obs.count("knn.heap_pushes", heap_pushes)
        obs.count("dist.euclidean.exact", verified)
        obs.count(obs.PRUNED_METRICS[self.suite.mode], max(candidates - verified, 0))
        obs.observe("knn.verified_per_query", verified)

    def _node_distance(self, ctx: QueryContext, node) -> float:
        if self.index_kind == "rtree":
            q_feature = feature_vector(
                ctx.representation, getattr(self.reducer, "n_segments", None)
            )
            return self.tree.node_distance(q_feature, self._weights, node)
        return self.tree.node_distance(ctx.representation, node)

    def _result(self, best: "List[tuple[float, int]]", verified: int, visited: int) -> KNNResult:
        ranked = sorted((-d, sid) for d, sid in best)
        return KNNResult(
            ids=[sid for _, sid in ranked],
            distances=[d for d, _ in ranked],
            n_verified=verified,
            n_total=len(self.entries),
            nodes_visited=visited,
        )
