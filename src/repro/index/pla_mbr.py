"""Query-to-PLA-MBR lower-bound distance (Chen et al. 2007).

The paper's implementation section notes that "PLA uses its own MBR
computation method because PLA proposes a robust distance measure between
query time series and PLA MBR".  In PLA's coefficient space a node's MBR is
a box over the per-segment ``(a_i, b_i)`` pairs; the Euclidean
reconstruction distance of one segment is the quadratic form (Eq. (12))

    f(da, db) = K2*da^2 + K1*da*db + K0*db^2
    K2 = l(l-1)(2l-1)/6,  K1 = l(l-1),  K0 = l,

so MINDIST(query, box) is the square root of the summed per-segment minima
of a convex quadratic over a rectangle — solved exactly below (interior
critical point, else the best of four one-dimensional edge minima).  The
result provably lower-bounds Dist_PLA (hence the Euclidean distance) to
every representation inside the box.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.segment import LinearSegmentation

__all__ = ["PLABox", "pla_feature", "pla_mbr_mindist"]


def pla_feature(representation: LinearSegmentation) -> np.ndarray:
    """The PLA coefficient vector ``(a_0, b_0, a_1, b_1, ...)``."""
    out = np.empty(2 * representation.n_segments)
    for i, seg in enumerate(representation):
        out[2 * i] = seg.a
        out[2 * i + 1] = seg.b
    return out


class PLABox:
    """An MBR over PLA coefficient vectors with segment-length metadata."""

    def __init__(self, lengths: "Sequence[int]"):
        self.lengths = [int(l) for l in lengths]
        dims = 2 * len(self.lengths)
        self.mins = np.full(dims, np.inf)
        self.maxs = np.full(dims, -np.inf)
        self._count = 0

    @classmethod
    def of(cls, representations: "Sequence[LinearSegmentation]") -> "PLABox":
        """Build the MBR covering the given equal-layout representations."""
        if not representations:
            raise ValueError("a PLA MBR needs at least one representation")
        first = representations[0]
        box = cls([seg.length for seg in first])
        for rep in representations:
            box.extend(rep)
        return box

    def extend(self, representation: LinearSegmentation) -> None:
        """Grow the box to cover one more representation."""
        if [seg.length for seg in representation] != self.lengths:
            raise ValueError("representation layout does not match the box")
        feature = pla_feature(representation)
        np.minimum(self.mins, feature, out=self.mins)
        np.maximum(self.maxs, feature, out=self.maxs)
        self._count += 1


def _quadratic_min_on_rectangle(
    k2: float, k1: float, k0: float,
    da_lo: float, da_hi: float, db_lo: float, db_hi: float,
) -> float:
    """Exact minimum of ``k2*x^2 + k1*x*y + k0*y^2`` over a rectangle."""

    def value(x: float, y: float) -> float:
        return k2 * x * x + k1 * x * y + k0 * y * y

    # interior critical point of the (positive semi-definite) form is (0, 0)
    if da_lo <= 0.0 <= da_hi and db_lo <= 0.0 <= db_hi:
        return 0.0

    candidates = []
    # four edges: fix one variable, minimise the 1-D quadratic in the other
    for x in (da_lo, da_hi):
        # f(y) = k0*y^2 + k1*x*y + const -> vertex at y* = -k1*x/(2*k0)
        y_star = -k1 * x / (2.0 * k0) if k0 > 0 else db_lo
        y = min(max(y_star, db_lo), db_hi)
        candidates.append(value(x, y))
    for y in (db_lo, db_hi):
        x_star = -k1 * y / (2.0 * k2) if k2 > 0 else da_lo
        x = min(max(x_star, da_lo), da_hi)
        candidates.append(value(x, y))
    return max(min(candidates), 0.0)


def pla_mbr_mindist(query: LinearSegmentation, box: PLABox) -> float:
    """Lower bound of Dist_PLA(query, C) for every representation C in ``box``."""
    if [seg.length for seg in query] != box.lengths:
        raise ValueError("query layout does not match the box")
    total = 0.0
    feature = pla_feature(query)
    for i, l in enumerate(box.lengths):
        qa, qb = feature[2 * i], feature[2 * i + 1]
        # the difference (qa - a, qb - b) ranges over a rectangle
        da_lo, da_hi = qa - box.maxs[2 * i], qa - box.mins[2 * i]
        db_lo, db_hi = qb - box.maxs[2 * i + 1], qb - box.mins[2 * i + 1]
        k2 = l * (l - 1) * (2 * l - 1) / 6.0
        k1 = float(l * (l - 1))
        k0 = float(l)
        total += _quadratic_min_on_rectangle(k2, k1, k0, da_lo, da_hi, db_lo, db_hi)
    return float(np.sqrt(total))
