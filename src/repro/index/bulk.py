"""Bulk loading for the R-tree (STR packing) and the DBCH-tree.

Incremental insertion is what the paper measures (Fig. 14a), but a database
ingesting a whole collection at once wants packed trees: better fill factors
and far fewer node splits.

* R-tree: Sort-Tile-Recursive (Leutenegger et al. 1997) — sort by the first
  feature dimension, tile into vertical slabs, sort each slab by the second
  dimension, pack leaves at full fill, recurse upward.
* DBCH-tree: distance-ordered packing — entries are ordered by their
  distance to a pivot representation (farthest-point heuristic), packed into
  consecutive full leaves, and parents are packed the same way over child
  anchors.  All geometry stays on the representation distance, matching the
  incremental tree's invariants.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence

import numpy as np

from .. import obs
from .dbch import DBCHNode, DBCHTree
from .entries import Entry
from .rtree import RTree, RTreeNode

__all__ = ["bulk_load_rtree", "bulk_load_dbch"]


def _pack(items: list, capacity: int) -> "List[list]":
    """Split ``items`` into consecutive groups of at most ``capacity``,
    avoiding a trailing group smaller than 2 where possible."""
    groups = [items[i : i + capacity] for i in range(0, len(items), capacity)]
    if len(groups) > 1 and len(groups[-1]) == 1:
        groups[-2], groups[-1] = groups[-2][:-1], groups[-2][-1:] + groups[-1]
    return groups


def bulk_load_rtree(
    entries: "Sequence[Entry]", max_entries: int = 5, min_entries: int = 2
) -> RTree:
    """Build a packed R-tree over ``entries`` with STR tiling."""
    tree = RTree(max_entries=max_entries, min_entries=min_entries)
    entries = list(entries)
    if not entries:
        return tree
    if any(e.feature is None for e in entries):
        raise ValueError("R-tree bulk load needs feature vectors on every entry")

    # STR: slabs along dim 0, runs along dim 1 (or dim 0 again if 1-D)
    dims = len(entries[0].feature)
    ordered = sorted(entries, key=lambda e: float(e.feature[0]))
    n_leaves = math.ceil(len(ordered) / max_entries)
    slab_count = max(int(math.ceil(math.sqrt(n_leaves))), 1)
    slab_size = math.ceil(len(ordered) / slab_count)
    second = 1 if dims > 1 else 0
    leaf_groups: "List[list]" = []
    for i in range(0, len(ordered), slab_size):
        slab = sorted(ordered[i : i + slab_size], key=lambda e: float(e.feature[second]))
        leaf_groups.extend(_pack(slab, max_entries))

    level: "List[RTreeNode]" = []
    for group in leaf_groups:
        node = RTreeNode(is_leaf=True)
        node.entries = group
        node.recompute_box()
        level.append(node)
    while len(level) > 1:
        level.sort(key=lambda n: tuple(n.box.mins))
        parents = []
        for group in _pack(level, max_entries):
            parent = RTreeNode(is_leaf=False)
            parent.children = group
            for child in group:
                child.parent = parent
            parent.recompute_box()
            parents.append(parent)
        level = parents
    tree.root = level[0]
    tree.size = len(entries)
    return tree


def _farthest_from(entries: "Sequence[Entry]", distance: Callable, seed_rep, accel) -> Entry:
    """The entry farthest from ``seed_rep`` (first one wins ties, as ``max``).

    With a metric :class:`repro.distance.PairwiseAccel`, candidates whose
    norm-tier triangle upper bound certainly cannot exceed the running
    maximum skip the forced pairwise evaluation.  The replace rule is strict
    ``>``, so the winner is identical to the full scan.
    """
    if accel is None or not accel.metric:
        return max(entries, key=lambda e: distance(seed_rep, e.representation))
    best = -math.inf
    best_entry = entries[0]
    skipped = 0
    for entry in entries:
        if accel.certainly_not_above(accel.upper(seed_rep, entry.representation), best):
            skipped += 1
            continue
        d = distance(seed_rep, entry.representation)
        if d > best:
            best, best_entry = d, entry
    if skipped and obs.is_enabled():
        obs.count("cascade.pairwise_skipped", skipped)
    return best_entry


def bulk_load_dbch(
    entries: "Sequence[Entry]",
    distance: Callable,
    max_entries: int = 5,
    min_entries: int = 2,
    accel=None,
) -> DBCHTree:
    """Build a packed DBCH-tree over ``entries`` with distance ordering.

    ``accel`` is an optional :class:`repro.distance.PairwiseAccel`; it lets
    the hull recomputations skip forced pairwise evaluations and does not
    change the resulting tree.
    """
    tree = DBCHTree(distance, max_entries=max_entries, min_entries=min_entries, accel=accel)
    entries = list(entries)
    if not entries:
        return tree

    # farthest-point pivot: order entries by distance from the entry most
    # distant to an arbitrary seed, so consecutive entries are similar
    seed_rep = entries[0].representation
    pivot = _farthest_from(entries, distance, seed_rep, accel)
    keyed = sorted(entries, key=lambda e: distance(pivot.representation, e.representation))

    level: "List[DBCHNode]" = []
    for group in _pack(keyed, max_entries):
        node = DBCHNode(is_leaf=True)
        node.entries = group
        node.recompute_hull(distance, accel)
        level.append(node)
    while len(level) > 1:
        level.sort(key=lambda n: distance(pivot.representation, n.hull[0]))
        parents = []
        for group in _pack(level, max_entries):
            parent = DBCHNode(is_leaf=False)
            parent.children = group
            for child in group:
                child.parent = parent
            parent.recompute_hull(distance, accel)
            parents.append(parent)
        level = parents
    tree.root = level[0]
    tree.size = len(entries)
    return tree
