"""Minimum bounding rectangles and the APCA-style feature mapping.

The R-tree baseline indexes each representation as a point in a feature
space.  Following APCA's construction, a segment-based representation maps
to the interleaved vector ``(mean_0, r_0, mean_1, r_1, ...)``: segment means
carry the value information, right endpoints the (adaptive) time layout.

For equal-length methods the endpoint dimensions are constant across series
and contribute nothing, so the R-tree behaves well; for adaptive methods the
endpoints differ per series, the boxes of homogeneous datasets overlap
heavily, and navigation degrades — the overlap problem of paper Sec. 5.2
that the DBCH-tree is built to remove.

For those adaptive methods the weighted MINDIST is *not* a lower bound of
the true distance (the weights assume the query's segment layout), so the
search layers treat it as a navigation hint only: it orders the frontier
but never prunes a subtree (``SeriesDatabase.node_bounds_exact``); all
pruning falls to the exact entry-level query bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.segment import LinearSegmentation
from ..reduction.cheby import ChebyshevRepresentation
from ..reduction.sax import SAXRepresentation

__all__ = ["Box", "feature_vector", "feature_weights"]


@dataclass
class Box:
    """An axis-aligned box in feature space."""

    mins: np.ndarray
    maxs: np.ndarray

    @classmethod
    def of_point(cls, point: np.ndarray) -> "Box":
        point = np.asarray(point, dtype=float)
        return cls(mins=point.copy(), maxs=point.copy())

    def copy(self) -> "Box":
        """An independent copy of this box."""
        return Box(self.mins.copy(), self.maxs.copy())

    def union(self, other: "Box") -> "Box":
        """The smallest box covering both operands."""
        return Box(np.minimum(self.mins, other.mins), np.maximum(self.maxs, other.maxs))

    def extend(self, other: "Box") -> None:
        """Grow this box in place to absorb ``other``."""
        np.minimum(self.mins, other.mins, out=self.mins)
        np.maximum(self.maxs, other.maxs, out=self.maxs)

    def contains(self, other: "Box") -> bool:
        """Whether ``other`` lies entirely inside this box."""
        return bool((self.mins <= other.mins + 1e-12).all() and (other.maxs <= self.maxs + 1e-12).all())

    @property
    def margin(self) -> float:
        """Sum of side extents — a robust size measure in high dimensions."""
        return float((self.maxs - self.mins).sum())

    def enlargement(self, other: "Box") -> float:
        """Margin increase needed to absorb ``other`` (Guttman's criterion,
        with margin instead of volume to stay meaningful in 20+ dims)."""
        new_mins = np.minimum(self.mins, other.mins)
        new_maxs = np.maximum(self.maxs, other.maxs)
        return float((new_maxs - new_mins).sum()) - self.margin

    def min_dist(self, point: np.ndarray, weights: np.ndarray) -> float:
        """Weighted MINDIST from a query point to this box."""
        below = np.maximum(self.mins - point, 0.0)
        above = np.maximum(point - self.maxs, 0.0)
        gap = (below + above) * weights
        return float(np.sqrt(np.dot(gap, gap)))


def feature_vector(representation: Any, n_segments: "int | None" = None) -> np.ndarray:
    """Map any supported representation to its R-tree feature point.

    ``n_segments`` pads segment-based features to a fixed dimensionality
    (repeating the final segment) so representations that came out with
    fewer segments than the budget still index alongside the rest.
    """
    if isinstance(representation, LinearSegmentation):
        count = representation.n_segments
        width = max(n_segments or count, count)
        features = np.empty(2 * width)
        for i, seg in enumerate(representation):
            features[2 * i] = seg.b + seg.a * (seg.length - 1) / 2.0  # segment mean
            features[2 * i + 1] = float(seg.end)
        for i in range(count, width):
            features[2 * i] = features[2 * count - 2]
            features[2 * i + 1] = features[2 * count - 1]
        return features
    if isinstance(representation, ChebyshevRepresentation):
        return np.asarray(representation.coefficients, dtype=float)
    if isinstance(representation, SAXRepresentation):
        return representation.symbols.astype(float)
    raise TypeError(f"no feature mapping for {type(representation).__name__}")


def feature_weights(representation: Any, n_segments: "int | None" = None) -> np.ndarray:
    """Per-dimension MINDIST weights matching :func:`feature_vector`.

    Mean dimensions are weighted by ``sqrt(l_mean)`` so that feature-space
    gaps approximate reconstruction distance; endpoint dimensions get a small
    weight (they locate segments but are not value differences).
    """
    if isinstance(representation, LinearSegmentation):
        n, count = representation.length, representation.n_segments
        weights = np.empty(2 * max(n_segments or count, count))
        weights[0::2] = np.sqrt(n / count)
        weights[1::2] = 1.0 / np.sqrt(n)
        return weights
    if isinstance(representation, ChebyshevRepresentation):
        return np.ones(len(representation.coefficients))
    if isinstance(representation, SAXRepresentation):
        return np.ones(len(representation.symbols))
    raise TypeError(f"no feature weights for {type(representation).__name__}")
